//! Micro-batch streaming with the migration-policy loop closed online
//! (DESIGN.md §14).
//!
//! A seeded stream of 8 micro-batches joins each pane against a
//! *drifting* hot dataset, so the static analysis' one-shot placement
//! is wrong for part of the stream. The example drives the same stream
//! under the static prior, the online re-tagging policy, and the
//! two-pass oracle, then prints the regret each policy pays against
//! clairvoyant placement — with byte-identical window outputs under
//! all three, because placement moves bytes, never answers.
//!
//! ```sh
//! cargo run -p panthera-examples --bin streaming
//! ```

use panthera_stream::{StreamBuilder, StreamSpec};

fn main() {
    let spec = StreamSpec::small(7);
    println!(
        "stream {}: {} batches x {} resident datasets, {:?} window, hot set drifts \
         every {} batches",
        spec.name, spec.batches, spec.datasets, spec.window, spec.drift_period
    );
    println!("hot schedule: {:?}", spec.hot_schedule());
    println!();

    // One call drives all three policies over the identical stream (the
    // static pass doubles as the oracle's recording pass).
    let cmp = StreamBuilder::new(spec)
        .compare()
        .expect("valid spec and config");

    println!(
        "{:<8} | {:>13} | {:>12} | {:>12} | {:>6} | {:>6} | {:>5}",
        "policy", "elapsed ns", "p50 ns", "p99 ns", "dram", "retags", "migr"
    );
    println!("{}", "-".repeat(80));
    for r in [&cmp.static_run, &cmp.online, &cmp.oracle] {
        println!(
            "{:<8} | {:>13.4e} | {:>12.4e} | {:>12.4e} | {:>5.1}% | {:>6} | {:>5}",
            r.policy,
            r.elapsed_ns,
            r.latency_quantile_ns(0.50),
            r.latency_quantile_ns(0.99),
            100.0 * r.dram_byte_frac,
            r.retags,
            r.migrations
        );
    }
    println!("{}", "-".repeat(80));
    println!(
        "regret vs oracle: static {:.3e} ns, online {:.3e} ns",
        cmp.static_regret_ns(),
        cmp.online_regret_ns()
    );
    println!(
        "window outputs identical across policies: {}",
        cmp.outputs_identical()
    );
    for (name, digest) in cmp.online.window_outputs() {
        println!("  {name}: {digest:016x}");
    }
    assert!(
        cmp.outputs_identical(),
        "placement must never change answers"
    );
}
