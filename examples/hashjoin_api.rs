//! The paper's Section 4.3 applicability story: using Panthera's two
//! public runtime APIs *directly* — without Spark or the static analysis —
//! to manage a Hadoop-style HashJoin's memory.
//!
//! The build-side table is long-lived and probed constantly: pretenure it
//! in DRAM (API 1). A second, rarely-touched archive table has an
//! unpredictable access pattern: leave it to dynamic monitoring and let
//! the major GC migrate it (API 2).
//!
//! ```sh
//! cargo run -p panthera-examples --bin hashjoin_api
//! ```

use mheap::{MemTag, ObjKind, RootSet, SpaceId};
use panthera::prelude::*;
use panthera::PantheraRuntime;
use sparklet::MemoryRuntime;

fn main() {
    let config = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
    let mut rt = PantheraRuntime::new(&config).expect("valid config");
    let mut roots = RootSet::new();

    // --- API 1: pretenure the hash-join build side in DRAM -------------
    const BUILD_TABLE: u32 = 1;
    let build = rt.api_pretenure(&roots, BUILD_TABLE, 4_096, MemTag::Dram);
    roots.push(build);
    for key in 0..4_096i64 {
        let row = rt.alloc_record(
            &roots,
            ObjKind::Tuple,
            Payload::keyed(key, Payload::Long(key * 31)),
        );
        rt.heap_mut().push_ref(build, row);
    }
    println!(
        "build table array lives in {:?} (old-gen DRAM = {:?})",
        rt.heap().obj(build).space,
        rt.heap().old_dram().map(SpaceId::Old),
    );

    // --- API 2: monitor a structure with an unpredictable pattern ------
    const ARCHIVE: u32 = 2;
    let archive = rt.api_pretenure(&roots, ARCHIVE, 4_096, MemTag::Dram);
    roots.push(archive);

    // The probe phase hammers the build table...
    for _ in 0..32 {
        rt.api_monitor(BUILD_TABLE);
    }
    // ...while the archive is never touched. A major GC re-assesses both.
    rt.force_major(&roots);

    let build_space = rt.heap().obj(build).space;
    let archive_space = rt.heap().obj(archive).space;
    println!("after the major GC's re-assessment:");
    println!("  build table ({:>2} calls): {build_space:?}", 32);
    println!("  archive     ({:>2} calls): {archive_space:?}", 0);
    assert_eq!(build_space, SpaceId::Old(rt.heap().old_dram().unwrap()));
    assert_eq!(archive_space, SpaceId::Old(rt.heap().old_nvm().unwrap()));
    println!(
        "the hot table stayed in DRAM; the cold archive was migrated to NVM \
         with every object reachable from it."
    );
    println!();
    println!("heap after the run:");
    print!("{}", rt.heap().describe());
}
