//! The paper's running example end to end: PageRank (Figure 2a) over a
//! synthetic web graph, across every memory mode, with the GC's view of
//! what happened.
//!
//! ```sh
//! cargo run -p panthera-examples --bin pagerank_hybrid
//! ```

use panthera::prelude::*;
use panthera_analysis::analyze;
use sparklang::Pretty;
use workloads::pagerank;

fn main() {
    // Build Figure 2(a)'s program and show it plus its inferred tags.
    let w = pagerank(2_000, 10_000, 6, 42);
    println!("{}", Pretty(&w.program));
    println!();
    println!("static analysis (Section 3):");
    let report = analyze(&w.program);
    for line in report.summary(&w.program) {
        println!("  {line}");
    }
    println!();

    // Run under every mode on a 64 GB heap with 1/3 DRAM.
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "mode", "time(s)", "gc(s)", "energy(J)", "minorGC", "majorGC", "migrated"
    );
    for mode in MemoryMode::ALL {
        let w = pagerank(2_000, 10_000, 6, 42);
        let r = RunBuilder::new(&w.program, w.fns, w.data)
            .config(SystemConfig::new(mode, 64 * SIM_GB, 1.0 / 3.0))
            .run()
            .expect("valid configuration")
            .report;
        println!(
            "{:<20} {:>9.4} {:>9.4} {:>9.3} {:>8} {:>8} {:>9}",
            r.mode,
            r.elapsed_s,
            r.gc_s(),
            r.energy_j(),
            r.gc.minor_count,
            r.gc.major_count,
            r.gc.rdds_migrated
        );
    }
    println!();
    println!(
        "links (read every iteration) was tagged DRAM and pretenured into \
         the old generation's DRAM space; contribs (cached for fault \
         tolerance) was tagged NVM. Under the unmanaged baseline both are \
         scattered across devices."
    );
}
