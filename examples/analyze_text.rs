//! The textual frontend: write a driver program as text, parse it, run
//! the Section 3 analysis, and execute it with closures bound by id.
//!
//! ```sh
//! cargo run -p panthera-examples --bin analyze_text
//! ```

use panthera::prelude::*;
use panthera_analysis::analyze;
use sparklang::{parse, FnTable, UserFn};

const SOURCE: &str = r#"
program text-demo {
  // A cached lookup table, read every iteration: the analysis tags it DRAM.
  table = source("pairs").distinct().groupByKey()
  table.persist(MEMORY_ONLY)

  // A per-iteration aggregate, re-created each time: tagged NVM.
  history = table.mapValues(f0)
  for i in 1..=6 {
    history = table.join(history).mapValues(f1).reduceByKey(f2)
    history.persist(MEMORY_AND_DISK_SER)
    table.count()
  }
  history.count()
}
"#;

fn main() {
    let program = parse(SOURCE).expect("the program parses");
    println!(
        "parsed `{}` with {} variables",
        program.name,
        program.n_vars()
    );
    println!();

    // Static analysis on the parsed program.
    let report = analyze(&program);
    println!("inferred tags (Section 3):");
    for line in report.summary(&program) {
        println!("  {line}");
    }
    println!();

    // Bind the closures the text refers to by id (f0, f1, f2).
    let mut fns = FnTable::new();
    let f0 = fns.add(UserFn::Map(Box::new(|_| Payload::Double(1.0))));
    // (degree list, score) -> degree + score
    let f1 = fns.add(UserFn::Map(Box::new(|v| {
        let (l, d) = v.as_pair().expect("(list, score)");
        let deg = match l {
            Payload::List(items) => items.len() as f64,
            _ => 1.0,
        };
        Payload::Double(deg + d.as_double().unwrap_or(0.0))
    })));
    let f2 = fns.add(UserFn::Reduce(Box::new(|a, c| {
        Payload::Double(a.as_double().unwrap_or(0.0) + c.as_double().unwrap_or(0.0))
    })));
    assert_eq!((f0.0, f1.0, f2.0), (0, 1, 2), "ids line up with the text");

    let mut data = DataRegistry::new();
    data.register(
        "pairs",
        (0..2_000)
            .map(|i| Payload::keyed(i % 50, Payload::Long(i)))
            .collect(),
    );

    let run = RunBuilder::new(&program, fns, data)
        .config(SystemConfig::new(
            MemoryMode::Panthera,
            16 * SIM_GB,
            1.0 / 3.0,
        ))
        .run()
        .expect("valid configuration");
    println!("executed: {}", run.report.summary());
    let (var, last) = run.results.last().expect("actions ran");
    println!("final {var}.count() = {last:?}");
}
