//! Tour of the Section 3 static analysis: def/use collection, the
//! tag-inference rules, storage-level expansion, and the `rdd_alloc`
//! instrumentation plan — on programs that exercise every rule.
//!
//! ```sh
//! cargo run -p panthera-examples --bin static_analysis
//! ```

use panthera::prelude::*;
use panthera_analysis::{analyze, infer_tags};
use sparklang::{Pretty, Program};

fn show(title: &str, program: &Program) {
    println!("## {title}");
    println!("{}", Pretty(program));
    let report = analyze(program);
    for line in report.summary(program) {
        println!("   {line}");
    }
    println!(
        "   instrumented rdd_alloc sites: {}",
        report
            .plan
            .sites
            .values()
            .map(|s| {
                format!(
                    "stmt#{}:{}={}",
                    s.stmt.0,
                    program.var_name(s.var),
                    s.tag.map(|t| t.to_string()).unwrap_or_else(|| "-".into())
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();
}

fn main() {
    // Rule: used-only in a loop after materialization => DRAM.
    let mut b = ProgramBuilder::new("hot-cache");
    let src = b.source("input");
    let table = b.bind("table", src.distinct());
    b.persist(table, StorageLevel::MemoryOnly);
    b.loop_n(10, |b| b.action(table, ActionKind::Count));
    show("used-only in a loop -> DRAM", &b.finish().0);

    // Rule: redefined every iteration => NVM (old instances linger unused).
    let mut b = ProgramBuilder::new("iteration-churn");
    let f = b.map_fn(|p| p.clone());
    let src = b.source("input");
    let hot = b.bind("hot", src.distinct());
    b.persist(hot, StorageLevel::MemoryOnly);
    let work = b.bind("work", b.var(hot).map(f));
    b.loop_n(10, |b| {
        let e = b.var(work).map(f);
        b.rebind(work, e);
        b.persist(work, StorageLevel::MemoryAndDiskSer);
        b.action(hot, ActionKind::Count);
    });
    show("redefined per iteration -> NVM", &b.finish().0);

    // Rule: no loops at all => everything NVM, then flipped to DRAM.
    let mut b = ProgramBuilder::new("one-shot");
    let src = b.source("input");
    let x = b.bind("x", src.group_by_key());
    b.persist(x, StorageLevel::MemoryOnly);
    b.action(x, ActionKind::Count);
    show("no loops -> all-NVM flip -> DRAM", &b.finish().0);

    // Rule: OFF_HEAP forced to NVM, DISK_ONLY untagged.
    let mut b = ProgramBuilder::new("levels");
    let s1 = b.source("a");
    let s2 = b.source("b");
    let native = b.bind("native", s1);
    b.persist(native, StorageLevel::OffHeap);
    let archived = b.bind("archived", s2);
    b.persist(archived, StorageLevel::DiskOnly);
    b.loop_n(3, |b| {
        b.action(native, ActionKind::Count);
        b.action(archived, ActionKind::Count);
    });
    let (p, _) = b.finish();
    show("OFF_HEAP -> OFF_HEAP_NVM; DISK_ONLY -> untagged", &p);

    // Expanded storage-level names (the _DRAM/_NVM sub-levels).
    let tags = infer_tags(&p);
    println!("expanded levels:");
    println!(
        "  native:   {}",
        tags.expanded_level(native, StorageLevel::OffHeap)
    );
    println!(
        "  archived: {}",
        tags.expanded_level(archived, StorageLevel::DiskOnly)
    );
}
