//! Multi-tenant job service: three tenants share one 4-executor pool
//! and one DRAM budget under weighted fair share (DESIGN.md §13).
//!
//! Tenant 1 is a heavy batch user (weight 2) front-loading long
//! PageRank jobs; tenant 2 is an interactive user (weight 1) with small
//! jobs; tenant 3 (weight 1, with a heap quota) submits a 2-executor
//! hash join through the cluster path. Under FIFO the small jobs would
//! queue behind the batch jobs; fair share dispatches them at the first
//! stage barriers.
//!
//! ```sh
//! cargo run -p panthera-examples --bin multitenant
//! ```

use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
use panthera_jobs::{JobService, JobSpec, SchedPolicy, ServiceConfig, SubmitTo};
use sparklang::{FnTable, Program};
use sparklet::DataRegistry;
use workloads::{build_workload, WorkloadId};

fn hashjoin() -> (Program, FnTable, DataRegistry) {
    let w = build_workload(WorkloadId::Tc, 0.03, 11);
    (w.program, w.fns, w.data)
}

fn main() {
    let mut svc = JobService::new(ServiceConfig {
        pool_executors: 4,
        policy: SchedPolicy::FairShare,
        dram_budget_bytes: Some(24 * SIM_GB), // split across live jobs by weight
        host_threads: None,
    });
    svc.add_tenant(1, 2.0, None); // batch: double share
    svc.add_tenant(2, 1.0, None); // interactive
    svc.add_tenant(3, 1.0, Some(16 * SIM_GB)); // quota-capped

    let cfg = SystemConfig::new(MemoryMode::Panthera, 4 * SIM_GB, 1.0 / 3.0);

    // Tenant 1: three long PageRank jobs, submitted first.
    for seed in 0..3 {
        let w = build_workload(WorkloadId::Pr, 0.08, seed);
        svc.submit(JobSpec::inline(1, w.program, w.fns, w.data).with_config(cfg.clone()))
            .expect("admissible");
    }
    // Tenant 2: small jobs trailing in behind the long ones.
    for (i, id) in [WorkloadId::Km, WorkloadId::Lr, WorkloadId::Cc]
        .into_iter()
        .enumerate()
    {
        let w = build_workload(id, 0.02, 100 + i as u64);
        svc.submit(
            JobSpec::inline(2, w.program, w.fns, w.data)
                .with_config(cfg.clone())
                .with_priority(i as u32),
        )
        .expect("admissible");
    }
    // Tenant 3: a 2-executor job via the `RunBuilder::submit_to` sugar —
    // the same fluent surface as a one-shot run, enqueued instead.
    let mut cluster_cfg = cfg.clone();
    cluster_cfg.executors = 2;
    RunBuilder::from_build(&hashjoin)
        .config(cluster_cfg)
        .submit_to(&mut svc, 3)
        .expect("admissible");

    let report = svc.run();

    println!(
        "{} jobs over E={} in {:.4}s simulated ({:.1} jobs/s); {} preemptions",
        report.jobs.len(),
        report.pool_executors,
        report.makespan_s,
        report.jobs_per_s,
        report.preemptions
    );
    println!(
        "queueing delay: p50 {:.4}s  p99 {:.4}s  max {:.4}s",
        report.queue_p50_s, report.queue_p99_s, report.queue_max_s
    );
    println!(
        "fairness: max weighted-vtime spread {:.6}s (max stage charge {:.6}s)",
        report.max_vtime_spread_s, report.max_stage_charge_s
    );
    for t in &report.tenants {
        println!(
            "tenant {} (w={}): {} finished, busy {:.4}s, vruntime {:.4}s, peak DRAM share {:.1} GB",
            t.tenant,
            t.weight,
            t.finished,
            t.busy_s,
            t.vruntime_s,
            t.dram_share_bytes as f64 / SIM_GB as f64,
        );
    }
    for job in &report.jobs {
        println!(
            "  job {:>2} [tenant {}] {:<16} {:<8} queued {:.4}s, {} stages, {} preemptions",
            job.job,
            job.tenant,
            job.name,
            job.outcome.label(),
            job.queued_s().unwrap_or(-1.0),
            job.stages,
            job.preemptions
        );
    }
}
