//! Quickstart: write a small Spark-like program, run it under Panthera on
//! a hybrid DRAM/NVM machine, and compare against the DRAM-only baseline.
//!
//! ```sh
//! cargo run -p panthera-examples --bin quickstart
//! ```

use panthera::prelude::*;

fn main() {
    // 1. A driver program, as in the paper's Figure 2(a): a cached dataset
    //    read by every loop iteration, plus per-iteration temporaries.
    let mut b = ProgramBuilder::new("quickstart");
    let square = b.map_fn(|p| {
        let v = p.as_long().expect("long record");
        Payload::keyed(v % 10, Payload::Long(v * v))
    });
    let add =
        b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap_or(0) + c.as_long().unwrap_or(0)));

    let src = b.source("numbers");
    let nums = b.bind("numbers", src);
    b.persist(nums, StorageLevel::MemoryOnly); // hot: used every iteration
    b.loop_n(5, |b| {
        let sums = b.bind("sums", b.var(nums).map(square).reduce_by_key(add));
        b.action(sums, ActionKind::Count);
    });
    let (program, fns) = b.finish();

    // 2. Input data (a synthetic dataset registered under the source name).
    let mut data = DataRegistry::new();
    data.register("numbers", (0..20_000).map(Payload::Long).collect());

    // 3. Run it on a "64 GB" heap with one third DRAM under Panthera.
    let run = RunBuilder::new(&program, fns, data)
        .config(SystemConfig::new(
            MemoryMode::Panthera,
            64 * SIM_GB,
            1.0 / 3.0,
        ))
        .run()
        .expect("valid configuration");

    println!("results:");
    for (var, result) in &run.results {
        println!("  {var}.count() = {result:?}");
    }
    println!();
    println!("{}", run.report.summary());
    println!(
        "energy: {:.3} J ({:.0}% static)",
        run.report.energy_j(),
        run.report.energy.static_fraction() * 100.0
    );

    // 4. The same program DRAM-only, for comparison. (Workload builders
    //    are cheap; rebuild because closures are not clonable.)
    let mut b2 = ProgramBuilder::new("quickstart");
    let square = b2.map_fn(|p| {
        let v = p.as_long().expect("long record");
        Payload::keyed(v % 10, Payload::Long(v * v))
    });
    let add =
        b2.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap_or(0) + c.as_long().unwrap_or(0)));
    let src = b2.source("numbers");
    let nums = b2.bind("numbers", src);
    b2.persist(nums, StorageLevel::MemoryOnly);
    b2.loop_n(5, |b| {
        let sums = b.bind("sums", b.var(nums).map(square).reduce_by_key(add));
        b.action(sums, ActionKind::Count);
    });
    let (program2, fns2) = b2.finish();
    let mut data2 = DataRegistry::new();
    data2.register("numbers", (0..20_000).map(Payload::Long).collect());
    let base = RunBuilder::new(&program2, fns2, data2)
        .config(SystemConfig::new(MemoryMode::DramOnly, 64 * SIM_GB, 1.0))
        .run()
        .expect("valid configuration")
        .report;

    println!();
    println!(
        "vs DRAM-only: {:.2}x time, {:.2}x energy — hybrid memory trades a \
         little time for a lot of energy",
        run.report.time_vs(&base),
        run.report.energy_vs(&base)
    );
}
