//! The simulator is a pure function of (program, data, config): identical
//! inputs give bit-identical reports — no wall-clock, OS, or iteration-
//! order dependence leaks in.

use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use workloads::{build_workload, WorkloadId};

fn run_once(id: WorkloadId, mode: MemoryMode, seed: u64) -> RunReport {
    let w = build_workload(id, 0.12, seed);
    let cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration")
        .report
}

fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(
        a.elapsed_s.to_bits(),
        b.elapsed_s.to_bits(),
        "{what}: elapsed"
    );
    assert_eq!(
        a.mutator_s.to_bits(),
        b.mutator_s.to_bits(),
        "{what}: mutator"
    );
    assert_eq!(
        a.energy_j().to_bits(),
        b.energy_j().to_bits(),
        "{what}: energy"
    );
    assert_eq!(a.gc.minor_count, b.gc.minor_count, "{what}: minor GCs");
    assert_eq!(a.gc.major_count, b.gc.major_count, "{what}: major GCs");
    assert_eq!(a.gc.rdds_migrated, b.gc.rdds_migrated, "{what}: migrations");
    assert_eq!(
        a.heap.allocated_bytes, b.heap.allocated_bytes,
        "{what}: allocation"
    );
    assert_eq!(a.device_bytes, b.device_bytes, "{what}: traffic");
    assert_eq!(a.monitored_calls, b.monitored_calls, "{what}: monitoring");
}

#[test]
fn repeated_runs_are_bit_identical() {
    for id in [
        WorkloadId::Pr,
        WorkloadId::Cc,
        WorkloadId::Km,
        WorkloadId::Tc,
    ] {
        for mode in [
            MemoryMode::Panthera,
            MemoryMode::Unmanaged,
            MemoryMode::KingsguardWrites,
        ] {
            let a = run_once(id, mode, 3);
            let b = run_once(id, mode, 3);
            assert_identical(&a, &b, &format!("{id}/{mode}"));
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once(WorkloadId::Pr, MemoryMode::Panthera, 3);
    let b = run_once(WorkloadId::Pr, MemoryMode::Panthera, 4);
    assert_ne!(
        a.heap.allocated_bytes, b.heap.allocated_bytes,
        "different datasets should allocate differently"
    );
}

#[test]
fn interleaved_chunk_map_is_seeded() {
    use hybridmem::{DeviceKind, PhysicalLayout};
    let map_of = |seed: u64| -> Vec<DeviceKind> {
        let mut l = PhysicalLayout::new();
        let base = l.add_interleaved("old", 64 << 20, 1 << 20, 1.0 / 3.0, seed);
        (0..64)
            .map(|i| l.device_of(base.offset(i * (1 << 20))))
            .collect()
    };
    assert_eq!(map_of(99), map_of(99), "same seed, same map");
    assert_ne!(map_of(99), map_of(100), "different seed, different map");
}
