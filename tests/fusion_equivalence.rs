//! Fused narrow-stage execution is an observational no-op: for every
//! workload, running with [`EngineConfig::fuse_narrow`] on and off yields
//! identical action results AND a bit-identical simulated report — same
//! clock, same energy, same GC counts, same allocation totals.
//!
//! This is the guard for the zero-copy pipeline rework: fusion changes
//! *host* execution (no intermediate `Vec<Payload>` per narrow stage) but
//! must not change anything the simulator can observe, because the fused
//! path replays the exact per-stage charge sequence the stage-at-a-time
//! interpreter would have issued.

use panthera::{MemoryMode, RunBuilder, RunSummary, SystemConfig, SIM_GB};
use proptest::prelude::*;
use sparklet::{ActionResult, EngineConfig};
use workloads::{build_workload, WorkloadId};

fn run_once(id: WorkloadId, mode: MemoryMode, seed: u64, fuse: bool) -> RunSummary {
    let w = build_workload(id, 0.08, seed);
    let cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    let ecfg = EngineConfig {
        fuse_narrow: fuse,
        ..EngineConfig::default()
    };
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .engine(ecfg)
        .run()
        .expect("valid configuration")
}

fn assert_equivalent(id: WorkloadId, mode: MemoryMode, seed: u64) {
    let fused = run_once(id, mode, seed, true);
    let plain = run_once(id, mode, seed, false);
    let (fused_rep, plain_rep) = (&fused.report, &plain.report);
    let what = format!("{id}/{mode}/seed{seed}");

    // Observable program results: same actions, same values.
    assert_eq!(
        fused.results.len(),
        plain.results.len(),
        "{what}: action count"
    );
    for ((fv, fr), (pv, pr)) in fused.results.iter().zip(plain.results.iter()) {
        assert_eq!(fv, pv, "{what}: action order");
        assert_action_eq(fr, pr, &format!("{what}: {fv}"));
    }

    // Simulated physics: bit-identical.
    assert_eq!(
        fused_rep.elapsed_s.to_bits(),
        plain_rep.elapsed_s.to_bits(),
        "{what}: elapsed"
    );
    assert_eq!(
        fused_rep.mutator_s.to_bits(),
        plain_rep.mutator_s.to_bits(),
        "{what}: mutator"
    );
    assert_eq!(
        fused_rep.energy_j().to_bits(),
        plain_rep.energy_j().to_bits(),
        "{what}: energy"
    );
    assert_eq!(
        fused_rep.gc.minor_count, plain_rep.gc.minor_count,
        "{what}: minor GCs"
    );
    assert_eq!(
        fused_rep.gc.major_count, plain_rep.gc.major_count,
        "{what}: major GCs"
    );
    assert_eq!(
        fused_rep.heap.allocated_bytes, plain_rep.heap.allocated_bytes,
        "{what}: allocation"
    );
    assert_eq!(
        fused_rep.device_bytes, plain_rep.device_bytes,
        "{what}: traffic"
    );
}

/// ActionResult comparison that treats floats bit-exactly (NaN-safe).
fn assert_action_eq(a: &ActionResult, b: &ActionResult, what: &str) {
    match (a, b) {
        (ActionResult::Count(x), ActionResult::Count(y)) => {
            assert_eq!(x, y, "{what}: count");
        }
        _ => assert_eq!(a, b, "{what}: result"),
    }
}

#[test]
fn fusion_is_invisible_on_every_workload() {
    for id in WorkloadId::ALL {
        assert_equivalent(id, MemoryMode::Panthera, 7);
    }
}

#[test]
fn fusion_is_invisible_across_memory_modes() {
    for mode in [
        MemoryMode::Unmanaged,
        MemoryMode::KingsguardWrites,
        MemoryMode::Panthera,
    ] {
        assert_equivalent(WorkloadId::Pr, mode, 11);
        assert_equivalent(WorkloadId::Km, mode, 11);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds: fused and unfused stay equivalent on the workloads
    /// with the longest narrow chains.
    #[test]
    fn fusion_is_invisible_under_random_seeds(seed in 0u64..1_000) {
        assert_equivalent(WorkloadId::Pr, MemoryMode::Panthera, seed);
        assert_equivalent(WorkloadId::Tc, MemoryMode::Unmanaged, seed);
    }
}
