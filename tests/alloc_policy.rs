//! Table 1 as executable assertions: initial and final space for every
//! (tag, object type) combination under Panthera's policies.

use gc::{GcCoordinator, PantheraPolicy};
use hybridmem::MemorySystemConfig;
use mheap::{Heap, HeapConfig, MemTag, ObjId, ObjKind, Payload, RootSet, SpaceId};

struct Fixture {
    heap: Heap,
    gc: GcCoordinator,
    roots: RootSet,
}

impl Fixture {
    fn new() -> Self {
        let heap = Heap::new(
            HeapConfig::panthera(4 << 20, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(4 << 20, 8 << 20),
        )
        .expect("valid config");
        Fixture {
            heap,
            gc: GcCoordinator::new(Box::new(PantheraPolicy::default())),
            roots: RootSet::new(),
        }
    }

    /// Build one RDD structure (top + array + one tuple) with `tag`.
    fn rdd(&mut self, tag: MemTag) -> (ObjId, ObjId, ObjId) {
        let array = self
            .gc
            .alloc_rdd_array(&mut self.heap, &self.roots, 1, 512, tag);
        let top = self.gc.alloc_young(
            &mut self.heap,
            &self.roots,
            ObjKind::RddTop { rdd_id: 1 },
            tag,
            vec![array],
            Payload::Unit,
        );
        let tuple = self.gc.alloc_young(
            &mut self.heap,
            &self.roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(7),
        );
        self.heap.push_ref(array, tuple);
        self.roots.push(top);
        (top, array, tuple)
    }

    fn settle(&mut self) {
        for _ in 0..4 {
            self.gc.minor_gc(&mut self.heap, &self.roots);
        }
    }

    fn dram(&self) -> SpaceId {
        SpaceId::Old(self.heap.old_dram().unwrap())
    }

    fn nvm(&self) -> SpaceId {
        SpaceId::Old(self.heap.old_nvm().unwrap())
    }
}

#[test]
fn dram_tag_row() {
    let mut f = Fixture::new();
    let (top, array, tuple) = f.rdd(MemTag::Dram);
    // Initial: top young, array pretenured DRAM, data young.
    assert!(f.heap.obj(top).space.is_young());
    assert_eq!(f.heap.obj(array).space, f.dram());
    assert!(f.heap.obj(tuple).space.is_young());
    f.settle();
    // Final: everything in DRAM of old gen.
    assert_eq!(f.heap.obj(top).space, f.dram());
    assert_eq!(f.heap.obj(array).space, f.dram());
    assert_eq!(f.heap.obj(tuple).space, f.dram());
    assert_eq!(
        f.heap.obj(tuple).tag,
        MemTag::Dram,
        "tag propagated to data"
    );
}

#[test]
fn nvm_tag_row() {
    let mut f = Fixture::new();
    let (top, array, tuple) = f.rdd(MemTag::Nvm);
    assert!(f.heap.obj(top).space.is_young());
    assert_eq!(f.heap.obj(array).space, f.nvm());
    assert!(f.heap.obj(tuple).space.is_young());
    f.settle();
    assert_eq!(f.heap.obj(top).space, f.nvm());
    assert_eq!(f.heap.obj(array).space, f.nvm());
    assert_eq!(f.heap.obj(tuple).space, f.nvm());
}

#[test]
fn untagged_row() {
    let mut f = Fixture::new();
    let (top, array, tuple) = f.rdd(MemTag::None);
    // Initial: everything young (the array too — no wait-state match).
    assert!(f.heap.obj(top).space.is_young());
    assert!(f.heap.obj(array).space.is_young());
    assert!(f.heap.obj(tuple).space.is_young());
    f.settle();
    // Final: long-lived untagged objects default to the NVM space.
    assert_eq!(f.heap.obj(top).space, f.nvm());
    assert_eq!(f.heap.obj(array).space, f.nvm());
    assert_eq!(f.heap.obj(tuple).space, f.nvm());
}

#[test]
fn short_lived_untagged_objects_die_young() {
    let mut f = Fixture::new();
    let tuple = f.gc.alloc_young(
        &mut f.heap,
        &f.roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![],
        Payload::Long(1),
    );
    f.gc.minor_gc(&mut f.heap, &f.roots);
    assert!(
        !f.heap.is_live(tuple),
        "unreferenced intermediate data dies in eden"
    );
}
