//! The observability layer's tier-1 contracts:
//!
//! * events observe, never charge — attaching sinks changes no field of
//!   the `RunReport` (bit-identical determinism is preserved);
//! * event timestamps are monotone in simulated time;
//! * a JSONL trace replays to the exact same aggregates as an in-process
//!   metrics sink;
//! * `Migration` events appear exactly when dynamic migration is on.

use panthera::obs::{replay, Event, JsonlSink, MetricsAggregator, Observer, RingBufferSink};
use panthera::{MemoryMode, RunBuilder, RunError, RunReport, SystemConfig, SIM_GB};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{build_workload, WorkloadId};

const SCALE: f64 = 0.12;
const SEED: u64 = 3;

fn config(mode: MemoryMode) -> SystemConfig {
    SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0)
}

fn run_with(id: WorkloadId, cfg: &SystemConfig) -> RunReport {
    let w = build_workload(id, SCALE, SEED);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg.clone())
        .run()
        .expect("valid configuration")
        .report
}

/// Run with a fresh ring sink attached; return the report and the sink.
fn run_traced(id: WorkloadId, mode: MemoryMode) -> (RunReport, Rc<RefCell<RingBufferSink>>) {
    let ring = Rc::new(RefCell::new(RingBufferSink::new(1 << 20)));
    let mut cfg = config(mode);
    cfg.observer = Observer::with_sink(ring.clone());
    let report = run_with(id, &cfg);
    (report, ring)
}

#[test]
fn ring_sink_changes_no_report_field() {
    for mode in [MemoryMode::Panthera, MemoryMode::Unmanaged] {
        let bare = run_with(WorkloadId::Pr, &config(mode));
        let (traced, ring) = run_traced(WorkloadId::Pr, mode);
        assert!(
            ring.borrow().total_seen() > 0,
            "{mode}: the traced run must actually observe events"
        );
        assert_eq!(
            bare.elapsed_s.to_bits(),
            traced.elapsed_s.to_bits(),
            "{mode}: elapsed"
        );
        assert_eq!(
            bare.mutator_s.to_bits(),
            traced.mutator_s.to_bits(),
            "{mode}: mutator"
        );
        assert_eq!(
            bare.minor_gc_s.to_bits(),
            traced.minor_gc_s.to_bits(),
            "{mode}: minor GC time"
        );
        assert_eq!(
            bare.major_gc_s.to_bits(),
            traced.major_gc_s.to_bits(),
            "{mode}: major GC time"
        );
        assert_eq!(
            bare.energy_j().to_bits(),
            traced.energy_j().to_bits(),
            "{mode}: energy"
        );
        assert_eq!(bare.gc.minor_count, traced.gc.minor_count, "{mode}");
        assert_eq!(bare.gc.major_count, traced.gc.major_count, "{mode}");
        assert_eq!(bare.gc.rdds_migrated, traced.gc.rdds_migrated, "{mode}");
        assert_eq!(
            bare.gc.total_promotions(),
            traced.gc.total_promotions(),
            "{mode}"
        );
        assert_eq!(
            bare.heap.allocated_bytes, traced.heap.allocated_bytes,
            "{mode}"
        );
        assert_eq!(bare.device_bytes, traced.device_bytes, "{mode}");
        assert_eq!(bare.monitored_calls, traced.monitored_calls, "{mode}");
    }
}

#[test]
fn event_times_are_monotone() {
    let (_, ring) = run_traced(WorkloadId::Pr, MemoryMode::Panthera);
    let ring = ring.borrow();
    assert!(ring.total_seen() > 0);
    assert_eq!(
        ring.total_seen(),
        ring.len() as u64,
        "ring must be large enough to keep every event for this check"
    );
    let mut prev = f64::NEG_INFINITY;
    for (t, e) in ring.events() {
        assert!(
            *t >= prev,
            "event {e:?} at t={t} precedes its predecessor at t={prev}"
        );
        prev = *t;
    }
}

#[test]
fn event_stream_matches_report_counts() {
    let (report, ring) = run_traced(WorkloadId::Pr, MemoryMode::Panthera);
    let ring = ring.borrow();
    let count = |f: &dyn Fn(&Event) -> bool| ring.events().filter(|(_, e)| f(e)).count() as u64;
    assert_eq!(
        count(&|e| matches!(e, Event::MinorGcEnd { .. })),
        report.gc.minor_count,
        "one MinorGcEnd per minor collection"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::MajorGcEnd { .. })),
        report.gc.major_count,
        "one MajorGcEnd per major collection"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::Migration { .. })),
        report.gc.rdds_migrated,
        "one Migration per migrated RDD array"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::Promotion { .. })),
        report.gc.total_promotions(),
        "one Promotion per promoted object"
    );
    // Each logical shuffle charges spill traffic more than once (map-side
    // write and reduce-side read), so the event count is a superset.
    let spills = count(&|e| matches!(e, Event::ShuffleSpill { .. }));
    assert!(
        spills >= report.exec.shuffles,
        "at least one ShuffleSpill per shuffle ({spills} events, {} shuffles)",
        report.exec.shuffles
    );
    assert_eq!(
        spills > 0,
        report.exec.shuffles > 0,
        "ShuffleSpill events appear exactly when shuffles happen"
    );
    // Stage events pair up.
    assert_eq!(
        count(&|e| matches!(e, Event::StageStart { .. })),
        count(&|e| matches!(e, Event::StageEnd { .. })),
    );
}

#[test]
fn migrations_require_dynamic_migration() {
    // PageRank only migrates when the heap is tight enough that major
    // collections see stale placements: scale 0.2 on an 8 GB heap does.
    let run_pr = |dynamic: bool, ring: Rc<RefCell<RingBufferSink>>| {
        let w = build_workload(WorkloadId::Pr, 0.2, SEED);
        let mut cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
        cfg.dynamic_migration = dynamic;
        cfg.observer = Observer::with_sink(ring);
        RunBuilder::new(&w.program, w.fns, w.data)
            .config(cfg)
            .run()
            .expect("valid configuration")
            .report
    };

    let ring_on = Rc::new(RefCell::new(RingBufferSink::new(1 << 20)));
    let report_on = run_pr(true, ring_on.clone());
    assert!(
        report_on.gc.rdds_migrated >= 1,
        "PageRank under Panthera must migrate at least one RDD at this scale"
    );
    assert!(
        ring_on
            .borrow()
            .events()
            .any(|(_, e)| matches!(e, Event::Migration { .. })),
        "migrations must surface as events"
    );

    let ring_off = Rc::new(RefCell::new(RingBufferSink::new(1 << 20)));
    let report_off = run_pr(false, ring_off.clone());
    assert_eq!(report_off.gc.rdds_migrated, 0);
    assert!(
        !ring_off
            .borrow()
            .events()
            .any(|(_, e)| matches!(e, Event::Migration { .. })),
        "no Migration events when dynamic migration is disabled"
    );
}

#[test]
fn jsonl_round_trip_reproduces_aggregates() {
    // Live pipeline: events go to a metrics aggregator and a JSONL sink.
    let metrics = Rc::new(RefCell::new(MetricsAggregator::new()));
    let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    let observer = Observer::with_sink(metrics.clone());
    observer.attach(jsonl.clone());
    let mut cfg = config(MemoryMode::Panthera);
    cfg.observer = observer;
    run_with(WorkloadId::Pr, &cfg);

    let live = metrics.borrow();
    assert!(live.events_seen() > 0);
    assert_eq!(
        jsonl.borrow().lines_written(),
        live.events_seen(),
        "one JSONL line per event"
    );

    // Replay the written trace into a fresh aggregator. The config's
    // observer still holds a reference to the sink, so drop it first.
    drop(cfg);
    let bytes = Rc::try_unwrap(jsonl)
        .expect("observer dropped with the config")
        .into_inner()
        .into_inner();
    let mut replayed = MetricsAggregator::new();
    let n = replay(std::io::Cursor::new(bytes), &mut replayed).expect("trace must be well-formed");
    assert_eq!(n, live.events_seen());
    assert_eq!(
        replayed.to_json().to_compact(),
        live.to_json().to_compact(),
        "replayed aggregates must be identical to the live sink's"
    );
    assert!(replayed.minor_pauses().count() > 0);
}

#[test]
fn invalid_config_is_an_error_not_a_panic() {
    let w = build_workload(WorkloadId::Pr, 0.02, SEED);
    // A DRAM ratio of zero cannot hold the nursery.
    let cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 0.0);
    assert!(cfg.validate().is_err());
    let err = RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect_err("zero DRAM must be rejected");
    let RunError::Config(config_err) = err else {
        panic!("zero DRAM should surface as RunError::Config, got {err}");
    };
    assert!(!config_err.message().is_empty());
}
