//! Cross-crate heap-verification contract (DESIGN.md §7): with
//! [`SystemConfig::verify_heap`] on, every workload on every memory mode
//! runs every minor/major GC entry and exit through the full invariant
//! set with zero violations — and the verifier observes, never charges,
//! so the report is bit-identical to an unverified run.

use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use workloads::{build_workload, WorkloadId};

const SCALE: f64 = 0.1;
const SEED: u64 = 5;

fn run_once(id: WorkloadId, mode: MemoryMode, verify: bool) -> RunReport {
    let w = build_workload(id, SCALE, SEED);
    let mut cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    cfg.verify_heap = verify;
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration")
        .report
}

/// A verified run completing at all is the invariant check: any
/// violation panics with the typed `VerifyError`. Every mode exercises a
/// different old-generation layout (unified DRAM, interleaved, unified
/// NVM, split with write rationing, split with semantic placement).
#[test]
fn all_modes_pass_verification() {
    for mode in MemoryMode::ALL {
        let report = run_once(WorkloadId::Pr, mode, true);
        assert!(report.gc.minor_count > 0, "{mode}: workload must collect");
    }
}

/// The GC-heaviest workloads under the two split-old-generation modes,
/// where promotion fallbacks, write rationing, and dynamic migration all
/// interact with the card table.
#[test]
fn split_generation_workloads_pass_verification() {
    for id in [WorkloadId::Tc, WorkloadId::Km, WorkloadId::Cc] {
        for mode in [MemoryMode::KingsguardWrites, MemoryMode::Panthera] {
            run_once(id, mode, true);
        }
    }
}

/// Verify-never-charge: enabling verification changes nothing the
/// simulator can observe.
#[test]
fn verification_does_not_perturb_the_report() {
    for mode in [MemoryMode::Unmanaged, MemoryMode::Panthera] {
        let bare = run_once(WorkloadId::Pr, mode, false);
        let verified = run_once(WorkloadId::Pr, mode, true);
        assert_eq!(
            bare.to_json().to_compact(),
            verified.to_json().to_compact(),
            "{mode}: verified run must be bit-identical"
        );
    }
}
