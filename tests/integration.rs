//! Cross-crate integration: full workloads through analysis, engine, GC,
//! heap, and memory model, checking end-to-end invariants.

use panthera::{MemoryMode, RunBuilder, RunSummary, SystemConfig, SIM_GB};
use workloads::{build_workload, WorkloadId};

const SCALE: f64 = 0.15;

fn run_cfg(id: WorkloadId, cfg: SystemConfig) -> RunSummary {
    let w = build_workload(id, SCALE, 11);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration")
}

fn run(id: WorkloadId, mode: MemoryMode) -> RunSummary {
    run_cfg(id, SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0))
}

fn run_report(id: WorkloadId, mode: MemoryMode) -> panthera::RunReport {
    run(id, mode).report
}

#[test]
fn every_workload_runs_under_every_mode() {
    for id in WorkloadId::ALL {
        for mode in MemoryMode::ALL {
            let r = run(id, mode);
            assert!(r.report.elapsed_s > 0.0, "{id}/{mode}: no time elapsed");
            assert!(!r.results.is_empty(), "{id}/{mode}: no action results");
            assert!(
                r.report.exec.records_streamed > 0,
                "{id}/{mode}: nothing streamed"
            );
        }
    }
}

#[test]
fn results_are_mode_independent() {
    // Memory management must never change computed answers.
    for id in WorkloadId::ALL {
        let base = run(id, MemoryMode::DramOnly);
        for mode in [
            MemoryMode::Unmanaged,
            MemoryMode::Panthera,
            MemoryMode::KingsguardWrites,
        ] {
            let other = run(id, mode);
            assert_eq!(
                base.results, other.results,
                "{id}: {mode} changed the computed results"
            );
        }
    }
}

#[test]
fn phase_times_sum_to_elapsed() {
    for mode in MemoryMode::ALL {
        let r = run_report(WorkloadId::Pr, mode);
        let sum = r.mutator_s + r.minor_gc_s + r.major_gc_s;
        assert!(
            (sum - r.elapsed_s).abs() < 1e-9,
            "{mode}: phases {sum} != elapsed {}",
            r.elapsed_s
        );
    }
}

#[test]
fn dram_only_never_touches_nvm() {
    let r = run_report(WorkloadId::Cc, MemoryMode::DramOnly);
    assert_eq!(r.device_bytes[1], 0, "DRAM-only moved NVM bytes");
    assert_eq!(r.energy.nvm_dynamic_j, 0.0);
    assert_eq!(r.energy.nvm_static_j, 0.0, "no NVM installed");
}

#[test]
fn hybrid_modes_use_both_devices() {
    for mode in [
        MemoryMode::Unmanaged,
        MemoryMode::Panthera,
        MemoryMode::KingsguardNursery,
    ] {
        let r = run_report(WorkloadId::Pr, mode);
        assert!(r.device_bytes[0] > 0, "{mode}: no DRAM traffic");
        assert!(r.device_bytes[1] > 0, "{mode}: no NVM traffic");
    }
}

#[test]
fn panthera_monitors_baselines_do_not() {
    let pan = run_report(WorkloadId::Cc, MemoryMode::Panthera);
    assert!(pan.monitored_calls > 0);
    for mode in [
        MemoryMode::DramOnly,
        MemoryMode::Unmanaged,
        MemoryMode::KingsguardNursery,
    ] {
        let r = run_report(WorkloadId::Cc, mode);
        assert_eq!(r.monitored_calls, 0, "{mode} should not monitor");
    }
}

#[test]
fn gc_actually_collects_garbage() {
    let r = run_report(WorkloadId::Pr, MemoryMode::Panthera);
    assert!(r.gc.minor_count > 0, "no minor GCs under memory pressure");
    assert!(
        r.gc.young_freed > 0,
        "streaming garbage was never reclaimed"
    );
    assert!(
        r.heap.young_allocs > 1_000,
        "workload too small to be meaningful"
    );
}

#[test]
fn kingsguard_writes_performs_write_migration() {
    let r = run_report(WorkloadId::Pr, MemoryMode::KingsguardWrites);
    assert!(r.gc.write_migrations > 0, "KW never migrated anything");
}

#[test]
fn bandwidth_traces_cover_the_run() {
    let r = run_report(WorkloadId::Cc, MemoryMode::Panthera);
    let windows = r.traffic.windows();
    assert!(!windows.is_empty());
    let total: u64 = windows.iter().map(|w| w.total()).sum();
    assert_eq!(total, r.device_bytes[0] + r.device_bytes[1]);
}

#[test]
fn energy_grows_with_installed_dram() {
    let r64 = run_cfg(
        WorkloadId::Km,
        SystemConfig::new(MemoryMode::DramOnly, 16 * SIM_GB, 1.0),
    )
    .report;
    let r120 = run_cfg(
        WorkloadId::Km,
        SystemConfig::new(MemoryMode::DramOnly, 32 * SIM_GB, 1.0),
    )
    .report;
    assert!(
        r120.energy.dram_static_j > r64.energy.dram_static_j,
        "double the DRAM must burn more background energy"
    );
}
