//! The paper's headline claims as coarse, scale-robust assertions. These
//! run at a reduced dataset scale, so thresholds are loose — the precise
//! numbers live in EXPERIMENTS.md; these tests pin the *orderings*.

use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use workloads::{build_workload, WorkloadId};

const SCALE: f64 = 0.5;

fn run_cfg(id: WorkloadId, cfg: SystemConfig) -> RunReport {
    let w = build_workload(id, SCALE, 7);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration")
        .report
}

fn run(id: WorkloadId, mode: MemoryMode) -> RunReport {
    run_cfg(id, SystemConfig::new(mode, 32 * SIM_GB, 1.0 / 3.0))
}

/// Panthera's elapsed time stays close to DRAM-only (paper: 1-4% overhead)
/// while unmanaged pays noticeably more (paper: ~21%).
#[test]
fn panthera_time_tracks_dram_only() {
    let mut pan_sum = 0.0;
    let mut unm_sum = 0.0;
    for id in [
        WorkloadId::Pr,
        WorkloadId::Km,
        WorkloadId::Cc,
        WorkloadId::Bc,
    ] {
        let base = run(id, MemoryMode::DramOnly);
        pan_sum += run(id, MemoryMode::Panthera).time_vs(&base);
        unm_sum += run(id, MemoryMode::Unmanaged).time_vs(&base);
    }
    let (pan, unm) = (pan_sum / 4.0, unm_sum / 4.0);
    assert!(
        pan < 1.10,
        "panthera average time overhead too high: {pan:.3}"
    );
    assert!(
        unm > pan + 0.03,
        "unmanaged ({unm:.3}) should clearly trail panthera ({pan:.3})"
    );
}

/// Hybrid memory saves a large fraction of memory energy (paper: 37-52%).
#[test]
fn panthera_saves_energy() {
    for id in [WorkloadId::Km, WorkloadId::Cc] {
        let base = run(id, MemoryMode::DramOnly);
        let pan = run(id, MemoryMode::Panthera);
        let ratio = pan.energy_vs(&base);
        assert!(
            (0.25..0.85).contains(&ratio),
            "{id}: energy ratio {ratio:.2} outside the plausible band"
        );
    }
}

/// The Kingsguard baselines trail both Panthera and unmanaged (Section 5.2).
#[test]
fn kingsguard_baselines_trail() {
    let base = run(WorkloadId::Cc, MemoryMode::DramOnly);
    let pan = run(WorkloadId::Cc, MemoryMode::Panthera).time_vs(&base);
    let kn = run(WorkloadId::Cc, MemoryMode::KingsguardNursery).time_vs(&base);
    let kw = run(WorkloadId::Cc, MemoryMode::KingsguardWrites).time_vs(&base);
    assert!(kn > pan, "KN ({kn:.3}) should trail panthera ({pan:.3})");
    assert!(kw > pan, "KW ({kw:.3}) should trail panthera ({pan:.3})");
}

/// More DRAM helps Panthera (Section 5.3: sensitive to the DRAM ratio).
#[test]
fn panthera_improves_with_dram_ratio() {
    let id = WorkloadId::Km;
    let r_quarter = run_cfg(
        id,
        SystemConfig::new(MemoryMode::Panthera, 32 * SIM_GB, 0.25),
    );
    let r_half = run_cfg(
        id,
        SystemConfig::new(MemoryMode::Panthera, 32 * SIM_GB, 0.5),
    );
    assert!(
        r_half.elapsed_s <= r_quarter.elapsed_s * 1.02,
        "more DRAM should not hurt: 1/2 ratio {:.4}s vs 1/4 ratio {:.4}s",
        r_half.elapsed_s,
        r_quarter.elapsed_s
    );
}

/// Card padding and eager promotion both reduce GC time (Sections 4.2.2-3).
#[test]
fn optimizations_reduce_gc_time() {
    let id = WorkloadId::Pr;
    let full = run_cfg(
        id,
        SystemConfig::new(MemoryMode::Panthera, 32 * SIM_GB, 1.0 / 3.0),
    );
    let no_pad = {
        let mut cfg = SystemConfig::new(MemoryMode::Panthera, 32 * SIM_GB, 1.0 / 3.0);
        cfg.card_padding = false;
        run_cfg(id, cfg)
    };
    let no_eager = {
        let mut cfg = SystemConfig::new(MemoryMode::Panthera, 32 * SIM_GB, 1.0 / 3.0);
        cfg.eager_promotion = false;
        run_cfg(id, cfg)
    };
    assert!(no_pad.gc_s() > full.gc_s(), "padding off must cost GC time");
    assert!(
        no_eager.gc_s() > full.gc_s(),
        "eager promotion off must cost GC time"
    );
    assert!(
        no_pad.gc.stuck_card_rescans > 0,
        "pathology should appear without padding"
    );
    assert_eq!(
        full.gc.stuck_card_rescans, 0,
        "padding eliminates shared cards"
    );
}

/// Table 5's shape: only the GraphX workloads trigger dynamic migration.
#[test]
fn only_graphx_migrates() {
    let cc = run(WorkloadId::Cc, MemoryMode::Panthera);
    assert!(
        cc.gc.rdds_migrated >= 1,
        "CC should demote stale graph RDDs"
    );
    for id in [WorkloadId::Km, WorkloadId::Bc] {
        let r = run(id, MemoryMode::Panthera);
        assert_eq!(r.gc.rdds_migrated, 0, "{id} should not migrate");
    }
}
