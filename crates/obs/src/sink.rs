//! Event sinks and the [`Observer`] handle that fans events out to them.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::event::Event;
use crate::json::Json;

/// A consumer of structured events.
///
/// Sinks receive every event exactly once, in emission order, together
/// with the simulated-clock timestamp (nanoseconds) at the emit point.
/// Sinks must not feed anything back into the simulation: events
/// observe, never charge.
pub trait EventSink {
    /// Handle one event. `t_ns` is the simulated time of the emit point.
    fn on_event(&mut self, t_ns: f64, event: &Event);

    /// Handle one event with its emitting executor's id (0 is the
    /// single-runtime executor). The default forwards to
    /// [`EventSink::on_event`], dropping the id, so sinks that predate
    /// the cluster runtime keep working unchanged; executor-aware sinks
    /// override this.
    fn on_event_from(&mut self, t_ns: f64, exec: u16, event: &Event) {
        let _ = exec;
        self.on_event(t_ns, event);
    }
}

type SharedSink = Rc<RefCell<dyn EventSink>>;

/// A cheap, cloneable handle through which the runtime emits events.
///
/// The default handle is *disabled*: [`Observer::emit`] is a single
/// branch on an `Option` and returns immediately, so threading the
/// handle through hot paths costs nothing measurable when no sink is
/// attached. Cloning a handle shares its sink list, which is how one
/// observer installed in `SystemConfig` reaches every crate layer.
#[derive(Clone, Default)]
pub struct Observer {
    sinks: Option<Rc<RefCell<Vec<SharedSink>>>>,
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sinks {
            None => write!(f, "Observer(disabled)"),
            Some(s) => write!(f, "Observer({} sinks)", s.borrow().len()),
        }
    }
}

impl Observer {
    /// A disabled handle (same as `Observer::default()`): emits are no-ops.
    pub fn disabled() -> Observer {
        Observer::default()
    }

    /// An enabled handle with an empty sink list.
    pub fn enabled_empty() -> Observer {
        Observer {
            sinks: Some(Rc::new(RefCell::new(Vec::new()))),
        }
    }

    /// Build an enabled handle with one sink attached. Keep your own
    /// clone of the `Rc` to read the sink's contents after the run.
    pub fn with_sink(sink: Rc<RefCell<dyn EventSink>>) -> Observer {
        let obs = Observer::enabled_empty();
        obs.attach(sink);
        obs
    }

    /// Attach another sink. No-op on a disabled handle.
    pub fn attach(&self, sink: Rc<RefCell<dyn EventSink>>) {
        if let Some(sinks) = &self.sinks {
            sinks.borrow_mut().push(sink);
        }
    }

    /// Whether any sink could receive events. Emit sites use this to
    /// skip argument construction that is itself nontrivial.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sinks.is_some()
    }

    /// Deliver one event to every attached sink. A single branch when
    /// disabled. Equivalent to [`Observer::emit_from`] with executor 0.
    #[inline]
    pub fn emit(&self, t_ns: f64, event: &Event) {
        self.emit_from(t_ns, 0, event);
    }

    /// Deliver one event tagged with its emitting executor's id (the
    /// cluster runtime re-emits each executor's buffered events through
    /// this; everything else uses [`Observer::emit`], i.e. executor 0).
    #[inline]
    pub fn emit_from(&self, t_ns: f64, exec: u16, event: &Event) {
        if let Some(sinks) = &self.sinks {
            for sink in sinks.borrow().iter() {
                sink.borrow_mut().on_event_from(t_ns, exec, event);
            }
        }
    }
}

/// A bounded in-memory sink for tests: keeps the most recent
/// `capacity` events.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<(f64, Event)>,
    seen: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            seen: 0,
        }
    }

    /// The retained `(timestamp, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(f64, Event)> {
        self.events.iter()
    }

    /// Total events observed, including any evicted from the ring.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for RingBufferSink {
    fn on_event(&mut self, t_ns: f64, event: &Event) {
        self.seen += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back((t_ns, event.clone()));
    }
}

/// A sink that writes one JSON object per event, one per line (JSONL).
///
/// The stream is replayable with [`replay`] / [`replay_path`]; a
/// written-then-replayed trace reproduces the exact event sequence,
/// timestamps bit-identical (floats are printed with shortest
/// round-trip formatting).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and write events to it, buffered.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: &Path) -> io::Result<JsonlSink<BufWriter<std::fs::File>>> {
        Ok(JsonlSink::new(BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flush the underlying writer and surface the first write error,
    /// if any occurred during the run (the `on_event` path cannot
    /// return errors, so they are deferred to here).
    ///
    /// # Errors
    ///
    /// The first deferred write error, or the flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }

    /// Consume the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn on_event(&mut self, t_ns: f64, event: &Event) {
        self.on_event_from(t_ns, 0, event);
    }

    fn on_event_from(&mut self, t_ns: f64, exec: u16, event: &Event) {
        if self.error.is_some() {
            return;
        }
        // Executor 0 writes no "exec" field, so non-cluster traces are
        // byte-identical to the pre-cluster format.
        let line = event.to_json_exec(t_ns, exec).to_compact();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

/// Replay a JSONL stream into a sink, returning the number of events
/// delivered.
///
/// # Errors
///
/// Reports the first I/O failure, unparsable line, or structurally
/// valid JSON that is not a known event (with its 1-based line number).
pub fn replay<R: BufRead>(reader: R, sink: &mut dyn EventSink) -> Result<u64, String> {
    let mut count = 0u64;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(&line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let (t, event) = Event::from_json(&json).map_err(|e| format!("line {}: {e}", idx + 1))?;
        // Cluster traces tag events with their executor; pre-cluster
        // traces carry no "exec" field and replay as executor 0.
        sink.on_event_from(t, Event::exec_of_json(&json), &event);
        count += 1;
    }
    Ok(count)
}

/// [`replay`] from a file path.
///
/// # Errors
///
/// Reports open failures and everything [`replay`] reports.
pub fn replay_path(path: &Path, sink: &mut dyn EventSink) -> Result<u64, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    replay(io::BufReader::new(file), sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CollectSink(Vec<(f64, Event)>);
    impl EventSink for CollectSink {
        fn on_event(&mut self, t_ns: f64, event: &Event) {
            self.0.push((t_ns, event.clone()));
        }
    }

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.enabled());
        obs.emit(1.0, &Event::MinorGcStart); // must not panic
        let sink = Rc::new(RefCell::new(RingBufferSink::new(4)));
        obs.attach(sink.clone());
        obs.emit(2.0, &Event::MinorGcStart);
        assert_eq!(sink.borrow().total_seen(), 0);
    }

    #[test]
    fn observer_fans_out_to_all_sinks_and_clones_share_them() {
        let a = Rc::new(RefCell::new(RingBufferSink::new(8)));
        let b = Rc::new(RefCell::new(RingBufferSink::new(8)));
        let obs = Observer::with_sink(a.clone());
        let clone = obs.clone();
        clone.attach(b.clone());
        obs.emit(5.0, &Event::ShuffleSpill { bytes: 1 });
        assert_eq!(a.borrow().total_seen(), 1);
        assert_eq!(b.borrow().total_seen(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBufferSink::new(2);
        for i in 0..5u64 {
            ring.on_event(i as f64, &Event::ShuffleSpill { bytes: i });
        }
        assert_eq!(ring.total_seen(), 5);
        let kept: Vec<u64> = ring
            .events()
            .map(|(_, e)| match e {
                Event::ShuffleSpill { bytes } => *bytes,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn jsonl_round_trip_reproduces_events_exactly() {
        let events = vec![
            (0.5, Event::MinorGcStart),
            (
                100.25,
                Event::Migration {
                    rdd: 3,
                    from: crate::event::Mem::Nvm,
                    to: crate::event::Mem::Dram,
                    bytes: 777,
                },
            ),
            (
                1e9 + 0.125,
                Event::MinorGcEnd {
                    pause_ns: 42.5,
                    moved: 1,
                    freed: 2,
                },
            ),
        ];
        let mut jsonl = JsonlSink::new(Vec::new());
        for (t, e) in &events {
            jsonl.on_event(*t, e);
        }
        assert_eq!(jsonl.lines_written(), 3);
        let bytes = jsonl.into_inner();
        let mut collected = CollectSink(Vec::new());
        let n = replay(io::Cursor::new(bytes), &mut collected).unwrap();
        assert_eq!(n, 3);
        assert_eq!(collected.0.len(), events.len());
        for ((t1, e1), (t2, e2)) in events.iter().zip(collected.0.iter()) {
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn executor_ids_survive_a_jsonl_round_trip() {
        struct ExecSink(Vec<(u16, Event)>);
        impl EventSink for ExecSink {
            fn on_event(&mut self, t_ns: f64, event: &Event) {
                self.on_event_from(t_ns, 0, event);
            }
            fn on_event_from(&mut self, _t_ns: f64, exec: u16, event: &Event) {
                self.0.push((exec, event.clone()));
            }
        }
        let mut jsonl = JsonlSink::new(Vec::new());
        jsonl.on_event_from(1.0, 0, &Event::MinorGcStart);
        jsonl.on_event_from(2.0, 3, &Event::ShuffleSpill { bytes: 7 });
        let bytes = jsonl.into_inner();
        let text = String::from_utf8(bytes.clone()).unwrap();
        // Executor 0's line is the pre-cluster format.
        assert!(!text.lines().next().unwrap().contains("exec"), "{text}");
        let mut sink = ExecSink(Vec::new());
        replay(io::Cursor::new(bytes), &mut sink).unwrap();
        assert_eq!(sink.0[0].0, 0);
        assert_eq!(sink.0[1].0, 3);
        assert_eq!(sink.0[1].1, Event::ShuffleSpill { bytes: 7 });
    }

    #[test]
    fn replay_rejects_malformed_lines() {
        let mut sink = CollectSink(Vec::new());
        let err = replay(io::Cursor::new(b"not json\n".to_vec()), &mut sink).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = replay(
            io::Cursor::new(b"{\"t\":1.0,\"ev\":\"nope\"}\n".to_vec()),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.contains("unknown event"), "{err}");
    }

    #[test]
    fn replay_reports_the_offending_line_number() {
        // Two good lines, then garbage: the error must name line 3, so a
        // user can jump straight to the bad record in a long trace.
        let trace = b"{\"t\":1.0,\"ev\":\"minor_gc_start\"}\n\
                      {\"t\":2.0,\"ev\":\"major_gc_start\"}\n\
                      {broken\n"
            .to_vec();
        let mut sink = CollectSink(Vec::new());
        let err = replay(io::Cursor::new(trace), &mut sink).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        // Parseable JSON that is not a known event also carries its line.
        let trace = b"{\"t\":1.0,\"ev\":\"minor_gc_start\"}\n\
                      {\"t\":2.0,\"ev\":\"warp_core_breach\"}\n"
            .to_vec();
        let err = replay(io::Cursor::new(trace), &mut CollectSink(Vec::new())).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("unknown event"), "{err}");
    }
}
