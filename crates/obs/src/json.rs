//! A minimal JSON value, writer, and parser.
//!
//! The workspace is fully offline (no serde), so serialization is
//! hand-rolled once here and shared by every crate that emits reports:
//! the [`crate::Event`] JSONL codec, [`crate::MetricsAggregator`]
//! aggregates, `RunReport::to_json`, and the bench harnesses'
//! `BENCH_*.json` files all build a [`Json`] tree and render it through
//! one code path.
//!
//! Two properties matter for the simulator's bit-identity guarantees:
//!
//! * unsigned integers round-trip exactly ([`Json::UInt`] is a `u64`, not
//!   a lossy `f64`);
//! * floats are written with Rust's shortest round-trip representation
//!   (`{:?}`), so `parse(write(x)) == x` bit-for-bit for finite values.

/// A JSON value. Object member order is preserved (and therefore
/// deterministic), which keeps rendered output stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    UInt(u64),
    /// A negative integer, kept exact.
    Int(i64),
    /// A float, written with shortest round-trip formatting.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (convenience for literals).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render compactly (no whitespace), e.g. for JSONL lines.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation, for human-readable report files.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // {:?} is Rust's shortest representation that parses
                    // back to the same f64 — exact round-trip.
                    out.push_str(&format!("{x:?}"));
                } else {
                    // JSON has no NaN/Infinity; none of the simulator's
                    // quantities produce them, but never emit invalid JSON.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Recursive-descent parser
// ----------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if !float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (we sliced from a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_integers() {
        let v = Json::UInt(u64::MAX);
        let parsed = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(parsed, v);
        let v = Json::Int(-42);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn round_trips_floats_bitwise() {
        for x in [0.1, 1e-300, 123456.789012345, 2.5e17, f64::MIN_POSITIVE] {
            let v = Json::Num(x);
            let back = Json::parse(&v.to_compact()).unwrap();
            match back {
                Json::Num(y) => assert_eq!(y.to_bits(), x.to_bits(), "{x}"),
                Json::UInt(y) => assert_eq!((y as f64).to_bits(), x.to_bits(), "{x}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_emit_null_and_round_trip() {
        // JSON has no NaN/Infinity lexemes: a raw `NaN` in the output
        // would make the whole trace unreplayable. Non-finite numbers
        // degrade to null, which parses back cleanly.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let line = Json::Num(x).to_compact();
            assert_eq!(line, "null", "{x}");
            assert_eq!(Json::parse(&line).unwrap(), Json::Null, "{x}");
        }
        // Same inside a structure, pretty or compact.
        let v = Json::obj(vec![("bad", Json::Num(f64::NAN)), ("ok", Json::Num(1.5))]);
        let parsed = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(parsed.get("bad"), Some(&Json::Null));
        assert_eq!(parsed.get("ok").and_then(Json::as_f64), Some(1.5));
        assert!(Json::parse(&v.to_pretty()).is_ok());
    }

    #[test]
    fn round_trips_structures_and_strings() {
        let v = Json::obj(vec![
            ("name", Json::Str("line\n\"quoted\"\\".into())),
            ("items", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("k", Json::UInt(7))])),
        ]);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![("a", Json::UInt(3)), ("b", Json::Num(1.5))]);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("c"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
