//! Structured event tracing and metrics aggregation for the Panthera
//! simulator.
//!
//! The runtime crates (`mheap`, `gc`, `hybridmem`, `sparklet`) emit
//! [`Event`]s through a shared [`Observer`] handle installed via
//! `SystemConfig::observer`. The default handle is disabled and every
//! emit is a single branch, so tracing costs nothing when unused.
//!
//! **Observe, never charge.** Emit points read the simulated clock but
//! never advance it, never touch the memory system, and never change
//! control flow: a run with sinks attached produces a bit-identical
//! `RunReport` to the same run without them. This is a tier-1
//! guarantee, enforced by `tests/observability.rs`.
//!
//! Three sinks are built in:
//! - [`RingBufferSink`] — bounded in-memory capture, for tests;
//! - [`JsonlSink`] — one JSON object per line, replayable with
//!   [`replay`] / [`replay_path`];
//! - [`MetricsAggregator`] — derives pause histograms, per-stage
//!   NVM-write ratios, and migration churn, and renders a summary table.
//!
//! ```
//! use obs::{Event, EventSink, MetricsAggregator, Observer, RingBufferSink};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let ring = Rc::new(RefCell::new(RingBufferSink::new(1024)));
//! let observer = Observer::with_sink(ring.clone());
//! // ... install `observer` in a SystemConfig and run; here, emit directly:
//! observer.emit(42.0, &Event::MinorGcStart);
//! assert_eq!(ring.borrow().total_seen(), 1);
//!
//! let mut metrics = MetricsAggregator::new();
//! for (t, e) in ring.borrow().events() {
//!     metrics.on_event(*t, e);
//! }
//! assert_eq!(metrics.events_seen(), 1);
//! ```

#![deny(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{AllocSpace, Event, JournalKind, Mem};
pub use json::Json;
pub use metrics::{ExecutorMetrics, MetricsAggregator, MigrationChurn, PauseHistogram, StageRow};
pub use sink::{replay, replay_path, EventSink, JsonlSink, Observer, RingBufferSink};
