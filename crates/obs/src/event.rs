//! The structured event vocabulary of the simulator.
//!
//! Events are *observations*: emitting one never charges simulated time,
//! energy, or traffic (see the crate docs for the observe-never-charge
//! rule). Each event is timestamped with the simulated clock's nanosecond
//! reading at the emit point; the timestamp travels next to the event (it
//! is passed to [`crate::EventSink::on_event`] and serialized as `"t"`),
//! not inside it, because this crate sits below the clock and must not
//! depend on it.

use crate::json::Json;

/// Which memory device an object lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mem {
    /// Fast, expensive, volatile DRAM.
    Dram,
    /// Slow, capacious non-volatile memory.
    Nvm,
}

impl Mem {
    fn label(self) -> &'static str {
        match self {
            Mem::Dram => "dram",
            Mem::Nvm => "nvm",
        }
    }

    fn from_label(s: &str) -> Option<Mem> {
        match s {
            "dram" => Some(Mem::Dram),
            "nvm" => Some(Mem::Nvm),
            _ => None,
        }
    }
}

/// Which heap space refused an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocSpace {
    /// The young generation's eden space.
    Eden,
    /// The DRAM part of a split old generation.
    OldDram,
    /// The NVM part of a split old generation.
    OldNvm,
    /// A unified or interleaved old space.
    Old,
}

impl AllocSpace {
    fn label(self) -> &'static str {
        match self {
            AllocSpace::Eden => "eden",
            AllocSpace::OldDram => "old_dram",
            AllocSpace::OldNvm => "old_nvm",
            AllocSpace::Old => "old",
        }
    }

    fn from_label(s: &str) -> Option<AllocSpace> {
        match s {
            "eden" => Some(AllocSpace::Eden),
            "old_dram" => Some(AllocSpace::OldDram),
            "old_nvm" => Some(AllocSpace::OldNvm),
            "old" => Some(AllocSpace::Old),
            _ => None,
        }
    }
}

/// Which durable operation a journal entry guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// A shuffle-gather deposit into the exchange.
    Shuffle,
    /// An action-gather deposit into the exchange.
    Action,
    /// A checkpoint save into the NVM store.
    Checkpoint,
}

impl JournalKind {
    fn label(self) -> &'static str {
        match self {
            JournalKind::Shuffle => "shuffle",
            JournalKind::Action => "action",
            JournalKind::Checkpoint => "checkpoint",
        }
    }

    fn from_label(s: &str) -> Option<JournalKind> {
        match s {
            "shuffle" => Some(JournalKind::Shuffle),
            "action" => Some(JournalKind::Action),
            "checkpoint" => Some(JournalKind::Checkpoint),
            _ => None,
        }
    }
}

/// One structured observation of the simulated runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A minor (young-generation) collection began.
    MinorGcStart,
    /// A minor collection finished.
    MinorGcEnd {
        /// Pause duration in simulated nanoseconds.
        pause_ns: f64,
        /// Objects copied to survivors or promoted this cycle.
        moved: u64,
        /// Young objects reclaimed this cycle.
        freed: u64,
    },
    /// A major (full-heap) collection began.
    MajorGcStart,
    /// A major collection finished.
    MajorGcEnd {
        /// Pause duration in simulated nanoseconds.
        pause_ns: f64,
        /// RDD arrays migrated between DRAM and NVM this cycle.
        migrated: u64,
        /// Old objects reclaimed this cycle.
        freed: u64,
    },
    /// A young object was promoted into the old generation.
    Promotion {
        /// Object size in bytes.
        bytes: u64,
        /// Device of the old space it landed on.
        to: Mem,
    },
    /// Dynamic re-assessment migrated an RDD array between devices
    /// (Section 5.5's "# RDDs migrated").
    Migration {
        /// The RDD whose backbone array moved.
        rdd: u32,
        /// Source device.
        from: Mem,
        /// Destination device.
        to: Mem,
        /// Array size in bytes.
        bytes: u64,
    },
    /// An engine evaluation (persist materialization or action) began.
    StageStart {
        /// Monotonically increasing evaluation sequence number.
        stage: u32,
        /// Cumulative DRAM write bytes at stage start.
        dram_write_bytes: u64,
        /// Cumulative NVM write bytes at stage start.
        nvm_write_bytes: u64,
    },
    /// An engine evaluation finished; paired with the matching
    /// [`Event::StageStart`] by `stage`. The cumulative write counters
    /// let an aggregator derive the per-stage NVM-write ratio.
    StageEnd {
        /// Sequence number of the evaluation that finished.
        stage: u32,
        /// Cumulative DRAM write bytes at stage end.
        dram_write_bytes: u64,
        /// Cumulative NVM write bytes at stage end.
        nvm_write_bytes: u64,
    },
    /// A shuffle wrote (and re-read) records through simulated disk files.
    ShuffleSpill {
        /// Record bytes spilled.
        bytes: u64,
    },
    /// One minor GC's dirty-card sweep, summarized.
    CardScan {
        /// Dirty cards scanned.
        cards: u64,
        /// Bytes read while scanning.
        bytes: u64,
        /// Full-array rescans forced by stuck (shared) cards.
        stuck: u64,
    },
    /// A space refused an allocation (the caller will collect and retry,
    /// fall back, or declare the experiment mis-sized).
    AllocFail {
        /// The space that was full.
        space: AllocSpace,
        /// Bytes requested.
        need: u64,
    },
    /// A heap verification pass found an invariant violation. Emitted
    /// just before the verifier aborts the run, so the trace records what
    /// was violated and where.
    VerifyFailure {
        /// Verification point label (`before_minor`, `after_major`, ...).
        point: String,
        /// Violated invariant label (`card_coverage`, `accounting`, ...).
        invariant: String,
        /// Full rendered violation, including object and space.
        detail: String,
    },
    /// An executor crashed (an injected fault fired at a statement
    /// barrier); its heap and un-checkpointed partitions are lost.
    ExecutorCrash {
        /// The statement barrier the crash fired at.
        barrier: u64,
    },
    /// A replacement executor began replaying the program to recover the
    /// crashed incarnation's partitions.
    RecoveryStart {
        /// 1-based restart attempt for this executor slot.
        attempt: u32,
    },
    /// Replay re-reached the crash barrier: the executor has rejoined the
    /// cluster with all of its partitions rebuilt.
    RecoveryEnd {
        /// The barrier index replay caught up to.
        barrier: u64,
        /// Virtual time spent recovering (crash → caught up).
        recovery_ns: f64,
    },
    /// An RDD's local partitions were snapshotted to durable NVM
    /// checkpoint storage (writes charged to the NVM device).
    CheckpointWrite {
        /// The checkpointed RDD instance.
        rdd: u32,
        /// Modelled snapshot bytes.
        bytes: u64,
    },
    /// A materialization was served from a durable NVM checkpoint instead
    /// of recomputing the RDD's lineage (reads charged to the NVM device).
    CheckpointRestore {
        /// The restored RDD instance.
        rdd: u32,
        /// Modelled snapshot bytes read back.
        bytes: u64,
    },
    /// A replayed executor re-issued a journaled durable operation whose
    /// entry was already committed: the digest matched the committed
    /// record and the operation was validated as a no-op.
    JournalNoop {
        /// Which durable operation was replayed.
        kind: JournalKind,
        /// The operation's journal key (rdd id, action seq, or
        /// checkpoint ordinal, per `kind`).
        key: u64,
    },
    /// Recovery found a journal entry left pending by a crash between
    /// `begin` and `commit` — a torn operation. The replay rolls it
    /// forward by performing the operation again.
    JournalTorn {
        /// Which durable operation was torn.
        kind: JournalKind,
        /// The operation's journal key.
        key: u64,
    },
    /// A cross-executor shuffle transfer took the colocated shared-region
    /// fast path: the bytes moved at memory bandwidth with zero serde
    /// (they are exactly the serde bytes avoided). Never emitted at
    /// `E=1`, where nothing crosses executors.
    ShuffleFastPath {
        /// Bytes that crossed executors through the shared region.
        bytes: u64,
    },
    /// A persisted RDD was stored into the off-heap H2 region (the GC
    /// neither traces nor card-marks it; writes charged to the tagged
    /// device).
    OffHeapAlloc {
        /// The persisted RDD instance.
        rdd: u32,
        /// Modelled block bytes.
        bytes: u64,
    },
    /// An off-heap block was released — its lineage-scheduled refcount
    /// reached zero (or an unpersist / end-of-run sweep reclaimed it).
    OffHeapFree {
        /// The freed RDD instance.
        rdd: u32,
        /// Modelled block bytes returned.
        bytes: u64,
    },
    /// A persisted RDD was stored into a lifetime-region bump arena (the
    /// GC neither traces, card-marks, nor promotes it; writes charged to
    /// the tagged device). The arena is freed wholesale when the lifetime
    /// schedule's refcount reaches zero.
    RegionAlloc {
        /// The persisted RDD instance.
        rdd: u32,
        /// Modelled arena bytes.
        bytes: u64,
    },
    /// An RDD-lifetime region arena was freed wholesale — its scheduled
    /// refcount reached zero (or an unpersist / end-of-run sweep
    /// reclaimed it).
    RegionFree {
        /// The freed RDD instance.
        rdd: u32,
        /// Modelled arena bytes returned.
        bytes: u64,
    },
    /// A stage-scratch region arena was reset wholesale at the end of its
    /// evaluation, releasing every streamed temporary bumped into it.
    RegionStageFree {
        /// Arena bytes released by the reset.
        bytes: u64,
    },
    /// A traffic-meter window closed (bandwidth watermark; Figure 8's
    /// series, live). Emitted when the first access of a *later* window
    /// arrives.
    TrafficWindow {
        /// Index of the completed window.
        window: u64,
        /// DRAM read bytes in the window.
        dram_read: u64,
        /// DRAM write bytes in the window.
        dram_write: u64,
        /// NVM read bytes in the window.
        nvm_read: u64,
        /// NVM write bytes in the window.
        nvm_write: u64,
    },
    /// A job entered a `panthera-jobs` service queue.
    JobSubmitted {
        /// Service-assigned job id (submission order).
        job: u32,
        /// The submitting tenant.
        tenant: u32,
    },
    /// A queued job was admitted and dispatched its first stage.
    JobStarted {
        /// The starting job.
        job: u32,
        /// Service-time nanoseconds the job waited in the queue.
        queued_ns: f64,
        /// DRAM budget bytes arbitrated to the job at start.
        dram_share: u64,
    },
    /// A runnable job was paused at a stage barrier because the fair-share
    /// scheduler dispatched another tenant's stage instead.
    JobPreempted {
        /// The paused job.
        job: u32,
        /// The stage index the job had just completed.
        stage: u32,
    },
    /// A job ran its last stage and left the service.
    JobFinished {
        /// The finished job.
        job: u32,
        /// Service-time nanoseconds from submission to finish.
        elapsed_ns: f64,
    },
    /// The runtime monitor observed one access to a persisted RDD (the
    /// Section 5.5 access-frequency counter ticking). This is the
    /// frequency export the online re-tagging policy consumes: unlike the
    /// GC-internal table, which resets at every major collection, an
    /// aggregator accumulating these events holds *cumulative* per-RDD
    /// counts, so batch-boundary deltas are well defined.
    RddCall {
        /// The accessed RDD instance.
        rdd: u32,
    },
    /// A streaming micro-batch began executing.
    BatchStart {
        /// 0-based batch sequence number.
        batch: u32,
    },
    /// A streaming micro-batch finished; paired with the matching
    /// [`Event::BatchStart`] by `batch`.
    BatchEnd {
        /// Sequence number of the batch that finished.
        batch: u32,
        /// Virtual time the batch took, start barrier to end barrier.
        latency_ns: f64,
    },
    /// The watermark advanced at a batch boundary: every window whose end
    /// falls at or before `event_time` is closed and its aggregate final.
    /// Batch boundaries are statement/stage barriers, so the watermark is
    /// a virtual-time barrier — no late data can exist behind it.
    Watermark {
        /// The batch whose boundary advanced the watermark.
        batch: u32,
        /// Exclusive upper bound of closed event-time (source ticks).
        event_time: u64,
    },
    /// A re-tagging policy overrode an RDD's memory tag at a batch
    /// boundary, because observed access frequencies disagreed with the
    /// static analysis prior. The migration itself (if the bytes actually
    /// move) is reported separately by [`Event::Migration`].
    Retag {
        /// The re-tagged RDD instance.
        rdd: u32,
        /// Device the tag pointed at before the override.
        from: Mem,
        /// Device the tag points at now.
        to: Mem,
    },
}

impl Event {
    /// The event's type label, as serialized in the `"ev"` field.
    pub fn label(&self) -> &'static str {
        match self {
            Event::MinorGcStart => "minor_gc_start",
            Event::MinorGcEnd { .. } => "minor_gc_end",
            Event::MajorGcStart => "major_gc_start",
            Event::MajorGcEnd { .. } => "major_gc_end",
            Event::Promotion { .. } => "promotion",
            Event::Migration { .. } => "migration",
            Event::StageStart { .. } => "stage_start",
            Event::StageEnd { .. } => "stage_end",
            Event::ShuffleSpill { .. } => "shuffle_spill",
            Event::CardScan { .. } => "card_scan",
            Event::AllocFail { .. } => "alloc_fail",
            Event::VerifyFailure { .. } => "verify_failure",
            Event::ExecutorCrash { .. } => "executor_crash",
            Event::RecoveryStart { .. } => "recovery_start",
            Event::RecoveryEnd { .. } => "recovery_end",
            Event::CheckpointWrite { .. } => "checkpoint_write",
            Event::CheckpointRestore { .. } => "checkpoint_restore",
            Event::JournalNoop { .. } => "journal_noop",
            Event::JournalTorn { .. } => "journal_torn",
            Event::ShuffleFastPath { .. } => "shuffle_fastpath",
            Event::OffHeapAlloc { .. } => "offheap_alloc",
            Event::OffHeapFree { .. } => "offheap_free",
            Event::RegionAlloc { .. } => "region_alloc",
            Event::RegionFree { .. } => "region_free",
            Event::RegionStageFree { .. } => "region_stage_free",
            Event::TrafficWindow { .. } => "traffic_window",
            Event::JobSubmitted { .. } => "job_submitted",
            Event::JobStarted { .. } => "job_started",
            Event::JobPreempted { .. } => "job_preempted",
            Event::JobFinished { .. } => "job_finished",
            Event::RddCall { .. } => "rdd_call",
            Event::BatchStart { .. } => "batch_start",
            Event::BatchEnd { .. } => "batch_end",
            Event::Watermark { .. } => "watermark",
            Event::Retag { .. } => "retag",
        }
    }

    /// Serialize as one JSON object: `{"t": <ns>, "ev": <label>, ...}`.
    pub fn to_json(&self, t_ns: f64) -> Json {
        let mut pairs = vec![
            ("t".to_string(), Json::Num(t_ns)),
            ("ev".to_string(), Json::Str(self.label().to_string())),
        ];
        let mut put = |k: &str, v: Json| pairs.push((k.to_string(), v));
        match self {
            Event::MinorGcStart | Event::MajorGcStart => {}
            Event::MinorGcEnd {
                pause_ns,
                moved,
                freed,
            } => {
                put("pause_ns", Json::Num(*pause_ns));
                put("moved", Json::UInt(*moved));
                put("freed", Json::UInt(*freed));
            }
            Event::MajorGcEnd {
                pause_ns,
                migrated,
                freed,
            } => {
                put("pause_ns", Json::Num(*pause_ns));
                put("migrated", Json::UInt(*migrated));
                put("freed", Json::UInt(*freed));
            }
            Event::Promotion { bytes, to } => {
                put("bytes", Json::UInt(*bytes));
                put("to", Json::Str(to.label().to_string()));
            }
            Event::Migration {
                rdd,
                from,
                to,
                bytes,
            } => {
                put("rdd", Json::UInt(u64::from(*rdd)));
                put("from", Json::Str(from.label().to_string()));
                put("to", Json::Str(to.label().to_string()));
                put("bytes", Json::UInt(*bytes));
            }
            Event::StageStart {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            }
            | Event::StageEnd {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            } => {
                put("stage", Json::UInt(u64::from(*stage)));
                put("dram_write_bytes", Json::UInt(*dram_write_bytes));
                put("nvm_write_bytes", Json::UInt(*nvm_write_bytes));
            }
            Event::ShuffleSpill { bytes } => put("bytes", Json::UInt(*bytes)),
            Event::CardScan {
                cards,
                bytes,
                stuck,
            } => {
                put("cards", Json::UInt(*cards));
                put("bytes", Json::UInt(*bytes));
                put("stuck", Json::UInt(*stuck));
            }
            Event::AllocFail { space, need } => {
                put("space", Json::Str(space.label().to_string()));
                put("need", Json::UInt(*need));
            }
            Event::VerifyFailure {
                point,
                invariant,
                detail,
            } => {
                put("point", Json::Str(point.clone()));
                put("invariant", Json::Str(invariant.clone()));
                put("detail", Json::Str(detail.clone()));
            }
            Event::ExecutorCrash { barrier } => put("barrier", Json::UInt(*barrier)),
            Event::RecoveryStart { attempt } => put("attempt", Json::UInt(u64::from(*attempt))),
            Event::RecoveryEnd {
                barrier,
                recovery_ns,
            } => {
                put("barrier", Json::UInt(*barrier));
                put("recovery_ns", Json::Num(*recovery_ns));
            }
            Event::CheckpointWrite { rdd, bytes }
            | Event::CheckpointRestore { rdd, bytes }
            | Event::OffHeapAlloc { rdd, bytes }
            | Event::OffHeapFree { rdd, bytes }
            | Event::RegionAlloc { rdd, bytes }
            | Event::RegionFree { rdd, bytes } => {
                put("rdd", Json::UInt(u64::from(*rdd)));
                put("bytes", Json::UInt(*bytes));
            }
            Event::JournalNoop { kind, key } | Event::JournalTorn { kind, key } => {
                put("kind", Json::Str(kind.label().to_string()));
                put("key", Json::UInt(*key));
            }
            Event::ShuffleFastPath { bytes } | Event::RegionStageFree { bytes } => {
                put("bytes", Json::UInt(*bytes))
            }
            Event::TrafficWindow {
                window,
                dram_read,
                dram_write,
                nvm_read,
                nvm_write,
            } => {
                put("window", Json::UInt(*window));
                put("dram_read", Json::UInt(*dram_read));
                put("dram_write", Json::UInt(*dram_write));
                put("nvm_read", Json::UInt(*nvm_read));
                put("nvm_write", Json::UInt(*nvm_write));
            }
            Event::JobSubmitted { job, tenant } => {
                put("job", Json::UInt(u64::from(*job)));
                put("tenant", Json::UInt(u64::from(*tenant)));
            }
            Event::JobStarted {
                job,
                queued_ns,
                dram_share,
            } => {
                put("job", Json::UInt(u64::from(*job)));
                put("queued_ns", Json::Num(*queued_ns));
                put("dram_share", Json::UInt(*dram_share));
            }
            Event::JobPreempted { job, stage } => {
                put("job", Json::UInt(u64::from(*job)));
                put("stage", Json::UInt(u64::from(*stage)));
            }
            Event::JobFinished { job, elapsed_ns } => {
                put("job", Json::UInt(u64::from(*job)));
                put("elapsed_ns", Json::Num(*elapsed_ns));
            }
            Event::RddCall { rdd } => put("rdd", Json::UInt(u64::from(*rdd))),
            Event::BatchStart { batch } => put("batch", Json::UInt(u64::from(*batch))),
            Event::BatchEnd { batch, latency_ns } => {
                put("batch", Json::UInt(u64::from(*batch)));
                put("latency_ns", Json::Num(*latency_ns));
            }
            Event::Watermark { batch, event_time } => {
                put("batch", Json::UInt(u64::from(*batch)));
                put("event_time", Json::UInt(*event_time));
            }
            Event::Retag { rdd, from, to } => {
                put("rdd", Json::UInt(u64::from(*rdd)));
                put("from", Json::Str(from.label().to_string()));
                put("to", Json::Str(to.label().to_string()));
            }
        }
        Json::Obj(pairs)
    }

    /// Serialize like [`Event::to_json`], additionally tagging the
    /// emitting executor. Executor 0 (the single-runtime default) writes
    /// no `"exec"` field, so traces from non-cluster runs are byte-for-
    /// byte what they were before the cluster runtime existed, and old
    /// readers — [`Event::from_json`] ignores unknown fields — still
    /// parse cluster traces.
    pub fn to_json_exec(&self, t_ns: f64, exec: u16) -> Json {
        let mut json = self.to_json(t_ns);
        if exec != 0 {
            if let Json::Obj(pairs) = &mut json {
                pairs.push(("exec".to_string(), Json::UInt(u64::from(exec))));
            }
        }
        json
    }

    /// The executor id a serialized event carries (`"exec"` field), with
    /// 0 — the single-runtime executor — as the default for traces that
    /// predate the cluster runtime.
    pub fn exec_of_json(v: &Json) -> u16 {
        v.get("exec").and_then(Json::as_u64).unwrap_or(0) as u16
    }

    /// Deserialize a `(timestamp, event)` pair produced by
    /// [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<(f64, Event), String> {
        let t = v
            .get("t")
            .and_then(Json::as_f64)
            .ok_or("event missing \"t\"")?;
        let label = v
            .get("ev")
            .and_then(Json::as_str)
            .ok_or("event missing \"ev\"")?;
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("{label} missing {k:?}"))
        };
        let f = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("{label} missing {k:?}"))
        };
        let mem = |k: &str| -> Result<Mem, String> {
            v.get(k)
                .and_then(Json::as_str)
                .and_then(Mem::from_label)
                .ok_or(format!("{label} missing {k:?}"))
        };
        let event = match label {
            "minor_gc_start" => Event::MinorGcStart,
            "minor_gc_end" => Event::MinorGcEnd {
                pause_ns: f("pause_ns")?,
                moved: u("moved")?,
                freed: u("freed")?,
            },
            "major_gc_start" => Event::MajorGcStart,
            "major_gc_end" => Event::MajorGcEnd {
                pause_ns: f("pause_ns")?,
                migrated: u("migrated")?,
                freed: u("freed")?,
            },
            "promotion" => Event::Promotion {
                bytes: u("bytes")?,
                to: mem("to")?,
            },
            "migration" => Event::Migration {
                rdd: u("rdd")? as u32,
                from: mem("from")?,
                to: mem("to")?,
                bytes: u("bytes")?,
            },
            "stage_start" => Event::StageStart {
                stage: u("stage")? as u32,
                dram_write_bytes: u("dram_write_bytes")?,
                nvm_write_bytes: u("nvm_write_bytes")?,
            },
            "stage_end" => Event::StageEnd {
                stage: u("stage")? as u32,
                dram_write_bytes: u("dram_write_bytes")?,
                nvm_write_bytes: u("nvm_write_bytes")?,
            },
            "shuffle_spill" => Event::ShuffleSpill { bytes: u("bytes")? },
            "card_scan" => Event::CardScan {
                cards: u("cards")?,
                bytes: u("bytes")?,
                stuck: u("stuck")?,
            },
            "alloc_fail" => Event::AllocFail {
                space: v
                    .get("space")
                    .and_then(Json::as_str)
                    .and_then(AllocSpace::from_label)
                    .ok_or("alloc_fail missing \"space\"")?,
                need: u("need")?,
            },
            "verify_failure" => {
                let s = |k: &str| -> Result<String, String> {
                    v.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("{label} missing {k:?}"))
                };
                Event::VerifyFailure {
                    point: s("point")?,
                    invariant: s("invariant")?,
                    detail: s("detail")?,
                }
            }
            "executor_crash" => Event::ExecutorCrash {
                barrier: u("barrier")?,
            },
            "recovery_start" => Event::RecoveryStart {
                attempt: u("attempt")? as u32,
            },
            "recovery_end" => Event::RecoveryEnd {
                barrier: u("barrier")?,
                recovery_ns: f("recovery_ns")?,
            },
            "checkpoint_write" => Event::CheckpointWrite {
                rdd: u("rdd")? as u32,
                bytes: u("bytes")?,
            },
            "checkpoint_restore" => Event::CheckpointRestore {
                rdd: u("rdd")? as u32,
                bytes: u("bytes")?,
            },
            "journal_noop" | "journal_torn" => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(JournalKind::from_label)
                    .ok_or(format!("{label} missing \"kind\""))?;
                let key = u("key")?;
                if label == "journal_noop" {
                    Event::JournalNoop { kind, key }
                } else {
                    Event::JournalTorn { kind, key }
                }
            }
            "shuffle_fastpath" => Event::ShuffleFastPath { bytes: u("bytes")? },
            "offheap_alloc" => Event::OffHeapAlloc {
                rdd: u("rdd")? as u32,
                bytes: u("bytes")?,
            },
            "offheap_free" => Event::OffHeapFree {
                rdd: u("rdd")? as u32,
                bytes: u("bytes")?,
            },
            "region_alloc" => Event::RegionAlloc {
                rdd: u("rdd")? as u32,
                bytes: u("bytes")?,
            },
            "region_free" => Event::RegionFree {
                rdd: u("rdd")? as u32,
                bytes: u("bytes")?,
            },
            "region_stage_free" => Event::RegionStageFree { bytes: u("bytes")? },
            "traffic_window" => Event::TrafficWindow {
                window: u("window")?,
                dram_read: u("dram_read")?,
                dram_write: u("dram_write")?,
                nvm_read: u("nvm_read")?,
                nvm_write: u("nvm_write")?,
            },
            "job_submitted" => Event::JobSubmitted {
                job: u("job")? as u32,
                tenant: u("tenant")? as u32,
            },
            "job_started" => Event::JobStarted {
                job: u("job")? as u32,
                queued_ns: f("queued_ns")?,
                dram_share: u("dram_share")?,
            },
            "job_preempted" => Event::JobPreempted {
                job: u("job")? as u32,
                stage: u("stage")? as u32,
            },
            "job_finished" => Event::JobFinished {
                job: u("job")? as u32,
                elapsed_ns: f("elapsed_ns")?,
            },
            "rdd_call" => Event::RddCall {
                rdd: u("rdd")? as u32,
            },
            "batch_start" => Event::BatchStart {
                batch: u("batch")? as u32,
            },
            "batch_end" => Event::BatchEnd {
                batch: u("batch")? as u32,
                latency_ns: f("latency_ns")?,
            },
            "watermark" => Event::Watermark {
                batch: u("batch")? as u32,
                event_time: u("event_time")?,
            },
            "retag" => Event::Retag {
                rdd: u("rdd")? as u32,
                from: mem("from")?,
                to: mem("to")?,
            },
            other => return Err(format!("unknown event type {other:?}")),
        };
        Ok((t, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::MinorGcStart,
            Event::MinorGcEnd {
                pause_ns: 1234.5,
                moved: 10,
                freed: 20,
            },
            Event::MajorGcStart,
            Event::MajorGcEnd {
                pause_ns: 1e6,
                migrated: 3,
                freed: 400,
            },
            Event::Promotion {
                bytes: 64,
                to: Mem::Nvm,
            },
            Event::Migration {
                rdd: 7,
                from: Mem::Nvm,
                to: Mem::Dram,
                bytes: 4096,
            },
            Event::StageStart {
                stage: 0,
                dram_write_bytes: 0,
                nvm_write_bytes: 0,
            },
            Event::StageEnd {
                stage: 0,
                dram_write_bytes: 1024,
                nvm_write_bytes: 2048,
            },
            Event::ShuffleSpill { bytes: 9000 },
            Event::CardScan {
                cards: 12,
                bytes: 6144,
                stuck: 1,
            },
            Event::AllocFail {
                space: AllocSpace::OldDram,
                need: 1 << 20,
            },
            Event::VerifyFailure {
                point: "after_major".to_string(),
                invariant: "card_coverage".to_string(),
                detail: "obj#7 slot 3 on clean card".to_string(),
            },
            Event::ExecutorCrash { barrier: 9 },
            Event::RecoveryStart { attempt: 1 },
            Event::RecoveryEnd {
                barrier: 9,
                recovery_ns: 2.5e9,
            },
            Event::CheckpointWrite {
                rdd: 11,
                bytes: 8192,
            },
            Event::CheckpointRestore {
                rdd: 11,
                bytes: 8192,
            },
            Event::JournalNoop {
                kind: JournalKind::Shuffle,
                key: 11,
            },
            Event::JournalTorn {
                kind: JournalKind::Checkpoint,
                key: 3,
            },
            Event::ShuffleFastPath { bytes: 4096 },
            Event::OffHeapAlloc {
                rdd: 13,
                bytes: 65536,
            },
            Event::OffHeapFree {
                rdd: 13,
                bytes: 65536,
            },
            Event::RegionAlloc {
                rdd: 14,
                bytes: 32768,
            },
            Event::RegionFree {
                rdd: 14,
                bytes: 32768,
            },
            Event::RegionStageFree { bytes: 1024 },
            Event::TrafficWindow {
                window: 4,
                dram_read: 1,
                dram_write: 2,
                nvm_read: 3,
                nvm_write: 4,
            },
            Event::JobSubmitted { job: 3, tenant: 1 },
            Event::JobStarted {
                job: 3,
                queued_ns: 1.5e9,
                dram_share: 1 << 28,
            },
            Event::JobPreempted { job: 3, stage: 7 },
            Event::JobFinished {
                job: 3,
                elapsed_ns: 9.5e9,
            },
            Event::RddCall { rdd: 5 },
            Event::BatchStart { batch: 2 },
            Event::BatchEnd {
                batch: 2,
                latency_ns: 3.25e8,
            },
            Event::Watermark {
                batch: 2,
                event_time: 96,
            },
            Event::Retag {
                rdd: 5,
                from: Mem::Nvm,
                to: Mem::Dram,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for (i, e) in all_events().into_iter().enumerate() {
            let t = 17.25 * (i as f64 + 1.0);
            let line = e.to_json(t).to_compact();
            let (t2, e2) = Event::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(t2.to_bits(), t.to_bits(), "{e:?}");
            assert_eq!(e2, e);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            all_events().iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), all_events().len());
    }

    #[test]
    fn executor_zero_serializes_without_exec_field() {
        let e = Event::ShuffleSpill { bytes: 5 };
        assert_eq!(
            e.to_json_exec(1.0, 0).to_compact(),
            e.to_json(1.0).to_compact()
        );
        let tagged = e.to_json_exec(1.0, 3).to_compact();
        assert!(tagged.contains("\"exec\":3"), "{tagged}");
        let parsed = Json::parse(&tagged).unwrap();
        assert_eq!(Event::exec_of_json(&parsed), 3);
        // Old readers ignore the extra field.
        let (t, e2) = Event::from_json(&parsed).unwrap();
        assert_eq!(t, 1.0);
        assert_eq!(e2, e);
        // Old traces default to executor 0.
        let legacy = Json::parse(&e.to_json(1.0).to_compact()).unwrap();
        assert_eq!(Event::exec_of_json(&legacy), 0);
    }

    #[test]
    fn rejects_unknown_and_incomplete_events() {
        let bad = Json::parse("{\"t\":1.0,\"ev\":\"warp_core_breach\"}").unwrap();
        assert!(Event::from_json(&bad).is_err());
        let missing = Json::parse("{\"t\":1.0,\"ev\":\"promotion\",\"bytes\":1}").unwrap();
        assert!(Event::from_json(&missing).is_err());
        let no_t = Json::parse("{\"ev\":\"minor_gc_start\"}").unwrap();
        assert!(Event::from_json(&no_t).is_err());
    }
}
