//! A metrics-aggregating sink: consumes the event stream (live or
//! replayed from JSONL) and derives the evaluation-grade aggregates —
//! pause distributions, per-stage NVM-write ratios, migration churn.

use crate::event::{Event, Mem};
use crate::json::Json;
use crate::sink::EventSink;
use std::collections::BTreeMap;

/// Pause-duration distribution for one GC kind, in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct PauseHistogram {
    pauses_ns: Vec<f64>,
}

impl PauseHistogram {
    fn record(&mut self, pause_ns: f64) {
        self.pauses_ns.push(pause_ns);
    }

    /// Number of pauses recorded.
    pub fn count(&self) -> usize {
        self.pauses_ns.len()
    }

    /// Mean pause, or 0 if none.
    pub fn mean_ns(&self) -> f64 {
        if self.pauses_ns.is_empty() {
            0.0
        } else {
            self.pauses_ns.iter().sum::<f64>() / self.pauses_ns.len() as f64
        }
    }

    /// Longest pause, or 0 if none.
    pub fn max_ns(&self) -> f64 {
        self.pauses_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Nearest-rank quantile (`q` clamped to `[0, 1]`), or 0 if none.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.pauses_ns.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut sorted = self.pauses_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("pause is not NaN"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::UInt(self.count() as u64)),
            ("mean_ns", Json::Num(self.mean_ns())),
            ("p50_ns", Json::Num(self.quantile_ns(0.50))),
            ("p90_ns", Json::Num(self.quantile_ns(0.90))),
            ("p99_ns", Json::Num(self.quantile_ns(0.99))),
            ("max_ns", Json::Num(self.max_ns())),
        ])
    }
}

/// Per-stage write traffic derived from paired `StageStart`/`StageEnd`
/// events' cumulative counters.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage sequence number.
    pub stage: u32,
    /// Simulated time at stage start (ns).
    pub start_ns: f64,
    /// Simulated time at stage end (ns); `NaN` until the end arrives.
    pub end_ns: f64,
    /// DRAM bytes written during the stage.
    pub dram_write_bytes: u64,
    /// NVM bytes written during the stage.
    pub nvm_write_bytes: u64,
}

impl StageRow {
    /// Fraction of the stage's writes that hit NVM, or 0 if it wrote
    /// nothing.
    pub fn nvm_write_ratio(&self) -> f64 {
        let total = self.dram_write_bytes + self.nvm_write_bytes;
        if total == 0 {
            0.0
        } else {
            self.nvm_write_bytes as f64 / total as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stage", Json::UInt(u64::from(self.stage))),
            ("start_ns", Json::Num(self.start_ns)),
            ("end_ns", Json::Num(self.end_ns)),
            ("dram_write_bytes", Json::UInt(self.dram_write_bytes)),
            ("nvm_write_bytes", Json::UInt(self.nvm_write_bytes)),
            ("nvm_write_ratio", Json::Num(self.nvm_write_ratio())),
        ])
    }
}

/// Migration churn between devices: object counts and bytes moved in
/// each direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationChurn {
    /// Arrays migrated NVM → DRAM (promoted hot data).
    pub to_dram: u64,
    /// Arrays migrated DRAM → NVM (demoted cold data).
    pub to_nvm: u64,
    /// Bytes moved NVM → DRAM.
    pub to_dram_bytes: u64,
    /// Bytes moved DRAM → NVM.
    pub to_nvm_bytes: u64,
}

impl MigrationChurn {
    /// Total arrays migrated in either direction.
    pub fn total(&self) -> u64 {
        self.to_dram + self.to_nvm
    }
}

/// Per-executor slice of the aggregates: pause distributions and stage
/// write traffic attributed to one executor's event stream.
///
/// Populated from the executor id carried by
/// [`EventSink::on_event_from`]; single-runtime traces put everything
/// under executor 0.
#[derive(Debug, Clone, Default)]
pub struct ExecutorMetrics {
    events: u64,
    minor_pauses: PauseHistogram,
    major_pauses: PauseHistogram,
    dram_write_bytes: u64,
    nvm_write_bytes: u64,
    open_stage: Option<(u32, u64, u64)>,
}

impl ExecutorMetrics {
    /// Events attributed to this executor.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Minor-GC pause distribution on this executor's heap.
    pub fn minor_pauses(&self) -> &PauseHistogram {
        &self.minor_pauses
    }

    /// Major-GC pause distribution on this executor's heap.
    pub fn major_pauses(&self) -> &PauseHistogram {
        &self.major_pauses
    }

    /// DRAM bytes written during this executor's stages (sum of
    /// stage-delta counters).
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_write_bytes
    }

    /// NVM bytes written during this executor's stages.
    pub fn nvm_write_bytes(&self) -> u64 {
        self.nvm_write_bytes
    }

    /// Fraction of this executor's stage writes that hit NVM, or 0 if
    /// it wrote nothing.
    pub fn nvm_write_ratio(&self) -> f64 {
        let total = self.dram_write_bytes + self.nvm_write_bytes;
        if total == 0 {
            0.0
        } else {
            self.nvm_write_bytes as f64 / total as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("events", Json::UInt(self.events)),
            ("minor_pauses", self.minor_pauses.to_json()),
            ("major_pauses", self.major_pauses.to_json()),
            ("dram_write_bytes", Json::UInt(self.dram_write_bytes)),
            ("nvm_write_bytes", Json::UInt(self.nvm_write_bytes)),
            ("nvm_write_ratio", Json::Num(self.nvm_write_ratio())),
        ])
    }
}

/// The aggregating sink. Feed it events (directly, via an
/// [`crate::Observer`], or by replaying a JSONL trace) and read the
/// aggregates or render [`MetricsAggregator::summary_table`].
///
/// Aggregation is deterministic: the same event sequence always yields
/// the same [`MetricsAggregator::to_json`] output, which is how the
/// JSONL round-trip test proves a written trace is complete.
#[derive(Debug, Clone, Default)]
pub struct MetricsAggregator {
    events_seen: u64,
    last_t_ns: f64,
    minor_pauses: PauseHistogram,
    major_pauses: PauseHistogram,
    promotions: u64,
    promotion_bytes: u64,
    promotions_to_nvm: u64,
    churn: MigrationChurn,
    stages: Vec<StageRow>,
    open_stage: Option<(u32, u64, u64, f64)>,
    shuffle_spills: u64,
    shuffle_bytes: u64,
    fastpath_transfers: u64,
    fastpath_bytes: u64,
    offheap_allocs: u64,
    offheap_alloc_bytes: u64,
    offheap_frees: u64,
    offheap_freed_bytes: u64,
    region_allocs: u64,
    region_alloc_bytes: u64,
    region_frees: u64,
    region_freed_bytes: u64,
    region_stage_frees: u64,
    region_stage_freed_bytes: u64,
    card_scans: u64,
    cards_scanned: u64,
    card_scan_bytes: u64,
    stuck_rescans: u64,
    alloc_fails: u64,
    verify_failures: u64,
    executor_crashes: u64,
    recoveries: u64,
    recovery_ns: f64,
    checkpoint_writes: u64,
    checkpoint_write_bytes: u64,
    checkpoint_restores: u64,
    checkpoint_restore_bytes: u64,
    journal_noops: u64,
    journal_torn: u64,
    traffic_windows: u64,
    peak_window_bytes: u64,
    peak_window_nvm_write: u64,
    jobs_submitted: u64,
    jobs_started: u64,
    jobs_preempted: u64,
    jobs_finished: u64,
    job_queued_ns: f64,
    job_elapsed_ns: f64,
    rdd_calls: BTreeMap<u32, u64>,
    batches: u64,
    batch_latency: PauseHistogram,
    watermarks: u64,
    retags_to_dram: u64,
    retags_to_nvm: u64,
    per_exec: BTreeMap<u16, ExecutorMetrics>,
}

impl MetricsAggregator {
    /// A fresh, empty aggregator.
    pub fn new() -> MetricsAggregator {
        MetricsAggregator::default()
    }

    /// Total events consumed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Timestamp of the last event consumed (ns), or 0 if none.
    pub fn last_t_ns(&self) -> f64 {
        self.last_t_ns
    }

    /// Minor-GC pause distribution.
    pub fn minor_pauses(&self) -> &PauseHistogram {
        &self.minor_pauses
    }

    /// Major-GC pause distribution.
    pub fn major_pauses(&self) -> &PauseHistogram {
        &self.major_pauses
    }

    /// Migration churn between DRAM and NVM.
    pub fn migration_churn(&self) -> MigrationChurn {
        self.churn
    }

    /// Per-stage write-traffic rows, in stage order.
    pub fn stages(&self) -> &[StageRow] {
        &self.stages
    }

    /// Promotions observed (count, total bytes, count landing on NVM).
    pub fn promotions(&self) -> (u64, u64, u64) {
        (
            self.promotions,
            self.promotion_bytes,
            self.promotions_to_nvm,
        )
    }

    /// Allocation failures observed.
    pub fn alloc_fails(&self) -> u64 {
        self.alloc_fails
    }

    /// Per-executor breakdowns, keyed by executor id. Single-runtime
    /// traces have exactly one entry, under executor 0.
    pub fn per_executor(&self) -> &BTreeMap<u16, ExecutorMetrics> {
        &self.per_exec
    }

    /// Heap-verification failures observed (a healthy trace has zero).
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    /// Cumulative per-RDD access counts derived from [`Event::RddCall`]
    /// events, keyed by RDD id. These counters are *never reset* (unlike
    /// the GC-internal frequency table, which clears at every major
    /// collection), so two snapshots taken at batch boundaries subtract to
    /// a well-defined per-window delta — the quantity the online
    /// re-tagging policy consumes.
    pub fn rdd_calls(&self) -> &BTreeMap<u32, u64> {
        &self.rdd_calls
    }

    /// Micro-batches completed (paired `BatchStart`/`BatchEnd`).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Per-batch latency distribution from [`Event::BatchEnd`].
    pub fn batch_latency(&self) -> &PauseHistogram {
        &self.batch_latency
    }

    /// Re-tag decisions observed (to DRAM, to NVM).
    pub fn retags(&self) -> (u64, u64) {
        (self.retags_to_dram, self.retags_to_nvm)
    }

    /// Per-RDD access-count growth from `baseline` (an earlier
    /// [`MetricsAggregator::rdd_calls`] snapshot) to `current`.
    ///
    /// Only RDDs whose counter grew appear in the result. The subtraction
    /// saturates: a baseline entry *larger* than the current counter (only
    /// possible when the caller mixes snapshots from different traces, or
    /// a restarted trace re-counted from zero after an RDD id was freed
    /// and reused) contributes 0 rather than wrapping, so a confused
    /// baseline can never fabricate a hot RDD.
    pub fn rdd_call_delta(
        current: &BTreeMap<u32, u64>,
        baseline: &BTreeMap<u32, u64>,
    ) -> BTreeMap<u32, u64> {
        current
            .iter()
            .filter_map(|(rdd, calls)| {
                let grown = calls.saturating_sub(baseline.get(rdd).copied().unwrap_or(0));
                (grown > 0).then_some((*rdd, grown))
            })
            .collect()
    }

    /// Deterministic JSON form of every aggregate (used by
    /// `trace_summary` and the round-trip tests).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("events_seen", Json::UInt(self.events_seen)),
            ("last_t_ns", Json::Num(self.last_t_ns)),
            ("minor_pauses", self.minor_pauses.to_json()),
            ("major_pauses", self.major_pauses.to_json()),
            (
                "promotions",
                Json::obj(vec![
                    ("count", Json::UInt(self.promotions)),
                    ("bytes", Json::UInt(self.promotion_bytes)),
                    ("to_nvm", Json::UInt(self.promotions_to_nvm)),
                ]),
            ),
            (
                "migration",
                Json::obj(vec![
                    ("to_dram", Json::UInt(self.churn.to_dram)),
                    ("to_nvm", Json::UInt(self.churn.to_nvm)),
                    ("to_dram_bytes", Json::UInt(self.churn.to_dram_bytes)),
                    ("to_nvm_bytes", Json::UInt(self.churn.to_nvm_bytes)),
                ]),
            ),
            (
                "stages",
                Json::Arr(self.stages.iter().map(StageRow::to_json).collect()),
            ),
            (
                "shuffle",
                Json::obj(vec![
                    ("spills", Json::UInt(self.shuffle_spills)),
                    ("bytes", Json::UInt(self.shuffle_bytes)),
                    ("fastpath_transfers", Json::UInt(self.fastpath_transfers)),
                    // Fast-path bytes cross at memory bandwidth with zero
                    // serde on either side — they ARE the serde bytes the
                    // shared-region transport avoided.
                    ("serde_bytes_avoided", Json::UInt(self.fastpath_bytes)),
                ]),
            ),
            (
                "offheap",
                Json::obj(vec![
                    ("allocs", Json::UInt(self.offheap_allocs)),
                    ("alloc_bytes", Json::UInt(self.offheap_alloc_bytes)),
                    ("frees", Json::UInt(self.offheap_frees)),
                    ("freed_bytes", Json::UInt(self.offheap_freed_bytes)),
                ]),
            ),
            (
                "region",
                Json::obj(vec![
                    ("allocs", Json::UInt(self.region_allocs)),
                    ("alloc_bytes", Json::UInt(self.region_alloc_bytes)),
                    ("frees", Json::UInt(self.region_frees)),
                    ("freed_bytes", Json::UInt(self.region_freed_bytes)),
                    ("stage_frees", Json::UInt(self.region_stage_frees)),
                    (
                        "stage_freed_bytes",
                        Json::UInt(self.region_stage_freed_bytes),
                    ),
                ]),
            ),
            (
                "card_scan",
                Json::obj(vec![
                    ("scans", Json::UInt(self.card_scans)),
                    ("cards", Json::UInt(self.cards_scanned)),
                    ("bytes", Json::UInt(self.card_scan_bytes)),
                    ("stuck_rescans", Json::UInt(self.stuck_rescans)),
                ]),
            ),
            ("alloc_fails", Json::UInt(self.alloc_fails)),
            ("verify_failures", Json::UInt(self.verify_failures)),
            (
                "traffic",
                Json::obj(vec![
                    ("windows", Json::UInt(self.traffic_windows)),
                    ("peak_window_bytes", Json::UInt(self.peak_window_bytes)),
                    (
                        "peak_window_nvm_write",
                        Json::UInt(self.peak_window_nvm_write),
                    ),
                ]),
            ),
        ];
        // Like the executor breakdown below: job aggregates only appear in
        // traces that contain job events, keeping single-job trace
        // summaries byte-identical to the pre-service format.
        if self.jobs_submitted > 0 {
            fields.push((
                "jobs",
                Json::obj(vec![
                    ("submitted", Json::UInt(self.jobs_submitted)),
                    ("started", Json::UInt(self.jobs_started)),
                    ("preempted", Json::UInt(self.jobs_preempted)),
                    ("finished", Json::UInt(self.jobs_finished)),
                    ("queued_ns", Json::Num(self.job_queued_ns)),
                    ("elapsed_ns", Json::Num(self.job_elapsed_ns)),
                ]),
            ));
        }
        // Access-frequency export and stream aggregates appear only in
        // traces that contain the corresponding events, keeping batch
        // trace summaries byte-identical to the pre-streaming format.
        if !self.rdd_calls.is_empty() {
            fields.push((
                "rdd_calls",
                Json::Obj(
                    self.rdd_calls
                        .iter()
                        .map(|(rdd, calls)| (rdd.to_string(), Json::UInt(*calls)))
                        .collect(),
                ),
            ));
        }
        if self.batches > 0 || self.retags_to_dram + self.retags_to_nvm > 0 {
            fields.push((
                "stream",
                Json::obj(vec![
                    ("batches", Json::UInt(self.batches)),
                    ("batch_latency", self.batch_latency.to_json()),
                    ("watermarks", Json::UInt(self.watermarks)),
                    ("retags_to_dram", Json::UInt(self.retags_to_dram)),
                    ("retags_to_nvm", Json::UInt(self.retags_to_nvm)),
                ]),
            ));
        }
        // Keep single-executor output byte-identical to the pre-cluster
        // format; the breakdown only appears once a second executor shows up.
        if self.per_exec.len() > 1 {
            fields.push((
                "executors",
                Json::Obj(
                    self.per_exec
                        .iter()
                        .map(|(exec, m)| (exec.to_string(), m.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }

    /// Render a human-readable summary table of the aggregates.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let ms = 1e-6;
        out.push_str(&format!(
            "events: {}  (last t = {:.3} ms)\n",
            self.events_seen,
            self.last_t_ns * ms
        ));
        out.push_str(&format!(
            "{:<10} {:>7} {:>11} {:>11} {:>11} {:>11}\n",
            "pauses", "count", "mean ms", "p50 ms", "p99 ms", "max ms"
        ));
        for (name, h) in [("minor", &self.minor_pauses), ("major", &self.major_pauses)] {
            out.push_str(&format!(
                "{:<10} {:>7} {:>11.4} {:>11.4} {:>11.4} {:>11.4}\n",
                name,
                h.count(),
                h.mean_ns() * ms,
                h.quantile_ns(0.50) * ms,
                h.quantile_ns(0.99) * ms,
                h.max_ns() * ms,
            ));
        }
        out.push_str(&format!(
            "promotions: {} ({} B, {} to NVM)   alloc fails: {}\n",
            self.promotions, self.promotion_bytes, self.promotions_to_nvm, self.alloc_fails
        ));
        if self.verify_failures > 0 {
            out.push_str(&format!("VERIFY FAILURES: {}\n", self.verify_failures));
        }
        if self.executor_crashes > 0 || self.checkpoint_writes > 0 {
            out.push_str(&format!(
                "recovery: {} crashes, {} recoveries ({:.3} ms), \
                 {} checkpoint writes ({} B), {} restores ({} B)\n",
                self.executor_crashes,
                self.recoveries,
                self.recovery_ns * ms,
                self.checkpoint_writes,
                self.checkpoint_write_bytes,
                self.checkpoint_restores,
                self.checkpoint_restore_bytes
            ));
        }
        if self.journal_noops > 0 || self.journal_torn > 0 {
            out.push_str(&format!(
                "journal: {} validated no-op replays, {} torn entries rolled forward\n",
                self.journal_noops, self.journal_torn
            ));
        }
        out.push_str(&format!(
            "migration churn: {} to DRAM ({} B), {} to NVM ({} B)\n",
            self.churn.to_dram,
            self.churn.to_dram_bytes,
            self.churn.to_nvm,
            self.churn.to_nvm_bytes
        ));
        out.push_str(&format!(
            "shuffle: {} spills ({} B)   card scans: {} ({} cards, {} stuck rescans)\n",
            self.shuffle_spills,
            self.shuffle_bytes,
            self.card_scans,
            self.cards_scanned,
            self.stuck_rescans
        ));
        if self.fastpath_transfers > 0 {
            out.push_str(&format!(
                "shared-region fast path: {} transfers, serde bytes avoided: {}\n",
                self.fastpath_transfers, self.fastpath_bytes
            ));
        }
        if self.offheap_allocs > 0 || self.offheap_frees > 0 {
            out.push_str(&format!(
                "off-heap region: {} allocs ({} B), {} frees ({} B)\n",
                self.offheap_allocs,
                self.offheap_alloc_bytes,
                self.offheap_frees,
                self.offheap_freed_bytes
            ));
        }
        if self.region_allocs > 0 || self.region_stage_frees > 0 {
            out.push_str(&format!(
                "region arenas: {} blocks ({} B), {} block frees ({} B), \
                 {} stage resets ({} B)\n",
                self.region_allocs,
                self.region_alloc_bytes,
                self.region_frees,
                self.region_freed_bytes,
                self.region_stage_frees,
                self.region_stage_freed_bytes
            ));
        }
        out.push_str(&format!(
            "traffic windows: {} (peak {} B total, peak {} B NVM writes)\n",
            self.traffic_windows, self.peak_window_bytes, self.peak_window_nvm_write
        ));
        if self.jobs_submitted > 0 {
            out.push_str(&format!(
                "jobs: {} submitted, {} started, {} preempted, {} finished \
                 (queued {:.3} ms, elapsed {:.3} ms)\n",
                self.jobs_submitted,
                self.jobs_started,
                self.jobs_preempted,
                self.jobs_finished,
                self.job_queued_ns * ms,
                self.job_elapsed_ns * ms
            ));
        }
        if self.batches > 0 {
            out.push_str(&format!(
                "stream: {} batches (p50 {:.4} ms, p99 {:.4} ms), {} watermarks, \
                 retags: {} to DRAM, {} to NVM\n",
                self.batches,
                self.batch_latency.quantile_ns(0.50) * ms,
                self.batch_latency.quantile_ns(0.99) * ms,
                self.watermarks,
                self.retags_to_dram,
                self.retags_to_nvm
            ));
        }
        if !self.rdd_calls.is_empty() {
            let total: u64 = self.rdd_calls.values().sum();
            out.push_str(&format!(
                "rdd calls: {} across {} RDDs\n",
                total,
                self.rdd_calls.len()
            ));
        }
        if self.per_exec.len() > 1 {
            out.push_str(&format!(
                "{:<6} {:>8} {:>7} {:>11} {:>7} {:>11} {:>14} {:>14} {:>9}\n",
                "exec",
                "events",
                "minor",
                "minor p99ms",
                "major",
                "major p99ms",
                "DRAM wr B",
                "NVM wr B",
                "NVM frac"
            ));
            for (exec, m) in &self.per_exec {
                out.push_str(&format!(
                    "{:<6} {:>8} {:>7} {:>11.4} {:>7} {:>11.4} {:>14} {:>14} {:>9.3}\n",
                    exec,
                    m.events,
                    m.minor_pauses.count(),
                    m.minor_pauses.quantile_ns(0.99) * ms,
                    m.major_pauses.count(),
                    m.major_pauses.quantile_ns(0.99) * ms,
                    m.dram_write_bytes,
                    m.nvm_write_bytes,
                    m.nvm_write_ratio()
                ));
            }
        }
        if !self.stages.is_empty() {
            out.push_str(&format!(
                "{:<7} {:>12} {:>16} {:>16} {:>9}\n",
                "stage", "dur ms", "DRAM wr B", "NVM wr B", "NVM frac"
            ));
            for row in &self.stages {
                let dur = if row.end_ns.is_finite() {
                    (row.end_ns - row.start_ns) * ms
                } else {
                    f64::NAN
                };
                out.push_str(&format!(
                    "{:<7} {:>12.4} {:>16} {:>16} {:>9.3}\n",
                    row.stage,
                    dur,
                    row.dram_write_bytes,
                    row.nvm_write_bytes,
                    row.nvm_write_ratio()
                ));
            }
        }
        out
    }
}

impl MetricsAggregator {
    fn observe_exec(&mut self, exec: u16, event: &Event) {
        let m = self.per_exec.entry(exec).or_default();
        m.events += 1;
        match event {
            Event::MinorGcEnd { pause_ns, .. } => m.minor_pauses.record(*pause_ns),
            Event::MajorGcEnd { pause_ns, .. } => m.major_pauses.record(*pause_ns),
            Event::StageStart {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            } => {
                m.open_stage = Some((*stage, *dram_write_bytes, *nvm_write_bytes));
            }
            Event::StageEnd {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            } => {
                // Same pairing rule as the global stage rows, but against
                // this executor's own open-stage slot, so interleaved
                // multi-executor traces attribute deltas correctly.
                let (dram0, nvm0) = match m.open_stage.take() {
                    Some((s, d, n)) if s == *stage => (d, n),
                    _ => (*dram_write_bytes, *nvm_write_bytes),
                };
                m.dram_write_bytes += dram_write_bytes.saturating_sub(dram0);
                m.nvm_write_bytes += nvm_write_bytes.saturating_sub(nvm0);
            }
            _ => {}
        }
    }

    fn observe_global(&mut self, t_ns: f64, event: &Event) {
        self.events_seen += 1;
        self.last_t_ns = t_ns;
        match event {
            Event::MinorGcStart | Event::MajorGcStart => {}
            Event::MinorGcEnd { pause_ns, .. } => self.minor_pauses.record(*pause_ns),
            Event::MajorGcEnd { pause_ns, .. } => self.major_pauses.record(*pause_ns),
            Event::Promotion { bytes, to } => {
                self.promotions += 1;
                self.promotion_bytes += bytes;
                if *to == Mem::Nvm {
                    self.promotions_to_nvm += 1;
                }
            }
            Event::Migration {
                from, to, bytes, ..
            } => match (from, to) {
                (Mem::Nvm, Mem::Dram) => {
                    self.churn.to_dram += 1;
                    self.churn.to_dram_bytes += bytes;
                }
                (Mem::Dram, Mem::Nvm) => {
                    self.churn.to_nvm += 1;
                    self.churn.to_nvm_bytes += bytes;
                }
                _ => {}
            },
            Event::StageStart {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            } => {
                self.open_stage = Some((*stage, *dram_write_bytes, *nvm_write_bytes, t_ns));
            }
            Event::StageEnd {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            } => {
                // Pair with the open start; a mismatched or missing start
                // (truncated trace) yields a row with zero deltas.
                let (dram0, nvm0, start_ns) = match self.open_stage.take() {
                    Some((s, d, n, t0)) if s == *stage => (d, n, t0),
                    _ => (*dram_write_bytes, *nvm_write_bytes, f64::NAN),
                };
                self.stages.push(StageRow {
                    stage: *stage,
                    start_ns,
                    end_ns: t_ns,
                    dram_write_bytes: dram_write_bytes.saturating_sub(dram0),
                    nvm_write_bytes: nvm_write_bytes.saturating_sub(nvm0),
                });
            }
            Event::ShuffleSpill { bytes } => {
                self.shuffle_spills += 1;
                self.shuffle_bytes += bytes;
            }
            Event::CardScan {
                cards,
                bytes,
                stuck,
            } => {
                self.card_scans += 1;
                self.cards_scanned += cards;
                self.card_scan_bytes += bytes;
                self.stuck_rescans += stuck;
            }
            Event::AllocFail { .. } => self.alloc_fails += 1,
            Event::VerifyFailure { .. } => self.verify_failures += 1,
            Event::ExecutorCrash { .. } => self.executor_crashes += 1,
            Event::RecoveryStart { .. } => {}
            Event::RecoveryEnd { recovery_ns, .. } => {
                self.recoveries += 1;
                self.recovery_ns += recovery_ns;
            }
            Event::CheckpointWrite { bytes, .. } => {
                self.checkpoint_writes += 1;
                self.checkpoint_write_bytes += bytes;
            }
            Event::CheckpointRestore { bytes, .. } => {
                self.checkpoint_restores += 1;
                self.checkpoint_restore_bytes += bytes;
            }
            Event::JournalNoop { .. } => self.journal_noops += 1,
            Event::JournalTorn { .. } => self.journal_torn += 1,
            Event::ShuffleFastPath { bytes } => {
                self.fastpath_transfers += 1;
                self.fastpath_bytes += bytes;
            }
            Event::OffHeapAlloc { bytes, .. } => {
                self.offheap_allocs += 1;
                self.offheap_alloc_bytes += bytes;
            }
            Event::OffHeapFree { bytes, .. } => {
                self.offheap_frees += 1;
                self.offheap_freed_bytes += bytes;
            }
            Event::RegionAlloc { bytes, .. } => {
                self.region_allocs += 1;
                self.region_alloc_bytes += bytes;
            }
            Event::RegionFree { bytes, .. } => {
                self.region_frees += 1;
                self.region_freed_bytes += bytes;
            }
            Event::RegionStageFree { bytes } => {
                self.region_stage_frees += 1;
                self.region_stage_freed_bytes += bytes;
            }
            Event::TrafficWindow {
                dram_read,
                dram_write,
                nvm_read,
                nvm_write,
                ..
            } => {
                self.traffic_windows += 1;
                let total = dram_read + dram_write + nvm_read + nvm_write;
                self.peak_window_bytes = self.peak_window_bytes.max(total);
                self.peak_window_nvm_write = self.peak_window_nvm_write.max(*nvm_write);
            }
            Event::JobSubmitted { .. } => self.jobs_submitted += 1,
            Event::JobStarted { queued_ns, .. } => {
                self.jobs_started += 1;
                self.job_queued_ns += queued_ns;
            }
            Event::JobPreempted { .. } => self.jobs_preempted += 1,
            Event::JobFinished { elapsed_ns, .. } => {
                self.jobs_finished += 1;
                self.job_elapsed_ns += elapsed_ns;
            }
            Event::RddCall { rdd } => {
                *self.rdd_calls.entry(*rdd).or_insert(0) += 1;
            }
            Event::BatchStart { .. } => {}
            Event::BatchEnd { latency_ns, .. } => {
                self.batches += 1;
                self.batch_latency.record(*latency_ns);
            }
            Event::Watermark { .. } => self.watermarks += 1,
            Event::Retag { to, .. } => match to {
                Mem::Dram => self.retags_to_dram += 1,
                Mem::Nvm => self.retags_to_nvm += 1,
            },
        }
    }
}

impl EventSink for MetricsAggregator {
    fn on_event(&mut self, t_ns: f64, event: &Event) {
        self.on_event_from(t_ns, 0, event);
    }

    fn on_event_from(&mut self, t_ns: f64, exec: u16, event: &Event) {
        self.observe_global(t_ns, event);
        self.observe_exec(exec, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_pause_histograms_and_churn() {
        let mut m = MetricsAggregator::new();
        for (i, pause) in [100.0, 300.0, 200.0].iter().enumerate() {
            m.on_event(i as f64 * 1e6, &Event::MinorGcStart);
            m.on_event(
                i as f64 * 1e6 + pause,
                &Event::MinorGcEnd {
                    pause_ns: *pause,
                    moved: 1,
                    freed: 1,
                },
            );
        }
        m.on_event(
            4e6,
            &Event::Migration {
                rdd: 1,
                from: Mem::Nvm,
                to: Mem::Dram,
                bytes: 100,
            },
        );
        m.on_event(
            5e6,
            &Event::Migration {
                rdd: 2,
                from: Mem::Dram,
                to: Mem::Nvm,
                bytes: 50,
            },
        );
        assert_eq!(m.minor_pauses().count(), 3);
        assert_eq!(m.minor_pauses().max_ns(), 300.0);
        assert_eq!(m.minor_pauses().quantile_ns(0.5), 200.0);
        assert_eq!(
            m.migration_churn(),
            MigrationChurn {
                to_dram: 1,
                to_nvm: 1,
                to_dram_bytes: 100,
                to_nvm_bytes: 50,
            }
        );
        assert!(m.summary_table().contains("migration churn: 1 to DRAM"));
    }

    #[test]
    fn stage_rows_use_cumulative_counter_deltas() {
        let mut m = MetricsAggregator::new();
        m.on_event(
            10.0,
            &Event::StageStart {
                stage: 0,
                dram_write_bytes: 1000,
                nvm_write_bytes: 500,
            },
        );
        m.on_event(
            90.0,
            &Event::StageEnd {
                stage: 0,
                dram_write_bytes: 1600,
                nvm_write_bytes: 900,
            },
        );
        let rows = m.stages();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].dram_write_bytes, 600);
        assert_eq!(rows[0].nvm_write_bytes, 400);
        assert!((rows[0].nvm_write_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(rows[0].start_ns, 10.0);
        assert_eq!(rows[0].end_ns, 90.0);
    }

    #[test]
    fn unmatched_stage_end_yields_zero_delta_row() {
        let mut m = MetricsAggregator::new();
        m.on_event(
            50.0,
            &Event::StageEnd {
                stage: 7,
                dram_write_bytes: 123,
                nvm_write_bytes: 456,
            },
        );
        assert_eq!(m.stages().len(), 1);
        assert_eq!(m.stages()[0].dram_write_bytes, 0);
        assert_eq!(m.stages()[0].nvm_write_bytes, 0);
        assert!(m.stages()[0].start_ns.is_nan());
    }

    #[test]
    fn per_executor_breakdowns_attribute_interleaved_stages() {
        let mut m = MetricsAggregator::new();
        // Two executors run stage 0 with interleaved events; each has its
        // own cumulative counters and its own pauses.
        m.on_event_from(
            1.0,
            0,
            &Event::StageStart {
                stage: 0,
                dram_write_bytes: 100,
                nvm_write_bytes: 0,
            },
        );
        m.on_event_from(
            2.0,
            1,
            &Event::StageStart {
                stage: 0,
                dram_write_bytes: 1000,
                nvm_write_bytes: 500,
            },
        );
        m.on_event_from(
            3.0,
            1,
            &Event::MinorGcEnd {
                pause_ns: 70.0,
                moved: 0,
                freed: 0,
            },
        );
        m.on_event_from(
            4.0,
            0,
            &Event::StageEnd {
                stage: 0,
                dram_write_bytes: 150,
                nvm_write_bytes: 25,
            },
        );
        m.on_event_from(
            5.0,
            1,
            &Event::StageEnd {
                stage: 0,
                dram_write_bytes: 1000,
                nvm_write_bytes: 900,
            },
        );
        let per = m.per_executor();
        assert_eq!(per.len(), 2);
        assert_eq!(per[&0].dram_write_bytes(), 50);
        assert_eq!(per[&0].nvm_write_bytes(), 25);
        assert_eq!(per[&1].dram_write_bytes(), 0);
        assert_eq!(per[&1].nvm_write_bytes(), 400);
        assert_eq!(per[&1].minor_pauses().count(), 1);
        assert_eq!(per[&0].minor_pauses().count(), 0);
        // The global aggregates still see everything.
        assert_eq!(m.events_seen(), 5);
        assert_eq!(m.stages().len(), 2);
        assert!(m.summary_table().contains("NVM frac"));
        assert!(m.to_json().to_compact().contains("\"executors\""));
    }

    #[test]
    fn single_executor_json_has_no_executors_field() {
        let mut m = MetricsAggregator::new();
        m.on_event(1.0, &Event::MinorGcStart);
        assert!(!m.to_json().to_compact().contains("\"executors\""));
    }

    #[test]
    fn rdd_call_counters_are_cumulative_and_deltas_subtract() {
        let mut m = MetricsAggregator::new();
        for _ in 0..3 {
            m.on_event(1.0, &Event::RddCall { rdd: 4 });
        }
        m.on_event(2.0, &Event::RddCall { rdd: 9 });
        let baseline = m.rdd_calls().clone();
        assert_eq!(baseline[&4], 3);
        assert_eq!(baseline[&9], 1);

        // More calls land in the next batch window; counters keep growing.
        for _ in 0..5 {
            m.on_event(3.0, &Event::RddCall { rdd: 4 });
        }
        m.on_event(4.0, &Event::RddCall { rdd: 2 });
        let delta = MetricsAggregator::rdd_call_delta(m.rdd_calls(), &baseline);
        assert_eq!(delta.get(&4), Some(&5));
        assert_eq!(delta.get(&2), Some(&1));
        // RDD 9 did not grow this window: absent, not zero.
        assert_eq!(delta.get(&9), None);
    }

    #[test]
    fn rdd_call_delta_survives_freed_then_reused_id() {
        // RDD 7 is called, freed (the aggregator cannot see frees — the
        // counter just stops growing), and a *new* RDD reuses id 7 in a
        // restarted trace counted by a fresh aggregator. A baseline taken
        // from the old aggregator is larger than the new counter; the
        // delta must saturate to 0 for that id instead of wrapping to a
        // huge "hot" count.
        let mut old = MetricsAggregator::new();
        for _ in 0..10 {
            old.on_event(1.0, &Event::RddCall { rdd: 7 });
        }
        let stale_baseline = old.rdd_calls().clone();

        let mut fresh = MetricsAggregator::new();
        for _ in 0..2 {
            fresh.on_event(2.0, &Event::RddCall { rdd: 7 });
        }
        let delta = MetricsAggregator::rdd_call_delta(fresh.rdd_calls(), &stale_baseline);
        assert_eq!(delta.get(&7), None, "stale baseline must not underflow");

        // Within ONE aggregator the reuse is benign: the cumulative
        // counter for the reused id keeps growing, and per-window deltas
        // attribute exactly the window's growth to the new incarnation.
        let before = fresh.rdd_calls().clone();
        for _ in 0..4 {
            fresh.on_event(3.0, &Event::RddCall { rdd: 7 });
        }
        let delta = MetricsAggregator::rdd_call_delta(fresh.rdd_calls(), &before);
        assert_eq!(delta.get(&7), Some(&4));
        assert_eq!(fresh.rdd_calls()[&7], 6);
    }

    #[test]
    fn rdd_call_delta_against_empty_baseline_is_identity() {
        let mut m = MetricsAggregator::new();
        m.on_event(1.0, &Event::RddCall { rdd: 0 });
        m.on_event(1.0, &Event::RddCall { rdd: 3 });
        m.on_event(1.0, &Event::RddCall { rdd: 3 });
        let delta = MetricsAggregator::rdd_call_delta(m.rdd_calls(), &BTreeMap::new());
        assert_eq!(delta, m.rdd_calls().clone());
    }

    #[test]
    fn stream_aggregates_and_conditional_json_sections() {
        let mut m = MetricsAggregator::new();
        // No stream events: summary JSON has no stream/rdd_calls fields,
        // keeping pre-streaming trace summaries byte-identical.
        m.on_event(1.0, &Event::MinorGcStart);
        let json = m.to_json().to_compact();
        assert!(!json.contains("\"stream\""), "{json}");
        assert!(!json.contains("\"rdd_calls\""), "{json}");

        m.on_event(2.0, &Event::BatchStart { batch: 0 });
        m.on_event(3.0, &Event::RddCall { rdd: 1 });
        m.on_event(
            4.0,
            &Event::BatchEnd {
                batch: 0,
                latency_ns: 2.0,
            },
        );
        m.on_event(
            4.0,
            &Event::Watermark {
                batch: 0,
                event_time: 32,
            },
        );
        m.on_event(
            4.0,
            &Event::Retag {
                rdd: 1,
                from: Mem::Nvm,
                to: Mem::Dram,
            },
        );
        assert_eq!(m.batches(), 1);
        assert_eq!(m.batch_latency().count(), 1);
        assert_eq!(m.retags(), (1, 0));
        let json = m.to_json().to_compact();
        assert!(json.contains("\"stream\""), "{json}");
        assert!(json.contains("\"rdd_calls\""), "{json}");
        assert!(json.contains("\"watermarks\":1"), "{json}");
        assert!(m.summary_table().contains("stream: 1 batches"));
        assert!(m.summary_table().contains("rdd calls: 1 across 1 RDDs"));
    }

    #[test]
    fn json_output_is_deterministic() {
        let mut a = MetricsAggregator::new();
        let mut b = MetricsAggregator::new();
        let seq = [
            (1.0, Event::MinorGcStart),
            (
                2.0,
                Event::MinorGcEnd {
                    pause_ns: 1.0,
                    moved: 0,
                    freed: 0,
                },
            ),
            (3.0, Event::ShuffleSpill { bytes: 10 }),
        ];
        for (t, e) in &seq {
            a.on_event(*t, e);
            b.on_event(*t, e);
        }
        assert_eq!(a.to_json().to_compact(), b.to_json().to_compact());
    }
}
