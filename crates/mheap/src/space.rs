//! Heap spaces: bump-allocated regions of the simulated address space.
//!
//! The heap mirrors OpenJDK's Parallel Scavenge layout (paper Section 4.1):
//! a young generation of eden plus two survivor semispaces, always in DRAM,
//! and an old generation that Panthera splits into a DRAM space and an NVM
//! space (baseline modes use a single unified old space instead).

use crate::object::ObjId;
use hybridmem::Addr;
use std::fmt;

/// Identifies one old-generation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OldSpaceId(pub u8);

/// Identifies a heap space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpaceId {
    /// The young-generation allocation space.
    Eden,
    /// Survivor semispace 0.
    Survivor0,
    /// Survivor semispace 1.
    Survivor1,
    /// An old-generation space (DRAM part, NVM part, or unified).
    Old(OldSpaceId),
}

impl SpaceId {
    /// True for eden and the survivor spaces.
    pub fn is_young(self) -> bool {
        !matches!(self, SpaceId::Old(_))
    }

    /// The old-space id, if this is an old space.
    pub fn old_id(self) -> Option<OldSpaceId> {
        match self {
            SpaceId::Old(id) => Some(id),
            _ => None,
        }
    }
}

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceId::Eden => write!(f, "eden"),
            SpaceId::Survivor0 => write!(f, "survivor0"),
            SpaceId::Survivor1 => write!(f, "survivor1"),
            SpaceId::Old(id) => write!(f, "old{}", id.0),
        }
    }
}

/// A bump-allocated region.
///
/// The space also tracks, in allocation (= address) order, the objects that
/// currently live in it; collectors rebuild this list when they move or
/// reclaim objects.
#[derive(Debug, Clone)]
pub struct Space {
    id: SpaceId,
    base: Addr,
    capacity: u64,
    top: u64,
    objects: Vec<ObjId>,
}

impl Space {
    /// A new empty space at `base` with the given byte capacity.
    pub fn new(id: SpaceId, base: Addr, capacity: u64) -> Self {
        Space {
            id,
            base,
            capacity,
            top: 0,
            objects: Vec::new(),
        }
    }

    /// This space's id.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// First address of the space.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.top
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.top
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.top as f64 / self.capacity as f64
        }
    }

    /// True if `addr` falls inside this space's address range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.capacity
    }

    /// Bump-allocate `size` bytes for `obj`, returning the address, or
    /// `None` if the space is full.
    pub fn alloc(&mut self, obj: ObjId, size: u64) -> Option<Addr> {
        if self.top + size > self.capacity {
            return None;
        }
        let addr = self.base.offset(self.top);
        self.top += size;
        self.objects.push(obj);
        Some(addr)
    }

    /// Objects resident in this space, in address order.
    pub fn objects(&self) -> &[ObjId] {
        &self.objects
    }

    /// Replace the resident-object list and set the bump pointer to
    /// `used_bytes` (used by collectors after evacuation or compaction).
    pub fn reset_with(&mut self, objects: Vec<ObjId>, used_bytes: u64) {
        assert!(
            used_bytes <= self.capacity,
            "reset beyond capacity of {}",
            self.id
        );
        self.objects = objects;
        self.top = used_bytes;
    }

    /// Empty the space entirely.
    pub fn clear(&mut self) {
        self.objects.clear();
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation() {
        let mut s = Space::new(SpaceId::Eden, Addr(1000), 100);
        let a = s.alloc(ObjId(1), 40).unwrap();
        let b = s.alloc(ObjId(2), 40).unwrap();
        assert_eq!(a, Addr(1000));
        assert_eq!(b, Addr(1040));
        assert_eq!(s.used(), 80);
        assert_eq!(s.free(), 20);
        assert!(s.alloc(ObjId(3), 40).is_none(), "over capacity");
        assert_eq!(s.objects(), &[ObjId(1), ObjId(2)]);
    }

    #[test]
    fn occupancy_and_contains() {
        let mut s = Space::new(SpaceId::Survivor0, Addr(0), 200);
        assert_eq!(s.occupancy(), 0.0);
        s.alloc(ObjId(1), 100);
        assert_eq!(s.occupancy(), 0.5);
        assert!(s.contains(Addr(199)));
        assert!(!s.contains(Addr(200)));
    }

    #[test]
    fn reset_and_clear() {
        let mut s = Space::new(SpaceId::Old(OldSpaceId(0)), Addr(0), 100);
        s.alloc(ObjId(1), 10);
        s.reset_with(vec![ObjId(5)], 64);
        assert_eq!(s.used(), 64);
        assert_eq!(s.objects(), &[ObjId(5)]);
        s.clear();
        assert_eq!(s.used(), 0);
        assert!(s.objects().is_empty());
    }

    #[test]
    fn space_id_classification() {
        assert!(SpaceId::Eden.is_young());
        assert!(SpaceId::Survivor1.is_young());
        assert!(!SpaceId::Old(OldSpaceId(0)).is_young());
        assert_eq!(SpaceId::Old(OldSpaceId(2)).old_id(), Some(OldSpaceId(2)));
        assert_eq!(SpaceId::Eden.old_id(), None);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn reset_validates() {
        let mut s = Space::new(SpaceId::Eden, Addr(0), 10);
        s.reset_with(vec![], 11);
    }
}
