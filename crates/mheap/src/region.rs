//! Lifetime-based region arenas: bump-pointer memory the GC never traces.
//!
//! Deca-style region allocation ("Lifetime-Based Memory Management for
//! Distributed Data Processing Systems") decomposes data objects by
//! lifetime instead of by age. Where the generational heap pays tracing,
//! card marking, and promotion for every object, a region arena is a
//! bump pointer: allocation is an addition, and death is wholesale — the
//! whole arena is unmapped at its region's end of life, with no
//! per-object work at all.
//!
//! Three region classes cover the engine's allocation sites:
//!
//! * [`RegionClass::StageScratch`] — operator scratch and streamed
//!   temporaries that die when the enclosing stage completes. Backed by
//!   one open *stage arena* at a time, always in DRAM (scratch is hot by
//!   construction), reset at stage end.
//! * [`RegionClass::RddLifetime`] — persisted RDD payloads whose death
//!   is scheduled by the static [`LifetimePlan`]: the arena holds a
//!   consumer refcount and is freed wholesale when it reaches zero.
//! * [`RegionClass::Eternal`] — persisted RDDs whose last scheduled
//!   consumer is the program's final step; they live to the end of the
//!   run. Same mechanism as `RddLifetime`, but the classification lets
//!   placement and reporting distinguish data that never dies.
//!
//! Arenas are tagged [`DeviceKind::Dram`] or [`DeviceKind::Nvm`] as a
//! whole — the region composes with Panthera's migration tagging at
//! arena granularity, not per object. The tracing heap treats arenas as
//! roots with opaque interiors: region payloads hold no [`ObjId`]s, so
//! the six-invariant verifier is unaffected by construction.
//!
//! Like the rest of `mheap`, this module is pure bookkeeping over
//! *modelled* bytes; device time and energy are charged by the caller
//! through the [`MemorySystem`].
//!
//! [`LifetimePlan`]: ../index.html
//! [`ObjId`]: crate::ObjId
//! [`MemorySystem`]: hybridmem::MemorySystem

use hybridmem::DeviceKind;
use std::collections::HashMap;

/// The lifetime class of a region, inferred per allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionClass {
    /// Dies when the enclosing stage completes (operator scratch,
    /// streamed temporaries, unconsumed transients).
    StageScratch,
    /// Dies when the lifetime plan's consumer refcount reaches zero.
    RddLifetime,
    /// Lives until the end of the program (last consumer is the final
    /// step of the plan).
    Eternal,
}

impl RegionClass {
    /// Stable lowercase label for reports and events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RegionClass::StageScratch => "stage",
            RegionClass::RddLifetime => "rdd",
            RegionClass::Eternal => "eternal",
        }
    }
}

/// One RDD-lifetime bump arena: modelled size, device tag, class, and
/// the number of scheduled consumers still outstanding.
#[derive(Clone, Copy, Debug)]
pub struct RegionBlock {
    /// Modelled payload bytes bumped into the arena.
    pub bytes: u64,
    /// Which device the whole arena resides on.
    pub device: DeviceKind,
    /// Lifetime class ([`RegionClass::RddLifetime`] or
    /// [`RegionClass::Eternal`]; stage scratch is not block-addressed).
    pub class: RegionClass,
    /// Remaining scheduled consumers. The arena is freed wholesale when
    /// this reaches zero.
    pub refs: u32,
}

/// Cumulative allocator counters. Monotone over a run; never reset.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegionStats {
    /// Stage arenas opened.
    pub stages_opened: u64,
    /// Stage arenas closed (reset wholesale).
    pub stages_closed: u64,
    /// Bytes bumped into stage arenas.
    pub stage_bytes: u64,
    /// RDD/eternal arenas allocated.
    pub block_allocs: u64,
    /// RDD/eternal arenas freed (refcount zero or forced).
    pub block_frees: u64,
    /// Bytes bumped into RDD/eternal arenas.
    pub block_bytes: u64,
    /// Bytes returned by wholesale frees (stage resets + block frees).
    pub freed_bytes: u64,
}

/// The region allocator: at most one open stage arena plus a map of
/// refcounted RDD-lifetime arenas, with per-device residency totals.
///
/// All operations are O(1) or O(live arenas); iteration orders are
/// sorted so observable output is deterministic.
#[derive(Debug, Default)]
pub struct RegionHeap {
    /// Bytes bumped into the currently open stage arena, if any.
    stage: Option<u64>,
    /// Live RDD-lifetime arenas keyed by RDD id.
    blocks: HashMap<u32, RegionBlock>,
    /// Live arena bytes per device, indexed by [`dev_idx`].
    resident: [u64; 2],
    stats: RegionStats,
}

fn dev_idx(device: DeviceKind) -> usize {
    match device {
        DeviceKind::Dram => 0,
        DeviceKind::Nvm => 1,
    }
}

impl RegionHeap {
    /// An empty region heap with no open arenas.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Open the stage arena for the next stage.
    ///
    /// # Panics
    ///
    /// Panics if a stage arena is already open — stages do not nest.
    pub fn open_stage(&mut self) {
        assert!(
            self.stage.is_none(),
            "region: stage arena opened while one is already open"
        );
        self.stage = Some(0);
        self.stats.stages_opened += 1;
    }

    /// Whether a stage arena is currently open.
    #[must_use]
    pub fn stage_open(&self) -> bool {
        self.stage.is_some()
    }

    /// Bump `bytes` into the open stage arena. Stage arenas are always
    /// DRAM-resident.
    ///
    /// # Panics
    ///
    /// Panics if no stage arena is open.
    pub fn stage_bump(&mut self, bytes: u64) {
        let bumped = self
            .stage
            .as_mut()
            .expect("region: stage bump with no open stage arena");
        *bumped += bytes;
        self.resident[dev_idx(DeviceKind::Dram)] += bytes;
        self.stats.stage_bytes += bytes;
    }

    /// Bytes bumped into the open stage arena so far (0 if none open).
    #[must_use]
    pub fn stage_bytes(&self) -> u64 {
        self.stage.unwrap_or(0)
    }

    /// Close the open stage arena, freeing its contents wholesale.
    /// Returns the bytes released.
    ///
    /// # Panics
    ///
    /// Panics if no stage arena is open.
    pub fn close_stage(&mut self) -> u64 {
        let bumped = self
            .stage
            .take()
            .expect("region: stage close with no open stage arena");
        self.resident[dev_idx(DeviceKind::Dram)] -= bumped;
        self.stats.stages_closed += 1;
        self.stats.freed_bytes += bumped;
        bumped
    }

    /// Allocate the RDD-lifetime arena for `rdd`: `bytes` on `device`,
    /// freed wholesale after `refs` scheduled consumers release it. A
    /// `refs` of 0 is legal — the caller's schedule frees it in the same
    /// step it was born.
    ///
    /// # Panics
    ///
    /// Panics if `rdd` already has a live arena.
    pub fn alloc_block(
        &mut self,
        rdd: u32,
        bytes: u64,
        device: DeviceKind,
        class: RegionClass,
        refs: u32,
    ) {
        assert!(
            !matches!(class, RegionClass::StageScratch),
            "region: stage scratch is not block-addressed; use stage_bump"
        );
        let prev = self.blocks.insert(
            rdd,
            RegionBlock {
                bytes,
                device,
                class,
                refs,
            },
        );
        assert!(
            prev.is_none(),
            "region: double alloc of arena for rdd {rdd}"
        );
        self.resident[dev_idx(device)] += bytes;
        self.stats.block_allocs += 1;
        self.stats.block_bytes += bytes;
    }

    /// The live arena for `rdd`, if any.
    #[must_use]
    pub fn block(&self, rdd: u32) -> Option<&RegionBlock> {
        self.blocks.get(&rdd)
    }

    /// Release one scheduled consumer reference on `rdd`'s arena. If the
    /// refcount reaches zero the arena is freed wholesale and returned.
    ///
    /// # Panics
    ///
    /// Panics if `rdd` has no live arena or its refcount is already zero
    /// — both indicate a schedule bug, not a runtime condition.
    pub fn release(&mut self, rdd: u32) -> Option<RegionBlock> {
        let block = self
            .blocks
            .get_mut(&rdd)
            .unwrap_or_else(|| panic!("region: release of dead arena for rdd {rdd}"));
        assert!(block.refs > 0, "region: refcount underflow on rdd {rdd}");
        block.refs -= 1;
        if block.refs == 0 {
            return Some(self.free(rdd));
        }
        None
    }

    /// Free `rdd`'s arena wholesale regardless of refcount (unpersist,
    /// retain-0 birth-death, or end-of-run sweep). Returns the arena.
    ///
    /// # Panics
    ///
    /// Panics if `rdd` has no live arena.
    pub fn free(&mut self, rdd: u32) -> RegionBlock {
        let block = self
            .blocks
            .remove(&rdd)
            .unwrap_or_else(|| panic!("region: free of dead arena for rdd {rdd}"));
        self.resident[dev_idx(block.device)] -= block.bytes;
        self.stats.block_frees += 1;
        self.stats.freed_bytes += block.bytes;
        block
    }

    /// Number of live RDD-lifetime arenas.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Live arena bytes resident on `device` (stage arena included, as
    /// DRAM).
    #[must_use]
    pub fn resident_bytes(&self, device: DeviceKind) -> u64 {
        self.resident[dev_idx(device)]
    }

    /// Live arena bytes across both devices.
    #[must_use]
    pub fn total_resident_bytes(&self) -> u64 {
        self.resident.iter().sum()
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> RegionStats {
        self.stats
    }

    /// RDD ids with live arenas, sorted for deterministic output.
    #[must_use]
    pub fn live_rdds(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.blocks.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Check the allocator's internal invariants:
    ///
    /// 1. per-device residency equals the sum of live arena bytes (plus
    ///    the open stage arena, on DRAM);
    /// 2. every live block-addressed arena has a block class;
    /// 3. frees never exceed allocations (stage and block counts);
    /// 4. bytes bumped minus bytes freed equals bytes resident.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut live = [self.stage.unwrap_or(0), 0];
        for (rdd, b) in &self.blocks {
            if matches!(b.class, RegionClass::StageScratch) {
                return Err(format!("rdd {rdd} arena carries the stage-scratch class"));
            }
            live[dev_idx(b.device)] += b.bytes;
        }
        if live != self.resident {
            return Err(format!(
                "residency drift: counted {live:?}, recorded {:?}",
                self.resident
            ));
        }
        if self.stats.stages_closed > self.stats.stages_opened {
            return Err("more stage arenas closed than opened".to_string());
        }
        if self.stats.block_frees > self.stats.block_allocs {
            return Err("more block arenas freed than allocated".to_string());
        }
        let bumped = self.stats.stage_bytes + self.stats.block_bytes;
        if bumped - self.stats.freed_bytes != self.total_resident_bytes() {
            return Err(format!(
                "byte ledger drift: bumped {bumped} - freed {} != resident {}",
                self.stats.freed_bytes,
                self.total_resident_bytes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_arena_resets_wholesale() {
        let mut r = RegionHeap::new();
        r.open_stage();
        r.stage_bump(100);
        r.stage_bump(28);
        assert_eq!(r.stage_bytes(), 128);
        assert_eq!(r.resident_bytes(DeviceKind::Dram), 128);
        let freed = r.close_stage();
        assert_eq!(freed, 128);
        assert_eq!(r.total_resident_bytes(), 0);
        let s = r.stats();
        assert_eq!((s.stages_opened, s.stages_closed), (1, 1));
        assert_eq!(s.stage_bytes, 128);
        assert_eq!(s.freed_bytes, 128);
        r.check_invariants().unwrap();
    }

    #[test]
    fn refcounted_block_lifecycle_balances() {
        let mut r = RegionHeap::new();
        r.alloc_block(3, 512, DeviceKind::Nvm, RegionClass::RddLifetime, 2);
        assert_eq!(r.block(3).unwrap().refs, 2);
        assert!(r.release(3).is_none());
        let freed = r.release(3).expect("second release frees");
        assert_eq!(freed.bytes, 512);
        assert_eq!(r.live_blocks(), 0);
        assert_eq!(r.total_resident_bytes(), 0);
        r.check_invariants().unwrap();
    }

    #[test]
    fn force_free_ignores_refcount() {
        let mut r = RegionHeap::new();
        r.alloc_block(7, 64, DeviceKind::Dram, RegionClass::Eternal, 9);
        let b = r.free(7);
        assert_eq!((b.bytes, b.refs), (64, 9));
        assert_eq!(r.total_resident_bytes(), 0);
        r.check_invariants().unwrap();
    }

    #[test]
    fn live_rdds_are_sorted() {
        let mut r = RegionHeap::new();
        for id in [9, 2, 5] {
            r.alloc_block(id, 8, DeviceKind::Dram, RegionClass::RddLifetime, 1);
        }
        assert_eq!(r.live_rdds(), vec![2, 5, 9]);
    }

    #[test]
    fn stage_and_blocks_coexist_in_ledger() {
        let mut r = RegionHeap::new();
        r.open_stage();
        r.stage_bump(10);
        r.alloc_block(1, 20, DeviceKind::Nvm, RegionClass::RddLifetime, 1);
        assert_eq!(r.resident_bytes(DeviceKind::Dram), 10);
        assert_eq!(r.resident_bytes(DeviceKind::Nvm), 20);
        r.check_invariants().unwrap();
        r.close_stage();
        assert_eq!(r.total_resident_bytes(), 20);
        r.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "double alloc")]
    fn double_alloc_panics() {
        let mut r = RegionHeap::new();
        r.alloc_block(1, 8, DeviceKind::Dram, RegionClass::RddLifetime, 1);
        r.alloc_block(1, 8, DeviceKind::Dram, RegionClass::RddLifetime, 1);
    }

    #[test]
    #[should_panic(expected = "refcount underflow")]
    fn zero_ref_release_panics() {
        let mut r = RegionHeap::new();
        r.alloc_block(1, 8, DeviceKind::Dram, RegionClass::RddLifetime, 0);
        r.release(1);
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn nested_stage_panics() {
        let mut r = RegionHeap::new();
        r.open_stage();
        r.open_stage();
    }
}
