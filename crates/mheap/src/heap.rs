//! The simulated managed heap.
//!
//! Owns the object slab, the generational spaces, the card tables, the
//! write barrier, and the [`MemorySystem`] every operation charges its
//! traffic to. Collection *policy* lives in the `gc` crate; this module
//! provides the mechanisms collectors are built from (allocate, move,
//! free, dirty cards, rebuild spaces).

use crate::card::{pad_to_card, CardTable};
use crate::config::{HeapConfig, OldGenLayout};
use crate::object::{object_bytes, ObjId, ObjKind, Object, HEADER_BYTES, REF_BYTES};
use crate::payload::Payload;
use crate::space::{OldSpaceId, Space, SpaceId};
use crate::tag::MemTag;
use hybridmem::{AccessKind, AccessProfile, Addr, DeviceKind, MemorySystem, MemorySystemConfig};
use std::collections::HashMap;

/// CPU cost of the write-barrier fast path, per reference store.
const BARRIER_NS: f64 = 1.0;
/// Extra CPU cost per store for Kingsguard-Writes-style write monitoring.
const WRITE_MONITOR_NS: f64 = 25.0;

/// Errors surfaced by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// Eden cannot satisfy an allocation; the caller should run a minor GC.
    EdenFull {
        /// Bytes that were requested.
        need: u64,
    },
    /// An old space cannot satisfy an allocation or promotion.
    OldSpaceFull {
        /// The exhausted space.
        space: OldSpaceId,
        /// Bytes that were requested.
        need: u64,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::EdenFull { need } => write!(f, "eden full ({need} bytes requested)"),
            HeapError::OldSpaceFull { space, need } => {
                write!(f, "old space {} full ({need} bytes requested)", space.0)
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// Aggregate heap counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapStats {
    /// Objects allocated in the young generation.
    pub young_allocs: u64,
    /// Objects allocated directly in the old generation (pretenured).
    pub pretenured_allocs: u64,
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Reference stores that went through the write barrier.
    pub ref_stores: u64,
    /// Cards dirtied by the barrier.
    pub cards_dirtied: u64,
    /// Objects moved by collectors.
    pub moves: u64,
    /// Objects freed by collectors.
    pub frees: u64,
}

impl HeapStats {
    /// Serialize every counter as a JSON object with stable key order.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("young_allocs", Json::UInt(self.young_allocs)),
            ("pretenured_allocs", Json::UInt(self.pretenured_allocs)),
            ("allocated_bytes", Json::UInt(self.allocated_bytes)),
            ("ref_stores", Json::UInt(self.ref_stores)),
            ("cards_dirtied", Json::UInt(self.cards_dirtied)),
            ("moves", Json::UInt(self.moves)),
            ("frees", Json::UInt(self.frees)),
        ])
    }
}

/// The simulated heap. See the crate docs for the overall model.
#[derive(Debug)]
pub struct Heap {
    config: HeapConfig,
    mem: MemorySystem,
    objects: Vec<Option<Object>>,
    free_ids: Vec<u32>,
    eden: Space,
    survivors: [Space; 2],
    /// Index into `survivors` of the current from-space.
    from_idx: usize,
    olds: Vec<Space>,
    cards: Vec<CardTable>,
    old_dram: Option<OldSpaceId>,
    old_nvm: Option<OldSpaceId>,
    write_counts: HashMap<ObjId, u64>,
    stats: HeapStats,
}

impl Heap {
    /// Build a heap per `config`, registering its regions with a fresh
    /// [`MemorySystem`] configured by `mem_config`.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is inconsistent.
    pub fn new(config: HeapConfig, mem_config: MemorySystemConfig) -> Result<Self, String> {
        config.validate()?;
        let mut mem = MemorySystem::new(mem_config);

        // Young generation: always DRAM (design choice in Section 1.2).
        let eden_base = mem
            .layout_mut()
            .add_fixed("eden", config.eden_bytes(), DeviceKind::Dram);
        let s0_base =
            mem.layout_mut()
                .add_fixed("survivor0", config.survivor_bytes(), DeviceKind::Dram);
        let s1_base =
            mem.layout_mut()
                .add_fixed("survivor1", config.survivor_bytes(), DeviceKind::Dram);

        let eden = Space::new(SpaceId::Eden, eden_base, config.eden_bytes());
        let survivors = [
            Space::new(SpaceId::Survivor0, s0_base, config.survivor_bytes()),
            Space::new(SpaceId::Survivor1, s1_base, config.survivor_bytes()),
        ];

        let mut olds = Vec::new();
        let mut cards = Vec::new();
        let mut old_dram = None;
        let mut old_nvm = None;
        match &config.old_layout {
            OldGenLayout::SplitDramNvm => {
                let dram_bytes = config.old_dram_bytes();
                let nvm_bytes = config.old_nvm_bytes();
                let base = mem
                    .layout_mut()
                    .add_fixed("old-dram", dram_bytes, DeviceKind::Dram);
                olds.push(Space::new(SpaceId::Old(OldSpaceId(0)), base, dram_bytes));
                cards.push(CardTable::new(base, dram_bytes));
                old_dram = Some(OldSpaceId(0));
                let base = mem
                    .layout_mut()
                    .add_fixed("old-nvm", nvm_bytes, DeviceKind::Nvm);
                olds.push(Space::new(SpaceId::Old(OldSpaceId(1)), base, nvm_bytes));
                cards.push(CardTable::new(base, nvm_bytes));
                old_nvm = Some(OldSpaceId(1));
            }
            OldGenLayout::Unified(device) => {
                let bytes = config.old_bytes();
                let base = mem.layout_mut().add_fixed("old", bytes, *device);
                olds.push(Space::new(SpaceId::Old(OldSpaceId(0)), base, bytes));
                cards.push(CardTable::new(base, bytes));
            }
            OldGenLayout::Interleaved { chunk_bytes } => {
                let bytes = config.old_bytes();
                let base = mem.layout_mut().add_interleaved(
                    "old-interleaved",
                    bytes,
                    *chunk_bytes,
                    config.dram_ratio,
                    config.seed,
                );
                olds.push(Space::new(SpaceId::Old(OldSpaceId(0)), base, bytes));
                cards.push(CardTable::new(base, bytes));
            }
        }

        Ok(Heap {
            config,
            mem,
            objects: Vec::new(),
            free_ids: Vec::new(),
            eden,
            survivors,
            from_idx: 0,
            olds,
            cards,
            old_dram,
            old_nvm,
            write_counts: HashMap::new(),
            stats: HeapStats::default(),
        })
    }

    /// The heap's configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// The underlying memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (phase switching, compute time).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Install the event-observer handle on the underlying memory system.
    pub fn set_observer(&mut self, observer: obs::Observer) {
        self.mem.set_observer(observer);
    }

    /// The event-observer handle (disabled by default).
    pub fn observer(&self) -> &obs::Observer {
        self.mem.observer()
    }

    /// The [`obs::AllocSpace`] label for an old space, for `AllocFail`
    /// events.
    fn alloc_space_of(&self, space: OldSpaceId) -> obs::AllocSpace {
        if self.old_dram == Some(space) {
            obs::AllocSpace::OldDram
        } else if self.old_nvm == Some(space) {
            obs::AllocSpace::OldNvm
        } else {
            obs::AllocSpace::Old
        }
    }

    /// Emit an [`obs::Event::AllocFail`] observation (never charges).
    fn note_alloc_fail(&self, space: obs::AllocSpace, need: u64) {
        let observer = self.mem.observer();
        if observer.enabled() {
            observer.emit(
                self.mem.clock().now_ns(),
                &obs::Event::AllocFail { space, need },
            );
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// The DRAM old space, if the old generation is split.
    pub fn old_dram(&self) -> Option<OldSpaceId> {
        self.old_dram
    }

    /// The NVM old space, if the old generation is split.
    pub fn old_nvm(&self) -> Option<OldSpaceId> {
        self.old_nvm
    }

    /// Ids of all old spaces.
    pub fn old_space_ids(&self) -> Vec<OldSpaceId> {
        (0..self.olds.len() as u8).map(OldSpaceId).collect()
    }

    /// Total free bytes across the old generation.
    pub fn old_free(&self) -> u64 {
        self.olds.iter().map(Space::free).sum()
    }

    /// Modelled heap footprint of one tuple carrying `payload_bytes`.
    pub fn tuple_footprint(&self, payload_bytes: u64) -> u64 {
        object_bytes(payload_bytes, 0) + self.config.tuple_bloat_bytes
    }

    /// The access profile matching the current phase: 16-thread parallel GC
    /// inside collections, single mutator thread otherwise.
    pub fn profile(&self) -> AccessProfile {
        if self.mem.clock().phase().is_gc() {
            AccessProfile::parallel_gc()
        } else {
            AccessProfile::mutator()
        }
    }

    // ------------------------------------------------------------------
    // Object access
    // ------------------------------------------------------------------

    /// Borrow an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dangling.
    pub fn obj(&self, id: ObjId) -> &Object {
        self.objects
            .get(id.0 as usize)
            .and_then(|o| o.as_ref())
            .unwrap_or_else(|| panic!("dangling {id}"))
    }

    /// Mutably borrow an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dangling.
    pub fn obj_mut(&mut self, id: ObjId) -> &mut Object {
        self.objects
            .get_mut(id.0 as usize)
            .and_then(|o| o.as_mut())
            .unwrap_or_else(|| panic!("dangling {id}"))
    }

    /// True if `id` refers to a live (unreclaimed) object.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.objects.get(id.0 as usize).is_some_and(|o| o.is_some())
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.objects.iter().filter(|o| o.is_some()).count()
    }

    /// Ids of every live object in the slab, ascending (the verifier's
    /// whole-heap walk).
    pub fn live_ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| ObjId(i as u32))
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocate a young-generation object (the TLAB fast path).
    ///
    /// # Examples
    ///
    /// ```
    /// use mheap::{Heap, HeapConfig, MemTag, ObjKind, Payload};
    /// use hybridmem::MemorySystemConfig;
    ///
    /// let mut heap = Heap::new(
    ///     HeapConfig::panthera(600_000, 1.0 / 3.0),
    ///     MemorySystemConfig::with_capacities(200_000, 400_000),
    /// )?;
    /// let tuple = heap
    ///     .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(1))
    ///     .expect("eden has room");
    /// assert!(heap.obj(tuple).in_young());
    /// # Ok::<(), String>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`HeapError::EdenFull`] if eden cannot hold the object; the caller
    /// should collect and retry.
    pub fn alloc_young(
        &mut self,
        kind: ObjKind,
        tag: MemTag,
        refs: Vec<ObjId>,
        payload: Payload,
    ) -> Result<ObjId, HeapError> {
        let size = object_bytes(payload.model_bytes(), refs.len()) + self.bloat_of(kind);
        let id = self.reserve_id();
        let addr = match self.eden.alloc(id, size) {
            Some(a) => a,
            None => {
                self.release_id(id);
                self.note_alloc_fail(obs::AllocSpace::Eden, size);
                return Err(HeapError::EdenFull { need: size });
            }
        };
        self.install(id, kind, size, addr, SpaceId::Eden, tag, refs, payload);
        self.stats.young_allocs += 1;
        self.stats.allocated_bytes += size;
        self.charge(addr, AccessKind::Write, size);
        Ok(id)
    }

    /// Allocate an object directly in an old space (pretenuring). RDD
    /// arrays are card-padded when the optimization is enabled.
    ///
    /// # Errors
    ///
    /// [`HeapError::OldSpaceFull`] if the space cannot hold the object.
    pub fn alloc_old(
        &mut self,
        space: OldSpaceId,
        kind: ObjKind,
        tag: MemTag,
        refs: Vec<ObjId>,
        payload: Payload,
    ) -> Result<ObjId, HeapError> {
        let raw = object_bytes(payload.model_bytes(), refs.len()) + self.bloat_of(kind);
        let size = self.sized_for(space, kind, raw);
        let id = self.reserve_id();
        let addr = match self.olds[space.0 as usize].alloc(id, size) {
            Some(a) => a,
            None => {
                self.release_id(id);
                self.note_alloc_fail(self.alloc_space_of(space), size);
                return Err(HeapError::OldSpaceFull { space, need: size });
            }
        };
        self.install(
            id,
            kind,
            size,
            addr,
            SpaceId::Old(space),
            tag,
            refs,
            payload,
        );
        self.stats.pretenured_allocs += 1;
        self.stats.allocated_bytes += size;
        self.charge(addr, AccessKind::Write, size);
        Ok(id)
    }

    /// Allocate an RDD backbone array with `slots` reference slots in the
    /// given old space.
    ///
    /// # Errors
    ///
    /// [`HeapError::OldSpaceFull`] if the space cannot hold the array.
    pub fn alloc_array_old(
        &mut self,
        space: OldSpaceId,
        rdd_id: u32,
        slots: usize,
        tag: MemTag,
    ) -> Result<ObjId, HeapError> {
        let raw = object_bytes(REF_BYTES * slots as u64, 0);
        let size = self.sized_for(space, ObjKind::RddArray { rdd_id }, raw);
        let id = self.reserve_id();
        let addr = match self.olds[space.0 as usize].alloc(id, size) {
            Some(a) => a,
            None => {
                self.release_id(id);
                self.note_alloc_fail(self.alloc_space_of(space), size);
                return Err(HeapError::OldSpaceFull { space, need: size });
            }
        };
        self.install(
            id,
            ObjKind::RddArray { rdd_id },
            size,
            addr,
            SpaceId::Old(space),
            tag,
            Vec::with_capacity(slots.min(1 << 20)),
            Payload::Unit,
        );
        self.stats.pretenured_allocs += 1;
        self.stats.allocated_bytes += size;
        self.charge(addr, AccessKind::Write, HEADER_BYTES);
        Ok(id)
    }

    /// Allocate an RDD backbone array in the young generation (used when
    /// the RDD has no tag).
    ///
    /// # Errors
    ///
    /// [`HeapError::EdenFull`] if eden cannot hold the array.
    pub fn alloc_array_young(&mut self, rdd_id: u32, slots: usize) -> Result<ObjId, HeapError> {
        let payload_bytes = REF_BYTES * slots as u64;
        let size = object_bytes(payload_bytes, 0);
        let id = self.reserve_id();
        let addr = match self.eden.alloc(id, size) {
            Some(a) => a,
            None => {
                self.release_id(id);
                self.note_alloc_fail(obs::AllocSpace::Eden, size);
                return Err(HeapError::EdenFull { need: size });
            }
        };
        self.install(
            id,
            ObjKind::RddArray { rdd_id },
            size,
            addr,
            SpaceId::Eden,
            MemTag::None,
            Vec::with_capacity(slots.min(1 << 20)),
            Payload::Unit,
        );
        self.stats.young_allocs += 1;
        self.stats.allocated_bytes += size;
        self.charge(addr, AccessKind::Write, HEADER_BYTES);
        Ok(id)
    }

    /// Representation-bloat surcharge for data tuples (see
    /// [`HeapConfig::tuple_bloat_bytes`]).
    fn bloat_of(&self, kind: ObjKind) -> u64 {
        if matches!(kind, ObjKind::Tuple) {
            self.config.tuple_bloat_bytes
        } else {
            0
        }
    }

    /// Size an object for an old-space allocation. With card padding on,
    /// RDD arrays are padded so their *end* lands on a card boundary
    /// (Section 4.2.3) — the padding therefore depends on where the space's
    /// bump pointer currently is.
    fn sized_for(&self, space: OldSpaceId, kind: ObjKind, raw: u64) -> u64 {
        if kind.is_array() && self.config.card_padding {
            let end_rel = self.olds[space.0 as usize].used() + raw;
            raw + (pad_to_card(end_rel) - end_rel)
        } else {
            raw
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn install(
        &mut self,
        id: ObjId,
        kind: ObjKind,
        size: u64,
        addr: Addr,
        space: SpaceId,
        tag: MemTag,
        refs: Vec<ObjId>,
        payload: Payload,
    ) {
        self.objects[id.0 as usize] = Some(Object {
            kind,
            size,
            addr,
            space,
            tag,
            age: 0,
            marked: false,
            refs,
            payload,
        });
    }

    fn reserve_id(&mut self) -> ObjId {
        if let Some(i) = self.free_ids.pop() {
            ObjId(i)
        } else {
            self.objects.push(None);
            ObjId((self.objects.len() - 1) as u32)
        }
    }

    fn release_id(&mut self, id: ObjId) {
        debug_assert!(self.objects[id.0 as usize].is_none());
        self.free_ids.push(id.0);
    }

    // ------------------------------------------------------------------
    // Reads, writes, barrier
    // ------------------------------------------------------------------

    fn charge(&mut self, addr: Addr, kind: AccessKind, bytes: u64) {
        let profile = self.profile();
        self.mem.access(addr, kind, bytes, profile);
    }

    /// Charge a read of the whole object (header + payload + ref slots).
    pub fn read_object(&mut self, id: ObjId) {
        let (addr, size) = {
            let o = self.obj(id);
            (o.addr, o.size)
        };
        self.charge(addr, AccessKind::Read, size);
    }

    /// Charge a *sequential* read of the whole object, as part of a bulk
    /// scan that enjoys hardware prefetching.
    pub fn read_object_streaming(&mut self, id: ObjId) {
        let (addr, size) = {
            let o = self.obj(id);
            (o.addr, o.size)
        };
        self.mem
            .access(addr, AccessKind::Read, size, AccessProfile::streaming());
    }

    /// Charge a read of `bytes` bytes of the object.
    pub fn read_bytes(&mut self, id: ObjId, bytes: u64) {
        let addr = self.obj(id).addr;
        self.charge(addr, AccessKind::Read, bytes);
    }

    /// Overwrite the payload, charging a write of the payload bytes.
    pub fn write_payload(&mut self, id: ObjId, payload: Payload) {
        let (addr, bytes) = {
            let o = self.obj(id);
            (o.addr, payload.model_bytes().max(8))
        };
        self.obj_mut(id).payload = payload;
        self.charge(addr, AccessKind::Write, bytes);
    }

    /// Store a reference `src.refs[index] = target` through the write
    /// barrier: charges the slot write, dirties the card if `src` is in the
    /// old generation, and counts the write when write tracking is on.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_ref(&mut self, src: ObjId, index: usize, target: ObjId) {
        let slot_addr = {
            let o = self.obj_mut(src);
            assert!(index < o.refs.len(), "ref slot {index} out of bounds");
            o.refs[index] = target;
            o.slot_addr(index)
        };
        self.barrier(src, slot_addr);
    }

    /// Append a reference to `src.refs` through the write barrier.
    pub fn push_ref(&mut self, src: ObjId, target: ObjId) {
        let slot_addr = {
            let o = self.obj_mut(src);
            o.refs.push(target);
            o.slot_addr(o.refs.len() - 1)
        };
        self.barrier(src, slot_addr);
    }

    fn barrier(&mut self, src: ObjId, slot_addr: Addr) {
        self.stats.ref_stores += 1;
        self.charge(slot_addr, AccessKind::Write, REF_BYTES);
        self.mem.compute(BARRIER_NS);
        let space = self.obj(src).space;
        if let SpaceId::Old(old_id) = space {
            self.cards[old_id.0 as usize].mark_dirty(slot_addr);
            self.stats.cards_dirtied += 1;
        }
        if self.config.track_writes {
            self.mem.compute(WRITE_MONITOR_NS);
            *self.write_counts.entry(src).or_insert(0) += 1;
        }
    }

    /// Per-object write counts (Kingsguard-Writes monitoring).
    pub fn write_counts(&self) -> &HashMap<ObjId, u64> {
        &self.write_counts
    }

    /// Clear the write-count table (after a migration pass).
    pub fn clear_write_counts(&mut self) {
        self.write_counts.clear();
    }

    // ------------------------------------------------------------------
    // Spaces
    // ------------------------------------------------------------------

    /// The eden space.
    pub fn eden(&self) -> &Space {
        &self.eden
    }

    /// The current from-survivor space.
    pub fn from_space(&self) -> &Space {
        &self.survivors[self.from_idx]
    }

    /// The current to-survivor space.
    pub fn to_space(&self) -> &Space {
        &self.survivors[1 - self.from_idx]
    }

    /// An old space by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn old(&self, id: OldSpaceId) -> &Space {
        &self.olds[id.0 as usize]
    }

    /// The card table of an old space.
    pub fn card_table(&self, id: OldSpaceId) -> &CardTable {
        &self.cards[id.0 as usize]
    }

    /// Mutable card table of an old space.
    pub fn card_table_mut(&mut self, id: OldSpaceId) -> &mut CardTable {
        &mut self.cards[id.0 as usize]
    }

    /// Device backing a fixed space (interleaved spaces vary per address).
    pub fn device_of(&self, addr: Addr) -> DeviceKind {
        self.mem.device_of(addr)
    }

    /// Resolve a space id to the space.
    pub fn space(&self, id: SpaceId) -> &Space {
        match id {
            SpaceId::Eden => &self.eden,
            SpaceId::Survivor0 => &self.survivors[0],
            SpaceId::Survivor1 => &self.survivors[1],
            SpaceId::Old(o) => &self.olds[o.0 as usize],
        }
    }

    // ------------------------------------------------------------------
    // Collector mechanisms
    // ------------------------------------------------------------------

    /// Move an object into an old space, charging the copy traffic
    /// (read at the source device, write at the destination device).
    ///
    /// # Errors
    ///
    /// [`HeapError::OldSpaceFull`] if the destination cannot hold it.
    pub fn move_to_old(&mut self, id: ObjId, dest: OldSpaceId) -> Result<(), HeapError> {
        let (src_addr, size) = {
            let o = self.obj(id);
            (o.addr, o.size)
        };
        let new_addr =
            self.olds[dest.0 as usize]
                .alloc(id, size)
                .ok_or(HeapError::OldSpaceFull {
                    space: dest,
                    need: size,
                })?;
        self.charge(src_addr, AccessKind::Read, size);
        self.charge(new_addr, AccessKind::Write, size);
        let o = self.obj_mut(id);
        o.addr = new_addr;
        o.space = SpaceId::Old(dest);
        self.stats.moves += 1;
        // The object's remembered-set state must move with it: every slot
        // that still references the young generation dirties the card *the
        // slot itself* lands on — a multi-card array's young pointer can sit
        // many cards past the header, and dirtying only the header card
        // would let the next minor GC miss it.
        let young_slots: Vec<Addr> = {
            let o = self.obj(id);
            o.refs
                .iter()
                .enumerate()
                .filter(|(_, t)| self.is_live(**t) && self.obj(**t).in_young())
                .map(|(i, _)| o.slot_addr(i))
                .collect()
        };
        for slot in young_slots {
            self.cards[dest.0 as usize].mark_dirty(slot);
        }
        Ok(())
    }

    /// Copy a surviving young object into the to-space, charging traffic.
    ///
    /// Returns `false` (without copying) if the to-space is full — the
    /// caller should promote instead.
    pub fn copy_to_survivor(&mut self, id: ObjId) -> bool {
        let (src_addr, size) = {
            let o = self.obj(id);
            (o.addr, o.size)
        };
        let to = 1 - self.from_idx;
        let Some(new_addr) = self.survivors[to].alloc(id, size) else {
            return false;
        };
        self.charge(src_addr, AccessKind::Read, size);
        self.charge(new_addr, AccessKind::Write, size);
        let to_id = self.survivors[to].id();
        let o = self.obj_mut(id);
        o.addr = new_addr;
        o.space = to_id;
        o.age = o.age.saturating_add(1);
        self.stats.moves += 1;
        true
    }

    /// After a minor collection: empty eden and the from-space, then swap
    /// survivor roles.
    pub fn finish_minor(&mut self) {
        self.eden.clear();
        self.survivors[self.from_idx].clear();
        self.from_idx = 1 - self.from_idx;
    }

    /// Reclaim an object (no traffic: the collector simply never copies the
    /// dead).
    pub fn free(&mut self, id: ObjId) {
        let slot = &mut self.objects[id.0 as usize];
        assert!(slot.is_some(), "double free of {id}");
        *slot = None;
        self.free_ids.push(id.0);
        self.stats.frees += 1;
    }

    /// Rebuild an old space after compaction: reassign addresses in order,
    /// charging copy traffic for every object that actually moves.
    ///
    /// `live` must be the surviving objects of that space in (old) address
    /// order. Returns the bytes in use after compaction.
    pub fn compact_old(&mut self, space_id: OldSpaceId, live: Vec<ObjId>) -> u64 {
        let base = self.olds[space_id.0 as usize].base();
        let mut cursor = 0u64;
        for &id in &live {
            let (old_addr, size) = {
                let o = self.obj(id);
                (o.addr, o.size)
            };
            let new_addr = base.offset(cursor);
            if new_addr != old_addr {
                self.charge(old_addr, AccessKind::Read, size);
                self.charge(new_addr, AccessKind::Write, size);
                let o = self.obj_mut(id);
                o.addr = new_addr;
                self.stats.moves += 1;
            }
            cursor += size;
        }
        self.olds[space_id.0 as usize].reset_with(live, cursor);
        cursor
    }

    /// Replace an old space's resident list without moving anything (used
    /// after sweeps that only remove dead entries).
    pub fn retain_old(&mut self, space_id: OldSpaceId, live: Vec<ObjId>, used: u64) {
        self.olds[space_id.0 as usize].reset_with(live, used);
    }

    /// A one-line occupancy summary per space, for debugging and examples.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let spaces: Vec<&Space> = std::iter::once(&self.eden)
            .chain(self.survivors.iter())
            .chain(self.olds.iter())
            .collect();
        for s in spaces {
            let device = match s.id() {
                SpaceId::Old(_) => None,
                _ => Some(DeviceKind::Dram),
            };
            let device = device
                .unwrap_or_else(|| self.mem.device_of(s.base()))
                .to_string();
            out.push_str(&format!(
                "{:<10} {:>9}B / {:>9}B ({:>5.1}%) on {} with {} objects\n",
                s.id().to_string(),
                s.used(),
                s.capacity(),
                s.occupancy() * 100.0,
                device,
                s.objects().len(),
            ));
        }
        out
    }

    /// Check the heap's structural invariants, returning the first
    /// violation found. Collectors' tests call this after every cycle;
    /// it performs no charging.
    ///
    /// Invariants:
    /// 1. every resident-list entry is live and records the space it is
    ///    listed in;
    /// 2. resident lists are address-sorted and objects don't overlap;
    /// 3. every live object appears in exactly one resident list;
    /// 4. live objects' references point at live objects;
    /// 5. space bump pointers are within capacity.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_integrity(&self) -> Result<(), String> {
        let mut seen: HashMap<ObjId, SpaceId> = HashMap::new();
        let all_spaces: Vec<&Space> = std::iter::once(&self.eden)
            .chain(self.survivors.iter())
            .chain(self.olds.iter())
            .collect();
        for space in &all_spaces {
            if space.used() > space.capacity() {
                return Err(format!("{} over capacity", space.id()));
            }
            let mut prev_end = 0u64;
            for id in space.objects() {
                if !self.is_live(*id) {
                    return Err(format!("{} lists dead {id}", space.id()));
                }
                let o = self.obj(*id);
                if o.space != space.id() {
                    return Err(format!(
                        "{id} listed in {} but records {}",
                        space.id(),
                        o.space
                    ));
                }
                if o.addr.0 < space.base().0 || o.end().0 > space.base().0 + space.capacity() {
                    return Err(format!("{id} outside {}", space.id()));
                }
                if o.addr.0 < prev_end {
                    return Err(format!("{id} overlaps its predecessor in {}", space.id()));
                }
                prev_end = o.end().0;
                if let Some(first) = seen.insert(*id, space.id()) {
                    return Err(format!("{id} listed in both {first} and {}", space.id()));
                }
            }
        }
        for (i, slot) in self.objects.iter().enumerate() {
            let Some(o) = slot else { continue };
            let id = ObjId(i as u32);
            if !seen.contains_key(&id) {
                return Err(format!(
                    "live {id} in {} missing from resident lists",
                    o.space
                ));
            }
            for r in &o.refs {
                if !self.is_live(*r) {
                    return Err(format!("{id} references dead {r}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::Phase;

    fn heap() -> Heap {
        let cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
        let mem = MemorySystemConfig::with_capacities(200_000, 400_000);
        Heap::new(cfg, mem).unwrap()
    }

    #[test]
    fn layout_registers_young_in_dram() {
        let h = heap();
        assert_eq!(h.device_of(h.eden().base()), DeviceKind::Dram);
        assert_eq!(h.device_of(h.from_space().base()), DeviceKind::Dram);
        let dram = h.old_dram().unwrap();
        let nvm = h.old_nvm().unwrap();
        assert_eq!(h.device_of(h.old(dram).base()), DeviceKind::Dram);
        assert_eq!(h.device_of(h.old(nvm).base()), DeviceKind::Nvm);
    }

    #[test]
    fn young_allocation_charges_writes() {
        let mut h = heap();
        let id = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(1))
            .unwrap();
        assert!(h.is_live(id));
        assert_eq!(h.obj(id).space, SpaceId::Eden);
        assert!(h.mem().stats().total_device_bytes(DeviceKind::Dram) > 0);
        assert_eq!(h.stats().young_allocs, 1);
    }

    #[test]
    fn eden_exhaustion_reports_error() {
        let mut h = heap();
        let huge = Payload::doubles(vec![0.0; 100_000]);
        let err = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], huge)
            .unwrap_err();
        assert!(matches!(err, HeapError::EdenFull { .. }));
    }

    #[test]
    fn pretenured_array_goes_to_tagged_space() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let id = h.alloc_array_old(nvm, 7, 100, MemTag::Nvm).unwrap();
        let o = h.obj(id);
        assert_eq!(o.space, SpaceId::Old(nvm));
        assert_eq!(o.tag, MemTag::Nvm);
        assert!(o.kind.is_array());
        assert_eq!(h.device_of(o.addr), DeviceKind::Nvm);
    }

    #[test]
    fn array_padding_aligns_end_to_card() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        // Disturb alignment with a small tuple first.
        h.alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(1))
            .unwrap();
        let id = h.alloc_array_old(nvm, 7, 3, MemTag::Nvm).unwrap();
        let o = h.obj(id);
        let base = h.old(nvm).base();
        let end_rel = o.addr.0 - base.0 + o.size;
        assert_eq!(
            end_rel % crate::card::CARD_BYTES,
            0,
            "array end is card-aligned"
        );
    }

    #[test]
    fn no_padding_when_disabled() {
        let mut cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
        cfg.card_padding = false;
        let mut h = Heap::new(cfg, MemorySystemConfig::with_capacities(1, 1)).unwrap();
        let nvm = h.old_nvm().unwrap();
        let id = h.alloc_array_old(nvm, 7, 3, MemTag::Nvm).unwrap();
        assert_eq!(h.obj(id).size, object_bytes(REF_BYTES * 3, 0));
    }

    #[test]
    fn barrier_dirties_old_cards_only() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let arr = h.alloc_array_old(nvm, 1, 10, MemTag::Nvm).unwrap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(5))
            .unwrap();
        assert_eq!(h.card_table(nvm).dirty_count(), 0);
        h.push_ref(arr, t);
        assert_eq!(h.card_table(nvm).dirty_count(), 1);

        // Young-to-young stores do not dirty cards.
        let t2 = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![t], Payload::Unit)
            .unwrap();
        h.set_ref(t2, 0, t);
        assert_eq!(h.stats().cards_dirtied, 1);
    }

    #[test]
    fn write_tracking_counts() {
        let cfg = {
            let mut c = HeapConfig::panthera(600_000, 1.0 / 3.0);
            c.track_writes = true;
            c
        };
        let mut h = Heap::new(cfg, MemorySystemConfig::with_capacities(1, 1)).unwrap();
        let a = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        let b = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        h.push_ref(a, b);
        h.push_ref(a, b);
        assert_eq!(h.write_counts()[&a], 2);
        h.clear_write_counts();
        assert!(h.write_counts().is_empty());
    }

    #[test]
    fn survivor_copy_and_swap() {
        let mut h = heap();
        let id = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(9))
            .unwrap();
        assert!(h.copy_to_survivor(id));
        let to_id = h.to_space().id();
        assert_eq!(h.obj(id).space, to_id);
        assert_eq!(h.obj(id).age, 1);
        h.finish_minor();
        // The object's space is now the *from*-space after the swap.
        assert_eq!(h.from_space().id(), to_id);
        assert_eq!(h.eden().used(), 0);
    }

    #[test]
    fn move_to_old_charges_both_devices() {
        let mut h = heap();
        let id = h
            .alloc_young(ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(3))
            .unwrap();
        let before_nvm = h.mem().stats().total_device_bytes(DeviceKind::Nvm);
        let nvm = h.old_nvm().unwrap();
        h.move_to_old(id, nvm).unwrap();
        assert_eq!(h.obj(id).space, SpaceId::Old(nvm));
        assert!(h.mem().stats().total_device_bytes(DeviceKind::Nvm) > before_nvm);
    }

    #[test]
    fn compaction_slides_objects() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let a = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(1))
            .unwrap();
        let b = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(2))
            .unwrap();
        let c = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(3))
            .unwrap();
        let base = h.old(nvm).base();
        let size = h.obj(a).size;
        // Kill b, compact: c slides into b's slot.
        h.free(b);
        let used = h.compact_old(nvm, vec![a, c]);
        assert_eq!(used, 2 * size);
        assert_eq!(h.obj(a).addr, base);
        assert_eq!(h.obj(c).addr, base.offset(size));
        assert_eq!(h.old(nvm).objects(), &[a, c]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = heap();
        let id = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        h.free(id);
        h.free(id);
    }

    #[test]
    fn freed_ids_are_reused() {
        let mut h = heap();
        let a = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        h.free(a);
        let b = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        assert_eq!(a, b, "slab reuses freed slots");
    }

    #[test]
    fn describe_covers_every_space() {
        let h = heap();
        let d = h.describe();
        for name in ["eden", "survivor0", "survivor1", "old0", "old1"] {
            assert!(d.contains(name), "describe missing {name}: {d}");
        }
        assert!(d.contains("DRAM") && d.contains("NVM"));
    }

    #[test]
    fn integrity_passes_on_fresh_and_populated_heaps() {
        let mut h = heap();
        h.check_integrity().unwrap();
        let nvm = h.old_nvm().unwrap();
        let arr = h.alloc_array_old(nvm, 1, 8, MemTag::Nvm).unwrap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(1))
            .unwrap();
        h.push_ref(arr, t);
        h.check_integrity().unwrap();
    }

    #[test]
    fn gc_phase_switches_profile() {
        let mut h = heap();
        assert_eq!(h.profile(), AccessProfile::mutator());
        h.mem_mut().enter_phase(Phase::MinorGc);
        assert_eq!(h.profile(), AccessProfile::parallel_gc());
    }
}
