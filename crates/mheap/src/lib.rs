#![deny(missing_docs)]

//! A simulated managed heap in the image of OpenJDK 8's Parallel Scavenge
//! layout, extended with Panthera's hybrid-memory structure (paper
//! Section 4.1):
//!
//! * a **young generation** (eden + two survivor semispaces) placed
//!   entirely in DRAM;
//! * an **old generation** that is either *split* into a DRAM space and an
//!   NVM space (Panthera) or *unified* on one device / interleaved across
//!   both (the baselines);
//! * two reserved `MEMORY_BITS` in every object header carrying the
//!   DRAM/NVM placement tag;
//! * a **card table** (512-byte cards) maintained by the write barrier,
//!   including the shared-card pathology and the card-padding fix of
//!   Section 4.2.3.
//!
//! Objects are records with stable ids; moving an object only changes its
//! simulated address, and every allocation, copy, scan, and barrier charges
//! traffic to the [`hybridmem`] memory system so time and energy reflect
//! the devices touched.
//!
//! ```
//! use mheap::{Heap, HeapConfig, MemTag, ObjKind, Payload};
//! use hybridmem::MemorySystemConfig;
//!
//! let config = HeapConfig::panthera(1_000_000, 1.0 / 3.0);
//! let mut heap = Heap::new(config, MemorySystemConfig::with_capacities(
//!     333_333, 666_667,
//! )).expect("valid config");
//!
//! // A persisted RDD's backbone array is pretenured into old-gen NVM...
//! let nvm = heap.old_nvm().unwrap();
//! let array = heap.alloc_array_old(nvm, 0, 128, MemTag::Nvm).unwrap();
//! // ...while its tuples start in eden and are moved there by the GC later.
//! let tuple = heap
//!     .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(42))
//!     .unwrap();
//! heap.push_ref(array, tuple); // write barrier dirties the card
//! assert_eq!(heap.card_table(nvm).dirty_count(), 1);
//! ```

mod card;
mod config;
mod heap;
mod object;
mod offheap;
mod payload;
mod region;
mod roots;
mod space;
mod tag;
mod verify;

pub use card::{pad_to_card, CardTable, CARD_BYTES};
pub use config::{HeapConfig, OldGenLayout};
pub use heap::{Heap, HeapError, HeapStats};
pub use object::{object_bytes, ObjId, ObjKind, Object, HEADER_BYTES, REF_BYTES};
pub use offheap::{OffHeapBlock, OffHeapRegion, OffHeapStats};
pub use payload::{Key, Payload, WirePayload};
pub use region::{RegionBlock, RegionClass, RegionHeap, RegionStats};
pub use roots::RootSet;
pub use space::{OldSpaceId, Space, SpaceId};
pub use tag::MemTag;
pub use verify::{Invariant, VerifyError, VerifyPoint};
