//! Heap sizing and layout configuration.

use hybridmem::DeviceKind;

/// How the old generation maps onto physical devices.
#[derive(Debug, Clone, PartialEq)]
pub enum OldGenLayout {
    /// Panthera's split old generation: a DRAM space plus an NVM space
    /// whose sizes are derived from the DRAM ratio.
    SplitDramNvm,
    /// One unified old space pinned to a single device (DRAM-only baseline
    /// or Kingsguard-Nursery, which puts the whole old generation in NVM).
    Unified(DeviceKind),
    /// One unified old space whose chunks are mapped to DRAM with
    /// probability equal to the DRAM ratio — the paper's "unmanaged"
    /// baseline (Section 5.2).
    Interleaved {
        /// Chunk granularity in bytes (1 GB in the paper, scaled here).
        chunk_bytes: u64,
    },
}

/// Full heap configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapConfig {
    /// Total heap size in simulated bytes.
    pub heap_bytes: u64,
    /// Fraction of the heap given to the young generation (the paper uses
    /// 1/6 after a sensitivity study in Section 5.2).
    pub nursery_fraction: f64,
    /// Fraction of the young generation given to *each* survivor space
    /// (OpenJDK's default eden:survivor:survivor is 8:1:1).
    pub survivor_fraction: f64,
    /// DRAM as a fraction of total memory (1/4 or 1/3 in the evaluation).
    /// Determines the split-old-generation sizes and the interleaving
    /// probability.
    pub dram_ratio: f64,
    /// Old-generation device layout.
    pub old_layout: OldGenLayout,
    /// Apply the card-padding optimization to RDD arrays (Section 4.2.3).
    pub card_padding: bool,
    /// Promote survivors after this many minor collections.
    pub tenure_threshold: u8,
    /// Arrays at least this large (in elements) trigger the `rdd_alloc`
    /// wait-state match (the paper uses a million elements).
    pub large_array_elems: usize,
    /// Track per-object write counts in the barrier (Kingsguard-Writes).
    pub track_writes: bool,
    /// Seed for the interleaved chunk map.
    pub seed: u64,
    /// Extra bytes added to every data-tuple object, modelling managed-
    /// runtime representation bloat (boxed fields, object headers, pointer
    /// indirection) — the reason the paper's RDDs occupy 10-30 GB of heap
    /// for gigabyte-scale inputs.
    pub tuple_bloat_bytes: u64,
}

impl HeapConfig {
    /// A Panthera-style config for the given heap size and DRAM ratio.
    pub fn panthera(heap_bytes: u64, dram_ratio: f64) -> Self {
        HeapConfig {
            heap_bytes,
            nursery_fraction: 1.0 / 6.0,
            survivor_fraction: 0.1,
            dram_ratio,
            old_layout: OldGenLayout::SplitDramNvm,
            card_padding: true,
            tenure_threshold: 3,
            large_array_elems: 1024,
            track_writes: false,
            seed: 0x9a77_0e11,
            tuple_bloat_bytes: 0,
        }
    }

    /// Young-generation size in bytes.
    pub fn young_bytes(&self) -> u64 {
        (self.heap_bytes as f64 * self.nursery_fraction) as u64
    }

    /// Eden size in bytes.
    pub fn eden_bytes(&self) -> u64 {
        self.young_bytes() - 2 * self.survivor_bytes()
    }

    /// Size of each survivor space in bytes.
    pub fn survivor_bytes(&self) -> u64 {
        (self.young_bytes() as f64 * self.survivor_fraction) as u64
    }

    /// Old-generation size in bytes.
    pub fn old_bytes(&self) -> u64 {
        self.heap_bytes - self.young_bytes()
    }

    /// DRAM budget available to the old generation: total DRAM minus the
    /// young generation, which always resides in DRAM.
    pub fn old_dram_bytes(&self) -> u64 {
        let total_dram = (self.heap_bytes as f64 * self.dram_ratio) as u64;
        total_dram.saturating_sub(self.young_bytes())
    }

    /// NVM share of the old generation under the split layout.
    pub fn old_nvm_bytes(&self) -> u64 {
        self.old_bytes() - self.old_dram_bytes().min(self.old_bytes())
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.heap_bytes == 0 {
            return Err("heap size must be positive".into());
        }
        if !(0.0 < self.nursery_fraction && self.nursery_fraction < 0.5) {
            return Err("nursery fraction must be in (0, 0.5)".into());
        }
        if !(0.0 < self.survivor_fraction && self.survivor_fraction < 0.5) {
            return Err("survivor fraction must be in (0, 0.5)".into());
        }
        if !(0.0 < self.dram_ratio && self.dram_ratio <= 1.0) {
            return Err("DRAM ratio must be in (0, 1]".into());
        }
        if self.old_layout == OldGenLayout::SplitDramNvm && self.old_dram_bytes() == 0 {
            return Err(
                "DRAM ratio too small: no DRAM left for the old generation after \
                 placing the nursery (the paper requires DRAM to hold at least one RDD)"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panthera_config_sizes() {
        let c = HeapConfig::panthera(60_000, 1.0 / 3.0);
        assert_eq!(c.young_bytes(), 10_000);
        assert_eq!(c.old_bytes(), 50_000);
        // 20 000 DRAM total − 10 000 young = 10 000 old DRAM.
        assert_eq!(c.old_dram_bytes(), 10_000);
        assert_eq!(c.old_nvm_bytes(), 40_000);
        assert_eq!(c.eden_bytes() + 2 * c.survivor_bytes(), c.young_bytes());
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_tiny_dram() {
        // DRAM ratio 1/6 exactly covers the nursery, leaving nothing for
        // the old generation's DRAM space.
        let c = HeapConfig::panthera(60_000, 1.0 / 6.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut c = HeapConfig::panthera(0, 0.25);
        assert!(c.validate().is_err());
        c = HeapConfig::panthera(1000, 0.25);
        c.nursery_fraction = 0.9;
        assert!(c.validate().is_err());
        let mut c2 = HeapConfig::panthera(1000, 0.25);
        c2.dram_ratio = 0.0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn unified_layout_has_no_dram_constraint() {
        let mut c = HeapConfig::panthera(60_000, 1.0);
        c.old_layout = OldGenLayout::Unified(DeviceKind::Dram);
        c.validate().unwrap();
    }
}
