//! The off-heap "H2" region for cached RDDs.
//!
//! Panthera's placement analysis takes persisted data out of the GC's
//! *way* (cold RDDs go to NVM); this region takes it out of the GC's
//! *world*: blocks live outside every heap space, so the collector
//! neither traces nor card-marks them and they are never serialized.
//! Each block holds one persisted RDD's records at RDD granularity and is
//! reference-counted by lineage — the engine decrements the count on the
//! schedule the analysis crate's def/use lifetime pass produced, and the
//! block is released exactly when the lifetime analysis says the RDD is
//! dead.
//!
//! Blocks still carry the DRAM/NVM placement tag: the engine charges
//! every block write and read to the tagged [`hybridmem::DeviceKind`], so
//! off-heap data participates in placement and migration accounting even
//! though the GC never sees it.

use hybridmem::DeviceKind;
use std::collections::HashMap;

/// One off-heap block: a persisted RDD's records, resident on `device`,
/// kept alive by `refs` scheduled future consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffHeapBlock {
    /// Modelled size of the block in bytes.
    pub bytes: u64,
    /// Device the block is placed on (from the RDD's placement tag).
    pub device: DeviceKind,
    /// Remaining scheduled consumers; the block is freed when this
    /// reaches zero.
    pub refs: u32,
}

/// Lifetime counters for the off-heap region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffHeapStats {
    /// Blocks allocated over the run.
    pub allocs: u64,
    /// Blocks freed over the run.
    pub frees: u64,
    /// Total bytes ever allocated.
    pub alloc_bytes: u64,
    /// Total bytes freed.
    pub freed_bytes: u64,
}

/// The off-heap region: blocks keyed by RDD instance id.
///
/// The region is pure accounting — it holds sizes, devices, and
/// refcounts, not record data (the engine keeps the records; a real H2
/// region would own the backing memory). All methods are deterministic
/// and the invariants are checkable in the heap verifier's style via
/// [`OffHeapRegion::check_invariants`].
#[derive(Debug, Clone, Default)]
pub struct OffHeapRegion {
    blocks: HashMap<u32, OffHeapBlock>,
    resident: [u64; 2],
    stats: OffHeapStats,
}

/// Index into the per-device resident array.
fn dev_idx(device: DeviceKind) -> usize {
    match device {
        DeviceKind::Dram => 0,
        DeviceKind::Nvm => 1,
    }
}

impl OffHeapRegion {
    /// An empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a block for `rdd` with `refs` scheduled consumers.
    ///
    /// # Panics
    ///
    /// Panics if `rdd` already has a live block — the engine persists
    /// each RDD instance at most once.
    pub fn alloc(&mut self, rdd: u32, bytes: u64, device: DeviceKind, refs: u32) {
        let prev = self.blocks.insert(
            rdd,
            OffHeapBlock {
                bytes,
                device,
                refs,
            },
        );
        assert!(prev.is_none(), "off-heap double alloc for rdd {rdd}");
        self.resident[dev_idx(device)] += bytes;
        self.stats.allocs += 1;
        self.stats.alloc_bytes += bytes;
    }

    /// The live block for `rdd`, if any.
    pub fn block(&self, rdd: u32) -> Option<&OffHeapBlock> {
        self.blocks.get(&rdd)
    }

    /// Decrement `rdd`'s refcount; frees the block when it reaches zero.
    /// Returns the freed block, or `None` if the block is still live.
    ///
    /// # Panics
    ///
    /// Panics if `rdd` has no live block or its refcount is already zero
    /// — either means the lifetime schedule and the engine diverged.
    pub fn release(&mut self, rdd: u32) -> Option<OffHeapBlock> {
        let block = self
            .blocks
            .get_mut(&rdd)
            .unwrap_or_else(|| panic!("off-heap release of dead rdd {rdd}"));
        assert!(block.refs > 0, "off-heap refcount underflow for rdd {rdd}");
        block.refs -= 1;
        if block.refs == 0 {
            Some(self.free(rdd))
        } else {
            None
        }
    }

    /// Free `rdd`'s block regardless of refcount (explicit `unpersist`,
    /// end-of-run sweep). Returns the freed block.
    ///
    /// # Panics
    ///
    /// Panics if `rdd` has no live block.
    pub fn free(&mut self, rdd: u32) -> OffHeapBlock {
        let block = self
            .blocks
            .remove(&rdd)
            .unwrap_or_else(|| panic!("off-heap free of dead rdd {rdd}"));
        self.resident[dev_idx(block.device)] -= block.bytes;
        self.stats.frees += 1;
        self.stats.freed_bytes += block.bytes;
        block
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes currently resident on `device`.
    pub fn resident_bytes(&self, device: DeviceKind) -> u64 {
        self.resident[dev_idx(device)]
    }

    /// Total bytes currently resident across both devices.
    pub fn total_resident_bytes(&self) -> u64 {
        self.resident[0] + self.resident[1]
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OffHeapStats {
        self.stats
    }

    /// Live RDD ids in ascending order (deterministic iteration for the
    /// end-of-run sweep).
    pub fn live_rdds(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.blocks.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Verify the region's internal invariants: per-device resident
    /// bytes equal the sum of live blocks, every live block has a
    /// non-zero refcount, and lifetime counters balance.
    ///
    /// # Errors
    ///
    /// Returns a rendered description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut sums = [0u64; 2];
        for (rdd, b) in &self.blocks {
            if b.refs == 0 {
                return Err(format!("off-heap block for rdd {rdd} is live with 0 refs"));
            }
            sums[dev_idx(b.device)] += b.bytes;
        }
        if sums != self.resident {
            return Err(format!(
                "off-heap resident accounting drift: counted {sums:?}, recorded {:?}",
                self.resident
            ));
        }
        if self.stats.frees > self.stats.allocs {
            return Err(format!(
                "off-heap freed more blocks ({}) than allocated ({})",
                self.stats.frees, self.stats.allocs
            ));
        }
        let live_bytes = self.stats.alloc_bytes - self.stats.freed_bytes;
        if live_bytes != self.total_resident_bytes() {
            return Err(format!(
                "off-heap byte accounting drift: alloc-freed = {live_bytes}, resident = {}",
                self.total_resident_bytes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcounted_lifecycle_balances() {
        let mut r = OffHeapRegion::new();
        r.alloc(3, 1000, DeviceKind::Dram, 2);
        r.alloc(5, 500, DeviceKind::Nvm, 1);
        r.check_invariants().unwrap();
        assert_eq!(r.resident_bytes(DeviceKind::Dram), 1000);
        assert_eq!(r.resident_bytes(DeviceKind::Nvm), 500);
        assert!(r.release(3).is_none());
        assert_eq!(r.block(3).unwrap().refs, 1);
        let freed = r.release(3).unwrap();
        assert_eq!(freed.bytes, 1000);
        assert!(r.block(3).is_none());
        let freed = r.release(5).unwrap();
        assert_eq!(freed.device, DeviceKind::Nvm);
        assert_eq!(r.live_blocks(), 0);
        assert_eq!(r.total_resident_bytes(), 0);
        let s = r.stats();
        assert_eq!(s.allocs, s.frees);
        assert_eq!(s.alloc_bytes, s.freed_bytes);
        r.check_invariants().unwrap();
    }

    #[test]
    fn force_free_ignores_refcount() {
        let mut r = OffHeapRegion::new();
        r.alloc(7, 64, DeviceKind::Nvm, 9);
        let b = r.free(7);
        assert_eq!(b.refs, 9);
        assert_eq!(r.live_blocks(), 0);
        r.check_invariants().unwrap();
    }

    #[test]
    fn live_rdds_are_sorted() {
        let mut r = OffHeapRegion::new();
        for rdd in [9, 2, 5] {
            r.alloc(rdd, 1, DeviceKind::Dram, 1);
        }
        assert_eq!(r.live_rdds(), vec![2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "double alloc")]
    fn double_alloc_panics() {
        let mut r = OffHeapRegion::new();
        r.alloc(1, 1, DeviceKind::Dram, 1);
        r.alloc(1, 1, DeviceKind::Dram, 1);
    }

    #[test]
    #[should_panic(expected = "refcount underflow")]
    fn zero_ref_release_panics() {
        let mut r = OffHeapRegion::new();
        r.alloc(1, 1, DeviceKind::Dram, 1);
        let _ = r.release(1);
        // Block is gone; a second release is a dead-rdd panic, so rebuild
        // the underflow case directly.
        r.alloc(2, 1, DeviceKind::Dram, 0);
        // refs == 0 at creation models a lineage-dead-at-birth block the
        // engine frees immediately; releasing it must trip the assert.
        let _ = r.release(2);
    }
}
