//! Heap-invariant verification, in the image of HotSpot's
//! `-XX:+VerifyBeforeGC` / `-XX:+VerifyAfterGC`.
//!
//! [`Heap::verify`] walks the whole heap — slab, spaces, card tables, and
//! the root set — and checks every structural invariant the simulator's
//! fidelity rests on. Collectors call it at collection entry and exit when
//! verification is enabled; it charges nothing and mutates nothing, so an
//! enabled verifier never changes a simulated quantity (the
//! observe-never-charge rule extends to verify-never-charge).
//!
//! The invariants, by [`Invariant`] tag:
//!
//! * **`Liveness`** — every root is live, every reference held by a
//!   *reachable* object points at a live object (no reachable object was
//!   lost to a sweep), every reference held by an *old* resident is live
//!   (the card scan keeps old objects' young targets alive, and major
//!   sweeps reclaim old garbage before its referents), and no object
//!   carries a stale major-GC mark bit outside a collection. Unreachable
//!   young garbage may hold dangling references — a major collection
//!   frees old objects without sweeping the young generation, and every
//!   collector path guards reference loads with a liveness check.
//! * **`ResidentList`** — the object slab and the spaces' resident lists
//!   agree: every listed object is live and records the space that lists
//!   it, every live object is listed exactly once.
//! * **`Spacing`** — resident lists are address-sorted, objects don't
//!   overlap, and every object lies inside its space's bounds.
//! * **`DeviceBoundary`** — spaces sit on the device their role demands
//!   (the young generation and the old DRAM space on DRAM, the old NVM
//!   space on NVM), and no object straddles out of its space — compaction
//!   never crosses the DRAM/NVM boundary (paper Section 4.2).
//! * **`CardCoverage`** — the card table over-approximates old-to-young
//!   references at *slot* granularity: for every old object, every
//!   reference slot holding a live young target lies on a dirty card.
//! * **`Accounting`** — bump pointers agree with the object slab: young
//!   spaces' used bytes equal the sum of their residents' sizes; old
//!   spaces' sums never exceed the bump pointer (sweeps may leave holes),
//!   and immediately after a major compaction they are equal — bytes in
//!   plus bytes migrated equal bytes out.

use crate::config::OldGenLayout;
use crate::heap::Heap;
use crate::object::ObjId;
use crate::roots::RootSet;
use crate::space::{Space, SpaceId};
use hybridmem::DeviceKind;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Where in a collection cycle a verification pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyPoint {
    /// Entry of a minor collection.
    BeforeMinor,
    /// Exit of a minor collection.
    AfterMinor,
    /// Entry of a major collection.
    BeforeMajor,
    /// Exit of a major collection. Old-space accounting is checked
    /// strictly here: compaction leaves no holes.
    AfterMajor,
    /// An explicit caller-requested pass (tests, the fuzzer's final sweep).
    Manual,
}

impl VerifyPoint {
    /// Stable label, used in error messages and trace events.
    pub fn label(self) -> &'static str {
        match self {
            VerifyPoint::BeforeMinor => "before_minor",
            VerifyPoint::AfterMinor => "after_minor",
            VerifyPoint::BeforeMajor => "before_major",
            VerifyPoint::AfterMajor => "after_major",
            VerifyPoint::Manual => "manual",
        }
    }
}

/// The class of invariant a [`VerifyError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// A root or reference points at a reclaimed object, or a mark bit
    /// leaked out of a major collection.
    Liveness,
    /// Slab / resident-list disagreement (orphaned or double-listed
    /// object, dead object still listed).
    ResidentList,
    /// Resident list out of address order, overlapping objects, or an
    /// object outside its space's bounds.
    Spacing,
    /// A space (or object) on the wrong memory device.
    DeviceBoundary,
    /// An old object's young-pointing slot sits on a clean card.
    CardCoverage,
    /// Bump pointer and per-space byte accounting disagree with the slab.
    Accounting,
}

impl Invariant {
    /// Stable label, used in error messages and trace events.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::Liveness => "liveness",
            Invariant::ResidentList => "resident_list",
            Invariant::Spacing => "spacing",
            Invariant::DeviceBoundary => "device_boundary",
            Invariant::CardCoverage => "card_coverage",
            Invariant::Accounting => "accounting",
        }
    }
}

/// One invariant violation, with everything needed to localize it.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Where in the collection cycle the violation was found.
    pub point: VerifyPoint,
    /// Which invariant failed.
    pub invariant: Invariant,
    /// The offending object, when one is identifiable.
    pub object: Option<ObjId>,
    /// The offending space, when one is identifiable.
    pub space: Option<SpaceId>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heap verification failed at {}: {} invariant",
            self.point.label(),
            self.invariant.label()
        )?;
        if let Some(id) = self.object {
            write!(f, " ({id}")?;
            if let Some(s) = self.space {
                write!(f, " in {s}")?;
            }
            write!(f, ")")?;
        } else if let Some(s) = self.space {
            write!(f, " (in {s})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for VerifyError {}

impl Heap {
    /// Verify every heap invariant, returning the first violation found.
    ///
    /// Performs no charging and no mutation; safe to call at any point
    /// where no collection is mid-flight.
    ///
    /// # Errors
    ///
    /// The first violated invariant, localized to an object and space
    /// where possible.
    pub fn verify(&self, roots: &RootSet, point: VerifyPoint) -> Result<(), VerifyError> {
        let err = |invariant: Invariant,
                   object: Option<ObjId>,
                   space: Option<SpaceId>,
                   detail: String| {
            Err(VerifyError {
                point,
                invariant,
                object,
                space,
                detail,
            })
        };

        // --- spaces: resident lists, spacing, accounting, devices --------
        let strict_old_accounting = point == VerifyPoint::AfterMajor;
        let mut listed: HashMap<ObjId, SpaceId> = HashMap::new();
        let spaces: Vec<&Space> = std::iter::once(self.eden())
            .chain([self.from_space(), self.to_space()])
            .chain(self.old_space_ids().into_iter().map(|s| self.old(s)))
            .collect();
        for space in spaces {
            let sid = space.id();
            if space.used() > space.capacity() {
                return err(
                    Invariant::Accounting,
                    None,
                    Some(sid),
                    format!(
                        "bump pointer {} past capacity {}",
                        space.used(),
                        space.capacity()
                    ),
                );
            }
            let expected_device = self.expected_device(sid);
            if let Some(device) = expected_device {
                let actual = self.device_of(space.base());
                if actual != device {
                    return err(
                        Invariant::DeviceBoundary,
                        None,
                        Some(sid),
                        format!("space on {actual}, expected {device}"),
                    );
                }
            }
            let mut prev_end = space.base().0;
            let mut resident_bytes = 0u64;
            for &id in space.objects() {
                if !self.is_live(id) {
                    return err(
                        Invariant::ResidentList,
                        Some(id),
                        Some(sid),
                        "resident list entry is dead".into(),
                    );
                }
                let o = self.obj(id);
                if o.space != sid {
                    return err(
                        Invariant::ResidentList,
                        Some(id),
                        Some(sid),
                        format!("object records space {}", o.space),
                    );
                }
                if o.addr.0 < space.base().0 || o.end().0 > space.base().0 + space.capacity() {
                    return err(
                        Invariant::Spacing,
                        Some(id),
                        Some(sid),
                        format!("extent [{}, {}) outside space", o.addr.0, o.end().0),
                    );
                }
                if o.addr.0 < prev_end {
                    return err(
                        Invariant::Spacing,
                        Some(id),
                        Some(sid),
                        format!("address {} overlaps predecessor end {prev_end}", o.addr.0),
                    );
                }
                prev_end = o.end().0;
                resident_bytes += o.size;
                if let Some(device) = expected_device {
                    // Compaction and promotion never cross the device
                    // boundary: both ends of the object sit on the space's
                    // device.
                    for probe in [o.addr, hybridmem::Addr(o.end().0 - 1)] {
                        let actual = self.device_of(probe);
                        if actual != device {
                            return err(
                                Invariant::DeviceBoundary,
                                Some(id),
                                Some(sid),
                                format!("byte at {} on {actual}, expected {device}", probe.0),
                            );
                        }
                    }
                }
                if let Some(first) = listed.insert(id, sid) {
                    return err(
                        Invariant::ResidentList,
                        Some(id),
                        Some(sid),
                        format!("also listed in {first}"),
                    );
                }
            }
            let exact = sid.is_young() || strict_old_accounting;
            if exact && resident_bytes != space.used() {
                return err(
                    Invariant::Accounting,
                    None,
                    Some(sid),
                    format!(
                        "resident objects sum to {resident_bytes} bytes but bump pointer is {}",
                        space.used()
                    ),
                );
            }
            if resident_bytes > space.used() {
                return err(
                    Invariant::Accounting,
                    None,
                    Some(sid),
                    format!(
                        "resident objects sum to {resident_bytes} bytes, past bump pointer {}",
                        space.used()
                    ),
                );
            }
        }

        // --- reachability: roots live, then BFS over live refs ----------
        let mut reachable: HashSet<ObjId> = HashSet::new();
        let mut queue: VecDeque<ObjId> = VecDeque::new();
        for r in roots.iter() {
            if !self.is_live(r) {
                return err(
                    Invariant::Liveness,
                    Some(r),
                    None,
                    "root points at reclaimed object".into(),
                );
            }
            if reachable.insert(r) {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &t in &self.obj(id).refs {
                if self.is_live(t) && reachable.insert(t) {
                    queue.push_back(t);
                }
            }
        }

        // --- slab: every live object listed, refs live, marks clear ------
        for id in self.live_ids() {
            let o = self.obj(id);
            if !listed.contains_key(&id) {
                return err(
                    Invariant::ResidentList,
                    Some(id),
                    Some(o.space),
                    "live object missing from every resident list (orphaned)".into(),
                );
            }
            if o.marked {
                return err(
                    Invariant::Liveness,
                    Some(id),
                    Some(o.space),
                    "mark bit still set outside a major collection".into(),
                );
            }
            // A dangling reference is a violation unless its holder is
            // unreachable young garbage, which a major collection can
            // legitimately leave behind (it frees old objects without
            // sweeping the young generation).
            if !o.in_young() || reachable.contains(&id) {
                for (slot, &t) in o.refs.iter().enumerate() {
                    if !self.is_live(t) {
                        return err(
                            Invariant::Liveness,
                            Some(id),
                            Some(o.space),
                            format!("ref slot {slot} points at reclaimed {t}"),
                        );
                    }
                }
            }
        }

        // --- card coverage at slot granularity ---------------------------
        for old_id in self.old_space_ids() {
            let table = self.card_table(old_id);
            for &id in self.old(old_id).objects() {
                let o = self.obj(id);
                for (slot, &t) in o.refs.iter().enumerate() {
                    if self.is_live(t) && self.obj(t).in_young() {
                        let slot_addr = o.slot_addr(slot);
                        let card = table.card_of(slot_addr);
                        if !table.is_dirty(card) {
                            return err(
                                Invariant::CardCoverage,
                                Some(id),
                                Some(SpaceId::Old(old_id)),
                                format!(
                                    "slot {slot} (addr {}) references young {t} but card {card} is clean",
                                    slot_addr.0
                                ),
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The device a space must sit on, if its role pins one. Interleaved
    /// old spaces deliberately mix devices and are exempt.
    fn expected_device(&self, sid: SpaceId) -> Option<DeviceKind> {
        match sid {
            // The young generation always lives in DRAM (Section 1.2).
            SpaceId::Eden | SpaceId::Survivor0 | SpaceId::Survivor1 => Some(DeviceKind::Dram),
            SpaceId::Old(old) => match &self.config().old_layout {
                OldGenLayout::SplitDramNvm => {
                    if self.old_dram() == Some(old) {
                        Some(DeviceKind::Dram)
                    } else if self.old_nvm() == Some(old) {
                        Some(DeviceKind::Nvm)
                    } else {
                        None
                    }
                }
                OldGenLayout::Unified(device) => Some(*device),
                OldGenLayout::Interleaved { .. } => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeapConfig;
    use crate::object::ObjKind;
    use crate::payload::Payload;
    use crate::tag::MemTag;
    use hybridmem::MemorySystemConfig;

    fn heap() -> Heap {
        Heap::new(
            HeapConfig::panthera(600_000, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(200_000, 400_000),
        )
        .unwrap()
    }

    #[test]
    fn clean_heap_verifies_at_every_point() {
        let mut h = heap();
        let roots = RootSet::new();
        let nvm = h.old_nvm().unwrap();
        let arr = h.alloc_array_old(nvm, 1, 16, MemTag::Nvm).unwrap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(1))
            .unwrap();
        h.push_ref(arr, t);
        for point in [
            VerifyPoint::BeforeMinor,
            VerifyPoint::AfterMinor,
            VerifyPoint::BeforeMajor,
            VerifyPoint::AfterMajor,
            VerifyPoint::Manual,
        ] {
            h.verify(&roots, point).unwrap();
        }
    }

    #[test]
    fn dangling_ref_in_reachable_object_is_a_liveness_violation() {
        let mut h = heap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        // Forge a reference to a never-allocated id, bypassing the barrier.
        h.obj_mut(t).refs.push(ObjId(9999));
        let mut roots = RootSet::new();
        roots.push(t);
        let e = h.verify(&roots, VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::Liveness);
        assert_eq!(e.object, Some(t));
        // The same dangling reference in *unreachable* young garbage is
        // legal: a major collection frees old objects without sweeping
        // the young generation.
        h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap();
    }

    #[test]
    fn dangling_ref_in_old_object_is_always_a_violation() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let o = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Unit)
            .unwrap();
        h.obj_mut(o).refs.push(ObjId(9999));
        // Unrooted, but old residents' references must stay live: the card
        // scan walks them without a reachability pre-pass.
        let e = h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::Liveness);
        assert_eq!(e.object, Some(o));
    }

    #[test]
    fn dead_root_is_a_liveness_violation() {
        let h = heap();
        let mut roots = RootSet::new();
        roots.push(ObjId(42));
        let e = h.verify(&roots, VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::Liveness);
        assert_eq!(e.object, Some(ObjId(42)));
    }

    #[test]
    fn wrong_space_record_is_a_resident_list_violation() {
        let mut h = heap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        h.obj_mut(t).space = SpaceId::Survivor1;
        let e = h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::ResidentList);
    }

    #[test]
    fn freed_but_listed_object_is_caught() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let id = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(1))
            .unwrap();
        // Free the slab entry without telling the space — the shape of a
        // sweep bug.
        h.free(id);
        let e = h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::ResidentList);
        assert_eq!(e.object, Some(id));
    }

    #[test]
    fn unbarriered_young_ref_is_a_card_violation() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let arr = h.alloc_array_old(nvm, 1, 16, MemTag::Nvm).unwrap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        // Store the reference behind the barrier's back: no card dirtied.
        h.obj_mut(arr).refs.push(t);
        let e = h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::CardCoverage);
        assert_eq!(e.object, Some(arr));
        assert_eq!(e.space, Some(SpaceId::Old(nvm)));
    }

    #[test]
    fn multi_card_slot_must_dirty_the_slot_card_not_the_header() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        // An array spanning several cards; a young ref whose slot lies in
        // a later card.
        let arr = h.alloc_array_old(nvm, 1, 300, MemTag::Nvm).unwrap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        for _ in 0..200 {
            h.obj_mut(arr).refs.push(t);
        }
        // Dirtying only the header card is the historical bug; the slot's
        // card is still clean, so the verifier must object.
        let header = h.obj(arr).addr;
        h.card_table_mut(nvm).mark_dirty(header);
        let e = h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap_err();
        assert_eq!(e.invariant, Invariant::CardCoverage);
        // Dirtying every slot's card satisfies it.
        let slots: Vec<_> = (0..200).map(|i| h.obj(arr).slot_addr(i)).collect();
        for s in slots {
            h.card_table_mut(nvm).mark_dirty(s);
        }
        h.verify(&RootSet::new(), VerifyPoint::Manual).unwrap();
    }

    #[test]
    fn old_holes_allowed_except_after_major() {
        let mut h = heap();
        let nvm = h.old_nvm().unwrap();
        let a = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(1))
            .unwrap();
        let b = h
            .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(2))
            .unwrap();
        // Sweep b without compacting: a hole remains (bump pointer stays).
        let used = h.old(nvm).used();
        h.free(b);
        h.retain_old(nvm, vec![a], used);
        h.verify(&RootSet::new(), VerifyPoint::AfterMinor).unwrap();
        let e = h
            .verify(&RootSet::new(), VerifyPoint::AfterMajor)
            .unwrap_err();
        assert_eq!(e.invariant, Invariant::Accounting);
        assert_eq!(e.space, Some(SpaceId::Old(nvm)));
    }

    #[test]
    fn stale_mark_bit_is_caught() {
        let mut h = heap();
        let t = h
            .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Unit)
            .unwrap();
        h.obj_mut(t).marked = true;
        let e = h
            .verify(&RootSet::new(), VerifyPoint::AfterMajor)
            .unwrap_err();
        assert_eq!(e.invariant, Invariant::Liveness);
        assert!(e.detail.contains("mark bit"));
    }

    #[test]
    fn errors_render_their_location() {
        let e = VerifyError {
            point: VerifyPoint::AfterMajor,
            invariant: Invariant::CardCoverage,
            object: Some(ObjId(7)),
            space: Some(SpaceId::Old(crate::space::OldSpaceId(1))),
            detail: "card 3 is clean".into(),
        };
        let s = e.to_string();
        assert!(s.contains("after_major"), "{s}");
        assert!(s.contains("card_coverage"), "{s}");
        assert!(s.contains("obj#7"), "{s}");
        assert!(s.contains("old1"), "{s}");
        assert!(s.contains("card 3 is clean"), "{s}");
    }
}
