//! Object payloads: the scalar data a simulated heap object carries.
//!
//! Workloads compute real answers (page ranks, cluster centres, shortest
//! paths), so tuple objects hold actual values. A payload also knows how
//! many bytes it would occupy in a real heap, which feeds the object-size
//! model.
//!
//! # Sharing
//!
//! Composite payloads (`Pair`, `Longs`, `Doubles`, `List`) hold their
//! contents behind [`Rc`], so `Payload::clone()` is a reference-count bump
//! — O(1) regardless of structural depth. The engine hands the same record
//! to many simulated heap objects (one per stage that streams it, one per
//! materialized copy); sharing the immutable contents instead of deep-
//! copying them is what keeps the simulator's host time proportional to the
//! *number* of records rather than their *size*. Use [`Payload::deep_clone`]
//! only where a structural copy is explicitly wanted (the legacy-engine
//! performance baseline).

use std::fmt;
use std::rc::Rc;

/// A scalar or small-composite value stored inside one heap object.
///
/// Cloning is O(1): composite variants share their contents via [`Rc`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Payload {
    /// No payload (RDD top objects, arrays, control objects).
    #[default]
    Unit,
    /// A 64-bit integer (vertex ids, counts, labels).
    Long(i64),
    /// A 64-bit float (ranks, distances, gradients).
    Double(f64),
    /// An interned string identified by a stable symbol id; `len` models the
    /// string's character storage.
    Text {
        /// Symbol identity (equality = string equality).
        sym: u64,
        /// Modelled length in bytes.
        len: u32,
    },
    /// A key/value pair (the backbone tuple shape of Figure 1).
    Pair(Rc<Payload>, Rc<Payload>),
    /// A vector of integers (adjacency lists, document word ids).
    Longs(Rc<Vec<i64>>),
    /// A vector of floats (points, feature vectors, weight vectors).
    Doubles(Rc<Vec<f64>>),
    /// A list of payloads (grouped values, compact buffers — Figure 1's
    /// `CompactBuffer`).
    List(Rc<Vec<Payload>>),
    /// An opaque serialized buffer of `len` bytes (the `byte[]` backing a
    /// `*_SER` storage level).
    Bytes {
        /// Buffer length in bytes.
        len: u64,
    },
}

impl Payload {
    /// A pair of two payloads.
    pub fn pair(a: Payload, b: Payload) -> Payload {
        Payload::Pair(Rc::new(a), Rc::new(b))
    }

    /// A pair built from already-shared halves (no reallocation).
    pub fn pair_shared(a: Rc<Payload>, b: Rc<Payload>) -> Payload {
        Payload::Pair(a, b)
    }

    /// An integer vector.
    pub fn longs(v: Vec<i64>) -> Payload {
        Payload::Longs(Rc::new(v))
    }

    /// A float vector.
    pub fn doubles(v: Vec<f64>) -> Payload {
        Payload::Doubles(Rc::new(v))
    }

    /// A list of payloads.
    pub fn list(v: Vec<Payload>) -> Payload {
        Payload::List(Rc::new(v))
    }

    /// A structural copy that shares nothing with `self` — every `Rc` in
    /// the result is freshly allocated. This is what `clone()` used to do
    /// before payloads became shareable; it exists so the benchmark
    /// harness can reproduce the old engine's per-record copying cost.
    pub fn deep_clone(&self) -> Payload {
        match self {
            Payload::Pair(a, b) => Payload::pair(a.deep_clone(), b.deep_clone()),
            Payload::Longs(v) => Payload::longs(v.as_ref().clone()),
            Payload::Doubles(v) => Payload::doubles(v.as_ref().clone()),
            Payload::List(v) => Payload::list(v.iter().map(Payload::deep_clone).collect()),
            scalar => scalar.clone(),
        }
    }
    /// Modelled storage footprint of the payload in bytes (unscaled).
    pub fn model_bytes(&self) -> u64 {
        match self {
            Payload::Unit => 0,
            Payload::Long(_) | Payload::Double(_) => 8,
            Payload::Text { len, .. } => 16 + *len as u64,
            Payload::Pair(a, b) => 16 + a.model_bytes() + b.model_bytes(),
            Payload::Longs(v) => 16 + 8 * v.len() as u64,
            Payload::Doubles(v) => 16 + 8 * v.len() as u64,
            Payload::List(v) => 16 + v.iter().map(Payload::model_bytes).sum::<u64>(),
            Payload::Bytes { len } => 16 + len,
        }
    }

    /// A structural hash usable for `distinct` and shuffle dedup; floats
    /// hash by bit pattern.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a structural encoding.
        fn mix(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        fn go(p: &Payload, h: &mut u64) {
            match p {
                Payload::Unit => mix(h, 0),
                Payload::Long(v) => {
                    mix(h, 1);
                    mix(h, *v as u64);
                }
                Payload::Double(v) => {
                    mix(h, 2);
                    mix(h, v.to_bits());
                }
                Payload::Text { sym, .. } => {
                    mix(h, 3);
                    mix(h, *sym);
                }
                Payload::Pair(a, b) => {
                    mix(h, 4);
                    go(a, h);
                    go(b, h);
                }
                Payload::Longs(v) => {
                    mix(h, 5);
                    for x in v.iter() {
                        mix(h, *x as u64);
                    }
                }
                Payload::Doubles(v) => {
                    mix(h, 6);
                    for x in v.iter() {
                        mix(h, x.to_bits());
                    }
                }
                Payload::List(v) => {
                    mix(h, 7);
                    for x in v.iter() {
                        go(x, h);
                    }
                }
                Payload::Bytes { len } => {
                    mix(h, 8);
                    mix(h, *len);
                }
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        go(self, &mut h);
        h
    }

    /// The integer value, if this payload is a `Long`.
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Payload::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// The float value, if this payload is a `Double`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Payload::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// The pair components, if this payload is a `Pair`.
    pub fn as_pair(&self) -> Option<(&Payload, &Payload)> {
        match self {
            Payload::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// A key usable for grouping/shuffling. Pairs key on their first
    /// component; scalars key on themselves.
    ///
    /// # Panics
    ///
    /// Panics if the payload (or pair key) is not a scalar.
    pub fn shuffle_key(&self) -> Key {
        match self {
            Payload::Pair(k, _) => k.shuffle_key(),
            Payload::Long(v) => Key::Long(*v),
            Payload::Text { sym, .. } => Key::Sym(*sym),
            Payload::Double(v) => Key::Long(v.to_bits() as i64),
            other => panic!("payload {other:?} has no shuffle key"),
        }
    }

    /// Convenience constructor for a `(long, payload)` pair.
    pub fn keyed(key: i64, value: Payload) -> Payload {
        Payload::pair(Payload::Long(key), value)
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Unit => write!(f, "()"),
            Payload::Long(v) => write!(f, "{v}"),
            Payload::Double(v) => write!(f, "{v}"),
            Payload::Text { sym, .. } => write!(f, "text#{sym}"),
            Payload::Pair(a, b) => write!(f, "({a}, {b})"),
            Payload::Longs(v) => write!(f, "longs[{}]", v.len()),
            Payload::Doubles(v) => write!(f, "doubles[{}]", v.len()),
            Payload::List(v) => write!(f, "list[{}]", v.len()),
            Payload::Bytes { len } => write!(f, "bytes[{len}]"),
        }
    }
}

/// A hashable grouping key extracted from a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    /// Integer key.
    Long(i64),
    /// Interned-string key.
    Sym(u64),
}

/// A `Send`-able structural mirror of [`Payload`], used when records cross
/// executor thread boundaries in the cluster runtime.
///
/// [`Payload`] shares composite contents behind `Rc` (a host-side
/// optimization), so it cannot leave its thread. The wire form flattens
/// that sharing into owned storage. The round trip
/// `Payload -> WirePayload -> Payload` loses `Rc` identity but nothing the
/// simulation can observe: [`Payload::model_bytes`],
/// [`Payload::fingerprint`], [`Payload::shuffle_key`], and `PartialEq` are
/// all structural.
#[derive(Debug, Clone, PartialEq)]
pub enum WirePayload {
    /// Mirrors [`Payload::Unit`].
    Unit,
    /// Mirrors [`Payload::Long`].
    Long(i64),
    /// Mirrors [`Payload::Double`].
    Double(f64),
    /// Mirrors [`Payload::Text`]. Symbol ids are assigned in first-intern
    /// order by each executor's deterministic build, so they agree across
    /// threads without shipping the strings.
    Text {
        /// Symbol identity.
        sym: u64,
        /// Modelled length in bytes.
        len: u32,
    },
    /// Mirrors [`Payload::Pair`].
    Pair(Box<WirePayload>, Box<WirePayload>),
    /// Mirrors [`Payload::Longs`].
    Longs(Vec<i64>),
    /// Mirrors [`Payload::Doubles`].
    Doubles(Vec<f64>),
    /// Mirrors [`Payload::List`].
    List(Vec<WirePayload>),
    /// Mirrors [`Payload::Bytes`].
    Bytes {
        /// Buffer length in bytes.
        len: u64,
    },
}

impl WirePayload {
    /// Structural FNV-1a digest, identical to [`Payload::fingerprint`] on
    /// the mirrored value: `WirePayload::from(&p).fingerprint() ==
    /// p.fingerprint()` for every payload. The recovery journal uses this
    /// to *validate* that a replayed deposit or checkpoint snapshot is
    /// byte-identical to the one a crashed incarnation produced — the
    /// "validate" leg of the write → persist → validate protocol.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        fn go(w: &WirePayload, h: &mut u64) {
            match w {
                WirePayload::Unit => mix(h, 0),
                WirePayload::Long(v) => {
                    mix(h, 1);
                    mix(h, *v as u64);
                }
                WirePayload::Double(v) => {
                    mix(h, 2);
                    mix(h, v.to_bits());
                }
                WirePayload::Text { sym, .. } => {
                    mix(h, 3);
                    mix(h, *sym);
                }
                WirePayload::Pair(a, b) => {
                    mix(h, 4);
                    go(a, h);
                    go(b, h);
                }
                WirePayload::Longs(v) => {
                    mix(h, 5);
                    for x in v.iter() {
                        mix(h, *x as u64);
                    }
                }
                WirePayload::Doubles(v) => {
                    mix(h, 6);
                    for x in v.iter() {
                        mix(h, x.to_bits());
                    }
                }
                WirePayload::List(v) => {
                    mix(h, 7);
                    for x in v.iter() {
                        go(x, h);
                    }
                }
                WirePayload::Bytes { len } => {
                    mix(h, 8);
                    mix(h, *len);
                }
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        go(self, &mut h);
        h
    }

    /// Modelled storage footprint in bytes — identical, case for case, to
    /// [`Payload::model_bytes`], so a wire-form snapshot (a checkpoint, a
    /// shuffle contribution) costs exactly what the heap-resident record
    /// would.
    pub fn model_bytes(&self) -> u64 {
        match self {
            WirePayload::Unit => 0,
            WirePayload::Long(_) | WirePayload::Double(_) => 8,
            WirePayload::Text { len, .. } => 16 + *len as u64,
            WirePayload::Pair(a, b) => 16 + a.model_bytes() + b.model_bytes(),
            WirePayload::Longs(v) => 16 + 8 * v.len() as u64,
            WirePayload::Doubles(v) => 16 + 8 * v.len() as u64,
            WirePayload::List(v) => 16 + v.iter().map(WirePayload::model_bytes).sum::<u64>(),
            WirePayload::Bytes { len } => 16 + len,
        }
    }
}

impl From<&Payload> for WirePayload {
    fn from(p: &Payload) -> WirePayload {
        match p {
            Payload::Unit => WirePayload::Unit,
            Payload::Long(v) => WirePayload::Long(*v),
            Payload::Double(v) => WirePayload::Double(*v),
            Payload::Text { sym, len } => WirePayload::Text {
                sym: *sym,
                len: *len,
            },
            Payload::Pair(a, b) => WirePayload::Pair(
                Box::new(WirePayload::from(a.as_ref())),
                Box::new(WirePayload::from(b.as_ref())),
            ),
            Payload::Longs(v) => WirePayload::Longs(v.as_ref().clone()),
            Payload::Doubles(v) => WirePayload::Doubles(v.as_ref().clone()),
            Payload::List(v) => WirePayload::List(v.iter().map(WirePayload::from).collect()),
            Payload::Bytes { len } => WirePayload::Bytes { len: *len },
        }
    }
}

impl From<&WirePayload> for Payload {
    fn from(w: &WirePayload) -> Payload {
        match w {
            WirePayload::Unit => Payload::Unit,
            WirePayload::Long(v) => Payload::Long(*v),
            WirePayload::Double(v) => Payload::Double(*v),
            WirePayload::Text { sym, len } => Payload::Text {
                sym: *sym,
                len: *len,
            },
            WirePayload::Pair(a, b) => {
                Payload::pair(Payload::from(a.as_ref()), Payload::from(b.as_ref()))
            }
            WirePayload::Longs(v) => Payload::longs(v.clone()),
            WirePayload::Doubles(v) => Payload::doubles(v.clone()),
            WirePayload::List(v) => Payload::list(v.iter().map(Payload::from).collect()),
            WirePayload::Bytes { len } => Payload::Bytes { len: *len },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_bytes_compose() {
        let p = Payload::keyed(1, Payload::Double(0.5));
        assert_eq!(p.model_bytes(), 16 + 8 + 8);
        assert_eq!(Payload::longs(vec![1, 2, 3]).model_bytes(), 16 + 24);
        assert_eq!(Payload::Unit.model_bytes(), 0);
    }

    #[test]
    fn shuffle_keys() {
        assert_eq!(Payload::Long(7).shuffle_key(), Key::Long(7));
        assert_eq!(Payload::keyed(9, Payload::Unit).shuffle_key(), Key::Long(9));
        let t = Payload::Text { sym: 3, len: 10 };
        assert_eq!(t.shuffle_key(), Key::Sym(3));
    }

    #[test]
    #[should_panic(expected = "no shuffle key")]
    fn unit_has_no_key() {
        Payload::Unit.shuffle_key();
    }

    #[test]
    fn fingerprints_distinguish_values() {
        assert_eq!(
            Payload::Long(1).fingerprint(),
            Payload::Long(1).fingerprint()
        );
        assert_ne!(
            Payload::Long(1).fingerprint(),
            Payload::Long(2).fingerprint()
        );
        assert_ne!(
            Payload::Long(1).fingerprint(),
            Payload::Double(1.0).fingerprint()
        );
        let a = Payload::keyed(3, Payload::list(vec![Payload::Long(1)]));
        let b = Payload::keyed(3, Payload::list(vec![Payload::Long(1)]));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Payload::keyed(3, Payload::list(vec![Payload::Long(2)]));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn bytes_model_bytes() {
        assert_eq!(Payload::Bytes { len: 100 }.model_bytes(), 116);
        assert_ne!(
            Payload::Bytes { len: 1 }.fingerprint(),
            Payload::Bytes { len: 2 }.fingerprint()
        );
    }

    #[test]
    fn list_model_bytes() {
        let l = Payload::list(vec![Payload::Long(1), Payload::Long(2)]);
        assert_eq!(l.model_bytes(), 16 + 16);
    }

    #[test]
    fn clone_shares_deep_clone_does_not() {
        let v = Payload::longs((0..1024).collect());
        let shallow = v.clone();
        let deep = v.deep_clone();
        assert_eq!(v, shallow);
        assert_eq!(v, deep);
        match (&v, &shallow, &deep) {
            (Payload::Longs(a), Payload::Longs(b), Payload::Longs(c)) => {
                assert!(Rc::ptr_eq(a, b), "clone() must share storage");
                assert!(!Rc::ptr_eq(a, c), "deep_clone() must copy storage");
            }
            _ => unreachable!(),
        }
        let p = Payload::keyed(1, v);
        assert_eq!(p.deep_clone(), p);
    }

    #[test]
    fn wire_round_trip_is_structurally_lossless() {
        let shared = Rc::new(Payload::longs(vec![1, 2, 3]));
        let original = Payload::list(vec![
            Payload::Unit,
            Payload::keyed(7, Payload::Double(0.25)),
            Payload::pair_shared(Rc::clone(&shared), shared),
            Payload::doubles(vec![1.5, -2.5]),
            Payload::Text { sym: 4, len: 11 },
            Payload::Bytes { len: 99 },
        ]);
        let wire = WirePayload::from(&original);
        let back = Payload::from(&wire);
        assert_eq!(back, original);
        assert_eq!(back.model_bytes(), original.model_bytes());
        assert_eq!(back.fingerprint(), original.fingerprint());
        // The wire form digests identically to the heap form, so a journal
        // entry written from either side validates against the other.
        assert_eq!(wire.fingerprint(), original.fingerprint());
        assert_ne!(
            wire.fingerprint(),
            WirePayload::Long(1).fingerprint(),
            "distinct values must digest differently"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Payload::Long(3).as_long(), Some(3));
        assert_eq!(Payload::Double(2.0).as_double(), Some(2.0));
        assert!(Payload::Long(3).as_double().is_none());
        let p = Payload::keyed(1, Payload::Long(2));
        let (k, v) = p.as_pair().unwrap();
        assert_eq!(k.as_long(), Some(1));
        assert_eq!(v.as_long(), Some(2));
    }
}
