//! The card table and the shared-card pathology (paper Section 4.2.3).
//!
//! The old generation is divided into 512-byte cards. The write barrier
//! dirties the card containing any reference slot written in the old
//! generation; the minor GC then scans only dirty cards to find
//! old-to-young references. A card is *shared* when two large arrays meet
//! inside it: array A ends mid-card and array B starts immediately after.
//! Two GC threads scanning A and B cannot prove the card clean, so it stays
//! dirty forever and both entire arrays are rescanned at every minor GC —
//! devastating on NVM. Panthera's *card padding* aligns the end of every
//! RDD array to a card boundary, eliminating sharing at a cost of less than
//! one card of waste per array.

use hybridmem::Addr;

/// Card size used by OpenJDK and the paper.
pub const CARD_BYTES: u64 = 512;

/// Round `size` up so an object ending at a card boundary stays aligned
/// (the card-padding optimization).
pub fn pad_to_card(size: u64) -> u64 {
    size.div_ceil(CARD_BYTES) * CARD_BYTES
}

/// A card table covering one old-generation space.
///
/// Dirty and stuck states are kept as `u64` bitmaps — one bit per card —
/// so the write barrier is a mask-and-or, `dirty_count` is a `count_ones`
/// sweep, and the minor GC walks dirty cards with a word-skipping cursor
/// ([`CardTable::next_dirty_from`]) that allocates nothing and skips 64
/// clean cards per iteration in the common mostly-clean case.
#[derive(Debug, Clone)]
pub struct CardTable {
    base: Addr,
    n_cards: usize,
    /// One bit per card; bit `i % 64` of word `i / 64` is card `i`.
    dirty: Vec<u64>,
    /// Cards pinned dirty by the shared-card pathology; cleared only by a
    /// major collection.
    stuck: Vec<u64>,
}

const BITS: usize = u64::BITS as usize;

impl CardTable {
    /// A clean table covering `capacity` bytes starting at `base`.
    pub fn new(base: Addr, capacity: u64) -> Self {
        let n = capacity.div_ceil(CARD_BYTES) as usize;
        let words = n.div_ceil(BITS);
        CardTable {
            base,
            n_cards: n,
            dirty: vec![0; words],
            stuck: vec![0; words],
        }
    }

    /// Number of cards in the table.
    pub fn len(&self) -> usize {
        self.n_cards
    }

    /// True if the table covers zero cards.
    pub fn is_empty(&self) -> bool {
        self.n_cards == 0
    }

    /// Index of the card containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` precedes the table's base or lies past its end.
    pub fn card_of(&self, addr: Addr) -> usize {
        assert!(addr.0 >= self.base.0, "address below card table base");
        let idx = ((addr.0 - self.base.0) / CARD_BYTES) as usize;
        assert!(idx < self.n_cards, "address past card table end");
        idx
    }

    /// Dirty the card containing `addr` (write-barrier slow path).
    pub fn mark_dirty(&mut self, addr: Addr) {
        let idx = self.card_of(addr);
        self.dirty[idx / BITS] |= 1u64 << (idx % BITS);
    }

    /// Pin the card containing `addr` dirty until the next major GC
    /// (models the unresolvable shared-card race between scan threads).
    pub fn mark_stuck(&mut self, addr: Addr) {
        let idx = self.card_of(addr);
        self.dirty[idx / BITS] |= 1u64 << (idx % BITS);
        self.stuck[idx / BITS] |= 1u64 << (idx % BITS);
    }

    /// Is the card at `idx` dirty?
    pub fn is_dirty(&self, idx: usize) -> bool {
        self.dirty[idx / BITS] >> (idx % BITS) & 1 == 1
    }

    /// Is the card at `idx` pinned by the shared-card pathology?
    pub fn is_stuck(&self, idx: usize) -> bool {
        self.stuck[idx / BITS] >> (idx % BITS) & 1 == 1
    }

    /// The first dirty card at index `from` or later, skipping whole clean
    /// words, or `None` when the rest of the table is clean.
    ///
    /// This is the minor GC's iteration primitive: start at 0, process the
    /// returned card (cleaning or sticking it freely — mutation behind the
    /// cursor never perturbs cards ahead of it), and resume from
    /// `card + 1`.
    pub fn next_dirty_from(&self, from: usize) -> Option<usize> {
        if from >= self.n_cards {
            return None;
        }
        let mut w = from / BITS;
        // Mask off bits below `from` in its word.
        let mut word = self.dirty[w] & (!0u64 << (from % BITS));
        loop {
            if word != 0 {
                let idx = w * BITS + word.trailing_zeros() as usize;
                return (idx < self.n_cards).then_some(idx);
            }
            w += 1;
            if w >= self.dirty.len() {
                return None;
            }
            word = self.dirty[w];
        }
    }

    /// Indices of all dirty cards, ascending (word-skipping; allocates
    /// nothing until collected).
    pub fn iter_dirty(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let idx = self.next_dirty_from(next)?;
            next = idx + 1;
            Some(idx)
        })
    }

    /// Number of dirty cards.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clean the card at `idx` after a successful scan — unless it is
    /// stuck, in which case it stays dirty (returns whether it was cleaned).
    pub fn clean(&mut self, idx: usize) -> bool {
        if self.is_stuck(idx) {
            return false;
        }
        self.dirty[idx / BITS] &= !(1u64 << (idx % BITS));
        true
    }

    /// Clear everything, including stuck cards (major GC).
    pub fn clear_all(&mut self) {
        self.dirty.iter_mut().for_each(|w| *w = 0);
        self.stuck.iter_mut().for_each(|w| *w = 0);
    }

    /// Address range `[start, end)` covered by card `idx`.
    pub fn card_range(&self, idx: usize) -> (Addr, Addr) {
        let start = self.base.offset(idx as u64 * CARD_BYTES);
        (start, start.offset(CARD_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_aligns_to_cards() {
        assert_eq!(pad_to_card(1), CARD_BYTES);
        assert_eq!(pad_to_card(CARD_BYTES), CARD_BYTES);
        assert_eq!(pad_to_card(CARD_BYTES + 1), 2 * CARD_BYTES);
        assert_eq!(pad_to_card(0), 0);
    }

    #[test]
    fn mark_and_clean() {
        let mut t = CardTable::new(Addr(0), 4096);
        assert_eq!(t.len(), 8);
        t.mark_dirty(Addr(513));
        assert!(t.is_dirty(1));
        assert!(!t.is_dirty(0));
        assert_eq!(t.iter_dirty().collect::<Vec<_>>(), vec![1]);
        assert!(t.clean(1));
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn cursor_skips_clean_words() {
        // 1 MiB of cards = 2048 cards = 32 words; dirty a card in the
        // first, a middle, and the last word.
        let mut t = CardTable::new(Addr(0), 1 << 20);
        assert_eq!(t.len(), 2048);
        for idx in [3usize, 700, 2047] {
            t.mark_dirty(Addr(idx as u64 * CARD_BYTES));
        }
        assert_eq!(t.next_dirty_from(0), Some(3));
        assert_eq!(t.next_dirty_from(4), Some(700));
        assert_eq!(t.next_dirty_from(700), Some(700));
        assert_eq!(t.next_dirty_from(701), Some(2047));
        assert_eq!(t.next_dirty_from(2048), None);
        assert_eq!(t.iter_dirty().collect::<Vec<_>>(), vec![3, 700, 2047]);
        assert_eq!(t.dirty_count(), 3);
    }

    #[test]
    fn cursor_within_one_word() {
        let mut t = CardTable::new(Addr(0), 64 * CARD_BYTES);
        t.mark_dirty(Addr(0));
        t.mark_dirty(Addr(63 * CARD_BYTES));
        assert_eq!(t.next_dirty_from(1), Some(63));
        t.clean(0);
        assert_eq!(t.next_dirty_from(0), Some(63));
        assert_eq!(t.next_dirty_from(64), None, "past the end");
    }

    #[test]
    fn stuck_cards_resist_cleaning() {
        let mut t = CardTable::new(Addr(0), 2048);
        t.mark_stuck(Addr(0));
        assert!(!t.clean(0), "stuck card stays dirty");
        assert!(t.is_dirty(0));
        t.clear_all();
        assert!(!t.is_dirty(0));
        assert!(!t.is_stuck(0));
    }

    #[test]
    fn card_ranges() {
        let t = CardTable::new(Addr(1000), 2048);
        let (s, e) = t.card_range(1);
        assert_eq!(s, Addr(1000 + 512));
        assert_eq!(e, Addr(1000 + 1024));
        assert_eq!(t.card_of(Addr(1000 + 600)), 1);
    }

    #[test]
    #[should_panic(expected = "below card table base")]
    fn below_base_panics() {
        let t = CardTable::new(Addr(1000), 1024);
        t.card_of(Addr(999));
    }

    #[test]
    #[should_panic(expected = "past card table end")]
    fn past_end_panics() {
        let t = CardTable::new(Addr(0), 1024);
        t.card_of(Addr(1024));
    }
}
