//! The card table and the shared-card pathology (paper Section 4.2.3).
//!
//! The old generation is divided into 512-byte cards. The write barrier
//! dirties the card containing any reference slot written in the old
//! generation; the minor GC then scans only dirty cards to find
//! old-to-young references. A card is *shared* when two large arrays meet
//! inside it: array A ends mid-card and array B starts immediately after.
//! Two GC threads scanning A and B cannot prove the card clean, so it stays
//! dirty forever and both entire arrays are rescanned at every minor GC —
//! devastating on NVM. Panthera's *card padding* aligns the end of every
//! RDD array to a card boundary, eliminating sharing at a cost of less than
//! one card of waste per array.

use hybridmem::Addr;

/// Card size used by OpenJDK and the paper.
pub const CARD_BYTES: u64 = 512;

/// Round `size` up so an object ending at a card boundary stays aligned
/// (the card-padding optimization).
pub fn pad_to_card(size: u64) -> u64 {
    size.div_ceil(CARD_BYTES) * CARD_BYTES
}

/// A card table covering one old-generation space.
#[derive(Debug, Clone)]
pub struct CardTable {
    base: Addr,
    cards: Vec<bool>,
    /// Cards pinned dirty by the shared-card pathology; cleared only by a
    /// major collection.
    stuck: Vec<bool>,
}

impl CardTable {
    /// A clean table covering `capacity` bytes starting at `base`.
    pub fn new(base: Addr, capacity: u64) -> Self {
        let n = capacity.div_ceil(CARD_BYTES) as usize;
        CardTable { base, cards: vec![false; n], stuck: vec![false; n] }
    }

    /// Number of cards in the table.
    pub fn len(&self) -> usize {
        self.cards.len()
    }

    /// True if the table covers zero cards.
    pub fn is_empty(&self) -> bool {
        self.cards.is_empty()
    }

    /// Index of the card containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` precedes the table's base or lies past its end.
    pub fn card_of(&self, addr: Addr) -> usize {
        assert!(addr.0 >= self.base.0, "address below card table base");
        let idx = ((addr.0 - self.base.0) / CARD_BYTES) as usize;
        assert!(idx < self.cards.len(), "address past card table end");
        idx
    }

    /// Dirty the card containing `addr` (write-barrier slow path).
    pub fn mark_dirty(&mut self, addr: Addr) {
        let idx = self.card_of(addr);
        self.cards[idx] = true;
    }

    /// Pin the card containing `addr` dirty until the next major GC
    /// (models the unresolvable shared-card race between scan threads).
    pub fn mark_stuck(&mut self, addr: Addr) {
        let idx = self.card_of(addr);
        self.cards[idx] = true;
        self.stuck[idx] = true;
    }

    /// Is the card at `idx` dirty?
    pub fn is_dirty(&self, idx: usize) -> bool {
        self.cards[idx]
    }

    /// Is the card at `idx` pinned by the shared-card pathology?
    pub fn is_stuck(&self, idx: usize) -> bool {
        self.stuck[idx]
    }

    /// Indices of all dirty cards.
    pub fn dirty_cards(&self) -> Vec<usize> {
        (0..self.cards.len()).filter(|i| self.cards[*i]).collect()
    }

    /// Number of dirty cards.
    pub fn dirty_count(&self) -> usize {
        self.cards.iter().filter(|c| **c).count()
    }

    /// Clean the card at `idx` after a successful scan — unless it is
    /// stuck, in which case it stays dirty (returns whether it was cleaned).
    pub fn clean(&mut self, idx: usize) -> bool {
        if self.stuck[idx] {
            return false;
        }
        self.cards[idx] = false;
        true
    }

    /// Clear everything, including stuck cards (major GC).
    pub fn clear_all(&mut self) {
        self.cards.iter_mut().for_each(|c| *c = false);
        self.stuck.iter_mut().for_each(|c| *c = false);
    }

    /// Address range `[start, end)` covered by card `idx`.
    pub fn card_range(&self, idx: usize) -> (Addr, Addr) {
        let start = self.base.offset(idx as u64 * CARD_BYTES);
        (start, start.offset(CARD_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_aligns_to_cards() {
        assert_eq!(pad_to_card(1), CARD_BYTES);
        assert_eq!(pad_to_card(CARD_BYTES), CARD_BYTES);
        assert_eq!(pad_to_card(CARD_BYTES + 1), 2 * CARD_BYTES);
        assert_eq!(pad_to_card(0), 0);
    }

    #[test]
    fn mark_and_clean() {
        let mut t = CardTable::new(Addr(0), 4096);
        assert_eq!(t.len(), 8);
        t.mark_dirty(Addr(513));
        assert!(t.is_dirty(1));
        assert!(!t.is_dirty(0));
        assert_eq!(t.dirty_cards(), vec![1]);
        assert!(t.clean(1));
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn stuck_cards_resist_cleaning() {
        let mut t = CardTable::new(Addr(0), 2048);
        t.mark_stuck(Addr(0));
        assert!(!t.clean(0), "stuck card stays dirty");
        assert!(t.is_dirty(0));
        t.clear_all();
        assert!(!t.is_dirty(0));
        assert!(!t.is_stuck(0));
    }

    #[test]
    fn card_ranges() {
        let t = CardTable::new(Addr(1000), 2048);
        let (s, e) = t.card_range(1);
        assert_eq!(s, Addr(1000 + 512));
        assert_eq!(e, Addr(1000 + 1024));
        assert_eq!(t.card_of(Addr(1000 + 600)), 1);
    }

    #[test]
    #[should_panic(expected = "below card table base")]
    fn below_base_panics() {
        let t = CardTable::new(Addr(1000), 1024);
        t.card_of(Addr(999));
    }

    #[test]
    #[should_panic(expected = "past card table end")]
    fn past_end_panics() {
        let t = CardTable::new(Addr(0), 1024);
        t.card_of(Addr(1024));
    }
}
