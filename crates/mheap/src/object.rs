//! Heap objects: identity, headers, kinds.
//!
//! An RDD is, at a low level, a multi-layer object structure (Figure 1 of
//! the paper): a top RDD object references a Java array, which references
//! tuple objects, which reference further data objects. We model each of
//! those as an [`Object`] record whose header carries the mark bit, age,
//! and the two `MEMORY_BITS` Panthera reserves.

use crate::payload::Payload;
use crate::space::SpaceId;
use crate::tag::MemTag;
use hybridmem::Addr;
use std::fmt;

/// Stable identity of a heap object. Unlike a real collector, the simulator
/// never rewrites references when it moves an object — the id stays fixed
/// and only the object's simulated address changes, which is what the
/// time/energy model observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The role an object plays in an RDD's structure (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// The top `org.apache.spark.rdd.RDD` object for RDD `rdd_id`.
    RddTop {
        /// Runtime RDD id the top object represents.
        rdd_id: u32,
    },
    /// The backbone array of an RDD partition; the object Panthera
    /// pretenures directly into the tagged space.
    RddArray {
        /// Runtime RDD id the array belongs to.
        rdd_id: u32,
    },
    /// A data tuple (key/value record) or other data object reachable from
    /// an RDD array.
    Tuple,
    /// Framework control objects, iterators, buffers — not associated with
    /// any RDD.
    Control,
}

impl ObjKind {
    /// The RDD this object is structurally part of, if known statically.
    pub fn rdd_id(self) -> Option<u32> {
        match self {
            ObjKind::RddTop { rdd_id } | ObjKind::RddArray { rdd_id } => Some(rdd_id),
            _ => None,
        }
    }

    /// True for the backbone array kind.
    pub fn is_array(self) -> bool {
        matches!(self, ObjKind::RddArray { .. })
    }
}

/// Modelled size of an object header in bytes (mark word + klass pointer).
pub const HEADER_BYTES: u64 = 16;
/// Modelled size of one reference slot in bytes.
pub const REF_BYTES: u64 = 8;

/// Compute an object's modelled size from its payload and reference count.
pub fn object_bytes(payload_bytes: u64, n_refs: usize) -> u64 {
    HEADER_BYTES + payload_bytes + REF_BYTES * n_refs as u64
}

/// One simulated heap object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Structural role.
    pub kind: ObjKind,
    /// Modelled size in bytes (includes header, payload, and ref slots;
    /// may include card-alignment padding for arrays).
    pub size: u64,
    /// Current simulated address.
    pub addr: Addr,
    /// Space the object currently lives in.
    pub space: SpaceId,
    /// The `MEMORY_BITS` placement tag.
    pub tag: MemTag,
    /// Number of minor collections survived.
    pub age: u8,
    /// Mark bit used by the major collector.
    pub marked: bool,
    /// Outgoing references.
    pub refs: Vec<ObjId>,
    /// Scalar payload.
    pub payload: Payload,
}

impl Object {
    /// End address (exclusive) of the object.
    pub fn end(&self) -> Addr {
        self.addr.offset(self.size)
    }

    /// Modelled address of reference slot `index`, clamped to the object's
    /// extent. Slots normally sit at `HEADER_BYTES + REF_BYTES * index`,
    /// but `refs` may legitimately outgrow the modelled size (e.g. an
    /// appended backbone array), so the last byte of the object is used as
    /// the overflow slot address. The write barrier, the collectors'
    /// re-dirty passes, and the heap verifier must all agree on this
    /// mapping — a slot dirtied at one address and checked at another
    /// would be a false card-table violation.
    pub fn slot_addr(&self, index: usize) -> Addr {
        self.addr
            .offset((HEADER_BYTES + REF_BYTES * index as u64).min(self.size.saturating_sub(1)))
    }

    /// True if the object is in either young-generation space.
    pub fn in_young(&self) -> bool {
        self.space.is_young()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_size_model() {
        assert_eq!(object_bytes(0, 0), 16);
        assert_eq!(object_bytes(8, 0), 24);
        assert_eq!(object_bytes(0, 3), 40);
    }

    #[test]
    fn kind_rdd_ids() {
        assert_eq!(ObjKind::RddTop { rdd_id: 3 }.rdd_id(), Some(3));
        assert_eq!(ObjKind::RddArray { rdd_id: 4 }.rdd_id(), Some(4));
        assert_eq!(ObjKind::Tuple.rdd_id(), None);
        assert!(ObjKind::RddArray { rdd_id: 0 }.is_array());
        assert!(!ObjKind::Tuple.is_array());
    }

    #[test]
    fn object_end() {
        let o = Object {
            kind: ObjKind::Tuple,
            size: 32,
            addr: Addr(100),
            space: SpaceId::Eden,
            tag: MemTag::None,
            age: 0,
            marked: false,
            refs: vec![],
            payload: Payload::Unit,
        };
        assert_eq!(o.end(), Addr(132));
        assert!(o.in_young());
    }

    #[test]
    fn slot_addresses_clamp_to_extent() {
        let o = Object {
            kind: ObjKind::RddArray { rdd_id: 0 },
            size: HEADER_BYTES + 2 * REF_BYTES,
            addr: Addr(1000),
            space: SpaceId::Old(crate::space::OldSpaceId(0)),
            tag: MemTag::None,
            age: 0,
            marked: false,
            refs: vec![],
            payload: Payload::Unit,
        };
        assert_eq!(o.slot_addr(0), Addr(1000 + HEADER_BYTES));
        assert_eq!(o.slot_addr(1), Addr(1000 + HEADER_BYTES + REF_BYTES));
        // Slot 2 would start at the object's end: clamped to the last byte.
        assert_eq!(o.slot_addr(2), Addr(1000 + o.size - 1));
        assert_eq!(o.slot_addr(1000), Addr(1000 + o.size - 1));
    }
}
