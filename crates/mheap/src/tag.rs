//! Memory tags: the two reserved `MEMORY_BITS` in every object header.
//!
//! Panthera reserves two unused bits in the object header to say whether the
//! object should live in DRAM (`01`), NVM (`10`), or has no preference yet
//! (`00`, the default). Tags are set by the instrumented `rdd_alloc` calls,
//! propagated along references during GC tracing, and resolved on conflict
//! with the priority order DRAM > NVM (Section 4.2.2).

use std::fmt;

/// The value of an object's `MEMORY_BITS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum MemTag {
    /// `00`: no tag. Promoted objects with this value go to NVM by default.
    #[default]
    None,
    /// `10`: the object belongs in the NVM part of the old generation.
    Nvm,
    /// `01`: the object belongs in the DRAM part of the old generation.
    /// Highest priority on conflicts.
    Dram,
}

impl MemTag {
    /// The header bit pattern for this tag (paper Section 4.1).
    pub fn bits(self) -> u8 {
        match self {
            MemTag::None => 0b00,
            MemTag::Dram => 0b01,
            MemTag::Nvm => 0b10,
        }
    }

    /// Decode a header bit pattern.
    ///
    /// Returns `None` for the reserved pattern `11`.
    pub fn from_bits(bits: u8) -> Option<MemTag> {
        match bits {
            0b00 => Some(MemTag::None),
            0b01 => Some(MemTag::Dram),
            0b10 => Some(MemTag::Nvm),
            _ => None,
        }
    }

    /// Merge a tag propagated from another reference into this one,
    /// resolving conflicts with the paper's DRAM > NVM priority: as long as
    /// the object receives DRAM from any reference, it is a DRAM object.
    pub fn merge(self, other: MemTag) -> MemTag {
        self.max(other)
    }

    /// True if this tag expresses a placement preference.
    pub fn is_tagged(self) -> bool {
        self != MemTag::None
    }
}

impl fmt::Display for MemTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemTag::None => write!(f, "none"),
            MemTag::Dram => write!(f, "DRAM"),
            MemTag::Nvm => write!(f, "NVM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_patterns_match_paper() {
        assert_eq!(MemTag::None.bits(), 0b00);
        assert_eq!(MemTag::Dram.bits(), 0b01);
        assert_eq!(MemTag::Nvm.bits(), 0b10);
    }

    #[test]
    fn roundtrip() {
        for t in [MemTag::None, MemTag::Dram, MemTag::Nvm] {
            assert_eq!(MemTag::from_bits(t.bits()), Some(t));
        }
        assert_eq!(MemTag::from_bits(0b11), None);
    }

    #[test]
    fn dram_wins_conflicts() {
        assert_eq!(MemTag::Nvm.merge(MemTag::Dram), MemTag::Dram);
        assert_eq!(MemTag::Dram.merge(MemTag::Nvm), MemTag::Dram);
        assert_eq!(MemTag::None.merge(MemTag::Nvm), MemTag::Nvm);
        assert_eq!(MemTag::Nvm.merge(MemTag::None), MemTag::Nvm);
        assert_eq!(MemTag::None.merge(MemTag::None), MemTag::None);
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let all = [MemTag::None, MemTag::Dram, MemTag::Nvm];
        for a in all {
            assert_eq!(a.merge(a), a);
            for b in all {
                assert_eq!(a.merge(b), b.merge(a));
            }
        }
    }
}
