//! GC roots: stack and global references into the heap.
//!
//! The execution engine maintains the root set. *Global* roots model
//! long-lived references (the persisted-RDD registry); *scoped* roots model
//! stack frames: entering a task pushes a scope, and leaving it pops every
//! root the task created.

use crate::object::ObjId;

/// A set of GC roots with globals and nested scopes.
#[derive(Debug, Clone, Default)]
pub struct RootSet {
    globals: Vec<ObjId>,
    stack: Vec<ObjId>,
    scopes: Vec<usize>,
}

impl RootSet {
    /// An empty root set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a root in the current scope (or at the bottom of the stack if
    /// no scope is open).
    pub fn push(&mut self, id: ObjId) {
        self.stack.push(id);
    }

    /// Add a global root that survives every scope pop (e.g. a persisted
    /// RDD's top object).
    pub fn push_global(&mut self, id: ObjId) {
        self.globals.push(id);
    }

    /// Open a new scope (e.g. a task's stack frame).
    pub fn push_scope(&mut self) {
        self.scopes.push(self.stack.len());
    }

    /// Close the innermost scope, dropping every stack root added inside.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        let mark = self.scopes.pop().expect("no open root scope");
        self.stack.truncate(mark);
    }

    /// Remove every occurrence of a root, global or scoped (e.g. an
    /// unpersisted RDD).
    pub fn remove(&mut self, id: ObjId) {
        self.globals.retain(|r| *r != id);
        // Adjust scope marks for removed stack entries below them.
        let mut removed_below = vec![0usize; self.scopes.len()];
        let mut kept = Vec::with_capacity(self.stack.len());
        for (i, r) in self.stack.iter().enumerate() {
            if *r == id {
                for (s, mark) in self.scopes.iter().enumerate() {
                    if i < *mark {
                        removed_below[s] += 1;
                    }
                }
            } else {
                kept.push(*r);
            }
        }
        for (s, n) in removed_below.into_iter().enumerate() {
            self.scopes[s] -= n;
        }
        self.stack = kept;
    }

    /// Iterate all current roots (globals first).
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.globals.iter().chain(self.stack.iter()).copied()
    }

    /// Number of roots currently registered.
    pub fn len(&self) -> usize {
        self.globals.len() + self.stack.len()
    }

    /// True if no roots are registered.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty() && self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest() {
        let mut r = RootSet::new();
        r.push(ObjId(1));
        r.push_scope();
        r.push(ObjId(2));
        r.push_scope();
        r.push(ObjId(3));
        assert_eq!(r.len(), 3);
        r.pop_scope();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![ObjId(1), ObjId(2)]);
        r.pop_scope();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn globals_survive_scope_pops() {
        let mut r = RootSet::new();
        r.push_scope();
        r.push_global(ObjId(7));
        r.push(ObjId(8));
        r.pop_scope();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![ObjId(7)]);
        r.remove(ObjId(7));
        assert!(r.is_empty());
    }

    #[test]
    fn remove_adjusts_scopes() {
        let mut r = RootSet::new();
        r.push(ObjId(1));
        r.push(ObjId(2));
        r.push_scope();
        r.push(ObjId(3));
        r.remove(ObjId(1));
        r.pop_scope();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![ObjId(2)]);
    }

    #[test]
    #[should_panic(expected = "no open root scope")]
    fn unbalanced_pop_panics() {
        RootSet::new().pop_scope();
    }

    #[test]
    fn empty_checks() {
        let mut r = RootSet::new();
        assert!(r.is_empty());
        r.push(ObjId(0));
        assert!(!r.is_empty());
    }
}
