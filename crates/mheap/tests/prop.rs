//! Property tests for the heap: payload sizing/hashing, card geometry,
//! bump allocation, and root-scope discipline.

use hybridmem::{Addr, MemorySystemConfig};
use mheap::{
    pad_to_card, CardTable, Heap, HeapConfig, Key, MemTag, ObjId, ObjKind, Payload, RootSet,
    CARD_BYTES,
};
use proptest::prelude::*;

/// One step of a card-table torture schedule.
#[derive(Debug, Clone, Copy)]
enum CardOp {
    Dirty(usize),
    Stuck(usize),
    Clean(usize),
    ClearAll,
}

/// A naive reference model of the card table: one bool per card, no
/// bitmaps, no word skipping.
#[derive(Debug, Clone)]
struct NaiveCards {
    dirty: Vec<bool>,
    stuck: Vec<bool>,
}

impl NaiveCards {
    fn new(cards: usize) -> Self {
        NaiveCards {
            dirty: vec![false; cards],
            stuck: vec![false; cards],
        }
    }

    fn apply(&mut self, op: CardOp) {
        match op {
            CardOp::Dirty(i) => self.dirty[i] = true,
            CardOp::Stuck(i) => {
                self.dirty[i] = true;
                self.stuck[i] = true;
            }
            CardOp::Clean(i) => {
                if !self.stuck[i] {
                    self.dirty[i] = false;
                }
            }
            CardOp::ClearAll => {
                self.dirty.iter_mut().for_each(|b| *b = false);
                self.stuck.iter_mut().for_each(|b| *b = false);
            }
        }
    }

    fn next_dirty_from(&self, from: usize) -> Option<usize> {
        (from..self.dirty.len()).find(|i| self.dirty[*i])
    }

    fn iter_dirty(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|i| self.dirty[*i]).collect()
    }
}

/// Generator for arbitrary payloads (recursion bounded).
fn payload() -> impl Strategy<Value = Payload> {
    let leaf = prop_oneof![
        Just(Payload::Unit),
        any::<i64>().prop_map(Payload::Long),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Payload::Double),
        (any::<u64>(), 0u32..100).prop_map(|(sym, len)| Payload::Text { sym, len }),
        prop::collection::vec(any::<i64>(), 0..8).prop_map(Payload::longs),
        prop::collection::vec(-1e9f64..1e9, 0..8).prop_map(Payload::doubles),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Payload::pair(a, b)),
            prop::collection::vec(inner, 0..4).prop_map(Payload::list),
        ]
    })
}

proptest! {
    /// Fingerprints are a pure function of structure: equal payloads hash
    /// equal, and cloning never changes the hash.
    #[test]
    fn fingerprint_is_stable(p in payload()) {
        prop_assert_eq!(p.fingerprint(), p.clone().fingerprint());
    }

    /// Wrapping a payload changes its fingerprint (no trivial collisions
    /// between a value and its 1-tuple).
    #[test]
    fn fingerprint_sees_structure(p in payload()) {
        let wrapped = Payload::list(vec![p.clone()]);
        prop_assert_ne!(p.fingerprint(), wrapped.fingerprint());
    }

    /// model_bytes is consistent under composition: a pair costs its parts
    /// plus a constant.
    #[test]
    fn pair_bytes_compose(a in payload(), b in payload()) {
        let pair = Payload::pair(a.clone(), b.clone());
        prop_assert_eq!(pair.model_bytes(), 16 + a.model_bytes() + b.model_bytes());
    }

    /// Keyed payloads always expose their key.
    #[test]
    fn keyed_payloads_have_keys(k in any::<i64>(), v in payload()) {
        prop_assert_eq!(Payload::keyed(k, v).shuffle_key(), Key::Long(k));
    }

    /// Card padding: the result is card-aligned, never smaller, and adds
    /// less than one card.
    #[test]
    fn padding_properties(size in 0u64..1_000_000) {
        let padded = pad_to_card(size);
        prop_assert_eq!(padded % CARD_BYTES, 0);
        prop_assert!(padded >= size);
        prop_assert!(padded - size < CARD_BYTES);
    }

    /// Young allocations never overlap and stay inside eden.
    #[test]
    fn young_objects_never_overlap(sizes in prop::collection::vec(0usize..32, 1..64)) {
        let mut heap = Heap::new(
            HeapConfig::panthera(6_000_000, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(2_000_000, 4_000_000),
        ).unwrap();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for n in sizes {
            let id = heap
                .alloc_young(
                    ObjKind::Tuple,
                    MemTag::None,
                    vec![],
                    Payload::doubles(vec![0.0; n]),
                )
                .unwrap();
            let o = heap.obj(id);
            spans.push((o.addr.0, o.end().0));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "objects overlap: {w:?}");
        }
        let eden = heap.eden();
        prop_assert!(spans.last().unwrap().1 <= eden.base().0 + eden.capacity());
    }

    /// Arrays in old spaces end card-aligned when padding is on, for any
    /// interleaving of tuples and arrays.
    #[test]
    fn arrays_end_card_aligned(ops in prop::collection::vec((any::<bool>(), 1usize..64), 1..32)) {
        let mut heap = Heap::new(
            HeapConfig::panthera(8_000_000, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(2_000_000, 6_000_000),
        ).unwrap();
        let nvm = heap.old_nvm().unwrap();
        let base = heap.old(nvm).base().0;
        for (i, (is_array, n)) in ops.into_iter().enumerate() {
            if is_array {
                let id = heap.alloc_array_old(nvm, i as u32, n, MemTag::Nvm).unwrap();
                let o = heap.obj(id);
                prop_assert_eq!((o.end().0 - base) % CARD_BYTES, 0);
            } else {
                heap.alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::longs(vec![0; n]))
                    .unwrap();
            }
        }
    }

    /// The bitmap card table agrees with a naive per-card bool model under
    /// arbitrary mark/stick/clean/clear schedules: same dirty set, same
    /// word-skipping cursor answers from every start index, same counts.
    #[test]
    fn card_table_matches_naive_reference(
        cards in 1usize..200,
        ops in prop::collection::vec((any::<u64>(), any::<u64>()), 0..64),
    ) {
        let base = Addr(CARD_BYTES * 3); // non-zero base: card_of must offset
        let mut table = CardTable::new(base, cards as u64 * CARD_BYTES);
        let mut naive = NaiveCards::new(cards);
        prop_assert_eq!(table.len(), cards);
        for (a, b) in ops {
            // Derive an op from two raw u64s so the schedule shrinks well.
            let op = match a % 9 {
                0..=3 => CardOp::Dirty(b as usize % cards),
                4 => CardOp::Stuck(b as usize % cards),
                5..=7 => CardOp::Clean(b as usize % cards),
                _ => CardOp::ClearAll,
            };
            match op {
                CardOp::Dirty(i) => {
                    // Any address within the card must mark it.
                    let within = b % CARD_BYTES;
                    table.mark_dirty(Addr(base.0 + i as u64 * CARD_BYTES + within));
                }
                CardOp::Stuck(i) => table.mark_stuck(Addr(base.0 + i as u64 * CARD_BYTES)),
                CardOp::Clean(i) => {
                    let cleaned = table.clean(i);
                    prop_assert_eq!(cleaned, !naive.stuck[i], "clean({i})");
                }
                CardOp::ClearAll => table.clear_all(),
            }
            naive.apply(op);
            // Full dirty-set agreement after every step.
            prop_assert_eq!(table.iter_dirty().collect::<Vec<_>>(), naive.iter_dirty());
            prop_assert_eq!(table.dirty_count(), naive.iter_dirty().len());
            for i in 0..cards {
                prop_assert_eq!(table.is_dirty(i), naive.dirty[i], "card {i}");
                prop_assert_eq!(table.is_stuck(i), naive.stuck[i], "card {i}");
            }
            // The word-skipping cursor agrees with a linear scan from every
            // start position, including past-the-end.
            for from in 0..=cards {
                prop_assert_eq!(
                    table.next_dirty_from(from),
                    naive.next_dirty_from(from),
                    "from {from}"
                );
            }
        }
    }

    /// Root scopes: after popping every scope, exactly the pre-scope roots
    /// (minus removals) remain, in order.
    #[test]
    fn root_scopes_balance(
        outer in prop::collection::vec(any::<u32>(), 0..8),
        scoped in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..4), 0..4),
    ) {
        let mut roots = RootSet::new();
        for r in &outer {
            roots.push(ObjId(*r));
        }
        for scope in &scoped {
            roots.push_scope();
            for r in scope {
                roots.push(ObjId(*r));
            }
        }
        for _ in &scoped {
            roots.pop_scope();
        }
        let expect: Vec<ObjId> = outer.iter().map(|r| ObjId(*r)).collect();
        prop_assert_eq!(roots.iter().collect::<Vec<_>>(), expect);
    }
}
