//! The PR 9 service guarantees (DESIGN.md §13):
//!
//! 1. **Reduction.** A single-tenant service run reproduces the
//!    equivalent [`RunBuilder`] run exactly — same `RunReport` bytes,
//!    same action results.
//! 2. **Determinism.** A fixed submission sequence yields a bit-identical
//!    `ServiceReport` JSON regardless of the host-thread budget.
//! 3. **Fairness.** Under fair share, the weighted virtual-time spread
//!    between schedulable tenants never exceeds one weighted stage
//!    charge, for any tenant count and weight mix (proptest); a tiny job
//!    behind a huge one is dispatched within one stage, not one job.
//! 4. **Isolation.** A tenant whose job crashes, or whose job bounces off
//!    its heap quota, never perturbs another tenant's `RunReport`.
//! 5. **Observability.** The service narrates each job's lifecycle
//!    through `job_submitted` / `job_started` / `job_preempted` /
//!    `job_finished` events.

use obs::{Event, Observer, RingBufferSink};
use panthera::{FaultPlan, MemoryMode, RunBuilder, SystemConfig, SIM_GB};
use panthera_jobs::{
    JobOutcome, JobService, JobSpec, SchedPolicy, ServiceConfig, ServiceReport, SubmitTo,
};
use proptest::prelude::*;
use sparklang::{FnTable, Program};
use sparklet::DataRegistry;
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{build_workload, WorkloadId};

fn cfg(heap_gb: u64) -> SystemConfig {
    SystemConfig::new(MemoryMode::Panthera, heap_gb * SIM_GB, 1.0 / 3.0)
}

fn triple(id: WorkloadId, scale: f64, seed: u64) -> (Program, FnTable, DataRegistry) {
    let w = build_workload(id, scale, seed);
    (w.program, w.fns, w.data)
}

fn build_tc() -> (Program, FnTable, DataRegistry) {
    triple(WorkloadId::Tc, 0.03, 11)
}

/// Tolerance for comparing accumulated f64 nanosecond clocks.
const EPS: f64 = 1e-9;

// ---------------------------------------------------------------- 1. reduction

#[test]
fn single_tenant_service_run_equals_runbuilder_run() {
    let (program, fns, data) = triple(WorkloadId::Km, 0.05, 7);
    let oneshot = RunBuilder::new(&program, fns, data)
        .config(cfg(4))
        .run()
        .expect("valid configuration");

    let mut service = JobService::new(ServiceConfig::new(1));
    let (program, fns, data) = triple(WorkloadId::Km, 0.05, 7);
    let id = RunBuilder::new(&program, fns, data)
        .config(cfg(4))
        .submit_to(&mut service, 1)
        .expect("admissible job");
    let report = service.run();

    let job = &report.jobs[id as usize];
    assert_eq!(job.outcome, JobOutcome::Finished);
    assert!(job.stages > 0, "cursor jobs run stage by stage");
    assert_eq!(
        job.results, oneshot.results,
        "the service must compute the same action results"
    );
    let service_run = job.report.as_ref().expect("finished job has a report");
    assert_eq!(
        service_run.to_json().to_compact(),
        oneshot.report.to_json().to_compact(),
        "a single-tenant service run must reproduce the one-shot run bit-for-bit"
    );
}

// -------------------------------------------------------------- 2. determinism

fn mixed_service(host_threads: usize) -> ServiceReport {
    let mut service = JobService::new(ServiceConfig {
        pool_executors: 4,
        policy: SchedPolicy::FairShare,
        dram_budget_bytes: Some(3 * SIM_GB),
        host_threads: Some(host_threads),
    });
    service.add_tenant(1, 2.0, None);
    service.add_tenant(2, 1.0, Some(64 * SIM_GB));
    // Tenant 1: two cursor jobs; tenant 2: one atomic 2-executor job.
    let (p1, f1, d1) = triple(WorkloadId::Km, 0.04, 3);
    let (p2, f2, d2) = triple(WorkloadId::Lr, 0.04, 5);
    service
        .submit(JobSpec::inline(1, p1, f1, d1).with_config(cfg(4)))
        .expect("admissible");
    service
        .submit(
            JobSpec::inline(1, p2, f2, d2)
                .with_config(cfg(4))
                .with_priority(3),
        )
        .expect("admissible");
    let mut c2 = cfg(4);
    c2.executors = 2;
    service
        .submit(JobSpec::rebuild(2, "tc-cluster", &build_tc).with_config(c2))
        .expect("admissible");
    service.run()
}

#[test]
fn service_report_is_bit_identical_across_host_thread_budgets() {
    let a = mixed_service(1).to_json().to_compact();
    let b = mixed_service(4).to_json().to_compact();
    assert!(
        a.contains("\"outcome\":\"finished\""),
        "the mixed workload must actually finish jobs"
    );
    assert_eq!(
        a, b,
        "host threads change wall-clock only, never the ServiceReport"
    );
}

// ----------------------------------------------------------------- 3. fairness

#[test]
fn tiny_job_is_not_starved_behind_a_huge_one() {
    let huge = || triple(WorkloadId::Pr, 0.25, 2);
    let tiny = || triple(WorkloadId::Km, 0.02, 2);

    let run = |policy: SchedPolicy| {
        let mut service = JobService::new(ServiceConfig {
            pool_executors: 1,
            policy,
            dram_budget_bytes: None,
            host_threads: None,
        });
        let (hp, hf, hd) = huge();
        let (tp, tf, td) = tiny();
        service
            .submit(JobSpec::inline(1, hp, hf, hd).with_config(cfg(8)))
            .expect("admissible");
        service
            .submit(JobSpec::inline(2, tp, tf, td).with_config(cfg(2)))
            .expect("admissible");
        service.run()
    };

    let fair = run(SchedPolicy::FairShare);
    assert!(
        fair.jobs[1].finish_s < fair.jobs[0].finish_s,
        "fair share must finish the tiny job while the huge one still runs"
    );
    // SLO: the tiny job waits at most one stage of the huge job — it is
    // admitted at the first barrier after its tenant falls behind.
    let queued = fair.jobs[1].queued_s().expect("tiny job started");
    assert!(
        queued <= fair.max_stage_charge_s + EPS,
        "tiny job queued {queued}s, more than one stage ({}s)",
        fair.max_stage_charge_s
    );
    assert!(
        fair.preemptions > 0,
        "the huge job must be preempted at barriers"
    );

    let fifo = run(SchedPolicy::Fifo);
    assert!(
        fifo.jobs[1].finish_s > fifo.jobs[0].finish_s,
        "FIFO runs the huge job to completion first"
    );
    assert!(
        fair.queue_p99_s < fifo.queue_p99_s,
        "fair share must beat FIFO on p99 queueing delay (fair={}, fifo={})",
        fair.queue_p99_s,
        fifo.queue_p99_s
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any mix of 2-8 tenants with random weights and random small jobs:
    /// the max weighted virtual-time spread between schedulable tenants
    /// stays within one weighted stage charge, and everything finishes.
    #[test]
    fn fair_share_bounds_weighted_vtime_spread(
        weights_deci in prop::collection::vec(2u64..40, 2..8),
        picks in prop::collection::vec(0usize..7, 2..8),
        seed in 0u64..500,
    ) {
        let mut service = JobService::new(ServiceConfig::new(1));
        let n = weights_deci.len();
        for (t, w) in weights_deci.iter().enumerate() {
            service.add_tenant(t as u32 + 1, *w as f64 / 10.0, None);
        }
        for (i, pick) in picks.iter().enumerate() {
            let tenant = (i % n) as u32 + 1;
            let id = WorkloadId::ALL[*pick];
            let (p, f, d) = triple(id, 0.02, seed + i as u64);
            service
                .submit(JobSpec::inline(tenant, p, f, d).with_config(cfg(2)))
                .expect("admissible");
        }
        let report = service.run();
        for job in &report.jobs {
            prop_assert_eq!(job.outcome, JobOutcome::Finished, "job {} outcome", job.job);
        }
        prop_assert!(
            report.max_vtime_spread_s <= report.max_stage_charge_s + EPS,
            "spread {}s exceeds one weighted stage charge {}s",
            report.max_vtime_spread_s,
            report.max_stage_charge_s
        );
    }
}

// ---------------------------------------------------------------- 4. isolation

/// The good tenant's RunReport bytes from a service hosting nobody else.
fn good_tenant_solo_report() -> String {
    let mut service = JobService::new(ServiceConfig {
        pool_executors: 3,
        policy: SchedPolicy::FairShare,
        dram_budget_bytes: None,
        host_threads: None,
    });
    let (p, f, d) = triple(WorkloadId::Km, 0.04, 9);
    let good = service
        .submit(JobSpec::inline(1, p, f, d).with_config(cfg(4)))
        .expect("admissible");
    let report = service.run();
    report.jobs[good as usize]
        .report
        .as_ref()
        .expect("good job finished")
        .to_json()
        .to_compact()
}

#[test]
fn crashing_tenant_never_perturbs_other_tenants() {
    let mut plan = FaultPlan::single_crash(1, 2);
    plan.recover = false; // the crash is fatal to the job, not the service
    let solo = good_tenant_solo_report();
    let mut service = JobService::new(ServiceConfig {
        pool_executors: 3,
        policy: SchedPolicy::FairShare,
        dram_budget_bytes: None,
        host_threads: None,
    });
    let (p, f, d) = triple(WorkloadId::Km, 0.04, 9);
    let good = service
        .submit(JobSpec::inline(1, p, f, d).with_config(cfg(4)))
        .expect("admissible");
    let mut c = cfg(4);
    c.executors = 2;
    service
        .submit(
            JobSpec::rebuild(2, "tc-doomed", &build_tc)
                .with_config(c)
                .with_faults(&plan),
        )
        .expect("admissible until it crashes");
    let report = service.run();
    // The bad job failed; the service survived and said so.
    assert_eq!(report.jobs[1].outcome, JobOutcome::Failed);
    assert_eq!(report.tenants[1].failed, 1);
    // And the good tenant's measurements are bit-identical to a service
    // that never hosted the bad tenant at all.
    let with_bad = report.jobs[good as usize]
        .report
        .as_ref()
        .expect("good job finished")
        .to_json()
        .to_compact();
    assert_eq!(
        with_bad, solo,
        "a crashing co-tenant must not perturb another tenant's RunReport"
    );
}

#[test]
fn quota_bounced_tenant_never_perturbs_other_tenants() {
    // DRAM arbitration is live here: the rejected job must not count
    // toward anyone's split, so the good tenant's clamp is unchanged.
    let run = |include_bad: bool| {
        let mut service = JobService::new(ServiceConfig {
            pool_executors: 2,
            policy: SchedPolicy::FairShare,
            dram_budget_bytes: Some(4 * SIM_GB),
            host_threads: None,
        });
        service.add_tenant(2, 1.0, Some(SIM_GB)); // quota below any job here
        let (p, f, d) = triple(WorkloadId::Km, 0.04, 9);
        let good = service
            .submit(JobSpec::inline(1, p, f, d).with_config(cfg(4)))
            .expect("admissible");
        if include_bad {
            let (bp, bf, bd) = triple(WorkloadId::Lr, 0.04, 9);
            let bad = service
                .submit(JobSpec::inline(2, bp, bf, bd).with_config(cfg(4)))
                .expect("submission is recorded even when admission rejects");
            let report = service.run();
            assert_eq!(
                report.jobs[bad as usize].outcome,
                JobOutcome::Rejected,
                "a job over its tenant quota is rejected at admission"
            );
            assert_eq!(report.tenants[1].rejected, 1);
            return report.jobs[good as usize]
                .report
                .as_ref()
                .expect("good job finished")
                .to_json()
                .to_compact();
        }
        let report = service.run();
        report.jobs[good as usize]
            .report
            .as_ref()
            .expect("good job finished")
            .to_json()
            .to_compact()
    };
    assert_eq!(
        run(true),
        run(false),
        "a quota-bounced co-tenant must not perturb another tenant's RunReport"
    );
}

// ------------------------------------------------------------ 5. observability

#[test]
fn service_narrates_job_lifecycles() {
    let ring = Rc::new(RefCell::new(RingBufferSink::new(1 << 16)));
    let mut service = JobService::new(ServiceConfig::new(1));
    service.set_observer(Observer::with_sink(ring.clone()));
    let (p1, f1, d1) = triple(WorkloadId::Km, 0.03, 4);
    let (p2, f2, d2) = triple(WorkloadId::Lr, 0.03, 4);
    service
        .submit(JobSpec::inline(1, p1, f1, d1).with_config(cfg(2)))
        .expect("admissible");
    service
        .submit(JobSpec::inline(2, p2, f2, d2).with_config(cfg(2)))
        .expect("admissible");
    let report = service.run();
    assert_eq!(report.jobs.len(), 2);

    let ring = ring.borrow();
    let count = |f: &dyn Fn(&Event) -> bool| ring.events().filter(|(_, e)| f(e)).count();
    assert_eq!(
        count(&|e| matches!(e, Event::JobSubmitted { .. })),
        2,
        "one submission event per job"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::JobStarted { .. })),
        2,
        "one start event per job"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::JobFinished { .. })),
        2,
        "one finish event per job"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::JobPreempted { .. })) as u64,
        report.preemptions,
        "the report's preemption count matches the event stream"
    );
    // Submissions precede starts precede finishes, per job.
    for want in 0..2u32 {
        let mut saw_submit = false;
        let mut saw_start = false;
        for (_, e) in ring.events() {
            match e {
                Event::JobSubmitted { job, .. } if *job == want => saw_submit = true,
                Event::JobStarted { job, .. } if *job == want => {
                    assert!(saw_submit, "job {want} started before submission");
                    saw_start = true;
                }
                Event::JobFinished { job, .. } if *job == want => {
                    assert!(saw_start, "job {want} finished before starting");
                }
                _ => {}
            }
        }
    }
}
