//! `RunBuilder::submit_to` sugar: reuse the one-shot builder's fluent
//! surface to enqueue a job on a [`JobService`].

use crate::service::{JobService, JobSpec, SubmitError};
use panthera::{RunBuilder, RunSource};

/// Submit a configured run to a [`JobService`] instead of executing it
/// inline.
///
/// Implemented for [`RunBuilder`], so the two entry points read
/// side-by-side:
///
/// ```text
/// RunBuilder::new(&p, fns, data).config(cfg).run()?;            // one-shot
/// RunBuilder::new(&p, fns, data).config(cfg).submit_to(&mut s, tenant)?; // service
/// ```
pub trait SubmitTo<'a> {
    /// Enqueue this configured run as a job for `tenant`; returns the
    /// service-assigned job id.
    ///
    /// # Errors
    ///
    /// The same admission-time checks as [`JobService::submit`].
    fn submit_to(self, service: &mut JobService<'a>, tenant: u32) -> Result<u32, SubmitError>;
}

impl<'a> SubmitTo<'a> for RunBuilder<'a> {
    fn submit_to(self, service: &mut JobService<'a>, tenant: u32) -> Result<u32, SubmitError> {
        let parts = self.into_parts();
        // The builder's host-thread bound is a wall-clock knob for its
        // own inline cluster runs; under the service the ServiceConfig's
        // bound governs instead, so it is deliberately dropped here.
        let mut spec = match parts.source {
            RunSource::Once { program, fns, data } => {
                JobSpec::inline(tenant, program.clone(), fns, data)
            }
            RunSource::Rebuild(build) => {
                let name = build().0.name.clone();
                JobSpec::rebuild(tenant, &name, build)
            }
        };
        spec = spec.with_config(parts.config).with_engine(parts.engine);
        if let Some(plan) = parts.faults {
            spec = spec.with_faults(plan);
        }
        service.submit(spec)
    }
}
