//! The deterministic multi-tenant job service.
//!
//! [`JobService`] owns a shared [`ExecutorPool`] and a queue of submitted
//! jobs, and drives them concurrently in *service virtual time*: a
//! discrete-event loop dispatches one statement-stage per free slot,
//! advances to the earliest stage completion, and repeats. Nothing about
//! host threads or wall-clock ordering enters the loop, so a fixed
//! submission sequence yields a bit-identical [`ServiceReport`] on any
//! machine.
//!
//! Scheduling is stride/deficit fair-share keyed per tenant (DESIGN.md
//! §13): each dispatch charges the owning tenant `stage_seconds / weight`
//! of weighted virtual runtime, and the next dispatch goes to the
//! schedulable tenant furthest behind. Jobs yield only at stage barriers
//! — the engine's own statement boundaries — so every invariant of the
//! cluster/recovery machinery survives preemption untouched.

use crate::report::{quantile, JobOutcome, JobRecord, ServiceReport, TenantReport, NEVER_S};
use obs::{Event, Observer};
use panthera::{
    ConfigError, ExecutorPool, FaultPlan, PoolLease, RunBuilder, RunReport, SingleCursor,
    SystemConfig,
};
use sparklang::{FnTable, Program};
use sparklet::{ActionResult, DataRegistry, EngineConfig};
use std::collections::BTreeMap;
use std::fmt;

const NS_PER_S: f64 = 1e9;

/// How the service orders runnable work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Stride/deficit fair share: the schedulable tenant with the least
    /// weighted virtual runtime dispatches next.
    #[default]
    FairShare,
    /// Strict submission order: the runnable job with the lowest id
    /// dispatches next (jobs still run concurrently across free slots).
    Fifo,
}

impl SchedPolicy {
    /// Stable serialization label.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::FairShare => "fair_share",
            SchedPolicy::Fifo => "fifo",
        }
    }
}

/// Static configuration of a [`JobService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor slots in the shared pool.
    pub pool_executors: u16,
    /// Dispatch policy.
    pub policy: SchedPolicy,
    /// Hot-memory (DRAM) budget split across live jobs by tenant weight;
    /// `None` disables arbitration entirely.
    pub dram_budget_bytes: Option<u64>,
    /// Host-thread bound forwarded to atomic multi-executor jobs. Changes
    /// wall-clock time only, never a simulated value.
    pub host_threads: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            pool_executors: 4,
            policy: SchedPolicy::FairShare,
            dram_budget_bytes: None,
            host_threads: None,
        }
    }
}

impl ServiceConfig {
    /// A fair-share service over `pool_executors` slots, no DRAM
    /// arbitration.
    pub fn new(pool_executors: u16) -> ServiceConfig {
        ServiceConfig {
            pool_executors,
            ..ServiceConfig::default()
        }
    }
}

/// Where a job's program comes from.
pub enum JobSource<'a> {
    /// An owned triple — enough for a single-runtime job, which the
    /// service drives through a resumable stage cursor.
    Inline {
        /// The driver program.
        program: Program,
        /// Its user-function table.
        fns: FnTable,
        /// Its input datasets.
        data: DataRegistry,
    },
    /// A deterministic rebuild closure — required for multi-executor and
    /// fault-injected jobs, which run atomically through the cluster
    /// driver.
    Rebuild(&'a (dyn Fn() -> (Program, FnTable, DataRegistry) + Sync)),
}

/// One job submission: a program source plus its per-job configuration,
/// tenancy, and priority.
pub struct JobSpec<'a> {
    /// The program source.
    pub source: JobSource<'a>,
    /// Per-job system configuration (heap geometry, mode, executors…).
    pub config: SystemConfig,
    /// Per-job engine knobs.
    pub engine: EngineConfig,
    /// Submitting tenant id.
    pub tenant: u32,
    /// Priority within the tenant — higher dispatches first.
    pub priority: u32,
    /// Deterministic fault plan (forces the atomic cluster path).
    pub faults: Option<&'a FaultPlan>,
    /// Display name; defaults to the program name for inline sources.
    pub name: String,
}

impl<'a> JobSpec<'a> {
    /// A single-runtime job from an owned `(program, fns, data)` triple,
    /// in the paper-default configuration until [`JobSpec::with_config`]
    /// replaces it.
    pub fn inline(tenant: u32, program: Program, fns: FnTable, data: DataRegistry) -> JobSpec<'a> {
        let name = program.name.clone();
        JobSpec {
            source: JobSource::Inline { program, fns, data },
            config: SystemConfig::paper_default(panthera::MemoryMode::Panthera),
            engine: EngineConfig::default(),
            tenant,
            priority: 0,
            faults: None,
            name,
        }
    }

    /// A job from a deterministic rebuild closure — the only source the
    /// atomic multi-executor / fault-injected path accepts.
    pub fn rebuild(
        tenant: u32,
        name: &str,
        build: &'a (dyn Fn() -> (Program, FnTable, DataRegistry) + Sync),
    ) -> JobSpec<'a> {
        JobSpec {
            source: JobSource::Rebuild(build),
            config: SystemConfig::paper_default(panthera::MemoryMode::Panthera),
            engine: EngineConfig::default(),
            tenant,
            priority: 0,
            faults: None,
            name: name.to_string(),
        }
    }

    /// Replace the per-job system configuration.
    pub fn with_config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Replace the per-job engine knobs.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Set the within-tenant priority (higher dispatches first).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Run under a deterministic fault plan (atomic path; needs a
    /// [`JobSource::Rebuild`] source).
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Why a submission was refused outright (as opposed to admitted and
/// later [`JobOutcome::Rejected`]).
#[derive(Debug)]
pub enum SubmitError {
    /// Multi-executor or fault-injected jobs need a rebuild source.
    NeedsRebuild {
        /// Executors the job asked for.
        executors: u16,
    },
    /// The job asks for more executors than the pool will ever have.
    PoolTooSmall {
        /// Executors the job asked for.
        executors: u16,
        /// Slots the pool has.
        pool: u16,
    },
    /// The job's configuration violates a constraint.
    Config(ConfigError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::NeedsRebuild { executors } => write!(
                f,
                "job asks for {executors} executors (or faults); submit a rebuild source"
            ),
            SubmitError::PoolTooSmall { executors, pool } => write!(
                f,
                "job asks for {executors} executors but the pool has only {pool} slots"
            ),
            SubmitError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-tenant scheduler state.
#[derive(Debug, Clone)]
struct TenantState {
    weight: f64,
    quota_bytes: Option<u64>,
    /// Weighted virtual runtime, nanoseconds.
    vruntime_ns: f64,
    /// Unweighted stage nanoseconds consumed.
    busy_ns: f64,
    /// Heap bytes of the tenant's currently-running jobs.
    live_heap_bytes: u64,
    /// Largest DRAM share sum its live jobs ever held.
    max_dram_share: u64,
    submitted: u32,
    finished: u32,
    rejected: u32,
    failed: u32,
    reports: Vec<RunReport>,
}

impl TenantState {
    fn new(weight: f64, quota_bytes: Option<u64>) -> TenantState {
        TenantState {
            weight,
            quota_bytes,
            vruntime_ns: 0.0,
            busy_ns: 0.0,
            live_heap_bytes: 0,
            max_dram_share: 0,
            submitted: 0,
            finished: 0,
            rejected: 0,
            failed: 0,
            reports: Vec::new(),
        }
    }
}

/// Execution phase of one job.
enum Phase<'a> {
    /// Submitted, not yet admitted.
    Queued { spec: Box<JobSpec<'a>> },
    /// Admitted and paused at a stage barrier, wanting one slot.
    Barrier { cursor: Box<SingleCursor> },
    /// A statement-stage is in flight until the scheduled completion.
    RunningStage {
        cursor: Box<SingleCursor>,
        lease: PoolLease,
    },
    /// An atomic multi-executor / fault-injected run is in flight; its
    /// (already computed, host-time-free) result unpacks at completion.
    RunningAtomic {
        lease: PoolLease,
        result: Box<Result<AtomicDone, panthera::RunError>>,
    },
    /// Left the service.
    Done,
}

/// The pieces of a completed atomic run the service keeps.
struct AtomicDone {
    report: RunReport,
    results: Vec<(String, ActionResult)>,
}

struct JobState<'a> {
    tenant: u32,
    priority: u32,
    name: String,
    /// Modelled heap footprint: per-runtime heap bytes × executors.
    footprint: u64,
    executors: u16,
    submit_ns: f64,
    start_ns: f64,
    finish_ns: f64,
    stages: u32,
    preemptions: u32,
    /// Set when the job reached a barrier and has not been re-dispatched;
    /// cleared (counting one preemption) the first time another job takes
    /// a slot instead.
    passed_over: bool,
    dram_share: u64,
    outcome: Option<JobOutcome>,
    report: Option<RunReport>,
    results: Vec<(String, ActionResult)>,
    phase: Phase<'a>,
}

/// A stage/run completion scheduled on the service clock.
struct Pending {
    t_ns: f64,
    seq: u64,
    job: usize,
}

/// The long-lived, deterministic multi-tenant job service.
///
/// ```
/// use panthera::{MemoryMode, SystemConfig, SIM_GB};
/// use panthera_jobs::{JobService, JobSpec, ServiceConfig};
/// use sparklang::{ActionKind, ProgramBuilder};
/// use sparklet::DataRegistry;
/// use mheap::Payload;
///
/// let mut service = JobService::new(ServiceConfig::new(2));
/// service.add_tenant(1, 2.0, None);
///
/// let mut b = ProgramBuilder::new("demo");
/// let src = b.source("nums");
/// let xs = b.bind("xs", src.distinct());
/// b.action(xs, ActionKind::Count);
/// let (program, fns) = b.finish();
/// let mut data = DataRegistry::new();
/// data.register("nums", (0..64).map(Payload::Long).collect());
///
/// let cfg = SystemConfig::new(MemoryMode::Panthera, 2 * SIM_GB, 1.0 / 3.0);
/// service
///     .submit(JobSpec::inline(1, program, fns, data).with_config(cfg))
///     .unwrap();
/// let report = service.run();
/// assert_eq!(report.jobs.len(), 1);
/// assert_eq!(report.jobs[0].results[0].1.as_count(), Some(64));
/// ```
pub struct JobService<'a> {
    cfg: ServiceConfig,
    observer: Observer,
    tenants: BTreeMap<u32, TenantState>,
    jobs: Vec<JobState<'a>>,
    /// Service clock, nanoseconds.
    now_ns: f64,
    /// Monotone dispatch counter — the deterministic tie-break for
    /// completions scheduled at the same instant.
    dispatch_seq: u64,
    max_vtime_spread_ns: f64,
    max_stage_charge_ns: f64,
}

impl<'a> JobService<'a> {
    /// An empty service over a fresh pool.
    pub fn new(cfg: ServiceConfig) -> JobService<'a> {
        JobService {
            cfg,
            observer: Observer::disabled(),
            tenants: BTreeMap::new(),
            jobs: Vec::new(),
            now_ns: 0.0,
            dispatch_seq: 0,
            max_vtime_spread_ns: 0.0,
            max_stage_charge_ns: 0.0,
        }
    }

    /// Route the service's `Job*` events through `observer`.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    /// Register a tenant with a fair-share `weight` and an optional heap
    /// quota. Submitting for an unregistered tenant auto-registers it
    /// with weight 1 and no quota.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite weight.
    pub fn add_tenant(&mut self, tenant: u32, weight: f64, quota_bytes: Option<u64>) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "tenant weight must be positive and finite"
        );
        self.tenants
            .insert(tenant, TenantState::new(weight, quota_bytes));
    }

    /// Submit a job; returns its service-assigned id. The job runs when
    /// [`JobService::run`] drains the queue.
    ///
    /// A job whose footprint can *never* fit its tenant quota is admitted
    /// as a record but immediately [`JobOutcome::Rejected`] — that is an
    /// admission decision, not a submission error.
    ///
    /// # Errors
    ///
    /// [`SubmitError::NeedsRebuild`] for a multi-executor or
    /// fault-injected job over an inline source,
    /// [`SubmitError::PoolTooSmall`] if the job can never be granted
    /// enough slots, and [`SubmitError::Config`] for an invalid per-job
    /// configuration.
    pub fn submit(&mut self, spec: JobSpec<'a>) -> Result<u32, SubmitError> {
        spec.config.validate().map_err(SubmitError::Config)?;
        let executors = spec.config.executors.max(1);
        let atomic = executors > 1 || spec.faults.is_some();
        if atomic && matches!(spec.source, JobSource::Inline { .. }) {
            return Err(SubmitError::NeedsRebuild { executors });
        }
        if executors > self.cfg.pool_executors {
            return Err(SubmitError::PoolTooSmall {
                executors,
                pool: self.cfg.pool_executors,
            });
        }
        let id = self.jobs.len() as u32;
        let tenant = spec.tenant;
        self.tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(1.0, None));
        let tstate = self.tenants.get_mut(&tenant).expect("just inserted");
        tstate.submitted += 1;
        let footprint = spec.config.heap_bytes.saturating_mul(u64::from(executors));
        let over_quota = tstate.quota_bytes.is_some_and(|q| footprint > q);
        let mut job = JobState {
            tenant,
            priority: spec.priority,
            name: spec.name.clone(),
            footprint,
            executors,
            submit_ns: self.now_ns,
            start_ns: -1.0,
            finish_ns: -1.0,
            stages: 0,
            preemptions: 0,
            passed_over: false,
            dram_share: 0,
            outcome: None,
            report: None,
            results: Vec::new(),
            phase: Phase::Queued {
                spec: Box::new(spec),
            },
        };
        self.observer
            .emit(self.now_ns, &Event::JobSubmitted { job: id, tenant });
        if over_quota {
            job.outcome = Some(JobOutcome::Rejected);
            job.phase = Phase::Done;
            tstate.rejected += 1;
        }
        self.jobs.push(job);
        Ok(id)
    }

    /// The DRAM share a newly-starting job of `tenant` would receive,
    /// given the currently-live jobs: `budget × weight / Σ live weights`
    /// (the starting job counts itself).
    fn dram_split(&self, tenant: u32) -> Option<u64> {
        let budget = self.cfg.dram_budget_bytes?;
        let mut total_w = self.tenants[&tenant].weight;
        for j in &self.jobs {
            if matches!(
                j.phase,
                Phase::Barrier { .. } | Phase::RunningStage { .. } | Phase::RunningAtomic { .. }
            ) {
                total_w += self.tenants[&j.tenant].weight;
            }
        }
        Some((budget as f64 * self.tenants[&tenant].weight / total_w) as u64)
    }

    /// Re-record per-tenant DRAM share sums after a job starts or
    /// finishes. Running jobs keep the binding they started with (a live
    /// heap cannot resize); the re-split governs what the *next* starting
    /// job receives and what the tenant rollups report.
    fn resplit_dram(&mut self) {
        if self.cfg.dram_budget_bytes.is_none() {
            return;
        }
        let mut sums: BTreeMap<u32, u64> = BTreeMap::new();
        for j in &self.jobs {
            if matches!(
                j.phase,
                Phase::Barrier { .. } | Phase::RunningStage { .. } | Phase::RunningAtomic { .. }
            ) {
                *sums.entry(j.tenant).or_insert(0) += j.dram_share;
            }
        }
        for (tenant, sum) in sums {
            let t = self.tenants.get_mut(&tenant).expect("tenant of live job");
            t.max_dram_share = t.max_dram_share.max(sum);
        }
    }

    /// Whether a queued job could be admitted (quota and DRAM split), and
    /// the clamped config it would run with. Executor-slot availability
    /// is deliberately *not* checked here: slot-blocked jobs stay in the
    /// candidate set so the scheduler can reserve slots for them (see
    /// [`JobService::run`]). `Err(wait)` distinguishes "wait and retry"
    /// (`true`) from "reject outright" (`false`).
    fn admission_config(&self, job: usize) -> Result<SystemConfig, bool> {
        let j = &self.jobs[job];
        let Phase::Queued { spec } = &j.phase else {
            unreachable!("admission check on a non-queued job");
        };
        let tstate = &self.tenants[&j.tenant];
        if tstate
            .quota_bytes
            .is_some_and(|q| tstate.live_heap_bytes + j.footprint > q)
        {
            return Err(true);
        }
        let mut config = spec.config.clone();
        if let Some(share) = self.dram_split(j.tenant) {
            let per_runtime = share / u64::from(j.executors);
            if per_runtime < config.dram_capacity() {
                // Clamp the job's hot memory down to its arbitrated share.
                config.dram_ratio = per_runtime as f64 / config.heap_bytes as f64;
                if config.validate().is_err() {
                    // Too little DRAM to even hold the nursery: wait for a
                    // bigger split if other jobs will finish, reject if the
                    // job is alone and the full budget still isn't enough.
                    let any_live = self.jobs.iter().any(|other| {
                        matches!(
                            other.phase,
                            Phase::Barrier { .. }
                                | Phase::RunningStage { .. }
                                | Phase::RunningAtomic { .. }
                        )
                    });
                    return Err(any_live);
                }
            }
        }
        Ok(config)
    }

    /// Tenants that could schedule work this instant (slot availability
    /// aside), with their candidate jobs: `(tenant, job)` per candidate.
    /// Jobs short on executor slots are included — the dispatch loop
    /// reserves slots for them when the policy picks them — so a
    /// multi-slot job's tenant keeps its seat at the fairness table.
    fn candidates(&self) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        for (idx, j) in self.jobs.iter().enumerate() {
            let ok = match &j.phase {
                Phase::Barrier { .. } => true,
                Phase::Queued { .. } => self.admission_config(idx).is_ok(),
                _ => false,
            };
            if ok {
                out.push((j.tenant, idx));
            }
        }
        out
    }

    /// Pick the next dispatch among `cands` per the configured policy.
    fn pick(&self, cands: &[(u32, usize)]) -> Option<usize> {
        if cands.is_empty() {
            return None;
        }
        match self.cfg.policy {
            SchedPolicy::Fifo => cands.iter().map(|&(_, idx)| idx).min(),
            SchedPolicy::FairShare => {
                // Tenant furthest behind in weighted virtual time; ties
                // fall to the lower tenant id (BTreeMap order).
                let (&best_tenant, _) = cands
                    .iter()
                    .map(|&(t, _)| (t, self.tenants[&t].vruntime_ns))
                    .collect::<BTreeMap<u32, f64>>()
                    .iter()
                    .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0)))
                    .expect("non-empty candidate set");
                // Within the tenant: higher priority first, then the job
                // with the least progress (round-robin over the tenant's
                // jobs — serializing them would leave the pool idle at
                // the tail when one late starter is all that remains),
                // then lower id.
                cands
                    .iter()
                    .filter(|&&(t, _)| t == best_tenant)
                    .map(|&(_, idx)| idx)
                    .min_by_key(|&idx| {
                        let j = &self.jobs[idx];
                        (std::cmp::Reverse(j.priority), j.stages, idx)
                    })
            }
        }
    }

    /// Record the fairness spread across the schedulable tenants of this
    /// dispatch round.
    fn record_spread(&mut self, cands: &[(u32, usize)], charged_tenant: u32) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut seen: Vec<u32> = cands.iter().map(|&(t, _)| t).collect();
        seen.push(charged_tenant);
        seen.sort_unstable();
        seen.dedup();
        if seen.len() < 2 {
            return;
        }
        for t in seen {
            let v = self.tenants[&t].vruntime_ns;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        self.max_vtime_spread_ns = self.max_vtime_spread_ns.max(hi - lo);
    }

    /// Count a stage-barrier preemption for every runnable job passed
    /// over by this dispatch.
    fn record_preemptions(&mut self, dispatched: usize) {
        let mut events = Vec::new();
        for (idx, j) in self.jobs.iter_mut().enumerate() {
            if idx != dispatched && matches!(j.phase, Phase::Barrier { .. }) && !j.passed_over {
                j.passed_over = true;
                j.preemptions += 1;
                events.push(Event::JobPreempted {
                    job: idx as u32,
                    stage: j.stages,
                });
            }
        }
        for ev in events {
            self.observer.emit(self.now_ns, &ev);
        }
    }

    /// Dispatch `job` (admitting it first if queued) onto the pool.
    /// Returns `false` if admission rejected it outright.
    fn dispatch(
        &mut self,
        job: usize,
        pool: &mut ExecutorPool,
        pending: &mut Vec<Pending>,
    ) -> bool {
        // Admission for queued jobs.
        if matches!(self.jobs[job].phase, Phase::Queued { .. }) {
            let config = match self.admission_config(job) {
                Ok(c) => c,
                Err(_wait) => {
                    // `candidates` vetted this job; reaching here means an
                    // admission race within one round — treat as reject.
                    let j = &mut self.jobs[job];
                    j.outcome = Some(JobOutcome::Rejected);
                    j.phase = Phase::Done;
                    self.tenants
                        .get_mut(&j.tenant)
                        .expect("known tenant")
                        .rejected += 1;
                    return false;
                }
            };
            let spec = match std::mem::replace(&mut self.jobs[job].phase, Phase::Done) {
                Phase::Queued { spec } => *spec,
                _ => unreachable!(),
            };
            let share = self.dram_split(spec.tenant).unwrap_or(0);
            let atomic = self.jobs[job].executors > 1 || spec.faults.is_some();
            let started = if atomic {
                self.start_atomic(job, spec, config, pool, pending)
            } else {
                self.start_cursor(job, spec, config)
            };
            if !started {
                let j = &mut self.jobs[job];
                j.outcome = Some(JobOutcome::Rejected);
                j.phase = Phase::Done;
                self.tenants
                    .get_mut(&j.tenant)
                    .expect("known tenant")
                    .rejected += 1;
                return false;
            }
            let j = &mut self.jobs[job];
            j.start_ns = self.now_ns;
            j.dram_share = share;
            let queued_ns = self.now_ns - j.submit_ns;
            let tenant = j.tenant;
            let footprint = j.footprint;
            self.observer.emit(
                self.now_ns,
                &Event::JobStarted {
                    job: job as u32,
                    queued_ns,
                    dram_share: share,
                },
            );
            self.tenants
                .get_mut(&tenant)
                .expect("known tenant")
                .live_heap_bytes += footprint;
            self.resplit_dram();
        }
        // Run the next statement-stage of a cursor job now paused at a
        // barrier (a freshly admitted cursor job starts at stage 0's
        // barrier).
        if matches!(self.jobs[job].phase, Phase::Barrier { .. }) {
            self.run_stage(job, pool, pending);
        }
        true
    }

    /// Build the cursor for an admitted single-runtime job; `false` means
    /// the (clamped) configuration was unusable after all.
    fn start_cursor(&mut self, job: usize, spec: JobSpec<'a>, config: SystemConfig) -> bool {
        let (program, fns, data) = match spec.source {
            JobSource::Inline { program, fns, data } => (program, fns, data),
            JobSource::Rebuild(build) => build(),
        };
        match SingleCursor::start(program, fns, data, &config, spec.engine) {
            Ok(cursor) => {
                self.jobs[job].phase = Phase::Barrier {
                    cursor: Box::new(cursor),
                };
                true
            }
            Err(_) => false,
        }
    }

    /// Run an admitted multi-executor / fault-injected job atomically
    /// through the cluster driver, occupying its slots for the run's
    /// simulated duration. The result is computed host-side at dispatch
    /// (it is host-time-free by the cluster driver's own determinism
    /// guarantee) and unpacked at the scheduled completion.
    fn start_atomic(
        &mut self,
        job: usize,
        spec: JobSpec<'a>,
        config: SystemConfig,
        pool: &mut ExecutorPool,
        pending: &mut Vec<Pending>,
    ) -> bool {
        let JobSource::Rebuild(build) = spec.source else {
            return false; // submit() already refused inline atomics
        };
        let lease = pool
            .try_lease(self.jobs[job].executors)
            .expect("dispatch loop checked free slots");
        let mut builder = RunBuilder::from_build(build)
            .config(config)
            .engine(spec.engine);
        if let Some(plan) = spec.faults {
            builder = builder.faults(plan);
        }
        if let Some(n) = self.cfg.host_threads {
            builder = builder.host_threads(n);
        }
        let result = builder.run().map(|summary| AtomicDone {
            report: summary.report,
            results: summary.results,
        });
        let elapsed_ns = match &result {
            Ok(done) => done.report.elapsed_s * NS_PER_S,
            Err(_) => 0.0,
        };
        self.charge(self.jobs[job].tenant, elapsed_ns);
        self.jobs[job].phase = Phase::RunningAtomic {
            lease,
            result: Box::new(result),
        };
        self.dispatch_seq += 1;
        pending.push(Pending {
            t_ns: self.now_ns + elapsed_ns,
            seq: self.dispatch_seq,
            job,
        });
        true
    }

    /// Execute one statement-stage of a barrier-paused cursor job and
    /// schedule its completion.
    fn run_stage(&mut self, job: usize, pool: &mut ExecutorPool, pending: &mut Vec<Pending>) {
        let lease = pool.try_lease(1).expect("dispatch loop checked free slots");
        let Phase::Barrier { mut cursor } =
            std::mem::replace(&mut self.jobs[job].phase, Phase::Done)
        else {
            unreachable!("run_stage on a non-barrier job");
        };
        let before = cursor.now_ns();
        let stage_ns = if cursor.step() {
            self.jobs[job].stages += 1;
            cursor.now_ns() - before
        } else {
            0.0 // empty program: nothing to run, completes immediately
        };
        self.jobs[job].passed_over = false;
        self.charge(self.jobs[job].tenant, stage_ns);
        self.jobs[job].phase = Phase::RunningStage { cursor, lease };
        self.dispatch_seq += 1;
        pending.push(Pending {
            t_ns: self.now_ns + stage_ns,
            seq: self.dispatch_seq,
            job,
        });
    }

    /// Charge `stage_ns` of simulated work to a tenant's weighted
    /// virtual runtime.
    fn charge(&mut self, tenant: u32, stage_ns: f64) {
        let t = self.tenants.get_mut(&tenant).expect("known tenant");
        let charge = stage_ns / t.weight;
        t.vruntime_ns += charge;
        t.busy_ns += stage_ns;
        self.max_stage_charge_ns = self.max_stage_charge_ns.max(charge);
    }

    /// Handle the completion scheduled for `job` at the (already
    /// advanced) service clock.
    fn complete(&mut self, job: usize, pool: &mut ExecutorPool) {
        match std::mem::replace(&mut self.jobs[job].phase, Phase::Done) {
            Phase::RunningStage { cursor, lease } => {
                pool.release(lease);
                if cursor.is_done() {
                    let (report, outcome) = cursor.finish();
                    self.finish_job(job, JobOutcome::Finished, Some(report), outcome.results);
                } else {
                    self.jobs[job].phase = Phase::Barrier { cursor };
                }
            }
            Phase::RunningAtomic { lease, result } => {
                pool.release(lease);
                match *result {
                    Ok(done) => {
                        self.finish_job(job, JobOutcome::Finished, Some(done.report), done.results)
                    }
                    Err(_) => self.finish_job(job, JobOutcome::Failed, None, Vec::new()),
                }
            }
            other => {
                self.jobs[job].phase = other;
                unreachable!("completion for a job that is not running");
            }
        }
    }

    /// Final bookkeeping for a job leaving the service.
    fn finish_job(
        &mut self,
        job: usize,
        outcome: JobOutcome,
        report: Option<RunReport>,
        results: Vec<(String, ActionResult)>,
    ) {
        let j = &mut self.jobs[job];
        j.finish_ns = self.now_ns;
        j.outcome = Some(outcome);
        j.results = results;
        let tenant = j.tenant;
        let footprint = j.footprint;
        let elapsed_ns = self.now_ns - j.submit_ns;
        let t = self.tenants.get_mut(&tenant).expect("known tenant");
        t.live_heap_bytes = t.live_heap_bytes.saturating_sub(footprint);
        match outcome {
            JobOutcome::Finished => {
                t.finished += 1;
                if let Some(r) = &report {
                    t.reports.push(r.clone());
                }
            }
            JobOutcome::Failed => t.failed += 1,
            JobOutcome::Rejected => t.rejected += 1,
        }
        self.jobs[job].report = report;
        self.jobs[job].phase = Phase::Done;
        self.observer.emit(
            self.now_ns,
            &Event::JobFinished {
                job: job as u32,
                elapsed_ns,
            },
        );
        self.resplit_dram();
    }

    /// Drain the queue: run every submitted job to its outcome and
    /// produce the [`ServiceReport`]. Deterministic — a fixed submission
    /// sequence yields a bit-identical report regardless of host threads.
    pub fn run(&mut self) -> ServiceReport {
        let mut pool = ExecutorPool::new(self.cfg.pool_executors);
        let mut pending: Vec<Pending> = Vec::new();
        loop {
            // Fill free slots, one dispatch at a time (each changes the
            // candidate set and the fairness accounting). When the
            // policy's top choice needs more slots than are free, the
            // free slots are *reserved* for it — nothing else dispatches
            // until completions accumulate enough. Without reservation a
            // multi-slot job starves under constant single-slot churn
            // (two slots are rarely free at once); with it, the wait is
            // bounded by the in-flight stages draining. No deadlock: with
            // nothing in flight every slot is free, and `submit` already
            // bounded each job's executors by the pool size.
            loop {
                let cands = self.candidates();
                let Some(job) = self.pick(&cands) else { break };
                let need = match &self.jobs[job].phase {
                    Phase::Barrier { .. } => 1,
                    Phase::Queued { .. } => self.jobs[job].executors,
                    _ => unreachable!("picked a job that is not schedulable"),
                };
                if need > pool.available() {
                    break; // reserve: hold the free slots for this pick
                }
                let tenant = self.jobs[job].tenant;
                if self.dispatch(job, &mut pool, &mut pending) {
                    self.record_preemptions(job);
                    self.record_spread(&cands, tenant);
                }
            }
            // Advance to the earliest completion (ties: dispatch order).
            let Some(next) = pending
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.t_ns.total_cmp(&b.1.t_ns).then(a.1.seq.cmp(&b.1.seq)))
                .map(|(i, _)| i)
            else {
                break; // nothing running and nothing dispatchable
            };
            let Pending { t_ns, job, .. } = pending.swap_remove(next);
            self.now_ns = t_ns;
            self.complete(job, &mut pool);
        }
        // Jobs still queued are permanently blocked (quota or DRAM split
        // that no finish can ever relax): reject them.
        for idx in 0..self.jobs.len() {
            if matches!(self.jobs[idx].phase, Phase::Queued { .. }) {
                let j = &mut self.jobs[idx];
                j.outcome = Some(JobOutcome::Rejected);
                j.phase = Phase::Done;
                let tenant = j.tenant;
                self.tenants
                    .get_mut(&tenant)
                    .expect("known tenant")
                    .rejected += 1;
            }
        }
        self.build_report()
    }

    fn build_report(&self) -> ServiceReport {
        let jobs: Vec<JobRecord> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(idx, j)| JobRecord {
                job: idx as u32,
                name: j.name.clone(),
                tenant: j.tenant,
                priority: j.priority,
                submit_s: j.submit_ns / NS_PER_S,
                start_s: if j.start_ns >= 0.0 {
                    j.start_ns / NS_PER_S
                } else {
                    NEVER_S
                },
                finish_s: if j.finish_ns >= 0.0 {
                    j.finish_ns / NS_PER_S
                } else {
                    NEVER_S
                },
                stages: j.stages,
                preemptions: j.preemptions,
                dram_share_bytes: j.dram_share,
                outcome: j.outcome.unwrap_or(JobOutcome::Rejected),
                report: j.report.clone(),
                results: j.results.clone(),
            })
            .collect();
        let tenants: Vec<TenantReport> = self
            .tenants
            .iter()
            .map(|(&tenant, t)| TenantReport {
                tenant,
                weight: t.weight,
                quota_bytes: t.quota_bytes,
                submitted: t.submitted,
                finished: t.finished,
                rejected: t.rejected,
                failed: t.failed,
                vruntime_s: t.vruntime_ns / NS_PER_S,
                busy_s: t.busy_ns / NS_PER_S,
                dram_share_bytes: t.max_dram_share,
                aggregate: (!t.reports.is_empty()).then(|| RunReport::aggregate(&t.reports)),
            })
            .collect();
        let finished = jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Finished)
            .count() as u64;
        let first_submit = jobs
            .iter()
            .map(|j| j.submit_s)
            .fold(f64::INFINITY, f64::min);
        let last_finish = jobs
            .iter()
            .filter(|j| j.finish_s >= 0.0)
            .map(|j| j.finish_s)
            .fold(0.0, f64::max);
        let makespan_s = if first_submit.is_finite() && last_finish > first_submit {
            last_finish - first_submit
        } else {
            0.0
        };
        let mut delays: Vec<f64> = jobs.iter().filter_map(JobRecord::queued_s).collect();
        ServiceReport {
            policy: self.cfg.policy.label().to_string(),
            pool_executors: self.cfg.pool_executors,
            dram_budget_bytes: self.cfg.dram_budget_bytes,
            makespan_s,
            jobs_per_s: if makespan_s > 0.0 {
                finished as f64 / makespan_s
            } else {
                0.0
            },
            queue_p50_s: quantile(&mut delays, 0.50),
            queue_p99_s: quantile(&mut delays, 0.99),
            queue_max_s: delays.last().copied().unwrap_or(0.0),
            preemptions: jobs.iter().map(|j| u64::from(j.preemptions)).sum(),
            max_vtime_spread_s: self.max_vtime_spread_ns / NS_PER_S,
            max_stage_charge_s: self.max_stage_charge_ns / NS_PER_S,
            jobs,
            tenants,
        }
    }
}
