#![deny(missing_docs)]

//! # panthera-jobs
//!
//! A deterministic, multi-tenant **job service** over the Panthera
//! simulation: many driver programs share one executor pool and one DRAM
//! budget, scheduled fairly across tenants (DESIGN.md §13).
//!
//! The service accepts a queue of [`JobSpec`]s — a sparklang program plus
//! per-job [`panthera::SystemConfig`] overrides, a tenant id, and a
//! priority — and runs them concurrently in *service virtual time*:
//!
//! * **Fair share.** Stage dispatches charge the owning tenant
//!   `stage_seconds / weight` of weighted virtual runtime; the
//!   schedulable tenant furthest behind runs next
//!   ([`SchedPolicy::FairShare`]; [`SchedPolicy::Fifo`] for the
//!   baseline). Jobs yield only at stage barriers, so every engine
//!   invariant survives preemption.
//! * **Tenancy.** Per-tenant heap quotas gate admission; a hot-memory
//!   (DRAM) budget is split across live jobs by tenant weight and
//!   re-split whenever a job starts or finishes. Each job owns its whole
//!   simulated runtime, so a crashing or quota-bounced job cannot perturb
//!   another tenant's measurements.
//! * **Determinism.** The event loop runs on the service clock alone: a
//!   fixed submission sequence yields a bit-identical [`ServiceReport`]
//!   regardless of host-thread budgets, and a single-tenant service run
//!   reproduces the equivalent [`panthera::RunBuilder`] run exactly.
//!
//! Entry points: build a [`JobService`], [`JobService::submit`] specs (or
//! use [`SubmitTo::submit_to`] on a configured `RunBuilder`), then
//! [`JobService::run`] to drain the queue and collect the report.

mod report;
mod service;
mod submit;

pub use report::{JobOutcome, JobRecord, ServiceReport, TenantReport, NEVER_S};
pub use service::{JobService, JobSource, JobSpec, SchedPolicy, ServiceConfig, SubmitError};
pub use submit::SubmitTo;
