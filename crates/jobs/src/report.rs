//! Service-level reporting: per-job records, per-tenant rollups, and the
//! [`ServiceReport`] the whole service run produces.
//!
//! Everything here is deterministic and `to_json`-able with a fixed field
//! order, so a fixed submission sequence yields a byte-identical report —
//! the property the CI determinism check `cmp`s across host-thread
//! budgets.

use obs::Json;
use panthera::RunReport;
use sparklet::ActionResult;

/// Sentinel for "never happened" timestamps (`start_s` of a rejected
/// job): a negative time, impossible for the service clock.
pub const NEVER_S: f64 = -1.0;

/// How a submitted job left the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion; its [`RunReport`] and action results are in the
    /// job record.
    Finished,
    /// Never admitted: its footprint exceeded the tenant quota, or its
    /// arbitrated DRAM share could not satisfy the configuration's
    /// constraints even running alone.
    Rejected,
    /// Admitted but its run errored (an injected crash with recovery
    /// disabled). Other tenants' jobs are unaffected — each job owns its
    /// whole runtime.
    Failed,
}

impl JobOutcome {
    /// Stable serialization label.
    pub fn label(self) -> &'static str {
        match self {
            JobOutcome::Finished => "finished",
            JobOutcome::Rejected => "rejected",
            JobOutcome::Failed => "failed",
        }
    }
}

/// Everything the service measured about one submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Service-assigned id (submission order).
    pub job: u32,
    /// Workload/program name.
    pub name: String,
    /// The submitting tenant.
    pub tenant: u32,
    /// Submission priority (higher dispatches first within the tenant).
    pub priority: u32,
    /// Submission time on the service clock, seconds.
    pub submit_s: f64,
    /// First-dispatch time, seconds ([`NEVER_S`] if never admitted).
    pub start_s: f64,
    /// Finish time, seconds ([`NEVER_S`] if never finished).
    pub finish_s: f64,
    /// Statement-stages executed (0 for atomic multi-executor jobs, whose
    /// stages run inside the cluster driver).
    pub stages: u32,
    /// Times the job was paused at a stage barrier in favour of another
    /// tenant's stage.
    pub preemptions: u32,
    /// DRAM budget bytes arbitrated to the job when it started.
    pub dram_share_bytes: u64,
    /// How the job left the service.
    pub outcome: JobOutcome,
    /// The job's full run measurements (absent for rejected/failed jobs).
    pub report: Option<RunReport>,
    /// `(variable name, result)` per executed action, in program order.
    pub results: Vec<(String, ActionResult)>,
}

impl JobRecord {
    /// Queueing delay (submission → first dispatch), seconds; `None` if
    /// the job was never admitted.
    pub fn queued_s(&self) -> Option<f64> {
        (self.start_s >= 0.0).then_some(self.start_s - self.submit_s)
    }

    /// Serialize as a JSON object (field order fixed). Action results are
    /// summarized by count — their values live in the in-memory record.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("job", Json::UInt(u64::from(self.job))),
            ("name", Json::Str(self.name.clone())),
            ("tenant", Json::UInt(u64::from(self.tenant))),
            ("priority", Json::UInt(u64::from(self.priority))),
            ("submit_s", Json::Num(self.submit_s)),
            ("start_s", Json::Num(self.start_s)),
            ("finish_s", Json::Num(self.finish_s)),
            ("stages", Json::UInt(u64::from(self.stages))),
            ("preemptions", Json::UInt(u64::from(self.preemptions))),
            ("dram_share_bytes", Json::UInt(self.dram_share_bytes)),
            ("outcome", Json::Str(self.outcome.label().to_string())),
            ("actions", Json::UInt(self.results.len() as u64)),
            (
                "report",
                match &self.report {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Per-tenant rollup across the whole service run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant id.
    pub tenant: u32,
    /// Fair-share weight.
    pub weight: f64,
    /// Heap quota, bytes (`None` = unlimited).
    pub quota_bytes: Option<u64>,
    /// Jobs submitted.
    pub submitted: u32,
    /// Jobs that ran to completion.
    pub finished: u32,
    /// Jobs rejected at admission.
    pub rejected: u32,
    /// Jobs that errored.
    pub failed: u32,
    /// Final weighted virtual runtime, seconds.
    pub vruntime_s: f64,
    /// Unweighted simulated seconds of stage time the tenant consumed.
    pub busy_s: f64,
    /// Largest DRAM budget sum its concurrently-live jobs ever held.
    pub dram_share_bytes: u64,
    /// Aggregate of the tenant's finished jobs' reports
    /// ([`RunReport::aggregate`]); `None` if nothing finished.
    pub aggregate: Option<RunReport>,
}

impl TenantReport {
    /// Serialize as a JSON object (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tenant", Json::UInt(u64::from(self.tenant))),
            ("weight", Json::Num(self.weight)),
            (
                "quota_bytes",
                match self.quota_bytes {
                    Some(q) => Json::UInt(q),
                    None => Json::Null,
                },
            ),
            ("submitted", Json::UInt(u64::from(self.submitted))),
            ("finished", Json::UInt(u64::from(self.finished))),
            ("rejected", Json::UInt(u64::from(self.rejected))),
            ("failed", Json::UInt(u64::from(self.failed))),
            ("vruntime_s", Json::Num(self.vruntime_s)),
            ("busy_s", Json::Num(self.busy_s)),
            ("dram_share_bytes", Json::UInt(self.dram_share_bytes)),
            (
                "aggregate",
                match &self.aggregate {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Everything one whole service run produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Scheduling policy label (`"fair_share"` or `"fifo"`).
    pub policy: String,
    /// Executor slots in the shared pool.
    pub pool_executors: u16,
    /// Hot-memory budget arbitrated across live jobs (`None` = no
    /// arbitration).
    pub dram_budget_bytes: Option<u64>,
    /// One record per submitted job, in submission order.
    pub jobs: Vec<JobRecord>,
    /// One rollup per registered tenant, in tenant-id order.
    pub tenants: Vec<TenantReport>,
    /// First submission → last finish, service seconds.
    pub makespan_s: f64,
    /// Finished jobs per service second.
    pub jobs_per_s: f64,
    /// Median queueing delay over admitted jobs, seconds.
    pub queue_p50_s: f64,
    /// 99th-percentile queueing delay (nearest-rank), seconds.
    pub queue_p99_s: f64,
    /// Worst queueing delay, seconds.
    pub queue_max_s: f64,
    /// Stage-barrier preemptions across all jobs.
    pub preemptions: u64,
    /// Largest weighted virtual-time spread ever observed between
    /// schedulable tenants at a dispatch — the stage-level fairness
    /// metric. Bounded by [`ServiceReport::max_stage_charge_s`] under
    /// fair-share.
    pub max_vtime_spread_s: f64,
    /// Largest single weighted stage charge (stage seconds / weight) any
    /// dispatch ever added.
    pub max_stage_charge_s: f64,
}

impl ServiceReport {
    /// Serialize as a JSON object (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("policy", Json::Str(self.policy.clone())),
            ("pool_executors", Json::UInt(u64::from(self.pool_executors))),
            (
                "dram_budget_bytes",
                match self.dram_budget_bytes {
                    Some(b) => Json::UInt(b),
                    None => Json::Null,
                },
            ),
            ("makespan_s", Json::Num(self.makespan_s)),
            ("jobs_per_s", Json::Num(self.jobs_per_s)),
            ("queue_p50_s", Json::Num(self.queue_p50_s)),
            ("queue_p99_s", Json::Num(self.queue_p99_s)),
            ("queue_max_s", Json::Num(self.queue_max_s)),
            ("preemptions", Json::UInt(self.preemptions)),
            ("max_vtime_spread_s", Json::Num(self.max_vtime_spread_s)),
            ("max_stage_charge_s", Json::Num(self.max_stage_charge_s)),
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(JobRecord::to_json).collect()),
            ),
            (
                "tenants",
                Json::Arr(self.tenants.iter().map(TenantReport::to_json).collect()),
            ),
        ])
    }
}

/// Nearest-rank quantile of an unsorted sample (0 for an empty one).
pub(crate) fn quantile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}
