//! Shuffle-transport equivalence guarantees (ISSUE 6 acceptance criteria):
//!
//! 1. `ShuffleTransport::SharedRegion` computes action results
//!    bit-identical to the serde transport for every shuffle op
//!    (`group_by_key` / `join` / `distinct`) at `E = 2` and `E = 4` —
//!    only the simulated transfer cost differs, never a value.
//! 2. A colocated (shared-region) shuffle charges **zero** serde bytes:
//!    the engine's `fastpath_bytes` counter accounts every transferred
//!    byte at memory bandwidth, and the exchange's shared-region
//!    residency counter observes the deposits.
//! 3. An `E = 1` cluster under the shared-region transport is still
//!    bit-identical to the legacy single-runtime report (no cross-
//!    executor traffic exists, so no fast-path charge may appear).
//! 4. Reports are independent of the host-thread budget under the new
//!    transport, exactly as under serde.

use mheap::Payload;
use panthera::{MemoryMode, RunBuilder, ShuffleTransport, SystemConfig, SIM_GB};
use panthera_cluster::{run_cluster, ClusterOutcome};
use sparklang::{ActionKind, FnTable, Program, ProgramBuilder};
use sparklet::{ActionResult, DataRegistry, EngineConfig};
use workloads::{build_workload, WorkloadId};

fn transport_config(transport: ShuffleTransport, executors: u16) -> SystemConfig {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = executors;
    cfg.transport = transport;
    cfg
}

fn assert_results_eq(a: &[(String, ActionResult)], b: &[(String, ActionResult)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: action count");
    for ((av, ar), (bv, br)) in a.iter().zip(b.iter()) {
        assert_eq!(av, bv, "{what}: action order");
        assert_eq!(ar, br, "{what}: {av}");
    }
}

#[derive(Clone, Copy, Debug)]
enum ShuffleOp {
    GroupBy,
    Distinct,
    Join,
}

/// A one-shuffle program collecting its output, over `n` keyed records
/// (keys folded into `n / 3 + 1` groups so buckets collide across
/// executors).
fn shuffle_case(op: ShuffleOp, n: usize) -> (Program, FnTable, DataRegistry) {
    let mut b = ProgramBuilder::new("transport-case");
    let left = b.source("left");
    let expr = match op {
        ShuffleOp::GroupBy => left.group_by_key(),
        ShuffleOp::Distinct => left.distinct(),
        ShuffleOp::Join => {
            let right = b.source("right");
            left.join(right)
        }
    };
    let out = b.bind("out", expr);
    b.action(out, ActionKind::Collect);
    b.action(out, ActionKind::Count);
    let (program, fns) = b.finish();

    let keys = (n / 3 + 1) as i64;
    let mut data = DataRegistry::new();
    data.register(
        "left",
        (0..n)
            .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 31 + 7)))
            .collect(),
    );
    if matches!(op, ShuffleOp::Join) {
        data.register(
            "right",
            (0..n / 2)
                .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 13 + 1)))
                .collect(),
        );
    }
    (program, fns, data)
}

fn run_shuffle_case(
    op: ShuffleOp,
    n: usize,
    transport: ShuffleTransport,
    executors: u16,
    host_threads: usize,
) -> ClusterOutcome {
    let cfg = transport_config(transport, executors);
    run_cluster(
        || shuffle_case(op, n),
        &cfg,
        EngineConfig::default(),
        host_threads,
    )
    .expect("valid cluster config")
}

#[test]
fn shared_region_results_match_serde() {
    for op in [ShuffleOp::GroupBy, ShuffleOp::Distinct, ShuffleOp::Join] {
        for n in [0usize, 5, 48] {
            for executors in [2u16, 4] {
                let what = format!("{op:?} n={n} E={executors}");
                let e = usize::from(executors);
                let serde = run_shuffle_case(op, n, ShuffleTransport::Serde, executors, e);
                let shared = run_shuffle_case(op, n, ShuffleTransport::SharedRegion, executors, e);
                assert_results_eq(&shared.results, &serde.results, &what);
                assert_eq!(
                    serde.shared_region_bytes, 0,
                    "{what}: serde transport must not touch the shared region"
                );
                if n > 0 {
                    assert!(
                        shared.shared_region_bytes > 0,
                        "{what}: shared-region deposits must be accounted"
                    );
                }
                // Tiny inputs can hash entirely onto locally-owned
                // partitions; only the large shape is guaranteed to move
                // bytes between executors.
                if n >= 40 {
                    assert!(
                        shared.report.exec.fastpath_bytes > 0,
                        "{what}: cross-executor transfer must ride the fast path"
                    );
                }
                assert_eq!(
                    serde.report.exec.fastpath_bytes, 0,
                    "{what}: serde transport must never charge the fast path"
                );
                // The fast path replaces serde + net with a memory-
                // bandwidth copy; the modelled cluster must finish no
                // later than the serde run.
                assert!(
                    shared.report.elapsed_s <= serde.report.elapsed_s,
                    "{what}: shared-region run slower than serde ({} > {})",
                    shared.report.elapsed_s,
                    serde.report.elapsed_s
                );
            }
        }
    }
}

#[test]
fn shared_region_workloads_match_serde() {
    for (id, scale, seed) in [(WorkloadId::Pr, 0.05, 7), (WorkloadId::Tc, 0.06, 13)] {
        for executors in [2u16, 4] {
            let what = format!("{id} E={executors}");
            let e = usize::from(executors);
            let run = |transport| {
                let cfg = transport_config(transport, executors);
                run_cluster(
                    || {
                        let w = build_workload(id, scale, seed);
                        (w.program, w.fns, w.data)
                    },
                    &cfg,
                    EngineConfig::default(),
                    e,
                )
                .expect("valid cluster config")
            };
            let serde = run(ShuffleTransport::Serde);
            let shared = run(ShuffleTransport::SharedRegion);
            assert_results_eq(&shared.results, &serde.results, &what);
            assert!(
                shared.report.elapsed_s <= serde.report.elapsed_s,
                "{what}: shared-region run slower than serde"
            );
        }
    }
}

#[test]
fn single_executor_shared_region_matches_legacy_runtime() {
    // With one executor every shuffle is fully local: transfer_cost is 0,
    // so the shared-region transport must not charge anything — the E=1
    // cluster report stays bit-identical to the single-runtime engine.
    let cfg = transport_config(ShuffleTransport::SharedRegion, 1);
    let out = run_cluster(
        || {
            let w = build_workload(WorkloadId::Pr, 0.05, 7);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        1,
    )
    .expect("valid cluster config");
    let w = build_workload(WorkloadId::Pr, 0.05, 7);
    let legacy = RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration");
    assert_results_eq(&out.results, &legacy.results, "Pr E=1 shared-region");
    assert_eq!(
        out.report.to_json().to_compact(),
        legacy.report.to_json().to_compact(),
        "E=1 shared-region cluster report must be bit-identical to the legacy runtime"
    );
    assert_eq!(
        out.report.exec.fastpath_bytes, 0,
        "no cross-executor bytes at E=1"
    );
}

#[test]
fn shared_region_reports_are_host_thread_independent() {
    for executors in [2u16, 4] {
        let serial = run_shuffle_case(
            ShuffleOp::Join,
            40,
            ShuffleTransport::SharedRegion,
            executors,
            1,
        );
        let threaded = run_shuffle_case(
            ShuffleOp::Join,
            40,
            ShuffleTransport::SharedRegion,
            executors,
            usize::from(executors),
        );
        let what = format!("E={executors}");
        assert_results_eq(&serial.results, &threaded.results, &what);
        assert_eq!(
            serial.report.to_json().to_compact(),
            threaded.report.to_json().to_compact(),
            "{what}: shared-region aggregate must not depend on host threads"
        );
        assert_eq!(
            serial.shared_region_bytes, threaded.shared_region_bytes,
            "{what}: region residency must not depend on host threads"
        );
    }
}
