//! Cluster-mode equivalence guarantees (ISSUE 4 acceptance criteria):
//!
//! 1. An `E = 1` cluster run matches the classic single-runtime path —
//!    identical action results AND a bit-identical simulated report.
//! 2. An `E`-executor run produces a bit-identical report whether the
//!    host uses 1 thread or `E` threads (the exchange is a Kahn network;
//!    host scheduling cannot change a simulated value).
//! 3. Shuffle semantics are partition- and executor-independent:
//!    `group_by_key` / `join` / `distinct` results from an `E`-executor
//!    run equal the `E = 1` run for arbitrary partition counts, including
//!    the `partition_sizes` edge cases (`n < parts`, `parts = 1`, empty).

use mheap::Payload;
use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
use panthera_cluster::{run_cluster, ClusterOutcome};
use proptest::prelude::*;
use sparklang::{ActionKind, FnTable, Program, ProgramBuilder};
use sparklet::{ActionResult, DataRegistry, EngineConfig};
use workloads::{build_workload, WorkloadId};

fn cluster_config(mode: MemoryMode, executors: u16) -> SystemConfig {
    let mut cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = executors;
    cfg
}

fn run_workload_cluster(
    id: WorkloadId,
    mode: MemoryMode,
    scale: f64,
    seed: u64,
    executors: u16,
    host_threads: usize,
) -> ClusterOutcome {
    let cfg = cluster_config(mode, executors);
    run_cluster(
        || {
            let w = build_workload(id, scale, seed);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        host_threads,
    )
    .expect("valid cluster config")
}

fn assert_results_eq(a: &[(String, ActionResult)], b: &[(String, ActionResult)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: action count");
    for ((av, ar), (bv, br)) in a.iter().zip(b.iter()) {
        assert_eq!(av, bv, "{what}: action order");
        assert_eq!(ar, br, "{what}: {av}");
    }
}

#[test]
fn single_executor_cluster_matches_legacy_runtime() {
    for (id, mode) in [
        (WorkloadId::Tc, MemoryMode::Panthera),
        (WorkloadId::Pr, MemoryMode::Panthera),
        (WorkloadId::Tc, MemoryMode::Unmanaged),
    ] {
        let out = run_workload_cluster(id, mode, 0.06, 13, 1, 1);
        let w = build_workload(id, 0.06, 13);
        let legacy = RunBuilder::new(&w.program, w.fns, w.data)
            .config(cluster_config(mode, 1))
            .run()
            .expect("valid configuration");
        let what = format!("{id}/{mode}");
        assert_results_eq(&out.results, &legacy.results, &what);
        assert_eq!(
            out.report.to_json().to_compact(),
            legacy.report.to_json().to_compact(),
            "{what}: E=1 cluster report must be bit-identical to the legacy runtime"
        );
        assert_eq!(out.per_executor.len(), 1, "{what}: one sub-report");
    }
}

#[test]
fn host_thread_count_is_invisible() {
    for executors in [2u16, 4] {
        let serial =
            run_workload_cluster(WorkloadId::Pr, MemoryMode::Panthera, 0.05, 7, executors, 1);
        let threaded = run_workload_cluster(
            WorkloadId::Pr,
            MemoryMode::Panthera,
            0.05,
            7,
            executors,
            usize::from(executors),
        );
        let what = format!("E={executors}");
        assert_results_eq(&serial.results, &threaded.results, &what);
        assert_eq!(
            serial.report.to_json().to_compact(),
            threaded.report.to_json().to_compact(),
            "{what}: aggregate report must not depend on host threads"
        );
        for (e, (s, t)) in serial
            .per_executor
            .iter()
            .zip(threaded.per_executor.iter())
            .enumerate()
        {
            assert_eq!(
                s.to_json().to_compact(),
                t.to_json().to_compact(),
                "{what}: executor {e} sub-report must not depend on host threads"
            );
        }
    }
}

#[test]
fn count_actions_are_executor_count_independent() {
    let base = run_workload_cluster(WorkloadId::Tc, MemoryMode::Panthera, 0.06, 13, 1, 1);
    for executors in [2u16, 3, 4] {
        let out = run_workload_cluster(
            WorkloadId::Tc,
            MemoryMode::Panthera,
            0.06,
            13,
            executors,
            usize::from(executors),
        );
        assert_results_eq(&out.results, &base.results, &format!("Tc E={executors}"));
        assert_eq!(out.per_executor.len(), usize::from(executors));
    }
}

#[test]
fn heap_verifier_passes_on_every_executor() {
    let mut cfg = cluster_config(MemoryMode::Panthera, 3);
    cfg.verify_heap = true; // a violation on any executor's heap aborts
    let out = run_cluster(
        || {
            let w = build_workload(WorkloadId::Tc, 0.05, 5);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        3,
    )
    .expect("valid cluster config");
    assert_eq!(out.per_executor.len(), 3);
}

#[test]
fn executor_count_must_be_positive() {
    let cfg = cluster_config(MemoryMode::Panthera, 0);
    let err = run_cluster(
        || {
            let w = build_workload(WorkloadId::Tc, 0.05, 5);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        1,
    )
    .unwrap_err();
    assert!(err.message().contains("executors"), "{err}");
}

// ---------------------------------------------------------------------------
// Cross-executor shuffle semantics: group_by_key / join / distinct.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum ShuffleOp {
    GroupBy,
    Distinct,
    Join,
}

/// A one-shuffle program collecting its output, over `n` keyed records
/// (keys folded into `n / 3 + 1` groups so buckets collide).
fn shuffle_case(op: ShuffleOp, n: usize) -> (Program, FnTable, DataRegistry) {
    let mut b = ProgramBuilder::new("shuffle-case");
    let left = b.source("left");
    let expr = match op {
        ShuffleOp::GroupBy => left.group_by_key(),
        ShuffleOp::Distinct => left.distinct(),
        ShuffleOp::Join => {
            let right = b.source("right");
            left.join(right)
        }
    };
    let out = b.bind("out", expr);
    b.action(out, ActionKind::Collect);
    b.action(out, ActionKind::Count);
    let (program, fns) = b.finish();

    let keys = (n / 3 + 1) as i64;
    let mut data = DataRegistry::new();
    data.register(
        "left",
        (0..n)
            .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 31 + 7)))
            .collect(),
    );
    if matches!(op, ShuffleOp::Join) {
        data.register(
            "right",
            (0..n / 2)
                .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 13 + 1)))
                .collect(),
        );
    }
    (program, fns, data)
}

fn run_shuffle_case(op: ShuffleOp, n: usize, partitions: usize, executors: u16) -> ClusterOutcome {
    let cfg = cluster_config(MemoryMode::Panthera, executors);
    let ecfg = EngineConfig {
        partitions,
        ..EngineConfig::default()
    };
    run_cluster(|| shuffle_case(op, n), &cfg, ecfg, usize::from(executors))
        .expect("valid cluster config")
}

#[test]
fn shuffle_results_match_single_executor_across_partitionings() {
    for op in [ShuffleOp::GroupBy, ShuffleOp::Distinct, ShuffleOp::Join] {
        // n < parts, parts = 1, empty input, and a "normal" shape.
        for n in [0usize, 1, 2, 5, 40] {
            for partitions in [1usize, 3, 17] {
                let base = run_shuffle_case(op, n, partitions, 1);
                for executors in [2u16, 3] {
                    let out = run_shuffle_case(op, n, partitions, executors);
                    assert_results_eq(
                        &out.results,
                        &base.results,
                        &format!("{op:?} n={n} parts={partitions} E={executors}"),
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random shapes: an E-executor shuffle equals the E=1 run.
    #[test]
    fn shuffle_equivalence_under_random_shapes(
        n in 0usize..60,
        partitions in 1usize..12,
        executors in 2u16..=4,
        op_pick in 0usize..3,
    ) {
        let op = [ShuffleOp::GroupBy, ShuffleOp::Distinct, ShuffleOp::Join][op_pick];
        let base = run_shuffle_case(op, n, partitions, 1);
        let out = run_shuffle_case(op, n, partitions, executors);
        assert_results_eq(
            &out.results,
            &base.results,
            &format!("{op:?} n={n} parts={partitions} E={executors}"),
        );
    }
}
