#![deny(missing_docs)]

//! The cluster driver: `E` executors, each with its own Panthera heap,
//! scheduled over host OS threads with bit-identical results.
//!
//! The paper evaluates Panthera inside a single Spark executor JVM; this
//! crate models the *cluster* around it (DESIGN.md §8). A [`run_cluster`]
//! call plays the Spark driver: it validates the configuration and the
//! program once, then spawns one scoped OS thread per executor. Each
//! executor replays the same driver program over its own
//! [`panthera::PantheraRuntime`] — a private heap, GC coordinator,
//! traffic meter, and energy model — computing only the partitions
//! `i % E` of every stage (SPMD with deterministic ownership). Wide
//! dependencies exchange map-side buckets through the
//! [`Exchange`], which charges serialization and transfer on both sides,
//! and virtual clocks synchronize at statement barriers
//! (stage end-time = max over executors, modelling straggler skew).
//!
//! Every cross-thread interaction is a deterministic collective keyed by
//! program structure, so the merged [`RunReport`] is bit-identical
//! regardless of how many host threads actually run (`host_threads` only
//! rations permits) — and an `E = 1` cluster matches the classic
//! single-runtime run record for record.

mod exchange;

pub use exchange::Exchange;

use hybridmem::DeviceSpec;
use mheap::{Payload, WirePayload};
use obs::{Event, EventSink, Observer};
use panthera::{ConfigError, MemoryMode, PantheraRuntime, RunReport, SystemConfig};
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{
    ActionResult, ClusterCtx, DataRegistry, Engine, EngineConfig, ExchangeClient, MemoryRuntime,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Everything a cluster run produces.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The cluster-level aggregate: elapsed time is the barrier-synced
    /// maximum, energy / traffic / GC work are summed across executors
    /// (see [`RunReport::aggregate`]).
    pub report: RunReport,
    /// One sub-report per executor, in executor-id order.
    pub per_executor: Vec<RunReport>,
    /// `(variable name, result)` per executed action, in program order.
    /// Every executor computes the identical global result; this is
    /// executor 0's copy, cross-checked against the rest.
    pub results: Vec<(String, ActionResult)>,
}

/// A `Send`able mirror of [`ActionResult`] for crossing executor-thread
/// boundaries (payloads come back through [`WirePayload`]).
#[derive(Debug, Clone, PartialEq)]
enum WireResult {
    Count(u64),
    Collected(Vec<WirePayload>),
    Reduced(Option<WirePayload>),
}

fn to_wire(r: &ActionResult) -> WireResult {
    match r {
        ActionResult::Count(n) => WireResult::Count(*n),
        ActionResult::Collected(recs) => {
            WireResult::Collected(recs.iter().map(WirePayload::from).collect())
        }
        ActionResult::Reduced(rec) => WireResult::Reduced(rec.as_ref().map(WirePayload::from)),
    }
}

fn from_wire(r: &WireResult) -> ActionResult {
    match r {
        WireResult::Count(n) => ActionResult::Count(*n),
        WireResult::Collected(recs) => {
            ActionResult::Collected(recs.iter().map(Payload::from).collect())
        }
        WireResult::Reduced(rec) => ActionResult::Reduced(rec.as_ref().map(Payload::from)),
    }
}

/// The `Send`able plain-data core of a [`SystemConfig`], used to rebuild
/// an identical per-executor configuration (fresh observer, one executor)
/// inside each worker thread — `SystemConfig` itself holds an `Rc`-based
/// observer handle and cannot cross threads.
struct CfgSeed {
    mode: MemoryMode,
    heap_bytes: u64,
    dram_ratio: f64,
    nursery_fraction: f64,
    chunk_bytes: u64,
    eager_promotion: bool,
    card_padding: bool,
    dynamic_migration: bool,
    large_array_elems: usize,
    tuple_bloat_bytes: u64,
    nvm_spec: Option<DeviceSpec>,
    seed: u64,
    verify_heap: bool,
}

impl CfgSeed {
    fn of(c: &SystemConfig) -> CfgSeed {
        CfgSeed {
            mode: c.mode,
            heap_bytes: c.heap_bytes,
            dram_ratio: c.dram_ratio,
            nursery_fraction: c.nursery_fraction,
            chunk_bytes: c.chunk_bytes,
            eager_promotion: c.eager_promotion,
            card_padding: c.card_padding,
            dynamic_migration: c.dynamic_migration,
            large_array_elems: c.large_array_elems,
            tuple_bloat_bytes: c.tuple_bloat_bytes,
            nvm_spec: c.nvm_spec.clone(),
            seed: c.seed,
            verify_heap: c.verify_heap,
        }
    }

    fn rebuild(&self, observer: Observer) -> SystemConfig {
        let mut cfg = SystemConfig::new(self.mode, self.heap_bytes, self.dram_ratio);
        cfg.nursery_fraction = self.nursery_fraction;
        cfg.chunk_bytes = self.chunk_bytes;
        cfg.eager_promotion = self.eager_promotion;
        cfg.card_padding = self.card_padding;
        cfg.dynamic_migration = self.dynamic_migration;
        cfg.large_array_elems = self.large_array_elems;
        cfg.tuple_bloat_bytes = self.tuple_bloat_bytes;
        cfg.nvm_spec = self.nvm_spec.clone();
        cfg.seed = self.seed;
        cfg.verify_heap = self.verify_heap;
        cfg.observer = observer;
        cfg.executors = 1; // each executor is one classic single-JVM runtime
        cfg
    }
}

/// Buffers an executor's event stream inside its thread; the driver
/// re-emits the buffered events through the caller's observer afterwards,
/// tagged with the executor id.
struct BufSink {
    events: Vec<(f64, Event)>,
}

impl EventSink for BufSink {
    fn on_event(&mut self, t_ns: f64, event: &Event) {
        self.events.push((t_ns, event.clone()));
    }
}

/// Run the program on a simulated cluster of `config.executors` executors.
///
/// `build` constructs the program, function table, and input data; it is
/// called once on the driver (for validation and the Section 3 analysis)
/// and once inside each executor thread, and must be deterministic — every
/// call must produce the identical program and data. `host_threads` bounds
/// how many executor threads compute concurrently (clamped to
/// `1..=executors`); it changes wall-clock time only, never a simulated
/// value.
///
/// If the caller's `config.observer` has sinks attached, each executor's
/// event stream is buffered in its thread and re-emitted through those
/// sinks after the join, grouped by executor id and tagged via
/// [`Observer::emit_from`] — a deterministic order, independent of host
/// scheduling.
///
/// # Errors
///
/// The first violated configuration constraint, or an ill-formed program.
///
/// # Panics
///
/// Panics if `build` is nondeterministic (executors then disagree on
/// global action results — the cross-check fails rather than returning
/// wrong data), or if a simulated heap is exhausted mid-run.
pub fn run_cluster<F>(
    build: F,
    config: &SystemConfig,
    engine_config: EngineConfig,
    host_threads: usize,
) -> Result<ClusterOutcome, ConfigError>
where
    F: Fn() -> (Program, FnTable, DataRegistry) + Sync,
{
    config.validate()?;
    let n_exec = config.executors;
    let (program, _, _) = build();
    sparklang::validate(&program)
        .map_err(|e| ConfigError::new(format!("ill-formed program {:?}: {e}", program.name)))?;
    let plan = if config.mode.is_semantic() {
        analyze(&program).plan
    } else {
        InstrumentationPlan::default()
    };
    let seed = CfgSeed::of(config);
    // Surface runtime-construction errors on the driver, not as a panic
    // inside a worker thread.
    PantheraRuntime::new(&seed.rebuild(Observer::disabled())).map_err(ConfigError::new)?;
    let observe = config.observer.enabled();
    let exchange = Exchange::new(n_exec, host_threads);

    type ExecYield = (RunReport, Vec<(String, WireResult)>, Vec<(f64, Event)>);
    let mut per: Vec<ExecYield> = Vec::with_capacity(usize::from(n_exec));
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(usize::from(n_exec));
        for exec in 0..n_exec {
            let build = &build;
            let plan = &plan;
            let seed = &seed;
            let engine_config = &engine_config;
            let exchange = Arc::clone(&exchange);
            handles.push(scope.spawn(move || -> ExecYield {
                exchange.acquire_permit();
                let (program, fns, data) = build();
                let sink = observe.then(|| Rc::new(RefCell::new(BufSink { events: Vec::new() })));
                let cfg = seed.rebuild(match &sink {
                    Some(s) => Observer::with_sink(s.clone()),
                    None => Observer::disabled(),
                });
                let runtime =
                    PantheraRuntime::new(&cfg).unwrap_or_else(|e| panic!("executor {exec}: {e}"));
                let ctx = ClusterCtx {
                    exec,
                    n_exec,
                    exchange: Arc::clone(&exchange) as Arc<dyn ExchangeClient>,
                };
                let mut engine =
                    Engine::with_cluster(runtime, fns, data, engine_config.clone(), ctx);
                let outcome = engine.run(&program, plan);
                let monitored = engine.runtime().monitored_calls();
                let report = RunReport::collect(
                    &program.name,
                    cfg.mode.label(),
                    engine.runtime().heap(),
                    engine.runtime().gc(),
                    outcome.stats,
                    monitored,
                );
                let results = outcome
                    .results
                    .iter()
                    .map(|(name, r)| (name.clone(), to_wire(r)))
                    .collect();
                let events = sink
                    .map(|s| std::mem::take(&mut s.borrow_mut().events))
                    .unwrap_or_default();
                exchange.release_permit();
                (report, results, events)
            }));
        }
        for h in handles {
            per.push(h.join().expect("executor thread panicked"));
        }
    });

    for (exec, (_, results, _)) in per.iter().enumerate().skip(1) {
        assert_eq!(
            results, &per[0].1,
            "executor {exec} computed action results diverging from executor 0 — \
             is the `build` closure deterministic?"
        );
    }
    if observe {
        for (exec, (_, _, events)) in per.iter().enumerate() {
            for (t_ns, event) in events {
                config.observer.emit_from(*t_ns, exec as u16, event);
            }
        }
    }
    let per_executor: Vec<RunReport> = per.iter().map(|p| p.0.clone()).collect();
    let report = RunReport::aggregate(&per_executor);
    let results = per[0]
        .1
        .iter()
        .map(|(name, r)| (name.clone(), from_wire(r)))
        .collect();
    Ok(ClusterOutcome {
        report,
        per_executor,
        results,
    })
}

/// [`run_cluster`] with default engine knobs and the host-thread budget
/// from the `PANTHERA_HOST_THREADS` environment variable (defaulting to
/// one thread per executor).
///
/// # Errors
///
/// Same conditions as [`run_cluster`].
pub fn run_cluster_default<F>(
    build: F,
    config: &SystemConfig,
) -> Result<ClusterOutcome, ConfigError>
where
    F: Fn() -> (Program, FnTable, DataRegistry) + Sync,
{
    run_cluster(
        build,
        config,
        EngineConfig::default(),
        host_threads_from_env(usize::from(config.executors)),
    )
}

/// The host-thread budget from `PANTHERA_HOST_THREADS`, or `default` if
/// the variable is unset or unparsable. Zero is treated as unset.
pub fn host_threads_from_env(default: usize) -> usize {
    std::env::var("PANTHERA_HOST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}
