#![deny(missing_docs)]

//! Thin compatibility shim: the cluster driver now lives in
//! [`panthera::cluster`] (so [`panthera::RunBuilder`] can drive
//! single-runtime and multi-executor runs through one entry point).
//! This crate re-exports the whole surface so existing
//! `panthera_cluster::` callers keep compiling unchanged.

pub use panthera::cluster::{
    host_threads_from_env, run_cluster, run_cluster_default, run_cluster_faulted, AllocFaultPoint,
    ClusterOutcome, CrashPoint, Exchange, FaultPlan, FaultSpec, FaultedExchange, GatherKind,
    LossPoint, NvmCheckpointStore, VCrashPoint,
};
