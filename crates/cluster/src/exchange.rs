//! The in-process shuffle exchange: a deterministic rendezvous hub.
//!
//! Executors run on host OS threads but interact only through *gathers* —
//! all-to-all collective operations keyed by a value every executor
//! derives from the (shared, deterministic) program structure: the
//! shuffled RDD's id, the action sequence number, or the statement
//! barrier index. Each gather blocks until all `E` executors have
//! deposited their contribution, then hands every participant the same
//! `Arc`-shared result vector in executor-id order together with the
//! barrier time `t_bar = max` over the participants' virtual clocks.
//! Because the result depends only on *what* was deposited (never on
//! deposit order), the exchange is a Kahn network: host scheduling cannot
//! change any simulated value.
//!
//! The exchange also rations *host* parallelism. Each executor thread
//! holds a run permit while it computes; a thread that blocks in a gather
//! returns its permit to the pool so that, even with a single permit,
//! the remaining executors can run and complete the collective. This
//! makes `host_threads = 1` a true serialization of the same computation
//! — used by the determinism checks — without changing any value.

use sparklet::{ActionContrib, ExchangeClient, ShuffleContrib};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// One collective gather in flight (or completed and cached).
struct Slot<T> {
    /// Per-executor deposits: `(contribution, clock at deposit)`.
    contribs: Vec<Option<(T, f64)>>,
    /// Finalized result, kept for idempotent re-requests (an executor
    /// that evicted and recomputed a shuffled RDD gathers it again).
    result: Option<(Arc<Vec<T>>, f64)>,
}

impl<T> Slot<T> {
    fn new(n: usize) -> Self {
        Slot {
            contribs: (0..n).map(|_| None).collect(),
            result: None,
        }
    }
}

/// One statement barrier in flight. Unlike shuffles, barriers are never
/// re-requested (the barrier index is monotone per executor), so the slot
/// is reclaimed once every executor has observed the result.
struct BarrierSlot {
    clocks: Vec<Option<f64>>,
    result: Option<f64>,
    served: usize,
}

struct ExState {
    /// Host-thread run permits currently available.
    permits_free: usize,
    /// Shuffle gathers keyed by the shuffled RDD's id.
    shuffles: HashMap<u32, Slot<ShuffleContrib>>,
    /// Action gathers keyed by the action sequence number.
    actions: HashMap<u64, Slot<ActionContrib>>,
    /// Statement barriers keyed by the barrier index.
    barriers: HashMap<u64, BarrierSlot>,
}

/// The shared exchange for one cluster run: `E` executors, a bounded pool
/// of host-thread run permits, and the collective state behind one lock.
pub struct Exchange {
    n_exec: usize,
    state: Mutex<ExState>,
    cv: Condvar,
}

impl std::fmt::Debug for Exchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exchange")
            .field("n_exec", &self.n_exec)
            .finish_non_exhaustive()
    }
}

impl Exchange {
    /// An exchange for `n_exec` executors with `host_threads` run
    /// permits. `host_threads` is clamped to `1..=n_exec`; it bounds how
    /// many executors *compute* concurrently and has no effect on any
    /// simulated value.
    pub fn new(n_exec: u16, host_threads: usize) -> Arc<Exchange> {
        let n = usize::from(n_exec.max(1));
        Arc::new(Exchange {
            n_exec: n,
            state: Mutex::new(ExState {
                permits_free: host_threads.clamp(1, n),
                shuffles: HashMap::new(),
                actions: HashMap::new(),
                barriers: HashMap::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Block until a run permit is free and take it. Called by each
    /// executor thread before it starts computing.
    pub fn acquire_permit(&self) {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        while st.permits_free == 0 {
            st = self.cv.wait(st).expect("exchange lock poisoned");
        }
        st.permits_free -= 1;
    }

    /// Return a run permit to the pool. Called by each executor thread
    /// after its run completes.
    pub fn release_permit(&self) {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        st.permits_free += 1;
        self.cv.notify_all();
    }

    /// The shared gather protocol for shuffles and actions.
    ///
    /// The caller holds a run permit. If the slot already has a result
    /// (an idempotent re-request), serve it without depositing. Otherwise
    /// deposit; the last depositor finalizes (contributions in
    /// executor-id order, `t_bar = max` clock) and returns still holding
    /// its permit. A non-final depositor returns its permit to the pool,
    /// waits for the result, then re-acquires a permit before resuming.
    fn gather<K, T>(
        &self,
        select: impl Fn(&mut ExState) -> &mut HashMap<K, Slot<T>>,
        key: K,
        exec: u16,
        contrib: T,
        clock_ns: f64,
    ) -> (Arc<Vec<T>>, f64)
    where
        K: Eq + Hash + Copy,
    {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        let n = self.n_exec;
        let slot = select(&mut st).entry(key).or_insert_with(|| Slot::new(n));
        if let Some((res, t_bar)) = &slot.result {
            return (Arc::clone(res), *t_bar);
        }
        assert!(
            slot.contribs[usize::from(exec)].is_none(),
            "executor {exec} deposited twice into one gather"
        );
        slot.contribs[usize::from(exec)] = Some((contrib, clock_ns));
        if slot.contribs.iter().all(Option::is_some) {
            let mut items = Vec::with_capacity(n);
            let mut t_bar = f64::NEG_INFINITY;
            for c in slot.contribs.drain(..) {
                let (item, t) = c.expect("checked all deposits present");
                t_bar = t_bar.max(t);
                items.push(item);
            }
            let res = Arc::new(items);
            slot.result = Some((Arc::clone(&res), t_bar));
            self.cv.notify_all();
            return (res, t_bar);
        }
        // Not complete yet: hand the permit back so peers can run even
        // under a single-permit host budget, and wait for the result.
        st.permits_free += 1;
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).expect("exchange lock poisoned");
            let ready = select(&mut st)
                .get(&key)
                .and_then(|s| s.result.as_ref().map(|(r, t)| (Arc::clone(r), *t)));
            if let Some(res) = ready {
                if st.permits_free > 0 {
                    st.permits_free -= 1;
                    return res;
                }
            }
        }
    }
}

impl ExchangeClient for Exchange {
    fn gather_shuffle(
        &self,
        exec: u16,
        rdd: u32,
        contrib: ShuffleContrib,
        clock_ns: f64,
    ) -> (Arc<Vec<ShuffleContrib>>, f64) {
        self.gather(|st| &mut st.shuffles, rdd, exec, contrib, clock_ns)
    }

    fn gather_action(
        &self,
        exec: u16,
        seq: u64,
        contrib: ActionContrib,
        clock_ns: f64,
    ) -> (Arc<Vec<ActionContrib>>, f64) {
        self.gather(|st| &mut st.actions, seq, exec, contrib, clock_ns)
    }

    fn barrier(&self, exec: u16, index: u64, clock_ns: f64) -> f64 {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        let n = self.n_exec;
        let slot = st.barriers.entry(index).or_insert_with(|| BarrierSlot {
            clocks: vec![None; n],
            result: None,
            served: 0,
        });
        assert!(
            slot.clocks[usize::from(exec)].is_none() && slot.result.is_none(),
            "executor {exec} re-entered barrier {index}"
        );
        slot.clocks[usize::from(exec)] = Some(clock_ns);
        if slot.clocks.iter().all(Option::is_some) {
            let t_bar = slot
                .clocks
                .iter()
                .map(|c| c.expect("checked all clocks present"))
                .fold(f64::NEG_INFINITY, f64::max);
            slot.result = Some(t_bar);
            slot.served = 1;
            if slot.served == n {
                st.barriers.remove(&index);
            }
            self.cv.notify_all();
            return t_bar;
        }
        st.permits_free += 1;
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).expect("exchange lock poisoned");
            let ready = st.barriers.get(&index).and_then(|s| s.result);
            if let Some(t_bar) = ready {
                if st.permits_free > 0 {
                    st.permits_free -= 1;
                    let slot = st.barriers.get_mut(&index).expect("barrier slot live");
                    slot.served += 1;
                    if slot.served == n {
                        st.barriers.remove(&index);
                    }
                    return t_bar;
                }
            }
        }
    }
}
