//! Windowed memory-traffic metering for bandwidth time series.
//!
//! Figure 8 of the paper plots DRAM and NVM read/write bandwidth over the
//! elapsed time of GraphX-CC under the unmanaged baseline and Panthera. The
//! [`TrafficMeter`] buckets every access into fixed-width time windows so a
//! bench harness can print the same four series.

use crate::device::{AccessKind, DeviceKind};

/// Traffic accumulated in one time window, in bytes, indexed by
/// `[device][access-kind]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowTraffic {
    bytes: [[u64; 2]; 2],
}

impl WindowTraffic {
    /// Bytes moved for the given device and access kind.
    #[inline]
    pub fn bytes(&self, device: DeviceKind, kind: AccessKind) -> u64 {
        self.bytes[device.index()][kind.index()]
    }

    /// Total bytes moved in the window.
    pub fn total(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    fn add(&mut self, device: DeviceKind, kind: AccessKind, bytes: u64) {
        self.bytes[device.index()][kind.index()] += bytes;
    }
}

/// One sample of a bandwidth time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Start of the window, in nanoseconds of simulated time.
    pub t_ns: f64,
    /// Average bandwidth over the window, in bytes/ns (= GB/s).
    pub gbps: f64,
}

/// Buckets memory traffic into fixed-width windows of simulated time.
///
/// # Examples
///
/// ```
/// use hybridmem::{AccessKind, DeviceKind, TrafficMeter};
///
/// let mut meter = TrafficMeter::new(1_000.0); // 1 µs windows
/// meter.record(100.0, DeviceKind::Nvm, AccessKind::Read, 5_000);
/// meter.record(1_500.0, DeviceKind::Nvm, AccessKind::Read, 2_000);
/// let series = meter.series(DeviceKind::Nvm, AccessKind::Read);
/// assert_eq!(series.len(), 2);
/// assert_eq!(meter.peak_gbps(DeviceKind::Nvm, AccessKind::Read), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficMeter {
    window_ns: f64,
    windows: Vec<WindowTraffic>,
}

impl TrafficMeter {
    /// A meter with the given window width in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not positive.
    pub fn new(window_ns: f64) -> Self {
        assert!(window_ns > 0.0, "window width must be positive");
        TrafficMeter {
            window_ns,
            windows: Vec::new(),
        }
    }

    /// Window width in nanoseconds.
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// Record `bytes` moved at simulated time `now_ns`.
    pub fn record(&mut self, now_ns: f64, device: DeviceKind, kind: AccessKind, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let idx = (now_ns / self.window_ns) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowTraffic::default());
        }
        self.windows[idx].add(device, kind, bytes);
    }

    /// Raw per-window traffic, in chronological order.
    pub fn windows(&self) -> &[WindowTraffic] {
        &self.windows
    }

    /// Bandwidth series for one device and access kind (Figure 8 format).
    pub fn series(&self, device: DeviceKind, kind: AccessKind) -> Vec<BandwidthSample> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| BandwidthSample {
                t_ns: i as f64 * self.window_ns,
                gbps: w.bytes(device, kind) as f64 / self.window_ns,
            })
            .collect()
    }

    /// Peak bandwidth in bytes/ns for one device and access kind.
    pub fn peak_gbps(&self, device: DeviceKind, kind: AccessKind) -> f64 {
        self.series(device, kind)
            .iter()
            .map(|s| s.gbps)
            .fold(0.0, f64::max)
    }

    /// Total bytes moved for one device and access kind.
    pub fn total_bytes(&self, device: DeviceKind, kind: AccessKind) -> u64 {
        self.windows.iter().map(|w| w.bytes(device, kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_window() {
        let mut m = TrafficMeter::new(100.0);
        m.record(10.0, DeviceKind::Dram, AccessKind::Read, 64);
        m.record(150.0, DeviceKind::Nvm, AccessKind::Write, 128);
        assert_eq!(m.windows().len(), 2);
        assert_eq!(m.windows()[0].bytes(DeviceKind::Dram, AccessKind::Read), 64);
        assert_eq!(
            m.windows()[1].bytes(DeviceKind::Nvm, AccessKind::Write),
            128
        );
        assert_eq!(m.windows()[1].bytes(DeviceKind::Dram, AccessKind::Read), 0);
    }

    #[test]
    fn series_reports_bandwidth() {
        let mut m = TrafficMeter::new(10.0);
        m.record(0.0, DeviceKind::Dram, AccessKind::Read, 100);
        let s = m.series(DeviceKind::Dram, AccessKind::Read);
        assert_eq!(s.len(), 1);
        assert!((s[0].gbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_records_are_ignored() {
        let mut m = TrafficMeter::new(10.0);
        m.record(5.0, DeviceKind::Dram, AccessKind::Read, 0);
        assert!(m.windows().is_empty());
    }

    #[test]
    fn peak_and_totals() {
        let mut m = TrafficMeter::new(10.0);
        m.record(1.0, DeviceKind::Nvm, AccessKind::Read, 10);
        m.record(11.0, DeviceKind::Nvm, AccessKind::Read, 50);
        m.record(21.0, DeviceKind::Nvm, AccessKind::Read, 20);
        assert_eq!(m.total_bytes(DeviceKind::Nvm, AccessKind::Read), 80);
        assert!((m.peak_gbps(DeviceKind::Nvm, AccessKind::Read) - 5.0).abs() < 1e-9);
    }
}
