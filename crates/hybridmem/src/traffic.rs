//! Windowed memory-traffic metering for bandwidth time series.
//!
//! Figure 8 of the paper plots DRAM and NVM read/write bandwidth over the
//! elapsed time of GraphX-CC under the unmanaged baseline and Panthera. The
//! [`TrafficMeter`] buckets every access into fixed-width time windows so a
//! bench harness can print the same four series.

use crate::device::{AccessKind, DeviceKind};

/// Traffic accumulated in one time window, in bytes, indexed by
/// `[device][access-kind]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowTraffic {
    bytes: [[u64; 2]; 2],
}

impl WindowTraffic {
    /// Bytes moved for the given device and access kind.
    #[inline]
    pub fn bytes(&self, device: DeviceKind, kind: AccessKind) -> u64 {
        self.bytes[device.index()][kind.index()]
    }

    /// Total bytes moved in the window.
    pub fn total(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    fn add(&mut self, device: DeviceKind, kind: AccessKind, bytes: u64) {
        self.bytes[device.index()][kind.index()] += bytes;
    }

    fn merge(&mut self, other: &WindowTraffic) {
        for (row, o) in self.bytes.iter_mut().zip(other.bytes.iter()) {
            for (b, ob) in row.iter_mut().zip(o.iter()) {
                *b += ob;
            }
        }
    }
}

/// One sample of a bandwidth time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Start of the window, in nanoseconds of simulated time.
    pub t_ns: f64,
    /// Average bandwidth over the window, in bytes/ns (= GB/s).
    pub gbps: f64,
}

/// Buckets memory traffic into fixed-width windows of simulated time.
///
/// The meter is safe under *unbounded* runs (streaming): it never holds
/// more than [`TrafficMeter::MAX_WINDOWS`] windows. When simulated time
/// marches past the current span — whether in one huge jump or by the
/// steady accumulation of micro-batches — the window width doubles and
/// adjacent windows fold together (totals preserved) until the new
/// timestamp fits, so memory use is bounded by the cap while the series
/// keeps covering the whole run at progressively coarser resolution.
///
/// # Examples
///
/// ```
/// use hybridmem::{AccessKind, DeviceKind, TrafficMeter};
///
/// let mut meter = TrafficMeter::new(1_000.0); // 1 µs windows
/// meter.record(100.0, DeviceKind::Nvm, AccessKind::Read, 5_000);
/// meter.record(1_500.0, DeviceKind::Nvm, AccessKind::Read, 2_000);
/// let series = meter.series(DeviceKind::Nvm, AccessKind::Read);
/// assert_eq!(series.len(), 2);
/// assert_eq!(meter.peak_gbps(DeviceKind::Nvm, AccessKind::Read), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficMeter {
    window_ns: f64,
    windows: Vec<WindowTraffic>,
}

impl TrafficMeter {
    /// A meter with the given window width in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not positive.
    pub fn new(window_ns: f64) -> Self {
        assert!(window_ns > 0.0, "window width must be positive");
        TrafficMeter {
            window_ns,
            windows: Vec::new(),
        }
    }

    /// Window width in nanoseconds.
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// Record `bytes` moved at simulated time `now_ns`.
    ///
    /// A non-finite or negative `now_ns` is a caller bug: debug builds
    /// panic, release builds saturate (NaN and negatives land in the first
    /// window, `+∞` in the last) instead of letting the cast pick an
    /// arbitrary index. Timestamps that would need more than
    /// [`TrafficMeter::MAX_WINDOWS`] windows trigger coarsening: the
    /// window width doubles and adjacent windows fold together (totals
    /// preserved) until the timestamp fits, so the vector never grows
    /// unboundedly.
    pub fn record(&mut self, now_ns: f64, device: DeviceKind, kind: AccessKind, bytes: u64) {
        if bytes == 0 {
            return;
        }
        debug_assert!(
            now_ns.is_finite() && now_ns >= 0.0,
            "non-finite or negative traffic timestamp: {now_ns}"
        );
        if !now_ns.is_finite() || now_ns < 0.0 {
            let idx = if now_ns == f64::INFINITY {
                self.windows.len().saturating_sub(1)
            } else {
                0
            };
            if self.windows.is_empty() {
                self.windows.push(WindowTraffic::default());
            }
            self.windows[idx].add(device, kind, bytes);
            return;
        }
        // `as usize` saturates, so a huge quotient becomes usize::MAX and
        // enters the coarsening loop rather than an absurd allocation.
        let mut idx = (now_ns / self.window_ns) as usize;
        while idx >= Self::MAX_WINDOWS {
            self.coarsen();
            idx = (now_ns / self.window_ns) as usize;
        }
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowTraffic::default());
        }
        self.windows[idx].add(device, kind, bytes);
    }

    /// Hard cap on the number of windows; recording past it coarsens the
    /// meter instead of growing the vector.
    pub const MAX_WINDOWS: usize = 1 << 16;

    /// Double the window width and fold adjacent windows together,
    /// preserving per-device/kind totals.
    fn coarsen(&mut self) {
        self.window_ns *= 2.0;
        self.windows = self
            .windows
            .chunks(2)
            .map(|pair| {
                let mut w = pair[0];
                if let Some(second) = pair.get(1) {
                    w.merge(second);
                }
                w
            })
            .collect();
    }

    /// Fold another meter's traffic into this one (cluster report
    /// aggregation across per-executor memory systems).
    ///
    /// The meters may have coarsened to different window widths; the
    /// merge first coarsens `self` up to the wider of the two (widths are
    /// the base width times a power of two, so they always align), then
    /// folds `other`'s windows in groups. Merging in executor-id order is
    /// deterministic.
    pub fn merge(&mut self, other: &TrafficMeter) {
        while self.window_ns < other.window_ns {
            self.coarsen();
        }
        let ratio = ((self.window_ns / other.window_ns).round() as usize).max(1);
        for (i, w) in other.windows.iter().enumerate() {
            let idx = i / ratio;
            if idx >= self.windows.len() {
                self.windows.resize(idx + 1, WindowTraffic::default());
            }
            self.windows[idx].merge(w);
        }
        while self.windows.len() > Self::MAX_WINDOWS {
            self.coarsen();
        }
    }

    /// Raw per-window traffic, in chronological order.
    pub fn windows(&self) -> &[WindowTraffic] {
        &self.windows
    }

    /// Bandwidth series for one device and access kind (Figure 8 format).
    pub fn series(&self, device: DeviceKind, kind: AccessKind) -> Vec<BandwidthSample> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| BandwidthSample {
                t_ns: i as f64 * self.window_ns,
                gbps: w.bytes(device, kind) as f64 / self.window_ns,
            })
            .collect()
    }

    /// Peak bandwidth in bytes/ns for one device and access kind.
    pub fn peak_gbps(&self, device: DeviceKind, kind: AccessKind) -> f64 {
        self.series(device, kind)
            .iter()
            .map(|s| s.gbps)
            .fold(0.0, f64::max)
    }

    /// Total bytes moved for one device and access kind.
    pub fn total_bytes(&self, device: DeviceKind, kind: AccessKind) -> u64 {
        self.windows.iter().map(|w| w.bytes(device, kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_window() {
        let mut m = TrafficMeter::new(100.0);
        m.record(10.0, DeviceKind::Dram, AccessKind::Read, 64);
        m.record(150.0, DeviceKind::Nvm, AccessKind::Write, 128);
        assert_eq!(m.windows().len(), 2);
        assert_eq!(m.windows()[0].bytes(DeviceKind::Dram, AccessKind::Read), 64);
        assert_eq!(
            m.windows()[1].bytes(DeviceKind::Nvm, AccessKind::Write),
            128
        );
        assert_eq!(m.windows()[1].bytes(DeviceKind::Dram, AccessKind::Read), 0);
    }

    #[test]
    fn series_reports_bandwidth() {
        let mut m = TrafficMeter::new(10.0);
        m.record(0.0, DeviceKind::Dram, AccessKind::Read, 100);
        let s = m.series(DeviceKind::Dram, AccessKind::Read);
        assert_eq!(s.len(), 1);
        assert!((s[0].gbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_records_are_ignored() {
        let mut m = TrafficMeter::new(10.0);
        m.record(5.0, DeviceKind::Dram, AccessKind::Read, 0);
        assert!(m.windows().is_empty());
    }

    #[test]
    fn huge_timestamps_coarsen_instead_of_allocating() {
        let mut m = TrafficMeter::new(10.0);
        m.record(5.0, DeviceKind::Dram, AccessKind::Read, 64);
        m.record(15.0, DeviceKind::Dram, AccessKind::Write, 32);
        // Needs ~1e14 windows at the original width: must coarsen, not
        // resize.
        m.record(1e15, DeviceKind::Nvm, AccessKind::Write, 128);
        assert!(m.windows().len() <= TrafficMeter::MAX_WINDOWS);
        assert!(m.window_ns() > 10.0);
        // Totals survive the folding.
        assert_eq!(m.total_bytes(DeviceKind::Dram, AccessKind::Read), 64);
        assert_eq!(m.total_bytes(DeviceKind::Dram, AccessKind::Write), 32);
        assert_eq!(m.total_bytes(DeviceKind::Nvm, AccessKind::Write), 128);
        // The two early records folded into the first window.
        assert_eq!(m.windows()[0].bytes(DeviceKind::Dram, AccessKind::Read), 64);
        assert_eq!(
            m.windows()[0].bytes(DeviceKind::Dram, AccessKind::Write),
            32
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite or negative traffic timestamp")]
    fn non_finite_timestamp_panics_in_debug() {
        let mut m = TrafficMeter::new(10.0);
        m.record(f64::NAN, DeviceKind::Dram, AccessKind::Read, 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_finite_timestamps_saturate_in_release() {
        let mut m = TrafficMeter::new(10.0);
        m.record(25.0, DeviceKind::Dram, AccessKind::Read, 8);
        m.record(f64::NAN, DeviceKind::Dram, AccessKind::Read, 1);
        m.record(f64::NEG_INFINITY, DeviceKind::Dram, AccessKind::Read, 2);
        m.record(f64::INFINITY, DeviceKind::Dram, AccessKind::Read, 4);
        assert_eq!(m.windows().len(), 3);
        // NaN and -inf land in the first window, +inf in the last.
        assert_eq!(m.windows()[0].bytes(DeviceKind::Dram, AccessKind::Read), 3);
        assert_eq!(
            m.windows()[2].bytes(DeviceKind::Dram, AccessKind::Read),
            8 + 4
        );
        assert_eq!(m.total_bytes(DeviceKind::Dram, AccessKind::Read), 15);
    }

    #[test]
    fn unbounded_streaming_run_rolls_instead_of_growing() {
        // A long streaming run: virtual time advances steadily batch after
        // batch, far past the cap's worth of base-width windows. The meter
        // must coarsen (roll windows together) rather than grow without
        // bound, and must stay within the cap after *every* record, not
        // just at the end.
        let mut m = TrafficMeter::new(1.0);
        let mut recorded = 0u64;
        for batch in 0..4_000u64 {
            // Each batch lands traffic 100 base windows past the previous
            // one: 400_000 base windows in total, ~6x the cap.
            let t = batch as f64 * 100.0;
            m.record(t, DeviceKind::Dram, AccessKind::Write, 8);
            m.record(t + 1.0, DeviceKind::Nvm, AccessKind::Read, 4);
            recorded += 12;
            assert!(
                m.windows().len() <= TrafficMeter::MAX_WINDOWS,
                "cap violated at batch {batch}: {} windows",
                m.windows().len()
            );
        }
        // Coarsening happened (the width is the base times a power of two)
        // and conserved every byte.
        assert!(m.window_ns() > 1.0);
        assert_eq!(m.window_ns().log2().fract(), 0.0);
        assert_eq!(
            m.total_bytes(DeviceKind::Dram, AccessKind::Write),
            8 * 4_000
        );
        assert_eq!(m.total_bytes(DeviceKind::Nvm, AccessKind::Read), 4 * 4_000);
        assert_eq!(
            m.total_bytes(DeviceKind::Dram, AccessKind::Write)
                + m.total_bytes(DeviceKind::Nvm, AccessKind::Read),
            recorded
        );
        // Merging two long-run meters also stays within the cap.
        let other = m.clone();
        m.merge(&other);
        assert!(m.windows().len() <= TrafficMeter::MAX_WINDOWS);
        assert_eq!(
            m.total_bytes(DeviceKind::Dram, AccessKind::Write),
            2 * 8 * 4_000
        );
    }

    #[test]
    fn merge_aligns_window_widths_and_preserves_totals() {
        let mut a = TrafficMeter::new(10.0);
        a.record(5.0, DeviceKind::Dram, AccessKind::Read, 64);
        a.record(25.0, DeviceKind::Nvm, AccessKind::Write, 32);
        let mut b = TrafficMeter::new(10.0);
        b.record(5.0, DeviceKind::Dram, AccessKind::Read, 100);
        b.record(1e15, DeviceKind::Nvm, AccessKind::Read, 1); // forces b to coarsen
        assert!(b.window_ns() > a.window_ns());
        a.merge(&b);
        assert_eq!(a.window_ns(), b.window_ns());
        assert_eq!(a.total_bytes(DeviceKind::Dram, AccessKind::Read), 164);
        assert_eq!(a.total_bytes(DeviceKind::Nvm, AccessKind::Write), 32);
        assert_eq!(a.total_bytes(DeviceKind::Nvm, AccessKind::Read), 1);
        assert!(a.windows().len() <= TrafficMeter::MAX_WINDOWS);
        // Merging a finer meter into a coarser one folds in groups.
        let mut fine = TrafficMeter::new(10.0);
        fine.record(15.0, DeviceKind::Dram, AccessKind::Write, 8);
        let before = a.window_ns();
        a.merge(&fine);
        assert_eq!(a.window_ns(), before);
        assert_eq!(a.total_bytes(DeviceKind::Dram, AccessKind::Write), 8);
    }

    #[test]
    fn peak_and_totals() {
        let mut m = TrafficMeter::new(10.0);
        m.record(1.0, DeviceKind::Nvm, AccessKind::Read, 10);
        m.record(11.0, DeviceKind::Nvm, AccessKind::Read, 50);
        m.record(21.0, DeviceKind::Nvm, AccessKind::Read, 20);
        assert_eq!(m.total_bytes(DeviceKind::Nvm, AccessKind::Read), 80);
        assert!((m.peak_gbps(DeviceKind::Nvm, AccessKind::Read) - 5.0).abs() < 1e-9);
    }
}
