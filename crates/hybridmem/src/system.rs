//! The [`MemorySystem`] facade: one object charging every simulated memory
//! access to the right device, phase, clock, energy counter, and traffic
//! window.
//!
//! # Time model
//!
//! Each access batch of `bytes` bytes on a device costs
//!
//! ```text
//! time = max(latency_term, bandwidth_term)
//! latency_term   = lines * latency / (threads * mlp)
//! bandwidth_term = bytes / device_bandwidth
//! ```
//!
//! a roofline: small random accesses are latency-bound, attenuated by
//! memory-level parallelism and (for GC) by the 16 parallel GC threads the
//! paper's Parallel Scavenge uses, while bulk scans and copies saturate the
//! device's bandwidth. This is exactly the effect Section 5.3 reports: NVM's
//! reduced bandwidth cripples 16-thread parallel tracing, and its higher
//! latency penalizes pointer chasing.

use crate::clock::{Phase, SimClock};
use crate::device::{cache_lines, AccessKind, DeviceKind, DeviceSpec};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::layout::{Addr, PhysicalLayout};
use crate::stats::MemoryStats;
use crate::traffic::TrafficMeter;

/// Concurrency available to hide access latency in one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Parallel worker threads issuing accesses (16 GC threads in the paper).
    pub threads: f64,
    /// Memory-level parallelism per thread (outstanding misses).
    pub mlp: f64,
}

impl AccessProfile {
    /// Single-threaded mutator with moderate MLP.
    pub fn mutator() -> Self {
        AccessProfile {
            threads: 1.0,
            mlp: 4.0,
        }
    }

    /// The paper's 16 parallel GC threads.
    pub fn parallel_gc() -> Self {
        AccessProfile {
            threads: 16.0,
            mlp: 4.0,
        }
    }

    /// Sequential bulk scans (reading a materialized RDD): hardware
    /// prefetching gives deep memory-level parallelism, so throughput is
    /// bandwidth-bound rather than latency-bound.
    pub fn streaming() -> Self {
        AccessProfile {
            threads: 1.0,
            mlp: 16.0,
        }
    }

    /// Effective latency divisor.
    fn overlap(&self) -> f64 {
        (self.threads * self.mlp).max(1.0)
    }
}

/// Configuration of a [`MemorySystem`].
#[derive(Debug, Clone)]
pub struct MemorySystemConfig {
    /// DRAM device parameters.
    pub dram: DeviceSpec,
    /// NVM device parameters.
    pub nvm: DeviceSpec,
    /// Installed DRAM capacity in (simulated) bytes, for static power.
    pub dram_capacity_bytes: u64,
    /// Installed NVM capacity in (simulated) bytes, for static power.
    pub nvm_capacity_bytes: u64,
    /// Traffic-meter window width in nanoseconds.
    pub traffic_window_ns: f64,
    /// Timebase correction multiplying static power (see
    /// [`EnergyModel::with_static_scale`]).
    pub static_power_scale: f64,
}

impl MemorySystemConfig {
    /// A config with Table 2 device parameters and the given capacities.
    pub fn with_capacities(dram_capacity_bytes: u64, nvm_capacity_bytes: u64) -> Self {
        MemorySystemConfig {
            dram: DeviceSpec::dram(),
            nvm: DeviceSpec::nvm(),
            dram_capacity_bytes,
            nvm_capacity_bytes,
            traffic_window_ns: 1e7,
            static_power_scale: 1.0,
        }
    }
}

/// The simulated hybrid memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    dram: DeviceSpec,
    nvm: DeviceSpec,
    layout: PhysicalLayout,
    clock: SimClock,
    stats: MemoryStats,
    meter: TrafficMeter,
    energy: EnergyModel,
    observer: obs::Observer,
}

impl MemorySystem {
    /// A new system with the given configuration and an empty layout.
    pub fn new(config: MemorySystemConfig) -> Self {
        let energy = EnergyModel::with_static_scale(
            config.dram.clone(),
            config.nvm.clone(),
            config.dram_capacity_bytes,
            config.nvm_capacity_bytes,
            config.static_power_scale,
        );
        MemorySystem {
            dram: config.dram,
            nvm: config.nvm,
            layout: PhysicalLayout::new(),
            clock: SimClock::new(),
            stats: MemoryStats::new(),
            meter: TrafficMeter::new(config.traffic_window_ns),
            energy,
            observer: obs::Observer::disabled(),
        }
    }

    /// Install the event-observer handle. Events observe, never charge:
    /// attaching sinks changes no simulated quantity.
    pub fn set_observer(&mut self, observer: obs::Observer) {
        self.observer = observer;
    }

    /// The event-observer handle (disabled by default).
    pub fn observer(&self) -> &obs::Observer {
        &self.observer
    }

    /// Mutable access to the layout, for registering heap regions.
    pub fn layout_mut(&mut self) -> &mut PhysicalLayout {
        &mut self.layout
    }

    /// The address-space layout.
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Switch phases (mutator / minor GC / major GC); returns the old phase.
    pub fn enter_phase(&mut self, phase: Phase) -> Phase {
        self.clock.enter_phase(phase)
    }

    /// Spec for the given device kind.
    pub fn spec(&self, device: DeviceKind) -> &DeviceSpec {
        match device {
            DeviceKind::Dram => &self.dram,
            DeviceKind::Nvm => &self.nvm,
        }
    }

    /// Device backing `addr` per the current layout.
    pub fn device_of(&self, addr: Addr) -> DeviceKind {
        self.layout.device_of(addr)
    }

    /// Charge an access of `bytes` bytes at `addr`, advancing the clock.
    /// Returns the device that was touched.
    pub fn access(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        bytes: u64,
        profile: AccessProfile,
    ) -> DeviceKind {
        let device = self.layout.device_of(addr);
        self.access_device(device, kind, bytes, profile);
        device
    }

    /// Charge an access on an explicit device (for off-heap traffic that has
    /// no simulated address).
    pub fn access_device(
        &mut self,
        device: DeviceKind,
        kind: AccessKind,
        bytes: u64,
        profile: AccessProfile,
    ) {
        if bytes == 0 {
            return;
        }
        let spec = self.spec(device).clone();
        let lines = cache_lines(bytes);
        let latency_term = lines as f64 * spec.latency_ns(kind) / profile.overlap();
        let bandwidth_term = bytes as f64 / spec.bandwidth_bpns(kind);
        let t = latency_term.max(bandwidth_term);
        self.stats
            .record(self.clock.phase(), device, kind, bytes, lines);
        let prev_windows = self.meter.windows().len();
        self.meter.record(self.clock.now_ns(), device, kind, bytes);
        if self.observer.enabled() && prev_windows > 0 && self.meter.windows().len() > prev_windows
        {
            // A later window just opened, so window `prev_windows - 1` is
            // final: publish its watermark. The clock is monotone, hence no
            // earlier window can receive traffic after this point.
            let closed = prev_windows - 1;
            let w = self.meter.windows()[closed];
            self.observer.emit(
                self.clock.now_ns(),
                &obs::Event::TrafficWindow {
                    window: closed as u64,
                    dram_read: w.bytes(DeviceKind::Dram, AccessKind::Read),
                    dram_write: w.bytes(DeviceKind::Dram, AccessKind::Write),
                    nvm_read: w.bytes(DeviceKind::Nvm, AccessKind::Read),
                    nvm_write: w.bytes(DeviceKind::Nvm, AccessKind::Write),
                },
            );
        }
        self.clock.advance(t);
    }

    /// Charge pure CPU time (no memory traffic), e.g. per-record compute.
    pub fn compute(&mut self, ns: f64) {
        self.clock.advance(ns);
    }

    /// Access counters.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Windowed traffic meter (Figure 8 series).
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Energy consumed so far.
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy.breakdown(self.clock.now_ns(), &self.stats)
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        let mut s = MemorySystem::new(MemorySystemConfig::with_capacities(1e9 as u64, 1e9 as u64));
        s.layout_mut()
            .add_fixed("dram-region", 1 << 20, DeviceKind::Dram);
        s.layout_mut()
            .add_fixed("nvm-region", 1 << 20, DeviceKind::Nvm);
        s
    }

    #[test]
    fn access_routes_by_address() {
        let mut s = sys();
        let dram_base = s.layout().regions()[0].base;
        let nvm_base = s.layout().regions()[1].base;
        assert_eq!(
            s.access(dram_base, AccessKind::Read, 64, AccessProfile::mutator()),
            DeviceKind::Dram
        );
        assert_eq!(
            s.access(nvm_base, AccessKind::Read, 64, AccessProfile::mutator()),
            DeviceKind::Nvm
        );
        assert_eq!(s.stats().total_device_bytes(DeviceKind::Dram), 64);
        assert_eq!(s.stats().total_device_bytes(DeviceKind::Nvm), 64);
    }

    #[test]
    fn nvm_access_is_slower() {
        let profile = AccessProfile::mutator();
        let mut s1 = sys();
        let dram_base = s1.layout().regions()[0].base;
        s1.access(dram_base, AccessKind::Read, 64, profile);
        let dram_t = s1.clock().now_ns();

        let mut s2 = sys();
        let nvm_base = s2.layout().regions()[1].base;
        s2.access(nvm_base, AccessKind::Read, 64, profile);
        let nvm_t = s2.clock().now_ns();
        assert!((nvm_t / dram_t - 2.5).abs() < 1e-9, "Table 2 latency ratio");
    }

    #[test]
    fn bulk_transfers_are_bandwidth_bound() {
        let mut s = sys();
        let nvm_base = s.layout().regions()[1].base;
        // 1 MB on NVM at 10 B/ns => 104 857.6 ns, far above the latency term
        // with 16 threads.
        s.enter_phase(Phase::MinorGc);
        s.access(
            nvm_base,
            AccessKind::Read,
            1 << 20,
            AccessProfile::parallel_gc(),
        );
        let t = s.clock().phase_ns(Phase::MinorGc);
        assert!((t - (1u64 << 20) as f64 / 10.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_gc_hides_latency() {
        let mut a = sys();
        let base = a.layout().regions()[0].base;
        a.access(base, AccessKind::Read, 64, AccessProfile::mutator());
        let single = a.clock().now_ns();

        let mut b = sys();
        let base = b.layout().regions()[0].base;
        b.access(base, AccessKind::Read, 64, AccessProfile::parallel_gc());
        let parallel = b.clock().now_ns();
        assert!(parallel < single);
    }

    #[test]
    fn compute_advances_without_traffic() {
        let mut s = sys();
        s.compute(100.0);
        assert_eq!(s.clock().now_ns(), 100.0);
        assert_eq!(s.stats().total_bytes(), 0);
    }

    #[test]
    fn energy_reflects_traffic_and_time() {
        let mut s = sys();
        let nvm_base = s.layout().regions()[1].base;
        s.access(nvm_base, AccessKind::Write, 64, AccessProfile::mutator());
        let e = s.energy();
        assert!(e.nvm_dynamic_j > 0.0);
        assert!(
            e.dram_static_j > 0.0,
            "time passed, so static energy accrued"
        );
    }
}
