#![deny(missing_docs)]

//! Hybrid DRAM/NVM memory substrate for the Panthera reproduction.
//!
//! This crate simulates the memory hardware the paper evaluates on
//! (Section 5.1, Table 2): a hybrid system where fast, expensive DRAM
//! coexists with slow, capacious, energy-cheap non-volatile memory.
//! Everything above it — the managed heap, the garbage collectors, the Spark
//! engine — charges its memory traffic here, and the experiment harnesses
//! read back time, energy, and bandwidth reports.
//!
//! # Quick tour
//!
//! ```
//! use hybridmem::{
//!     AccessKind, AccessProfile, DeviceKind, MemorySystem, MemorySystemConfig,
//! };
//!
//! // A machine with 32 GB DRAM + 88 GB NVM (Figure 2c's hybrid setup).
//! let mut mem = MemorySystem::new(MemorySystemConfig::with_capacities(
//!     32_000_000_000,
//!     88_000_000_000,
//! ));
//! let young = mem.layout_mut().add_fixed("young", 1 << 20, DeviceKind::Dram);
//! let old = mem.layout_mut().add_fixed("old-nvm", 1 << 24, DeviceKind::Nvm);
//!
//! // The mutator reads a cache line from the young generation...
//! mem.access(young, AccessKind::Read, 64, AccessProfile::mutator());
//! // ...and scans a megabyte of old-generation NVM.
//! mem.access(old, AccessKind::Read, 1 << 20, AccessProfile::parallel_gc());
//!
//! assert!(mem.clock().now_ns() > 0.0);
//! assert!(mem.energy().total_j() > 0.0);
//! ```

mod clock;
mod device;
mod energy;
mod layout;
mod stats;
mod system;
mod traffic;

pub use clock::{Phase, SimClock};
pub use device::{cache_lines, AccessKind, DeviceKind, DeviceSpec, CACHE_LINE_BYTES};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use layout::{Addr, PhysicalLayout, Region, RegionMapping};
pub use stats::MemoryStats;
pub use system::{AccessProfile, MemorySystem, MemorySystemConfig};
pub use traffic::{BandwidthSample, TrafficMeter, WindowTraffic};
