//! The simulated clock and execution phases.
//!
//! Every cost in the simulator — CPU work, memory latency, bandwidth-limited
//! transfers, garbage-collection pauses — advances a single simulated clock.
//! Costs are attributed to a *phase* so that the evaluation can reproduce the
//! paper's mutator/GC time breakdown (Figure 5).

use std::fmt;

/// What the simulated machine is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Application (Spark task) execution, including allocation fast paths.
    #[default]
    Mutator,
    /// A young-generation (minor) collection.
    MinorGc,
    /// A full-heap (major) collection.
    MajorGc,
}

impl Phase {
    /// All phases in a fixed order (useful for per-phase tables).
    pub const ALL: [Phase; 3] = [Phase::Mutator, Phase::MinorGc, Phase::MajorGc];

    /// Index into a three-element per-phase table.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Mutator => 0,
            Phase::MinorGc => 1,
            Phase::MajorGc => 2,
        }
    }

    /// True for either GC phase.
    #[inline]
    pub fn is_gc(self) -> bool {
        !matches!(self, Phase::Mutator)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Mutator => write!(f, "mutator"),
            Phase::MinorGc => write!(f, "minor-gc"),
            Phase::MajorGc => write!(f, "major-gc"),
        }
    }
}

/// A simulated clock with per-phase elapsed-time attribution.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: f64,
    phase: Phase,
    phase_ns: [f64; 3],
}

impl SimClock {
    /// A clock at time zero in the mutator phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// The currently active phase.
    #[inline]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Switch to `phase`, returning the previous one so callers can restore
    /// it when a nested activity (e.g. a GC triggered mid-allocation) ends.
    pub fn enter_phase(&mut self, phase: Phase) -> Phase {
        std::mem::replace(&mut self.phase, phase)
    }

    /// Advance the clock by `ns` nanoseconds, attributed to the active phase.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `ns` is negative or not finite.
    pub fn advance(&mut self, ns: f64) {
        debug_assert!(ns.is_finite() && ns >= 0.0, "bad time delta: {ns}");
        self.now_ns += ns;
        self.phase_ns[self.phase.index()] += ns;
    }

    /// Total time spent in `phase`, in nanoseconds.
    #[inline]
    pub fn phase_ns(&self, phase: Phase) -> f64 {
        self.phase_ns[phase.index()]
    }

    /// Total time spent in both GC phases, in nanoseconds.
    pub fn gc_ns(&self) -> f64 {
        self.phase_ns(Phase::MinorGc) + self.phase_ns(Phase::MajorGc)
    }

    /// Time spent in the mutator phase, in nanoseconds.
    pub fn mutator_ns(&self) -> f64 {
        self.phase_ns(Phase::Mutator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_attributes_to_phase() {
        let mut c = SimClock::new();
        c.advance(10.0);
        let prev = c.enter_phase(Phase::MinorGc);
        assert_eq!(prev, Phase::Mutator);
        c.advance(5.0);
        c.enter_phase(prev);
        c.advance(1.0);
        assert_eq!(c.now_ns(), 16.0);
        assert_eq!(c.mutator_ns(), 11.0);
        assert_eq!(c.phase_ns(Phase::MinorGc), 5.0);
        assert_eq!(c.gc_ns(), 5.0);
    }

    #[test]
    fn phases_sum_to_total() {
        let mut c = SimClock::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            c.enter_phase(*p);
            c.advance((i + 1) as f64);
        }
        let sum: f64 = Phase::ALL.iter().map(|p| c.phase_ns(*p)).sum();
        assert_eq!(sum, c.now_ns());
    }

    #[test]
    fn gc_phases_flagged() {
        assert!(!Phase::Mutator.is_gc());
        assert!(Phase::MinorGc.is_gc());
        assert!(Phase::MajorGc.is_gc());
    }
}
