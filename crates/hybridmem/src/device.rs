//! Physical memory device models.
//!
//! The paper evaluates on an emulator where NVM is modelled by NUMA remote
//! memory: read latency 2.6x of local DRAM and bandwidth capped at 10 GB/s
//! (Table 2 of the paper). This module captures those parameters as plain
//! data so every byte moved through the simulator can be charged to the
//! correct device.

use std::fmt;

/// Size of one cache line in bytes; all dynamic energy is per cache line.
pub const CACHE_LINE_BYTES: u64 = 64;

/// The two kinds of physical memory in a hybrid system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Fast, low-capacity, energy-hungry DRAM.
    Dram,
    /// Slow, high-capacity, low-static-energy non-volatile memory.
    Nvm,
}

impl DeviceKind {
    /// Both device kinds, in a fixed order (useful for per-device tables).
    pub const ALL: [DeviceKind; 2] = [DeviceKind::Dram, DeviceKind::Nvm];

    /// Index into a two-element per-device table.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            DeviceKind::Dram => 0,
            DeviceKind::Nvm => 1,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Dram => write!(f, "DRAM"),
            DeviceKind::Nvm => write!(f, "NVM"),
        }
    }
}

impl From<DeviceKind> for obs::Mem {
    fn from(kind: DeviceKind) -> obs::Mem {
        match kind {
            DeviceKind::Dram => obs::Mem::Dram,
            DeviceKind::Nvm => obs::Mem::Nvm,
        }
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl AccessKind {
    /// Both access kinds, in a fixed order.
    pub const ALL: [AccessKind; 2] = [AccessKind::Read, AccessKind::Write];

    /// Index into a two-element per-kind table.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Performance and energy parameters of one memory device.
///
/// Defaults follow Table 2 and Section 5.1 of the paper; see
/// [`DeviceSpec::dram`] and [`DeviceSpec::nvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Which device this spec describes.
    pub kind: DeviceKind,
    /// Latency of one read access, in nanoseconds.
    pub read_latency_ns: f64,
    /// Latency of one write access, in nanoseconds.
    pub write_latency_ns: f64,
    /// Peak read bandwidth, in bytes per nanosecond (= GB/s).
    pub read_bandwidth_bpns: f64,
    /// Peak write bandwidth, in bytes per nanosecond (= GB/s).
    pub write_bandwidth_bpns: f64,
    /// Static (background/refresh) power in watts per gigabyte.
    pub static_power_w_per_gb: f64,
    /// Dynamic energy of one cache-line read, in picojoules.
    pub read_energy_pj_per_line: f64,
    /// Dynamic energy of one cache-line write, in picojoules.
    pub write_energy_pj_per_line: f64,
}

impl DeviceSpec {
    /// DRAM parameters from Table 2: 120 ns reads, 30 GB/s bandwidth.
    ///
    /// Dynamic energy follows the Micron DDR4 power model referenced in
    /// Section 5.1: an activate + column access with row-buffer restoration
    /// costs on the order of a few nanojoules per cache line. Static power
    /// uses the common server estimate of ~0.375 W/GB.
    pub fn dram() -> Self {
        DeviceSpec {
            kind: DeviceKind::Dram,
            read_latency_ns: 120.0,
            write_latency_ns: 120.0,
            read_bandwidth_bpns: 30.0,
            write_bandwidth_bpns: 30.0,
            static_power_w_per_gb: 0.375,
            read_energy_pj_per_line: 2_600.0,
            write_energy_pj_per_line: 2_600.0,
        }
    }

    /// NVM parameters from Table 2 and Section 5.1: 300 ns (one-hop remote)
    /// reads, 10 GB/s bandwidth each way (thermal-register capped).
    ///
    /// Dynamic energy: a cache-line *read* is an array read at 2.47 pJ/bit
    /// (= ~1 265 pJ/line, cheaper than DRAM because it needs no
    /// restoration); a cache-line *write* costs 31 200 pJ following the
    /// paper's three-component row-buffer-miss accounting. Static power is
    /// negligible compared to DRAM.
    pub fn nvm() -> Self {
        DeviceSpec {
            kind: DeviceKind::Nvm,
            read_latency_ns: 300.0,
            write_latency_ns: 300.0,
            read_bandwidth_bpns: 10.0,
            write_bandwidth_bpns: 10.0,
            static_power_w_per_gb: 0.01,
            read_energy_pj_per_line: 1_265.0,
            write_energy_pj_per_line: 31_200.0,
        }
    }

    /// Phase-change memory — the paper's primary NVM model (Lee et al.);
    /// identical to [`DeviceSpec::nvm`].
    pub fn pcm() -> Self {
        Self::nvm()
    }

    /// Spin-transfer-torque MRAM: near-DRAM latency, better bandwidth than
    /// PCM, far cheaper writes (Kultursay et al., cited in the paper's
    /// introduction). Parameters are literature ballparks.
    pub fn stt_mram() -> Self {
        DeviceSpec {
            kind: DeviceKind::Nvm,
            read_latency_ns: 150.0,
            write_latency_ns: 200.0,
            read_bandwidth_bpns: 20.0,
            write_bandwidth_bpns: 15.0,
            static_power_w_per_gb: 0.02,
            read_energy_pj_per_line: 1_100.0,
            write_energy_pj_per_line: 4_500.0,
        }
    }

    /// Metal-oxide resistive RAM: reads near PCM, slower and more
    /// energy-hungry writes (Wong et al., cited in the paper's
    /// introduction). Parameters are literature ballparks.
    pub fn rram() -> Self {
        DeviceSpec {
            kind: DeviceKind::Nvm,
            read_latency_ns: 250.0,
            write_latency_ns: 500.0,
            read_bandwidth_bpns: 8.0,
            write_bandwidth_bpns: 4.0,
            static_power_w_per_gb: 0.01,
            read_energy_pj_per_line: 1_400.0,
            write_energy_pj_per_line: 22_000.0,
        }
    }

    /// 3D XPoint (Optane-like): higher read latency than the paper's PCM
    /// model, strongly asymmetric bandwidth. Parameters are ballparks from
    /// published Optane DC measurements.
    pub fn xpoint() -> Self {
        DeviceSpec {
            kind: DeviceKind::Nvm,
            read_latency_ns: 350.0,
            write_latency_ns: 300.0,
            read_bandwidth_bpns: 7.0,
            write_bandwidth_bpns: 3.0,
            static_power_w_per_gb: 0.015,
            read_energy_pj_per_line: 1_600.0,
            write_energy_pj_per_line: 25_000.0,
        }
    }

    /// Latency in nanoseconds for one access of the given kind.
    #[inline]
    pub fn latency_ns(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.read_latency_ns,
            AccessKind::Write => self.write_latency_ns,
        }
    }

    /// Peak bandwidth in bytes/ns for the given access kind.
    #[inline]
    pub fn bandwidth_bpns(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.read_bandwidth_bpns,
            AccessKind::Write => self.write_bandwidth_bpns,
        }
    }

    /// Dynamic energy in picojoules for one cache line of the given kind.
    #[inline]
    pub fn energy_pj_per_line(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.read_energy_pj_per_line,
            AccessKind::Write => self.write_energy_pj_per_line,
        }
    }
}

/// Number of cache lines covering `bytes` bytes (rounded up, at least 1 for
/// any non-zero access).
#[inline]
pub fn cache_lines(bytes: u64) -> u64 {
    bytes.div_ceil(CACHE_LINE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_matches_table_2() {
        let d = DeviceSpec::dram();
        assert_eq!(d.read_latency_ns, 120.0);
        assert_eq!(d.read_bandwidth_bpns, 30.0);
    }

    #[test]
    fn nvm_matches_table_2() {
        let n = DeviceSpec::nvm();
        assert_eq!(n.read_latency_ns, 300.0);
        assert_eq!(n.read_bandwidth_bpns, 10.0);
        assert_eq!(n.write_bandwidth_bpns, 10.0);
        // Paper Section 5.1: 31 200 pJ per cache-line write.
        assert_eq!(n.write_energy_pj_per_line, 31_200.0);
    }

    #[test]
    fn nvm_latency_is_2_5x_dram() {
        let (d, n) = (DeviceSpec::dram(), DeviceSpec::nvm());
        let ratio = n.read_latency_ns / d.read_latency_ns;
        assert!((2.0..=4.0).contains(&ratio), "paper: NVM reads 2-4x slower");
    }

    #[test]
    fn nvm_reads_cheaper_than_dram_reads() {
        // Non-destructive NVM reads need no restoration (Section 5.1).
        assert!(
            DeviceSpec::nvm().read_energy_pj_per_line < DeviceSpec::dram().read_energy_pj_per_line
        );
    }

    #[test]
    fn cache_line_rounding() {
        assert_eq!(cache_lines(0), 0);
        assert_eq!(cache_lines(1), 1);
        assert_eq!(cache_lines(64), 1);
        assert_eq!(cache_lines(65), 2);
        assert_eq!(cache_lines(640), 10);
    }

    #[test]
    fn device_indices_are_distinct() {
        assert_ne!(DeviceKind::Dram.index(), DeviceKind::Nvm.index());
        assert_ne!(AccessKind::Read.index(), AccessKind::Write.index());
    }

    #[test]
    fn nvm_technology_presets_are_ordered_sensibly() {
        let pcm = DeviceSpec::pcm();
        let stt = DeviceSpec::stt_mram();
        let rram = DeviceSpec::rram();
        let xp = DeviceSpec::xpoint();
        // STT-MRAM is the fastest NVM; XPoint reads are the slowest.
        assert!(stt.read_latency_ns < pcm.read_latency_ns);
        assert!(xp.read_latency_ns > pcm.read_latency_ns);
        // Writes: STT cheap, RRAM/XPoint expensive.
        assert!(stt.write_energy_pj_per_line < pcm.write_energy_pj_per_line);
        assert!(rram.write_latency_ns > pcm.write_latency_ns);
        // All remain slower than DRAM.
        let dram = DeviceSpec::dram();
        for n in [pcm, stt, rram, xp] {
            assert!(n.read_latency_ns > dram.read_latency_ns, "{:?}", n.kind);
            assert!(n.read_bandwidth_bpns <= dram.read_bandwidth_bpns);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(DeviceKind::Dram.to_string(), "DRAM");
        assert_eq!(DeviceKind::Nvm.to_string(), "NVM");
        assert_eq!(AccessKind::Read.to_string(), "read");
    }
}
