//! Energy accounting following Section 5.1 of the paper.
//!
//! Total memory energy = static energy + dynamic energy:
//!
//! * *static* — background power proportional to installed capacity,
//!   integrated over elapsed time (negligible for NVM, dominant for DRAM);
//! * *dynamic* — a per-cache-line cost for every read and write, with NVM
//!   writes by far the most expensive (31 200 pJ per line).

use crate::device::{AccessKind, DeviceKind, DeviceSpec};
use crate::stats::MemoryStats;

/// Energy broken down by source, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM background energy (refresh etc.).
    pub dram_static_j: f64,
    /// NVM background energy.
    pub nvm_static_j: f64,
    /// DRAM dynamic (read + write) energy.
    pub dram_dynamic_j: f64,
    /// NVM dynamic (read + write) energy.
    pub nvm_dynamic_j: f64,
}

impl EnergyBreakdown {
    /// Total memory energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dram_static_j + self.nvm_static_j + self.dram_dynamic_j + self.nvm_dynamic_j
    }

    /// Static share of total energy, in `[0, 1]`.
    pub fn static_fraction(&self) -> f64 {
        let t = self.total_j();
        if t == 0.0 {
            0.0
        } else {
            (self.dram_static_j + self.nvm_static_j) / t
        }
    }

    /// Serialize the breakdown (plus the derived total) as a JSON object.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("dram_static_j", Json::Num(self.dram_static_j)),
            ("nvm_static_j", Json::Num(self.nvm_static_j)),
            ("dram_dynamic_j", Json::Num(self.dram_dynamic_j)),
            ("nvm_dynamic_j", Json::Num(self.nvm_dynamic_j)),
            ("total_j", Json::Num(self.total_j())),
        ])
    }
}

/// Computes energy from device specs, installed capacities, elapsed time,
/// and access counters.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    dram: DeviceSpec,
    nvm: DeviceSpec,
    dram_capacity_bytes: u64,
    nvm_capacity_bytes: u64,
    static_power_scale: f64,
}

const BYTES_PER_GB: f64 = 1e9;
const PJ_PER_J: f64 = 1e12;
const NS_PER_S: f64 = 1e9;

impl EnergyModel {
    /// A model over the given device specs and installed capacities.
    pub fn new(
        dram: DeviceSpec,
        nvm: DeviceSpec,
        dram_capacity_bytes: u64,
        nvm_capacity_bytes: u64,
    ) -> Self {
        Self::with_static_scale(dram, nvm, dram_capacity_bytes, nvm_capacity_bytes, 1.0)
    }

    /// Like [`EnergyModel::new`] with a *timebase correction* applied to
    /// static power. Down-scaled simulations compress elapsed time more
    /// than traffic volume (records are few but processed fast), which
    /// would understate background energy relative to dynamic energy; the
    /// scale restores the real system's static/dynamic balance.
    pub fn with_static_scale(
        dram: DeviceSpec,
        nvm: DeviceSpec,
        dram_capacity_bytes: u64,
        nvm_capacity_bytes: u64,
        static_power_scale: f64,
    ) -> Self {
        assert!(static_power_scale > 0.0, "scale must be positive");
        EnergyModel {
            dram,
            nvm,
            dram_capacity_bytes,
            nvm_capacity_bytes,
            static_power_scale,
        }
    }

    /// Installed DRAM capacity in bytes.
    pub fn dram_capacity_bytes(&self) -> u64 {
        self.dram_capacity_bytes
    }

    /// Installed NVM capacity in bytes.
    pub fn nvm_capacity_bytes(&self) -> u64 {
        self.nvm_capacity_bytes
    }

    /// Static power of the whole memory system in watts (after the
    /// timebase correction).
    pub fn static_power_w(&self) -> f64 {
        (self.dram.static_power_w_per_gb * (self.dram_capacity_bytes as f64 / BYTES_PER_GB)
            + self.nvm.static_power_w_per_gb * (self.nvm_capacity_bytes as f64 / BYTES_PER_GB))
            * self.static_power_scale
    }

    /// Energy consumed over `elapsed_ns` with the access counts in `stats`.
    pub fn breakdown(&self, elapsed_ns: f64, stats: &MemoryStats) -> EnergyBreakdown {
        let secs = elapsed_ns / NS_PER_S;
        let dyn_j = |spec: &DeviceSpec, dev: DeviceKind| {
            AccessKind::ALL
                .iter()
                .map(|k| stats.total_lines(dev, *k) as f64 * spec.energy_pj_per_line(*k))
                .sum::<f64>()
                / PJ_PER_J
        };
        EnergyBreakdown {
            dram_static_j: self.dram.static_power_w_per_gb
                * (self.dram_capacity_bytes as f64 / BYTES_PER_GB)
                * self.static_power_scale
                * secs,
            nvm_static_j: self.nvm.static_power_w_per_gb
                * (self.nvm_capacity_bytes as f64 / BYTES_PER_GB)
                * self.static_power_scale
                * secs,
            dram_dynamic_j: dyn_j(&self.dram, DeviceKind::Dram),
            nvm_dynamic_j: dyn_j(&self.nvm, DeviceKind::Nvm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Phase;

    fn gb(n: u64) -> u64 {
        n * 1_000_000_000
    }

    #[test]
    fn static_power_scales_with_capacity() {
        let m120 = EnergyModel::new(DeviceSpec::dram(), DeviceSpec::nvm(), gb(120), 0);
        let m32 = EnergyModel::new(DeviceSpec::dram(), DeviceSpec::nvm(), gb(32), gb(88));
        // 120 GB of DRAM burns far more background power than 32 GB DRAM +
        // 88 GB NVM — the premise of the paper's energy savings.
        assert!(m120.static_power_w() > 3.0 * m32.static_power_w());
    }

    #[test]
    fn dynamic_energy_counts_lines() {
        let m = EnergyModel::new(DeviceSpec::dram(), DeviceSpec::nvm(), gb(1), gb(1));
        let mut stats = MemoryStats::new();
        stats.record(Phase::Mutator, DeviceKind::Nvm, AccessKind::Write, 64, 1);
        let b = m.breakdown(0.0, &stats);
        assert!((b.nvm_dynamic_j - 31_200.0 / 1e12).abs() < 1e-18);
        assert_eq!(b.dram_dynamic_j, 0.0);
    }

    #[test]
    fn static_energy_integrates_time() {
        let m = EnergyModel::new(DeviceSpec::dram(), DeviceSpec::nvm(), gb(8), 0);
        let stats = MemoryStats::new();
        let one_sec = m.breakdown(1e9, &stats);
        let two_sec = m.breakdown(2e9, &stats);
        assert!((two_sec.dram_static_j - 2.0 * one_sec.dram_static_j).abs() < 1e-9);
        assert!(
            (one_sec.dram_static_j - 3.0).abs() < 1e-9,
            "8 GB * 0.375 W/GB * 1 s"
        );
    }

    #[test]
    fn breakdown_total_and_fraction() {
        let m = EnergyModel::new(DeviceSpec::dram(), DeviceSpec::nvm(), gb(1), gb(1));
        let mut stats = MemoryStats::new();
        stats.record(Phase::MinorGc, DeviceKind::Dram, AccessKind::Read, 128, 2);
        let b = m.breakdown(1e9, &stats);
        assert!(b.total_j() > 0.0);
        assert!(b.static_fraction() > 0.0 && b.static_fraction() < 1.0);
    }
}
