//! Mapping from simulated addresses to physical devices.
//!
//! Heap spaces register address *regions* with the layout. A region is either
//! pinned to one device (Panthera's split old generation, the DRAM-resident
//! young generation) or *interleaved*: its virtual address range is divided
//! into fixed-size chunks, each mapped to DRAM with a given probability —
//! the paper's "unmanaged" baseline (Section 5.2) which maps each 1 GB chunk
//! of the old generation to DRAM with probability equal to the DRAM ratio.

use crate::device::DeviceKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// A simulated physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The address `bytes` past `self`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// How a region's addresses map to devices.
#[derive(Debug, Clone)]
pub enum RegionMapping {
    /// Every address in the region lives on one device.
    Fixed(DeviceKind),
    /// The region is split into `chunk_bytes`-sized chunks, each mapped to a
    /// device by the `chunks` table (index = offset / chunk_bytes).
    Interleaved {
        /// Chunk granularity in bytes.
        chunk_bytes: u64,
        /// Device per chunk, in offset order.
        chunks: Vec<DeviceKind>,
    },
}

/// One registered address region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Human-readable name ("eden", "old-nvm", ...).
    pub name: String,
    /// First address of the region.
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
    /// Device mapping for the region.
    pub mapping: RegionMapping,
}

impl Region {
    /// True if `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.size
    }

    /// Device backing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the region.
    pub fn device_of(&self, addr: Addr) -> DeviceKind {
        assert!(
            self.contains(addr),
            "address {addr} outside region {}",
            self.name
        );
        match &self.mapping {
            RegionMapping::Fixed(d) => *d,
            RegionMapping::Interleaved {
                chunk_bytes,
                chunks,
            } => {
                let idx = ((addr.0 - self.base.0) / chunk_bytes) as usize;
                chunks[idx.min(chunks.len() - 1)]
            }
        }
    }

    /// Bytes of this region backed by the given device.
    pub fn bytes_on(&self, device: DeviceKind) -> u64 {
        match &self.mapping {
            RegionMapping::Fixed(d) => {
                if *d == device {
                    self.size
                } else {
                    0
                }
            }
            RegionMapping::Interleaved {
                chunk_bytes,
                chunks,
            } => {
                let mut total = 0u64;
                let mut remaining = self.size;
                for d in chunks {
                    let take = remaining.min(*chunk_bytes);
                    if *d == device {
                        total += take;
                    }
                    remaining -= take;
                    if remaining == 0 {
                        break;
                    }
                }
                total
            }
        }
    }
}

/// The full address-space layout: a set of non-overlapping regions.
#[derive(Debug, Clone, Default)]
pub struct PhysicalLayout {
    regions: Vec<Region>,
    next_base: u64,
}

impl PhysicalLayout {
    /// An empty layout; regions are placed consecutively from address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a region of `size` bytes pinned to `device`; returns its base.
    pub fn add_fixed(&mut self, name: &str, size: u64, device: DeviceKind) -> Addr {
        self.add_region(name, size, RegionMapping::Fixed(device))
    }

    /// Register a region whose chunks are mapped to DRAM with probability
    /// `dram_ratio` (the paper's unmanaged interleaving), using a
    /// deterministic RNG seeded with `seed`. Returns the region base.
    pub fn add_interleaved(
        &mut self,
        name: &str,
        size: u64,
        chunk_bytes: u64,
        dram_ratio: f64,
        seed: u64,
    ) -> Addr {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        assert!((0.0..=1.0).contains(&dram_ratio), "ratio must be in [0,1]");
        let n_chunks = size.div_ceil(chunk_bytes).max(1) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        // Deterministic quota-based assignment: exactly round(ratio * n)
        // chunks land on DRAM, in a seeded random arrangement. This mirrors
        // the expectation of the paper's per-chunk coin flips while keeping
        // small simulated heaps from being skewed by sampling noise.
        let n_dram = ((dram_ratio * n_chunks as f64).round() as usize).min(n_chunks);
        let mut chunks = vec![DeviceKind::Nvm; n_chunks];
        let mut placed = 0usize;
        while placed < n_dram {
            let i = rng.random_range(0..n_chunks);
            if chunks[i] == DeviceKind::Nvm {
                chunks[i] = DeviceKind::Dram;
                placed += 1;
            }
        }
        self.add_region(
            name,
            size,
            RegionMapping::Interleaved {
                chunk_bytes,
                chunks,
            },
        )
    }

    fn add_region(&mut self, name: &str, size: u64, mapping: RegionMapping) -> Addr {
        assert!(size > 0, "region {name} must have positive size");
        let base = Addr(self.next_base);
        // Leave a guard gap between regions to catch stray offsets.
        self.next_base += size + 4096;
        self.regions.push(Region {
            name: name.to_string(),
            base,
            size,
            mapping,
        });
        base
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Device backing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if no region contains `addr`.
    pub fn device_of(&self, addr: Addr) -> DeviceKind {
        self.region_of(addr)
            .unwrap_or_else(|| panic!("unmapped address {addr}"))
            .device_of(addr)
    }

    /// All registered regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes mapped to `device` across all regions.
    pub fn bytes_on(&self, device: DeviceKind) -> u64 {
        self.regions.iter().map(|r| r.bytes_on(device)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_region_lookup() {
        let mut l = PhysicalLayout::new();
        let base = l.add_fixed("eden", 1024, DeviceKind::Dram);
        assert_eq!(l.device_of(base), DeviceKind::Dram);
        assert_eq!(l.device_of(base.offset(1023)), DeviceKind::Dram);
        assert_eq!(l.bytes_on(DeviceKind::Dram), 1024);
        assert_eq!(l.bytes_on(DeviceKind::Nvm), 0);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut l = PhysicalLayout::new();
        let a = l.add_fixed("a", 100, DeviceKind::Dram);
        let b = l.add_fixed("b", 100, DeviceKind::Nvm);
        assert!(b.0 >= a.0 + 100);
        assert_eq!(l.device_of(b), DeviceKind::Nvm);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_address_panics() {
        let mut l = PhysicalLayout::new();
        l.add_fixed("a", 100, DeviceKind::Dram);
        l.device_of(Addr(u64::MAX));
    }

    #[test]
    fn interleaved_respects_ratio() {
        let mut l = PhysicalLayout::new();
        let size = 64 * 1024u64;
        let chunk = 1024u64;
        l.add_interleaved("old", size, chunk, 0.25, 42);
        let dram = l.bytes_on(DeviceKind::Dram);
        assert_eq!(dram, size / 4, "quota assignment is exact");
    }

    #[test]
    fn interleaved_is_deterministic() {
        let build = || {
            let mut l = PhysicalLayout::new();
            let base = l.add_interleaved("old", 8192, 512, 0.5, 7);
            (0..16)
                .map(|i| l.device_of(base.offset(i * 512)))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn interleaved_mixes_devices() {
        let mut l = PhysicalLayout::new();
        let base = l.add_interleaved("old", 16 * 1024, 1024, 0.5, 3);
        let devices: Vec<_> = (0..16)
            .map(|i| l.device_of(base.offset(i * 1024)))
            .collect();
        assert!(devices.contains(&DeviceKind::Dram));
        assert!(devices.contains(&DeviceKind::Nvm));
    }
}
