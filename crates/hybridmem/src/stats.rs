//! Aggregate access counters per phase, device, and access kind.

use crate::clock::Phase;
use crate::device::{AccessKind, DeviceKind};

/// Counts of accesses and bytes moved, split by phase × device × kind.
#[derive(Debug, Clone, Default)]
pub struct MemoryStats {
    // [phase][device][kind]
    accesses: [[[u64; 2]; 2]; 3],
    bytes: [[[u64; 2]; 2]; 3],
    lines: [[[u64; 2]; 2]; 3],
}

impl MemoryStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access batch.
    pub fn record(
        &mut self,
        phase: Phase,
        device: DeviceKind,
        kind: AccessKind,
        bytes: u64,
        lines: u64,
    ) {
        let (p, d, k) = (phase.index(), device.index(), kind.index());
        self.accesses[p][d][k] += 1;
        self.bytes[p][d][k] += bytes;
        self.lines[p][d][k] += lines;
    }

    /// Add every counter of `other` into `self` (cluster report
    /// aggregation across per-executor memory systems).
    pub fn merge(&mut self, other: &MemoryStats) {
        for p in 0..3 {
            for d in 0..2 {
                for k in 0..2 {
                    self.accesses[p][d][k] += other.accesses[p][d][k];
                    self.bytes[p][d][k] += other.bytes[p][d][k];
                    self.lines[p][d][k] += other.lines[p][d][k];
                }
            }
        }
    }

    /// Bytes moved for a given phase/device/kind.
    pub fn bytes(&self, phase: Phase, device: DeviceKind, kind: AccessKind) -> u64 {
        self.bytes[phase.index()][device.index()][kind.index()]
    }

    /// Cache lines moved for a given phase/device/kind.
    pub fn lines(&self, phase: Phase, device: DeviceKind, kind: AccessKind) -> u64 {
        self.lines[phase.index()][device.index()][kind.index()]
    }

    /// Access batches recorded for a given phase/device/kind.
    pub fn accesses(&self, phase: Phase, device: DeviceKind, kind: AccessKind) -> u64 {
        self.accesses[phase.index()][device.index()][kind.index()]
    }

    /// Total cache lines moved on `device` with `kind`, across all phases.
    pub fn total_lines(&self, device: DeviceKind, kind: AccessKind) -> u64 {
        Phase::ALL
            .iter()
            .map(|p| self.lines(*p, device, kind))
            .sum()
    }

    /// Total bytes moved on `device` across all phases and kinds.
    pub fn total_device_bytes(&self, device: DeviceKind) -> u64 {
        Phase::ALL
            .iter()
            .flat_map(|p| {
                AccessKind::ALL
                    .iter()
                    .map(move |k| self.bytes(*p, device, *k))
            })
            .sum()
    }

    /// Total bytes moved on `device` with `kind`, across all phases.
    pub fn total_kind_bytes(&self, device: DeviceKind, kind: AccessKind) -> u64 {
        Phase::ALL
            .iter()
            .map(|p| self.bytes(*p, device, kind))
            .sum()
    }

    /// Total bytes moved everywhere.
    pub fn total_bytes(&self) -> u64 {
        DeviceKind::ALL
            .iter()
            .map(|d| self.total_device_bytes(*d))
            .sum()
    }

    /// Serialize as nested `{phase: {device: {kind: {accesses, bytes,
    /// lines}}}}` objects with stable key order.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        let phase_key = |p: Phase| match p {
            Phase::Mutator => "mutator",
            Phase::MinorGc => "minor_gc",
            Phase::MajorGc => "major_gc",
        };
        let device_key = |d: DeviceKind| match d {
            DeviceKind::Dram => "dram",
            DeviceKind::Nvm => "nvm",
        };
        let kind_key = |k: AccessKind| match k {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        Json::Obj(
            Phase::ALL
                .iter()
                .map(|&p| {
                    (
                        phase_key(p).to_string(),
                        Json::Obj(
                            DeviceKind::ALL
                                .iter()
                                .map(|&d| {
                                    (
                                        device_key(d).to_string(),
                                        Json::Obj(
                                            AccessKind::ALL
                                                .iter()
                                                .map(|&k| {
                                                    (
                                                        kind_key(k).to_string(),
                                                        Json::obj(vec![
                                                            (
                                                                "accesses",
                                                                Json::UInt(self.accesses(p, d, k)),
                                                            ),
                                                            (
                                                                "bytes",
                                                                Json::UInt(self.bytes(p, d, k)),
                                                            ),
                                                            (
                                                                "lines",
                                                                Json::UInt(self.lines(p, d, k)),
                                                            ),
                                                        ]),
                                                    )
                                                })
                                                .collect(),
                                        ),
                                    )
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = MemoryStats::new();
        s.record(Phase::Mutator, DeviceKind::Dram, AccessKind::Read, 64, 1);
        s.record(Phase::Mutator, DeviceKind::Dram, AccessKind::Read, 128, 2);
        s.record(Phase::MinorGc, DeviceKind::Nvm, AccessKind::Write, 64, 1);
        assert_eq!(
            s.bytes(Phase::Mutator, DeviceKind::Dram, AccessKind::Read),
            192
        );
        assert_eq!(
            s.lines(Phase::Mutator, DeviceKind::Dram, AccessKind::Read),
            3
        );
        assert_eq!(
            s.accesses(Phase::Mutator, DeviceKind::Dram, AccessKind::Read),
            2
        );
        assert_eq!(s.total_device_bytes(DeviceKind::Nvm), 64);
        assert_eq!(s.total_bytes(), 256);
        assert_eq!(s.total_lines(DeviceKind::Nvm, AccessKind::Write), 1);
    }

    #[test]
    fn independent_cells() {
        let mut s = MemoryStats::new();
        s.record(Phase::MajorGc, DeviceKind::Nvm, AccessKind::Read, 100, 2);
        assert_eq!(
            s.bytes(Phase::MajorGc, DeviceKind::Nvm, AccessKind::Read),
            100
        );
        assert_eq!(
            s.bytes(Phase::MajorGc, DeviceKind::Nvm, AccessKind::Write),
            0
        );
        assert_eq!(
            s.bytes(Phase::MinorGc, DeviceKind::Nvm, AccessKind::Read),
            0
        );
        assert_eq!(
            s.bytes(Phase::MajorGc, DeviceKind::Dram, AccessKind::Read),
            0
        );
    }
}
