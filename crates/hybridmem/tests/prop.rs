//! Property tests for the memory substrate: layout coverage, interleaving
//! quotas, traffic conservation, and clock-phase accounting.

use hybridmem::{
    AccessKind, AccessProfile, DeviceKind, MemorySystem, MemorySystemConfig, Phase, PhysicalLayout,
    TrafficMeter,
};
use proptest::prelude::*;

proptest! {
    /// Every address of every registered region resolves to a device, and
    /// fixed regions resolve to the device they were pinned to.
    #[test]
    fn fixed_regions_cover_their_range(sizes in prop::collection::vec(1u64..10_000, 1..8)) {
        let mut l = PhysicalLayout::new();
        let mut bases = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            let d = if i % 2 == 0 { DeviceKind::Dram } else { DeviceKind::Nvm };
            bases.push((l.add_fixed(&format!("r{i}"), *s, d), *s, d));
        }
        for (base, size, d) in bases {
            prop_assert_eq!(l.device_of(base), d);
            prop_assert_eq!(l.device_of(base.offset(size - 1)), d);
            prop_assert_eq!(l.region_of(base).unwrap().bytes_on(d), size);
        }
    }

    /// Interleaved regions honour the DRAM quota exactly (rounded to whole
    /// chunks) for any ratio and seed.
    #[test]
    fn interleaving_meets_quota(
        chunks in 1u64..256,
        ratio in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let chunk_bytes = 512u64;
        let size = chunks * chunk_bytes;
        let mut l = PhysicalLayout::new();
        l.add_interleaved("old", size, chunk_bytes, ratio, seed);
        let want = (ratio * chunks as f64).round() as u64 * chunk_bytes;
        prop_assert_eq!(l.bytes_on(DeviceKind::Dram), want);
        prop_assert_eq!(l.bytes_on(DeviceKind::Nvm), size - want);
    }

    /// The traffic meter conserves bytes: the sum over windows equals the
    /// sum of recorded accesses, per device and kind.
    #[test]
    fn traffic_is_conserved(
        events in prop::collection::vec(
            (0.0f64..1e6, any::<bool>(), any::<bool>(), 1u64..10_000),
            0..64,
        )
    ) {
        let mut m = TrafficMeter::new(1_000.0);
        let mut expect = [[0u64; 2]; 2];
        for (t, dram, read, bytes) in events {
            let d = if dram { DeviceKind::Dram } else { DeviceKind::Nvm };
            let k = if read { AccessKind::Read } else { AccessKind::Write };
            m.record(t, d, k, bytes);
            expect[d.index()][k.index()] += bytes;
        }
        for d in DeviceKind::ALL {
            for k in AccessKind::ALL {
                prop_assert_eq!(m.total_bytes(d, k), expect[d.index()][k.index()]);
            }
        }
    }

    /// Phase times always sum to total elapsed time, whatever the access
    /// pattern, and stats bytes match what was charged.
    #[test]
    fn phases_partition_time(
        ops in prop::collection::vec((0u8..3, 1u64..100_000), 1..64)
    ) {
        let mut sys = MemorySystem::new(MemorySystemConfig::with_capacities(1 << 30, 1 << 30));
        let dram = sys.layout_mut().add_fixed("d", 1 << 20, DeviceKind::Dram);
        let nvm = sys.layout_mut().add_fixed("n", 1 << 20, DeviceKind::Nvm);
        let mut total_bytes = 0u64;
        for (phase, bytes) in ops {
            let p = [Phase::Mutator, Phase::MinorGc, Phase::MajorGc][phase as usize];
            sys.enter_phase(p);
            let addr = if bytes % 2 == 0 { dram } else { nvm };
            sys.access(addr, AccessKind::Read, bytes % 4096 + 1, AccessProfile::mutator());
            total_bytes += bytes % 4096 + 1;
        }
        let c = sys.clock();
        let sum: f64 = Phase::ALL.iter().map(|p| c.phase_ns(*p)).sum();
        prop_assert!((sum - c.now_ns()).abs() < 1e-6);
        prop_assert_eq!(sys.stats().total_bytes(), total_bytes);
    }

    /// Energy is monotone in traffic: more NVM writes never reduce total
    /// energy.
    #[test]
    fn energy_monotone_in_writes(n1 in 0u64..50, extra in 1u64..50) {
        let charge = |writes: u64| {
            let mut sys =
                MemorySystem::new(MemorySystemConfig::with_capacities(1 << 30, 1 << 30));
            let nvm = sys.layout_mut().add_fixed("n", 1 << 20, DeviceKind::Nvm);
            for _ in 0..writes {
                sys.access(nvm, AccessKind::Write, 64, AccessProfile::mutator());
            }
            sys.energy().total_j()
        };
        prop_assert!(charge(n1 + extra) > charge(n1));
    }
}
