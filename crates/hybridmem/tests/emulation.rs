//! Emulator self-validation, in the spirit of the paper's Section 5.1
//! (which validates its NUMA-based NVM emulator against target latencies
//! and bandwidths): measure the *effective* latency and bandwidth the
//! simulated devices deliver through the public API and check they match
//! Table 2.

use hybridmem::{AccessKind, AccessProfile, DeviceKind, MemorySystem, MemorySystemConfig};

fn system() -> MemorySystem {
    let mut s = MemorySystem::new(MemorySystemConfig::with_capacities(1 << 30, 1 << 30));
    s.layout_mut().add_fixed("dram", 64 << 20, DeviceKind::Dram);
    s.layout_mut().add_fixed("nvm", 64 << 20, DeviceKind::Nvm);
    s
}

fn addr(s: &MemorySystem, device: DeviceKind) -> hybridmem::Addr {
    s.layout()
        .regions()
        .iter()
        .find(|r| r.device_of(r.base) == device)
        .expect("region present")
        .base
}

/// Time per single-cache-line access, serial pointer chasing (MLP 1).
fn measure_latency_ns(device: DeviceKind) -> f64 {
    let mut s = system();
    let a = addr(&s, device);
    let profile = AccessProfile {
        threads: 1.0,
        mlp: 1.0,
    };
    let n = 10_000u64;
    for _ in 0..n {
        s.access(a, AccessKind::Read, 64, profile);
    }
    s.clock().now_ns() / n as f64
}

/// Effective GB/s for a large streaming read.
fn measure_bandwidth_gbps(device: DeviceKind, kind: AccessKind) -> f64 {
    let mut s = system();
    let a = addr(&s, device);
    let bytes = 32u64 << 20;
    s.access(a, kind, bytes, AccessProfile::streaming());
    bytes as f64 / s.clock().now_ns()
}

#[test]
fn measured_latencies_match_table_2() {
    let dram = measure_latency_ns(DeviceKind::Dram);
    let nvm = measure_latency_ns(DeviceKind::Nvm);
    assert!((dram - 120.0).abs() < 1.0, "DRAM latency {dram} ns");
    assert!((nvm - 300.0).abs() < 1.0, "NVM latency {nvm} ns");
    let ratio = nvm / dram;
    assert!(
        (2.4..2.6).contains(&ratio),
        "paper's emulator delivers 2.6x remote latency; ours {ratio:.2}x"
    );
}

#[test]
fn measured_bandwidths_match_table_2() {
    let dram_r = measure_bandwidth_gbps(DeviceKind::Dram, AccessKind::Read);
    let nvm_r = measure_bandwidth_gbps(DeviceKind::Nvm, AccessKind::Read);
    let nvm_w = measure_bandwidth_gbps(DeviceKind::Nvm, AccessKind::Write);
    // Streaming cannot exceed the device cap, and NVM must be capped at
    // 10 GB/s each way (the thermal-register limit).
    assert!(dram_r <= 30.0 + 1e-9);
    assert!(nvm_r <= 10.0 + 1e-9, "NVM read bandwidth {nvm_r:.2}");
    assert!(nvm_w <= 10.0 + 1e-9, "NVM write bandwidth {nvm_w:.2}");
    // The effective ratio for bulk scans sits between the latency-bound
    // and bandwidth-bound regimes.
    let ratio = dram_r / nvm_r;
    assert!(
        (1.5..=3.5).contains(&ratio),
        "DRAM/NVM streaming ratio {ratio:.2} out of band"
    );
}

#[test]
fn parallel_tracing_is_bandwidth_limited_on_nvm() {
    // Section 5.3: 16-thread parallel tracing saturates NVM's bandwidth.
    let mut s = system();
    let a = addr(&s, DeviceKind::Nvm);
    let bytes = 16u64 << 20;
    s.access(a, AccessKind::Read, bytes, AccessProfile::parallel_gc());
    let gbps = bytes as f64 / s.clock().now_ns();
    assert!(
        (gbps - 10.0).abs() < 0.5,
        "parallel GC scan hits the 10 GB/s cap: {gbps:.2}"
    );
}

#[test]
fn mutator_random_access_is_latency_bound() {
    // A single 64B access should cost latency/MLP, far from the
    // bandwidth-equivalent cost.
    let mut s = system();
    let a = addr(&s, DeviceKind::Nvm);
    s.access(a, AccessKind::Read, 64, AccessProfile::mutator());
    let t = s.clock().now_ns();
    assert!(
        (t - 300.0 / 4.0).abs() < 1e-9,
        "one NVM miss at MLP 4: {t} ns"
    );
}
