//! Property tests for the shuffle semantics: conservation and algebraic
//! laws of the wide transformations.

use mheap::Payload;
use proptest::prelude::*;
use sparklang::{ProgramBuilder, Transform};
use sparklet::{reduce_side, Buckets};

fn bucket(records: &[(i64, i64)]) -> Buckets {
    let mut b = Buckets::new();
    for (k, v) in records {
        b.add(Payload::keyed(*k, Payload::Long(*v)));
    }
    b
}

proptest! {
    /// reduceByKey with addition preserves the total sum and emits one
    /// record per distinct key.
    #[test]
    fn reduce_by_key_conserves_sums(records in prop::collection::vec((0i64..16, -100i64..100), 0..64)) {
        let mut b = ProgramBuilder::new("t");
        let add = b.reduce_fn(|a, c| {
            Payload::Long(a.as_long().unwrap() + c.as_long().unwrap())
        });
        let (_, fns) = b.finish();
        let buckets = bucket(&records);
        let out = reduce_side(&Transform::ReduceByKey(add), &fns, &buckets, None);

        let expect_total: i64 = records.iter().map(|(_, v)| v).sum();
        let got_total: i64 = out
            .iter()
            .map(|r| r.as_pair().unwrap().1.as_long().unwrap())
            .sum();
        prop_assert_eq!(expect_total, got_total);

        let distinct_keys: std::collections::HashSet<i64> =
            records.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(out.len(), distinct_keys.len());
    }

    /// groupByKey loses no records: list lengths sum to the input size.
    #[test]
    fn group_by_key_conserves_records(records in prop::collection::vec((0i64..16, any::<i64>()), 0..64)) {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let buckets = bucket(&records);
        let out = reduce_side(&Transform::GroupByKey, &fns, &buckets, None);
        let total: usize = out
            .iter()
            .map(|r| match r.as_pair().unwrap().1 {
                Payload::List(items) => items.len(),
                other => panic!("expected list, got {other:?}"),
            })
            .sum();
        prop_assert_eq!(total, records.len());
    }

    /// distinct is idempotent and never grows the input.
    #[test]
    fn distinct_is_idempotent(records in prop::collection::vec((0i64..8, 0i64..4), 0..64)) {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let once = reduce_side(&Transform::Distinct, &fns, &bucket(&records), None);
        prop_assert!(once.len() <= records.len());
        let mut again_in = Buckets::new();
        for r in &once {
            again_in.add(r.clone());
        }
        let twice = reduce_side(&Transform::Distinct, &fns, &again_in, None);
        prop_assert_eq!(once, twice);
    }

    /// join emits exactly |L_k| * |R_k| records per key.
    #[test]
    fn join_counts_are_products(
        left in prop::collection::vec((0i64..6, any::<i64>()), 0..32),
        right in prop::collection::vec((0i64..6, any::<i64>()), 0..32),
    ) {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let lb = bucket(&left);
        let rb = bucket(&right);
        let out = reduce_side(&Transform::Join, &fns, &lb, Some(&rb));
        let mut expect = 0usize;
        for k in 0..6i64 {
            let l = left.iter().filter(|(lk, _)| *lk == k).count();
            let r = right.iter().filter(|(rk, _)| *rk == k).count();
            expect += l * r;
        }
        prop_assert_eq!(out.len(), expect);
    }

    /// Buckets count exactly what goes in.
    #[test]
    fn buckets_conserve(records in prop::collection::vec((any::<i64>(), any::<i64>()), 0..64)) {
        let b = bucket(&records);
        prop_assert_eq!(b.n_records(), records.len());
        let distinct: std::collections::HashSet<i64> = records.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(b.n_keys(), distinct.len());
    }
}
