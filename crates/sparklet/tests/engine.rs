//! End-to-end engine tests: small programs run over a real heap + GC with
//! the Panthera policy, checking both computed answers and memory effects.

use gc::{GcCoordinator, PantheraPolicy};
use hybridmem::MemorySystemConfig;
use mheap::{Heap, HeapConfig, MemTag, ObjId, ObjKind, Payload, RootSet, SpaceId};
use panthera_analysis::analyze;
use sparklang::ast::MemoryTag;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::{ActionResult, DataRegistry, Engine, MemoryRuntime};

/// A minimal runtime: Panthera policy, propagation on.
struct TestRuntime {
    heap: Heap,
    gc: GcCoordinator,
}

impl TestRuntime {
    fn new() -> Self {
        let heap = Heap::new(
            HeapConfig::panthera(2_000_000, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(666_666, 1_333_334),
        )
        .unwrap();
        TestRuntime {
            heap,
            gc: GcCoordinator::new(Box::new(PantheraPolicy::default())),
        }
    }
}

fn to_memtag(tag: Option<MemoryTag>) -> MemTag {
    match tag {
        Some(MemoryTag::Dram) => MemTag::Dram,
        Some(MemoryTag::Nvm) => MemTag::Nvm,
        None => MemTag::None,
    }
}

impl MemoryRuntime for TestRuntime {
    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    fn alloc_record(&mut self, roots: &RootSet, kind: ObjKind, payload: Payload) -> ObjId {
        self.gc
            .alloc_young(&mut self.heap, roots, kind, MemTag::None, vec![], payload)
    }

    fn alloc_rdd_array(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        slots: usize,
        tag: Option<MemoryTag>,
    ) -> ObjId {
        self.gc
            .alloc_rdd_array(&mut self.heap, roots, rdd_id, slots, to_memtag(tag))
    }

    fn alloc_rdd_top(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        array: ObjId,
        tag: Option<MemoryTag>,
    ) -> ObjId {
        self.gc.alloc_young(
            &mut self.heap,
            roots,
            ObjKind::RddTop { rdd_id },
            to_memtag(tag),
            vec![array],
            Payload::Unit,
        )
    }

    fn record_rdd_call(&mut self, rdd_id: u32) {
        self.gc.record_rdd_call(&mut self.heap, rdd_id);
    }

    fn lineage_propagation(&self) -> bool {
        true
    }

    fn stage_boundary(&mut self, roots: &RootSet) {
        self.gc.maybe_major(&mut self.heap, roots);
    }

    fn monitored_calls(&self) -> u64 {
        self.gc.freq().total_monitored()
    }
}

fn engine_with(data: DataRegistry, fns: sparklang::FnTable) -> Engine<TestRuntime> {
    Engine::new(TestRuntime::new(), fns, data)
}

fn long_records(values: &[i64]) -> Vec<Payload> {
    values.iter().map(|v| Payload::Long(*v)).collect()
}

#[test]
fn map_and_count() {
    let mut b = ProgramBuilder::new("t");
    let double = b.map_fn(|p| Payload::Long(p.as_long().unwrap() * 2));
    let src = b.source("nums");
    let x = b.bind("x", src.map(double));
    b.action(x, ActionKind::Collect);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &analyze(&p).plan);
    let collected = out.results[0].1.as_collected().unwrap();
    assert_eq!(collected, long_records(&[2, 4, 6]));
    assert_eq!(out.stats.actions, 1);
}

#[test]
fn filter_and_flatmap() {
    let mut b = ProgramBuilder::new("t");
    let odd = b.filter_fn(|p| p.as_long().unwrap() % 2 == 1);
    let dup = b.flat_map_fn(|p| vec![p.clone(), p.clone()]);
    let src = b.source("nums");
    let x = b.bind("x", src.filter(odd).flat_map(dup));
    b.action(x, ActionKind::Count);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3, 4, 5]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(
        out.results[0].1.as_count(),
        Some(6),
        "3 odd numbers duplicated"
    );
}

#[test]
fn reduce_by_key_through_shuffle() {
    let mut b = ProgramBuilder::new("t");
    let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
    let src = b.source("pairs");
    let x = b.bind("x", src.reduce_by_key(add));
    b.action(x, ActionKind::Collect);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register(
        "pairs",
        vec![
            Payload::keyed(1, Payload::Long(10)),
            Payload::keyed(2, Payload::Long(1)),
            Payload::keyed(1, Payload::Long(5)),
        ],
    );
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    let collected = out.results[0].1.as_collected().unwrap();
    assert_eq!(
        collected,
        &[
            Payload::keyed(1, Payload::Long(15)),
            Payload::keyed(2, Payload::Long(1))
        ]
    );
    assert_eq!(out.stats.shuffles, 1);
    assert!(out.stats.shuffle_bytes > 0);
}

#[test]
fn join_distinct_and_union() {
    let mut b = ProgramBuilder::new("t");
    let sa = b.source("a");
    let sb = b.source("b");
    let a = b.bind("a", sa);
    let bb = b.bind("b", sb);
    let j = b.bind("j", b.var(a).join(b.var(bb)));
    b.action(j, ActionKind::Count);
    let u = b.bind("u", b.var(a).union(b.var(bb)).distinct());
    b.action(u, ActionKind::Count);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register(
        "a",
        vec![
            Payload::keyed(1, Payload::Long(10)),
            Payload::keyed(2, Payload::Long(20)),
        ],
    );
    data.register(
        "b",
        vec![
            Payload::keyed(1, Payload::Long(100)),
            Payload::keyed(1, Payload::Long(10)),
        ],
    );
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.results[0].1.as_count(), Some(2), "key 1 joins 1x2");
    // union = 4 records, distinct removes the duplicate (1,10).
    assert_eq!(out.results[1].1.as_count(), Some(3));
}

#[test]
fn persisted_rdd_lands_in_tagged_space() {
    // A persisted, loop-read RDD gets DRAM from the analysis and its
    // backbone array is pretenured in the DRAM old space.
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src.distinct());
    b.persist(x, StorageLevel::MemoryOnly);
    b.loop_n(3, |b| {
        b.action(x, ActionKind::Count);
    });
    let (p, fns) = b.finish();
    let report = analyze(&p);
    assert_eq!(report.tags.tag(x), Some(MemoryTag::Dram));

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[5, 6, 7, 6]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &report.plan);
    assert_eq!(out.results.len(), 3);
    assert!(out.results.iter().all(|(_, r)| r.as_count() == Some(3)));

    // Find the persisted node and check its array's space.
    let node = e.rdds().iter().find(|n| n.persisted.is_some()).unwrap();
    assert_eq!(node.tag, Some(MemoryTag::Dram));
    let mat = node.materialized.clone().unwrap();
    let dram = e.runtime().heap().old_dram().unwrap();
    for array in &mat.arrays {
        assert_eq!(e.runtime().heap().obj(*array).space, SpaceId::Old(dram));
    }
}

#[test]
fn nvm_tagged_rdd_pretenures_in_nvm() {
    // Defined-in-loop persists get NVM; their arrays go to old-gen NVM.
    let mut b = ProgramBuilder::new("t");
    let inc = b.map_fn(|p| Payload::Long(p.as_long().unwrap() + 1));
    let keep = b.map_fn(|p| p.clone());
    let src = b.source("nums");
    let stable = b.bind("stable", src);
    b.persist(stable, StorageLevel::MemoryOnly);
    let x = b.bind("x", b.var(stable).map(keep));
    b.loop_n(3, |b| {
        let e = b.var(x).map(inc);
        b.rebind(x, e);
        b.persist(x, StorageLevel::MemoryOnly);
        b.action(stable, ActionKind::Count); // keeps `stable` used-only => DRAM
    });
    let (p, fns) = b.finish();
    let report = analyze(&p);
    assert_eq!(report.tags.tag(x), Some(MemoryTag::Nvm));
    assert_eq!(report.tags.tag(stable), Some(MemoryTag::Dram));

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[0; 16]));
    let mut e = engine_with(data, fns);
    e.run(&p, &report.plan);

    let nvm = e.runtime().heap().old_nvm().unwrap();
    let x_nodes: Vec<_> = e
        .rdds()
        .iter()
        .filter(|n| n.label.as_deref() == Some("x") && n.materialized.is_some())
        .collect();
    assert!(!x_nodes.is_empty());
    for n in x_nodes {
        let mat = n.materialized.clone().unwrap();
        for array in &mat.arrays {
            assert_eq!(
                e.runtime().heap().obj(*array).space,
                SpaceId::Old(nvm),
                "iteration instance of x pretenured in NVM"
            );
        }
    }
}

#[test]
fn lineage_backprop_tags_shuffled_rdds() {
    // contribs-like pattern: persist(NVM) of a chain ending in a shuffle.
    let mut b = ProgramBuilder::new("t");
    let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
    let keep = b.map_fn(|p| p.clone());
    let src = b.source("pairs");
    let base = b.bind("base", src);
    b.persist(base, StorageLevel::MemoryOnly);
    let x = b.bind("x", b.var(base).map(keep));
    b.loop_n(2, |b| {
        let e = b.var(x).reduce_by_key(add).map_values(keep);
        b.rebind(x, e);
        b.persist(x, StorageLevel::MemoryOnly);
        // base stays used-only in the loop => DRAM, so the all-NVM flip
        // does not fire and x keeps its NVM tag.
        b.action(base, ActionKind::Count);
    });
    let (p, fns) = b.finish();
    let report = analyze(&p);
    assert_eq!(report.tags.tag(x), Some(MemoryTag::Nvm));

    let mut data = DataRegistry::new();
    data.register("pairs", vec![Payload::keyed(1, Payload::Long(1))]);
    let mut e = engine_with(data, fns);
    e.run(&p, &report.plan);

    // Every ShuffledRDD instance produced inside the loop must have
    // received the NVM tag through backward propagation.
    let shuffled: Vec<_> = e.rdds().iter().filter(|n| n.is_wide()).collect();
    assert!(!shuffled.is_empty());
    for n in shuffled {
        assert_eq!(n.tag, Some(MemoryTag::Nvm), "{} missed propagation", n.id);
    }
}

#[test]
fn unpersist_releases_heap_objects() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src.distinct());
    b.persist(x, StorageLevel::MemoryOnly);
    b.action(x, ActionKind::Count);
    b.unpersist(x);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3]));
    let mut e = engine_with(data, fns);
    e.run(&p, &Default::default());

    // After unpersist, a full collection reclaims the RDD's objects.
    let roots = RootSet::new();
    let rt = e.runtime_mut();
    let before = rt.heap.live_objects();
    rt.gc.major_gc(&mut rt.heap, &roots);
    rt.gc.minor_gc(&mut rt.heap, &roots);
    assert!(rt.heap.live_objects() < before);
    assert_eq!(rt.heap.live_objects(), 0, "nothing is rooted anymore");
}

#[test]
fn disk_only_persist_touches_no_heap_array() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src.distinct());
    b.persist(x, StorageLevel::DiskOnly);
    b.action(x, ActionKind::Count);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 2]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &analyze(&p).plan);
    assert_eq!(out.results[0].1.as_count(), Some(2));
    let node = e.rdds().iter().find(|n| n.persisted.is_some()).unwrap();
    assert!(
        node.materialized.is_none(),
        "DISK_ONLY stores no heap objects"
    );
}

#[test]
fn off_heap_persist_charges_nvm_traffic() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src.distinct());
    b.persist(x, StorageLevel::OffHeap);
    b.action(x, ActionKind::Count);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3]));
    let mut e = engine_with(data, fns);
    let nvm_before = e
        .runtime()
        .heap()
        .mem()
        .stats()
        .total_device_bytes(hybridmem::DeviceKind::Nvm);
    let out = e.run(&p, &analyze(&p).plan);
    assert_eq!(out.results[0].1.as_count(), Some(3));
    let nvm_after = e
        .runtime()
        .heap()
        .mem()
        .stats()
        .total_device_bytes(hybridmem::DeviceKind::Nvm);
    assert!(nvm_after > nvm_before, "off-heap data lives in native NVM");
}

#[test]
fn iterative_program_reclaims_transients() {
    // A loop of shuffles must not leak ShuffledRDD materializations.
    let mut b = ProgramBuilder::new("t");
    let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
    let src = b.source("pairs");
    let x = b.bind("x", src);
    b.persist(x, StorageLevel::MemoryOnly);
    b.loop_n(5, |b| {
        let y = b.bind("y", b.var(x).reduce_by_key(add));
        b.action(y, ActionKind::Count);
    });
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register(
        "pairs",
        (0..64)
            .map(|i| Payload::keyed(i % 8, Payload::Long(i)))
            .collect(),
    );
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.stats.shuffles, 5);
    // Only the persisted x should still be materialized.
    let live_mats = e.rdds().iter().filter(|n| n.materialized.is_some()).count();
    assert_eq!(live_mats, 1);
    // And a GC drops everything not reachable from x's top.
    let mat = e
        .rdds()
        .iter()
        .find(|n| n.materialized.is_some())
        .unwrap()
        .materialized
        .clone()
        .unwrap();
    let n_arrays = mat.arrays.len();
    let mut roots = RootSet::new();
    roots.push(mat.top);
    let rt = e.runtime_mut();
    rt.gc.major_gc(&mut rt.heap, &roots);
    rt.gc.minor_gc(&mut rt.heap, &roots);
    // x's top + partition arrays + 64 tuples survive.
    assert_eq!(rt.heap.live_objects(), 1 + n_arrays + 64);
}

#[test]
fn reduce_action_folds() {
    let mut b = ProgramBuilder::new("t");
    let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
    let src = b.source("nums");
    let x = b.bind("x", src);
    b.action(x, ActionKind::Reduce(add));
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3, 4]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(
        out.results[0].1,
        ActionResult::Reduced(Some(Payload::Long(10)))
    );
}

#[test]
fn monitored_calls_accumulate() {
    let mut b = ProgramBuilder::new("t");
    let keep = b.map_fn(|p| p.clone());
    let src = b.source("nums");
    let x = b.bind("x", src);
    b.persist(x, StorageLevel::MemoryOnly);
    b.loop_n(4, |b| {
        let y = b.bind("y", b.var(x).map(keep));
        b.action(y, ActionKind::Count);
    });
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1]));
    let mut e = engine_with(data, fns);
    e.run(&p, &Default::default());
    // Per iteration: one call on x (map) + one on y (count) = 8 total.
    assert_eq!(e.runtime().monitored_calls(), 8);
}

#[test]
fn serialized_persist_stores_compact_buffers() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src.distinct());
    b.persist(x, StorageLevel::MemoryOnlySer);
    b.action(x, ActionKind::Count);
    b.action(x, ActionKind::Collect);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[4, 5, 6, 5]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.results[0].1.as_count(), Some(3));
    assert_eq!(out.results[1].1.as_collected().unwrap().len(), 3);

    let node = e.rdds().iter().find(|n| n.persisted.is_some()).unwrap();
    let mat = node.materialized.clone().unwrap();
    assert!(mat.serialized);
    // The buffers carry no tuple refs — records live serialized.
    for a in &mat.arrays {
        assert!(e.runtime().heap().obj(*a).refs.is_empty());
    }
}

#[test]
fn serialized_form_is_smaller_than_deserialized() {
    let build = |level: StorageLevel| {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("nums");
        let x = b.bind("x", src.distinct());
        b.persist(x, level);
        b.action(x, ActionKind::Count);
        let (p, fns) = b.finish();
        let mut data = DataRegistry::new();
        data.register("nums", long_records(&(0..512).collect::<Vec<i64>>()));
        let mut e = engine_with(data, fns);
        e.run(&p, &Default::default());
        let node = e.rdds().iter().find(|n| n.persisted.is_some()).unwrap();
        let mat = node.materialized.clone().unwrap();
        let heap = e.runtime().heap();
        // Size of everything reachable from the arrays.
        let mut bytes: u64 = 0;
        for a in &mat.arrays {
            bytes += heap.obj(*a).size;
            for t in &heap.obj(*a).refs {
                bytes += heap.obj(*t).size;
            }
        }
        bytes
    };
    let deser = build(StorageLevel::MemoryOnly);
    let ser = build(StorageLevel::MemoryOnlySer);
    assert!(
        ser * 2 < deser,
        "serialized ({ser}B) should be far smaller than deserialized ({deser}B)"
    );
}

#[test]
fn serialized_results_match_deserialized() {
    let run_level = |level: StorageLevel| {
        let mut b = ProgramBuilder::new("t");
        let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
        let src = b.source("pairs");
        let x = b.bind("x", src.reduce_by_key(add));
        let y = b.bind("y", b.var(x).values());
        b.persist(y, level);
        b.action(y, ActionKind::Collect);
        let (p, fns) = b.finish();
        let mut data = DataRegistry::new();
        data.register(
            "pairs",
            (0..64)
                .map(|i| Payload::keyed(i % 8, Payload::Long(i)))
                .collect(),
        );
        let mut e = engine_with(data, fns);
        e.run(&p, &Default::default()).results
    };
    assert_eq!(
        run_level(StorageLevel::MemoryOnly),
        run_level(StorageLevel::MemoryAndDiskSer)
    );
}

#[test]
fn sort_by_key_through_engine() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("pairs");
    let x = b.bind("x", src.sort_by_key());
    b.action(x, ActionKind::Collect);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register(
        "pairs",
        vec![
            Payload::keyed(9, Payload::Long(90)),
            Payload::keyed(2, Payload::Long(20)),
            Payload::keyed(5, Payload::Long(50)),
        ],
    );
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    let keys: Vec<i64> = out.results[0]
        .1
        .as_collected()
        .unwrap()
        .iter()
        .map(|r| r.as_pair().unwrap().0.as_long().unwrap())
        .collect();
    assert_eq!(keys, vec![2, 5, 9]);
    assert_eq!(out.stats.shuffles, 1, "sortByKey shuffles");
}

#[test]
fn sample_is_deterministic_and_proportional() {
    let run_sample = |seed: u64| {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("nums");
        let x = b.bind("x", src.sample(0.25, seed));
        b.action(x, ActionKind::Count);
        let (p, fns) = b.finish();
        let mut data = DataRegistry::new();
        data.register("nums", (0..4_000).map(Payload::Long).collect());
        let mut e = engine_with(data, fns);
        let out = e.run(&p, &Default::default());
        out.results[0].1.as_count().unwrap()
    };
    let a = run_sample(1);
    assert_eq!(a, run_sample(1), "same seed, same sample");
    assert_ne!(a, run_sample(2), "different seed, different sample");
    assert!((800..1200).contains(&a), "roughly a quarter kept: {a}");
}

#[test]
fn empty_source_flows_through_everything() {
    let mut b = ProgramBuilder::new("t");
    let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
    let keep = b.map_fn(|p| p.clone());
    let src = b.source("empty");
    let x = b.bind("x", src.map(keep).distinct().reduce_by_key(add));
    b.persist(x, StorageLevel::MemoryOnly);
    b.action(x, ActionKind::Count);
    b.action(x, ActionKind::Collect);
    b.action(x, ActionKind::Reduce(add));
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register("empty", vec![]);
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.results[0].1.as_count(), Some(0));
    assert_eq!(out.results[1].1.as_collected().unwrap().len(), 0);
    assert_eq!(out.results[2].1, ActionResult::Reduced(None));
}

#[test]
fn filter_all_out_is_fine() {
    let mut b = ProgramBuilder::new("t");
    let none = b.filter_fn(|_| false);
    let src = b.source("nums");
    let x = b.bind("x", src.filter(none));
    b.persist(x, StorageLevel::MemoryOnly);
    b.action(x, ActionKind::Count);
    let (p, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.results[0].1.as_count(), Some(0));
}

#[test]
fn nested_loops_execute_inner_times_outer() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src);
    b.loop_n(3, |b| {
        b.loop_n(2, |b| {
            b.action(x, ActionKind::Count);
        });
        b.action(x, ActionKind::Count);
    });
    let (p, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.results.len(), 3 * 2 + 3);
    assert!(out.results.iter().all(|(_, r)| r.as_count() == Some(1)));
}

#[test]
fn diamond_lineage_reuses_one_materialization() {
    // base feeds both sides of a join: it must materialize once (persist)
    // and be read twice, not recomputed.
    let mut b = ProgramBuilder::new("t");
    let swap = b.map_fn(|r| {
        let (k, v) = r.as_pair().unwrap();
        Payload::pair(v.clone(), k.clone())
    });
    let src = b.source("pairs");
    let base = b.bind("base", src);
    b.persist(base, StorageLevel::MemoryOnly);
    let j = b.bind("j", b.var(base).join(b.var(base).map(swap)));
    b.action(j, ActionKind::Count);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register(
        "pairs",
        vec![
            Payload::keyed(1, Payload::Long(2)),
            Payload::keyed(2, Payload::Long(1)),
        ],
    );
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    // base=(1->2),(2->1); swapped=(2->1),(1->2); join on keys 1 and 2: 2 rows.
    assert_eq!(out.results[0].1.as_count(), Some(2));
    // Materializations: base (persist) + the join's ShuffledRDD + the
    // action target is the join itself (already materialized).
    assert_eq!(out.stats.materializations, 2);
}

#[test]
fn deep_narrow_chains_stream_once() {
    let mut b = ProgramBuilder::new("t");
    let inc = b.map_fn(|p| Payload::Long(p.as_long().unwrap() + 1));
    let src = b.source("nums");
    let mut expr = src;
    for _ in 0..32 {
        expr = expr.map(inc);
    }
    let x = b.bind("x", expr);
    b.action(x, ActionKind::Collect);
    let (p, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[0, 10]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(
        out.results[0].1.as_collected().unwrap(),
        &long_records(&[32, 42])[..]
    );
    // 2 records x (32 maps + 1 source parse) + transient action target.
    assert_eq!(out.stats.records_streamed, 2 * 33);
}

#[test]
fn action_directly_on_source() {
    let mut b = ProgramBuilder::new("t");
    let src = b.source("nums");
    let x = b.bind("x", src);
    b.action(x, ActionKind::Count);
    let (p, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[7; 10]));
    let mut e = engine_with(data, fns);
    let out = e.run(&p, &Default::default());
    assert_eq!(out.results[0].1.as_count(), Some(10));
}

/// A runtime over a deliberately tiny heap, to force evictions.
fn tiny_engine(data: DataRegistry, fns: sparklang::FnTable) -> Engine<TestRuntime> {
    let heap = Heap::new(
        HeapConfig::panthera(400_000, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(133_333, 266_667),
    )
    .unwrap();
    let rt = TestRuntime {
        heap,
        gc: GcCoordinator::new(Box::new(PantheraPolicy::default())),
    };
    Engine::new(rt, fns, data)
}

#[test]
fn memory_pressure_spills_memory_and_disk_blocks() {
    // Three fat persisted RDDs that cannot all fit the old generation:
    // the oldest MEMORY_AND_DISK block must spill, and later reads must
    // still see its records.
    let mut b = ProgramBuilder::new("t");
    let mut vars = Vec::new();
    for i in 0..3 {
        let src = b.source(&format!("s{i}"));
        let v = b.bind(&format!("v{i}"), src);
        b.persist(v, StorageLevel::MemoryAndDisk);
        vars.push(v);
    }
    for v in &vars {
        b.action(*v, ActionKind::Count);
    }
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    for i in 0..3 {
        data.register(
            &format!("s{i}"),
            (0..900)
                .map(|k| Payload::keyed(k, Payload::doubles(vec![i as f64; 24])))
                .collect(),
        );
    }
    let mut e = tiny_engine(data, fns);
    let out = e.run(&p, &Default::default());
    assert!(out.stats.evictions > 0, "pressure must evict");
    for (_, r) in &out.results {
        assert_eq!(r.as_count(), Some(900), "spilled block still readable");
    }
}

#[test]
fn memory_only_blocks_are_dropped_and_recomputed() {
    let mut b = ProgramBuilder::new("t");
    let mut vars = Vec::new();
    for i in 0..4 {
        let src = b.source(&format!("s{i}"));
        let v = b.bind(&format!("v{i}"), src);
        b.persist(v, StorageLevel::MemoryOnly);
        vars.push(v);
    }
    for v in &vars {
        b.action(*v, ActionKind::Count);
    }
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    for i in 0..4 {
        data.register(
            &format!("s{i}"),
            (0..650)
                .map(|k| Payload::keyed(k, Payload::doubles(vec![i as f64; 16])))
                .collect(),
        );
    }
    let mut e = tiny_engine(data, fns);
    let out = e.run(&p, &Default::default());
    assert!(out.stats.evictions > 0, "pressure must evict");
    // Dropped MEMORY_ONLY blocks recompute from their lineage on access.
    for (_, r) in &out.results {
        assert_eq!(r.as_count(), Some(650));
    }
}

/// A program exercising every statement kind the cursor must replay:
/// binds, persist/unpersist, checkpoint, actions, nested loops.
fn cursor_program() -> (sparklang::ast::Program, sparklang::FnTable, DataRegistry) {
    let mut b = ProgramBuilder::new("cursor");
    let inc = b.map_fn(|p| Payload::Long(p.as_long().unwrap() + 1));
    let src = b.source("nums");
    let x = b.bind("x", src.map(inc));
    b.persist(x, StorageLevel::MemoryOnly);
    b.checkpoint(x);
    b.loop_n(3, |b| {
        let y = b.bind("y", b.var(x).map(inc));
        b.action(y, ActionKind::Count);
        b.loop_n(2, |b| {
            b.action(x, ActionKind::Collect);
        });
    });
    b.unpersist(x);
    b.action(x, ActionKind::Count);
    let (p, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("nums", long_records(&[1, 2, 3, 4]));
    (p, fns, data)
}

#[test]
fn cursor_matches_run() {
    // One-shot reference run.
    let (p, fns, data) = cursor_program();
    let plan = analyze(&p).plan;
    let mut e = engine_with(data, fns);
    let reference = e.run(&p, &plan);
    let ref_clock = e.runtime().heap().mem().clock().now_ns();

    // The same program driven one statement-stage at a time.
    let (p2, fns2, data2) = cursor_program();
    let plan2 = analyze(&p2).plan;
    let engine = engine_with(data2, fns2);
    let mut cursor = sparklet::StageCursor::new(engine, p2, plan2);
    let total = cursor.total_stages();
    let mut steps = 0usize;
    while cursor.step() {
        steps += 1;
    }
    assert_eq!(steps, total);
    assert!(cursor.is_done());
    assert!(!cursor.step(), "step after completion must be a no-op");
    let (engine, out) = cursor.finish();

    // Results, counters, and the simulated clock must be bit-identical.
    assert_eq!(
        format!("{:?}", reference.results),
        format!("{:?}", out.results)
    );
    assert_eq!(format!("{:?}", reference.stats), format!("{:?}", out.stats));
    let cur_clock = engine.runtime().heap().mem().clock().now_ns();
    assert_eq!(ref_clock.to_bits(), cur_clock.to_bits());
}

#[test]
fn cursor_stage_count_unrolls_loops() {
    let (p, fns, data) = cursor_program();
    let plan = analyze(&p).plan;
    let cursor = sparklet::StageCursor::new(engine_with(data, fns), p, plan);
    // Top level: bind, persist, checkpoint, loop(enter+exit), unpersist,
    // action = 5 simple + 2 loop markers. Outer body per iteration: bind,
    // action, inner loop enter+exit + 2 inner actions. 3 outer iters.
    let outer_body = 2 + 2 + 2;
    assert_eq!(cursor.total_stages(), 7 + 3 * outer_body);
}
