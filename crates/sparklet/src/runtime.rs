//! The [`MemoryRuntime`] trait: the seam between the Spark-like engine and
//! the memory manager underneath it.
//!
//! The engine calls these hooks for every allocation and materialization;
//! a runtime implementation (the Panthera runtime in the `panthera` crate,
//! or the baselines) decides placement, performs collections, and charges
//! costs. This mirrors the paper's structure: the Spark side is
//! instrumented to *pass tags down*, and the JVM side decides what to do
//! with them.

use mheap::{Heap, ObjId, ObjKind, Payload, RootSet};
use sparklang::ast::MemoryTag;

/// Memory-management hooks the engine drives.
pub trait MemoryRuntime {
    /// The heap (for reads, barrier writes, and reports).
    fn heap(&self) -> &Heap;

    /// Mutable heap access.
    fn heap_mut(&mut self) -> &mut Heap;

    /// Allocate a record object in the young generation, collecting if
    /// needed.
    fn alloc_record(&mut self, roots: &RootSet, kind: ObjKind, payload: Payload) -> ObjId;

    /// The instrumented `rdd_alloc(rdd, tag)` + backbone-array allocation:
    /// called at a materialization point with the RDD's tag; the runtime
    /// enters its wait state and places the array per its policy
    /// (Section 4.2.1). Returns the array object.
    fn alloc_rdd_array(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        slots: usize,
        tag: Option<MemoryTag>,
    ) -> ObjId;

    /// Allocate the RDD top object (young generation; its `MEMORY_BITS`
    /// are set from the tag so the root-task recognizes it).
    fn alloc_rdd_top(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        array: ObjId,
        tag: Option<MemoryTag>,
    ) -> ObjId;

    /// A monitored method call on an RDD object (dynamic re-assessment
    /// input, Section 4.2.2). Runtimes without monitoring ignore it.
    fn record_rdd_call(&mut self, rdd_id: u32);

    /// Whether the engine should run Panthera's stage-start lineage tag
    /// back-propagation (Section 3, "Dealing with ShuffledRDD").
    fn lineage_propagation(&self) -> bool;

    /// A stage boundary was crossed; the runtime may collect.
    fn stage_boundary(&mut self, roots: &RootSet);

    /// The engine evicted cached data under memory pressure and needs the
    /// space back now: run a full collection.
    fn force_major(&mut self, roots: &RootSet) {
        let _ = roots;
    }

    /// Total monitored calls (Table 5); zero for runtimes that don't
    /// monitor.
    fn monitored_calls(&self) -> u64 {
        0
    }
}
