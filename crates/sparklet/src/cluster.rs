//! Cluster-mode plumbing: the contract between an executor-resident
//! [`crate::Engine`] and the driver's shuffle exchange.
//!
//! In cluster mode every executor runs the *same* driver program over its
//! own private heap, keeping only the source partitions assigned to it
//! (partition `i` belongs to executor `i % E`). Narrow stages proceed
//! independently; wide transformations and actions rendezvous through an
//! [`ExchangeClient`]: each executor contributes its local partitions (in
//! Send-safe [`WirePayload`] form) plus its virtual clock, and receives
//! every executor's contribution plus the barrier time — the maximum
//! arrival clock, modelling straggler skew. Because each rendezvous is a
//! deterministic all-gather over structurally-aligned contributions, the
//! whole cluster is a Kahn process network: results and simulated clocks
//! are independent of host-thread scheduling.

use mheap::WirePayload;
use sparklang::ast::MemoryTag;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A typed cluster failure, delivered to every executor blocked on (or
/// about to enter) a collective instead of letting them deadlock on a
/// peer that will never arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The exchange was poisoned: executor `exec` died mid-run (a real
    /// panic, or an injected crash with recovery disabled). Every waiter
    /// and every later rendezvous attempt observes this same error.
    Poisoned {
        /// The executor that failed first.
        exec: u16,
        /// Human-readable cause (panic message or injected-fault label).
        reason: String,
    },
    /// A *planned* fault from a deterministic fault plan: executor `exec`
    /// crashes on arrival at statement barrier `barrier`, at virtual time
    /// `at_ns`. With recovery enabled the driver restarts the executor;
    /// otherwise this degenerates into a poisoned exchange.
    InjectedCrash {
        /// The crashing executor.
        exec: u16,
        /// The statement barrier the crash fires at.
        barrier: u64,
        /// Virtual time of the crash (the executor's arrival clock).
        at_ns: f64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Poisoned { exec, reason } => {
                write!(f, "exchange poisoned by executor {exec}: {reason}")
            }
            ClusterError::InjectedCrash {
                exec,
                barrier,
                at_ns,
            } => write!(
                f,
                "injected crash: executor {exec} at barrier {barrier} (t={at_ns}ns)"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Where an RDD's *local* records sit inside the global partition space.
///
/// An executor's flattened record vector is the concatenation of the
/// global partitions it owns, in ascending global-partition-id order;
/// `gids[i]` names the `i`-th owned partition and `lens[i]` its record
/// count. `global_parts` is the total partition count across the cluster,
/// so a `union` can renumber its second input past its first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartMeta {
    /// Global ids of the partitions this executor holds, ascending.
    pub gids: Vec<u64>,
    /// Record count of each held partition, parallel to `gids`.
    pub lens: Vec<usize>,
    /// Total partitions of this RDD across all executors.
    pub global_parts: u64,
}

/// One executor's map-side output for a shuffle: its local partitions of
/// each parent, keyed by global partition id.
#[derive(Debug, Clone)]
pub struct ShuffleContrib {
    /// `(global partition id, records)` for the first parent.
    pub left: Vec<(u64, Vec<WirePayload>)>,
    /// Partitions of the second parent, for two-input shuffles (join).
    pub right: Option<Vec<(u64, Vec<WirePayload>)>>,
}

/// FNV-1a over a stream of `u64` words — the structural-digest mixer
/// shared by every journaled operation. Same constants as
/// [`WirePayload::fingerprint`], so digests are stable across executors
/// and restarts (they depend only on simulated values, never on host
/// pointers or timing).
fn fnv_words<I: IntoIterator<Item = u64>>(tag: u64, words: I) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = BASIS ^ tag.wrapping_mul(PRIME);
    for w in words {
        for b in w.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    h
}

fn digest_parts(h: &mut Vec<u64>, parts: &[(u64, Vec<WirePayload>)]) {
    h.push(parts.len() as u64);
    for (gid, recs) in parts {
        h.push(*gid);
        h.push(recs.len() as u64);
        h.extend(recs.iter().map(WirePayload::fingerprint));
    }
}

impl ShuffleContrib {
    /// Modelled footprint of this contribution in bytes — what the
    /// deposit occupies in a shared shuffle region (or would cost to
    /// serialize under the wire transport).
    pub fn model_bytes(&self) -> u64 {
        let side = |parts: &[(u64, Vec<WirePayload>)]| -> u64 {
            parts
                .iter()
                .map(|(_, recs)| recs.iter().map(WirePayload::model_bytes).sum::<u64>())
                .sum()
        };
        side(&self.left) + self.right.as_deref().map_or(0, side)
    }

    /// Structural digest of this contribution: partition ids, record
    /// counts, and every record's [`WirePayload::fingerprint`]. Two
    /// contributions digest equal iff they carry the same simulated
    /// values, so a replayed deposit can be *validated* as a no-op.
    pub fn digest(&self) -> u64 {
        let mut words = Vec::new();
        digest_parts(&mut words, &self.left);
        match &self.right {
            Some(parts) => {
                words.push(1);
                digest_parts(&mut words, parts);
            }
            None => words.push(0),
        }
        fnv_words(1, words)
    }
}

/// One executor's partial result for a global action.
#[derive(Debug, Clone)]
pub enum ActionContrib {
    /// Local record count (`count()`).
    Count(u64),
    /// Local partitions in `(global partition id, records)` form
    /// (`collect()`).
    Collect(Vec<(u64, Vec<WirePayload>)>),
    /// Locally-folded partial, `None` for an empty local RDD
    /// (`reduce(f)`).
    Reduce(Option<WirePayload>),
}

impl ActionContrib {
    /// Structural digest of this partial result (see
    /// [`ShuffleContrib::digest`] for the validation contract).
    pub fn digest(&self) -> u64 {
        match self {
            ActionContrib::Count(n) => fnv_words(2, [*n]),
            ActionContrib::Collect(parts) => {
                let mut words = Vec::new();
                digest_parts(&mut words, parts);
                fnv_words(3, words)
            }
            ActionContrib::Reduce(opt) => fnv_words(4, opt.iter().map(WirePayload::fingerprint)),
        }
    }
}

/// The rendezvous endpoints an executor engine calls. Implementations
/// must be safe to share across executor threads; every method blocks the
/// calling executor until all `E` executors have contributed, then hands
/// each of them the full contribution vector (indexed by executor id) and
/// the barrier clock `t_bar = max` over the contributed clocks.
///
/// Re-requests are idempotent: once a shuffle, action, or barrier
/// rendezvous has completed, later calls with the same id (an evicted RDD
/// being recomputed, or a restarted executor replaying its program) are
/// served from the completed result without blocking and without
/// depositing the new contribution.
///
/// Every method returns `Err` instead of blocking forever when the
/// exchange has been poisoned by a failed peer, and may return
/// [`ClusterError::InjectedCrash`] to fire a planned fault against the
/// calling executor.
pub trait ExchangeClient: Send + Sync {
    /// Contribute to (or re-read) the gather for shuffle node `rdd`.
    fn gather_shuffle(
        &self,
        exec: u16,
        rdd: u32,
        contrib: ShuffleContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ShuffleContrib>>, f64), ClusterError>;

    /// Contribute to (or re-read) the gather for the `seq`-th action.
    fn gather_action(
        &self,
        exec: u16,
        seq: u64,
        contrib: ActionContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ActionContrib>>, f64), ClusterError>;

    /// Statement barrier `index`: block until every executor arrives,
    /// return the barrier clock.
    fn barrier(&self, exec: u16, index: u64, clock_ns: f64) -> Result<f64, ClusterError>;
}

/// A durable partition snapshot: one executor's share of a checkpointed
/// RDD, in Send-safe wire form. Snapshots model data living in the NVM
/// component of the old generation — they survive the owning executor's
/// heap teardown, which is exactly what recovery needs.
#[derive(Debug, Clone)]
pub struct CheckpointEntry {
    /// `(global partition id, records)` for each owned partition.
    pub parts: Vec<(u64, Vec<WirePayload>)>,
    /// Total partitions of the RDD across all executors.
    pub global_parts: u64,
    /// Modelled bytes of the snapshot (what the NVM writes cost).
    pub bytes: u64,
    /// The RDD's memory tag at snapshot time, restored verbatim.
    pub tag: Option<MemoryTag>,
}

impl CheckpointEntry {
    /// Structural digest of this snapshot (see
    /// [`ShuffleContrib::digest`] for the validation contract).
    pub fn digest(&self) -> u64 {
        let mut words = Vec::new();
        digest_parts(&mut words, &self.parts);
        words.push(self.global_parts);
        words.push(self.bytes);
        // `tag` is deliberately excluded: placement tags merge over an
        // incarnation's lifetime, so a legitimate re-save after eviction
        // may carry a drifted tag for the *same* records. The digest
        // covers simulated values only.
        fnv_words(5, words)
    }
}

/// Durable checkpoint storage keyed by `(rdd id, executor id)`. The store
/// outlives every executor heap; `save` is idempotent (the first write
/// wins, so a replaying executor never double-charges a snapshot).
pub trait CheckpointStore: Send + Sync {
    /// Persist a snapshot. Returns `false` (and drops the entry) if one
    /// already exists for this key.
    fn save(&self, rdd: u32, exec: u16, entry: CheckpointEntry) -> bool;
    /// Read back a snapshot, if one was saved.
    fn load(&self, rdd: u32, exec: u16) -> Option<CheckpointEntry>;
    /// Total modelled bytes currently resident in the store.
    fn resident_bytes(&self) -> u64;
}

/// Which durable side effect a journal entry guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalOp {
    /// A shuffle-gather deposit, keyed by the shuffle RDD's id.
    ShuffleDeposit,
    /// An action-gather deposit, keyed by the action sequence number.
    ActionDeposit,
    /// A checkpoint save, keyed by the checkpointed RDD's id.
    CheckpointSave,
}

/// What [`DepositJournal::begin`] found for an `(exec, op, key)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginOutcome {
    /// No journal entry existed: this is the operation's first issue. The
    /// entry is now pending; the caller must perform the effect and then
    /// [`DepositJournal::commit`].
    Fresh,
    /// A committed entry with a matching digest existed: the operation
    /// already happened in a previous incarnation and this re-issue is a
    /// validated no-op. The caller must still re-read the result (gathers
    /// are idempotent re-reads) but must not re-charge the effect.
    Replay,
    /// A *pending* entry existed: the previous incarnation crashed after
    /// `begin` but before `commit` — a torn operation. The entry has been
    /// re-armed; the caller rolls forward by performing the effect again
    /// and committing.
    Torn,
}

/// The durable intent journal for exchange deposits and checkpoint saves,
/// living in the NVM store so it survives executor heap teardown.
///
/// Protocol (write → persist → validate, after Metall's crash-consistent
/// discipline): `begin` persists the intent record `(op, key, digest,
/// bytes)` *before* the effect; the effect happens; `commit` marks the
/// record durable. A crash between `begin` and `commit` leaves a *torn*
/// entry that replay detects and rolls forward; a replayed operation
/// whose entry is already committed is digest-validated and skipped — a
/// provable no-op. A digest mismatch means replay diverged from the
/// original timeline (determinism is broken) and panics.
///
/// Journal bookkeeping charges **no** virtual time: the intent record
/// piggybacks on the NVM writes the guarded effect already pays for, so
/// fault-free runs are bit-identical with or without journaling.
pub trait DepositJournal: Send + Sync {
    /// Persist (or re-validate) the intent record for one operation.
    ///
    /// # Panics
    ///
    /// Panics if an existing entry's digest differs from `digest` — the
    /// replay is not re-issuing the same operation it journaled.
    fn begin(&self, exec: u16, op: JournalOp, key: u64, digest: u64, bytes: u64) -> BeginOutcome;

    /// Mark the pending entry committed. A no-op if the entry was already
    /// committed (the `Replay` path never re-pends it).
    fn commit(&self, exec: u16, op: JournalOp, key: u64);
}

/// A timeline mark kept across executor restarts so the surviving attempt
/// can re-synthesize crash/recovery events for the merged trace (each
/// crashed attempt's event buffer dies with it).
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryMark {
    /// The executor crashed on arrival at `barrier`.
    Crash {
        /// Barrier index the crash fired at.
        barrier: u64,
    },
    /// Restart `attempt` began replaying the program.
    Start {
        /// 1-based restart attempt.
        attempt: u32,
    },
    /// Replay re-reached the crash barrier; recovery is complete.
    End {
        /// Barrier index the recovery caught up to.
        barrier: u64,
        /// Virtual time spent recovering (crash → caught up).
        recovery_ns: f64,
    },
}

/// Mutable per-executor recovery bookkeeping, shared between the driver's
/// restart loop, the fault-injecting exchange wrapper, and the engine's
/// checkpoint/replay hooks. All counters are driven by virtual-time events
/// on one executor's (serialized) timeline, so values are deterministic
/// regardless of host threading.
#[derive(Debug, Clone, Default)]
pub struct RecoveryCounters {
    /// Completed restart attempts (0 while the first incarnation runs).
    pub attempt: u32,
    /// True from restart until replay re-reaches the crash barrier.
    pub in_replay: bool,
    /// The barrier index replay must reach to complete recovery. Under
    /// nested faults (a crash during replay) this only ever grows: it
    /// tracks the *furthest* barrier any enclosing recovery must reach.
    pub replay_until: Option<u64>,
    /// How many crashes the current recovery window encloses (0 when not
    /// replaying). A crash during replay deepens the window instead of
    /// opening a second one, so window-scoped stats count once.
    pub replay_depth: u32,
    /// Virtual time the *outermost* open recovery window began (the first
    /// crash's time). Not overwritten by nested crashes, so `recovery_ns`
    /// spans the whole window exactly once.
    pub recovery_started_ns: f64,
    /// Virtual time of the most recent crash — where the next incarnation
    /// resumes its clock from (plus the restart penalty).
    pub last_crash_ns: f64,
    /// Injected crashes that fired on this executor.
    pub executor_crashes: u64,
    /// Injected exchange message losses (charged as retransmits).
    pub messages_lost: u64,
    /// Injected transient allocation failures (charged as retries).
    pub alloc_faults: u64,
    /// Materialized partitions lost to crashes (heap died with them).
    pub partitions_lost: u64,
    /// Partitions recomputed through lineage during replay.
    pub partitions_recomputed: u64,
    /// Partitions restored from NVM checkpoints instead of recomputed.
    pub partitions_restored: u64,
    /// Shuffle stages re-executed during replay.
    pub stages_recomputed: u64,
    /// Checkpoint snapshots written (first-write only).
    pub checkpoint_writes: u64,
    /// Modelled bytes written to NVM checkpoints.
    pub checkpoint_bytes: u64,
    /// Modelled bytes read back from NVM checkpoints.
    pub restore_bytes: u64,
    /// Total virtual time spent recovering, summed over crashes.
    pub recovery_ns: f64,
    /// Partitions currently materialized in this incarnation's heap
    /// (what a crash right now would lose).
    pub live_partitions: u64,
    /// Heap materializations performed so far, across attempts — the
    /// deterministic sequence alloc-fault points key on.
    pub materialize_seq: u64,
    /// Virtual-time crash points already consumed (index into the
    /// executor's sorted crash-point list; survives restarts so each
    /// point fires exactly once).
    pub vcrash_next: usize,
    /// Journaled operations replayed and validated as no-ops.
    pub journal_noops: u64,
    /// Torn journal entries (crash between `begin` and `commit`) found
    /// and rolled forward during replay.
    pub journal_torn: u64,
    /// Timeline marks surviving restarts, for event re-synthesis.
    pub marks: Vec<(f64, RecoveryMark)>,
}

/// Shared handle to one executor's [`RecoveryCounters`].
#[derive(Debug, Default)]
pub struct RecoverySlot {
    inner: Mutex<RecoveryCounters>,
}

impl RecoverySlot {
    /// A fresh slot with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` under the slot lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut RecoveryCounters) -> R) -> R {
        let mut guard = self.inner.lock().expect("recovery slot lock");
        f(&mut guard)
    }
}

/// The engine-facing recovery configuration for one executor: where
/// checkpoints go, how often to take them, and which planned allocation
/// faults to fire.
#[derive(Clone)]
pub struct RecoveryCtx {
    /// Durable checkpoint storage shared by the whole cluster.
    pub store: Arc<dyn CheckpointStore>,
    /// Auto-checkpoint every `n`-th wide (shuffle) RDD; `0` checkpoints
    /// only explicitly `checkpoint()`-marked RDDs.
    pub checkpoint_every: u32,
    /// This executor's shared recovery bookkeeping.
    pub slot: Arc<RecoverySlot>,
    /// Materialization ordinals at which a transient allocation failure
    /// fires (sorted, each fires at most once — ordinals never repeat).
    pub alloc_faults: Arc<Vec<u64>>,
    /// Virtual-time cost charged per allocation-failure retry.
    pub alloc_retry_ns: f64,
    /// The durable intent journal guarding exchange deposits and
    /// checkpoint saves, shared by the whole cluster.
    pub journal: Arc<dyn DepositJournal>,
    /// Virtual times at which this executor crashes (sorted ascending;
    /// each fires at the first engine probe whose clock reaches it,
    /// consumed via [`RecoveryCounters::vcrash_next`]).
    pub crash_points: Arc<Vec<f64>>,
}

impl fmt::Debug for RecoveryCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryCtx")
            .field("checkpoint_every", &self.checkpoint_every)
            .field("alloc_faults", &self.alloc_faults)
            .field("alloc_retry_ns", &self.alloc_retry_ns)
            .finish_non_exhaustive()
    }
}

/// An executor's view of the cluster it runs in.
#[derive(Clone)]
pub struct ClusterCtx {
    /// This executor's id, `0..n_exec`.
    pub exec: u16,
    /// Total executors in the cluster.
    pub n_exec: u16,
    /// The shared exchange all executors rendezvous through.
    pub exchange: Arc<dyn ExchangeClient>,
    /// Recovery wiring (checkpoints, fault points, counters), when the
    /// cluster runs under a recovery policy or fault plan.
    pub recovery: Option<RecoveryCtx>,
}

impl fmt::Debug for ClusterCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterCtx")
            .field("exec", &self.exec)
            .field("n_exec", &self.n_exec)
            .finish_non_exhaustive()
    }
}
