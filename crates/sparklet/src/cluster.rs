//! Cluster-mode plumbing: the contract between an executor-resident
//! [`crate::Engine`] and the driver's shuffle exchange.
//!
//! In cluster mode every executor runs the *same* driver program over its
//! own private heap, keeping only the source partitions assigned to it
//! (partition `i` belongs to executor `i % E`). Narrow stages proceed
//! independently; wide transformations and actions rendezvous through an
//! [`ExchangeClient`]: each executor contributes its local partitions (in
//! Send-safe [`WirePayload`] form) plus its virtual clock, and receives
//! every executor's contribution plus the barrier time — the maximum
//! arrival clock, modelling straggler skew. Because each rendezvous is a
//! deterministic all-gather over structurally-aligned contributions, the
//! whole cluster is a Kahn process network: results and simulated clocks
//! are independent of host-thread scheduling.

use mheap::WirePayload;
use std::fmt;
use std::sync::Arc;

/// Where an RDD's *local* records sit inside the global partition space.
///
/// An executor's flattened record vector is the concatenation of the
/// global partitions it owns, in ascending global-partition-id order;
/// `gids[i]` names the `i`-th owned partition and `lens[i]` its record
/// count. `global_parts` is the total partition count across the cluster,
/// so a `union` can renumber its second input past its first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartMeta {
    /// Global ids of the partitions this executor holds, ascending.
    pub gids: Vec<u64>,
    /// Record count of each held partition, parallel to `gids`.
    pub lens: Vec<usize>,
    /// Total partitions of this RDD across all executors.
    pub global_parts: u64,
}

/// One executor's map-side output for a shuffle: its local partitions of
/// each parent, keyed by global partition id.
#[derive(Debug, Clone)]
pub struct ShuffleContrib {
    /// `(global partition id, records)` for the first parent.
    pub left: Vec<(u64, Vec<WirePayload>)>,
    /// Partitions of the second parent, for two-input shuffles (join).
    pub right: Option<Vec<(u64, Vec<WirePayload>)>>,
}

/// One executor's partial result for a global action.
#[derive(Debug, Clone)]
pub enum ActionContrib {
    /// Local record count (`count()`).
    Count(u64),
    /// Local partitions in `(global partition id, records)` form
    /// (`collect()`).
    Collect(Vec<(u64, Vec<WirePayload>)>),
    /// Locally-folded partial, `None` for an empty local RDD
    /// (`reduce(f)`).
    Reduce(Option<WirePayload>),
}

/// The rendezvous endpoints an executor engine calls. Implementations
/// must be safe to share across executor threads; every method blocks the
/// calling executor until all `E` executors have contributed, then hands
/// each of them the full contribution vector (indexed by executor id) and
/// the barrier clock `t_bar = max` over the contributed clocks.
///
/// Re-requests are idempotent: once a shuffle or action gather has
/// completed, later calls with the same id (an evicted RDD being
/// recomputed) are served from the completed result without blocking and
/// without depositing the new contribution.
pub trait ExchangeClient: Send + Sync {
    /// Contribute to (or re-read) the gather for shuffle node `rdd`.
    fn gather_shuffle(
        &self,
        exec: u16,
        rdd: u32,
        contrib: ShuffleContrib,
        clock_ns: f64,
    ) -> (Arc<Vec<ShuffleContrib>>, f64);

    /// Contribute to (or re-read) the gather for the `seq`-th action.
    fn gather_action(
        &self,
        exec: u16,
        seq: u64,
        contrib: ActionContrib,
        clock_ns: f64,
    ) -> (Arc<Vec<ActionContrib>>, f64);

    /// Statement barrier `index`: block until every executor arrives,
    /// return the barrier clock.
    fn barrier(&self, exec: u16, index: u64, clock_ns: f64) -> f64;
}

/// An executor's view of the cluster it runs in.
#[derive(Clone)]
pub struct ClusterCtx {
    /// This executor's id, `0..n_exec`.
    pub exec: u16,
    /// Total executors in the cluster.
    pub n_exec: u16,
    /// The shared exchange all executors rendezvous through.
    pub exchange: Arc<dyn ExchangeClient>,
}

impl fmt::Debug for ClusterCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterCtx")
            .field("exec", &self.exec)
            .field("n_exec", &self.n_exec)
            .finish_non_exhaustive()
    }
}
