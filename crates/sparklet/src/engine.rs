//! The execution engine: interprets driver programs over the simulated
//! heap, reproducing Spark's evaluation strategy as the paper describes it
//! (Section 2):
//!
//! * transformations are lazy — a `Bind` only creates runtime RDD nodes;
//! * `persist` materializes the RDD immediately, at the storage level (and
//!   DRAM/NVM sub-level) the analysis inferred;
//! * actions force evaluation and materialize their (non-persisted) target
//!   for the duration of the evaluation;
//! * wide transformations cut stages: map-side records are shuffled
//!   through simulated disk files, and the reduce side's output is
//!   materialized immediately as a `ShuffledRDD` that dies when the
//!   consuming evaluation completes;
//! * unmaterialized intermediate records stream through the young
//!   generation one at a time and die there — exactly the epochal
//!   behaviour Panthera's heap design exploits.

use crate::data::DataRegistry;
use crate::rdd::{MatData, RddId, RddNode, RddOp};
use crate::runtime::MemoryRuntime;
use crate::shuffle::{reduce_side, Buckets};
use hybridmem::{AccessKind, AccessProfile, DeviceKind};
use mheap::{ObjKind, Payload, RootSet};
use panthera_analysis::InstrumentationPlan;
use sparklang::ast::{ActionKind, Program, RddExpr, Stmt, StmtId, StorageLevel, Transform, VarId};
use sparklang::{FnTable, FuncId, UserFn};
use std::collections::HashMap;
use std::rc::Rc;

/// Cost knobs of the engine's non-heap activities.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated disk throughput for shuffle files and disk-level persists
    /// (nanoseconds per byte).
    pub disk_ns_per_byte: f64,
    /// CPU cost of one user-closure application.
    pub record_cpu_ns: f64,
    /// CPU cost of interpreting one driver statement.
    pub driver_cpu_ns: f64,
    /// Partitions per materialized RDD: each partition gets its own
    /// backbone array, and the arrays are allocated back to back — the
    /// reason shared cards "exist pervasively" (Section 4.2.3).
    pub partitions: usize,
    /// CPU cost of serializing or deserializing one record (`*_SER`
    /// storage levels trade this for a compact heap footprint).
    pub serde_cpu_ns: f64,
    /// Fuse maximal chains of narrow transformations into one host-side
    /// streaming pass (records flow record-at-a-time through the whole
    /// chain; no intermediate stage ever materializes a `Vec<Payload>`).
    /// Simulated costs are charged from per-stage event logs in exactly
    /// the stage-at-a-time order the unfused engine uses, so simulated
    /// time/energy/GC behaviour is bit-identical either way. `false`
    /// selects the legacy stage-at-a-time execution (kept for A/B
    /// benchmarking and the fused-vs-unfused equivalence tests).
    pub fuse_narrow: bool,
    /// Benchmark-only emulation of the pre-rework engine's host cost:
    /// every record handoff performs a structural [`Payload::deep_clone`]
    /// where the engine now bumps an `Rc` refcount. Pair with
    /// `fuse_narrow: false` to reproduce the seed engine's copy-per-stage
    /// behaviour for before/after trajectory benchmarks. Simulated
    /// time/energy is unaffected — only host CPU burns.
    pub legacy_copies: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            disk_ns_per_byte: 0.5,
            record_cpu_ns: 80.0,
            driver_cpu_ns: 1_000.0,
            partitions: 8,
            serde_cpu_ns: 60.0,
            fuse_narrow: true,
            legacy_copies: false,
        }
    }
}

/// The value an action produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionResult {
    /// `count()`.
    Count(u64),
    /// `collect()`.
    Collected(Vec<Payload>),
    /// `reduce(f)`; `None` for an empty RDD.
    Reduced(Option<Payload>),
}

impl ActionResult {
    /// The count, if this is a `Count` result.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            ActionResult::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The collected records, if this is a `Collected` result.
    pub fn as_collected(&self) -> Option<&[Payload]> {
        match self {
            ActionResult::Collected(v) => Some(v),
            _ => None,
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Records that flowed through narrow transformations.
    pub records_streamed: u64,
    /// Shuffles executed.
    pub shuffles: u64,
    /// Bytes written to + read from shuffle files.
    pub shuffle_bytes: u64,
    /// RDD materializations into the heap.
    pub materializations: u64,
    /// Actions executed.
    pub actions: u64,
    /// Runtime RDD instances created.
    pub rdd_instances: u64,
    /// Persisted RDDs evicted from the heap under memory pressure
    /// (dropped for MEMORY_ONLY levels, spilled to disk for
    /// MEMORY_AND_DISK levels — Spark's block-manager behaviour).
    pub evictions: u64,
}

impl ExecStats {
    /// Serialize every counter as a JSON object with stable key order.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("records_streamed", Json::UInt(self.records_streamed)),
            ("shuffles", Json::UInt(self.shuffles)),
            ("shuffle_bytes", Json::UInt(self.shuffle_bytes)),
            ("materializations", Json::UInt(self.materializations)),
            ("actions", Json::UInt(self.actions)),
            ("rdd_instances", Json::UInt(self.rdd_instances)),
            ("evictions", Json::UInt(self.evictions)),
        ])
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// `(variable name, result)` per executed action, in order.
    pub results: Vec<(String, ActionResult)>,
    /// Execution counters.
    pub stats: ExecStats,
}

/// The engine. Owns the runtime, the function table, the input data, and
/// the runtime RDD graph.
#[derive(Debug)]
pub struct Engine<R: MemoryRuntime> {
    runtime: R,
    fns: FnTable,
    data: DataRegistry,
    config: EngineConfig,
    rdds: Vec<RddNode>,
    vars: Vec<Option<RddId>>,
    roots: RootSet,
    stats: ExecStats,
    /// Driver-side storage for DISK_ONLY persists. Stored behind `Rc` so
    /// re-reads hand out the same vector instead of copying it.
    disk_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// Native (off-heap) storage — placed entirely in NVM (Section 4.1).
    native_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// ShuffledRDDs (and action targets) materialized for the current
    /// evaluation only; reclaimed when it completes.
    transients: Vec<RddId>,
    /// Heap-persisted RDDs in persist order (LRU eviction order).
    persist_order: Vec<RddId>,
    /// Record contents of RDDs materialized in *serialized* form — their
    /// heap footprint is modelled by compact byte-buffer objects, so the
    /// payloads live driver-side.
    ser_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// Non-zero while computing the inputs of a join: hash-probe access is
    /// random (latency-bound), not streaming.
    random_read_depth: u32,
    /// Sequence number for `StageStart`/`StageEnd` events.
    stage_seq: u32,
}

impl<R: MemoryRuntime> Engine<R> {
    /// Build an engine over a runtime, closures, and input data.
    pub fn new(runtime: R, fns: FnTable, data: DataRegistry) -> Self {
        Self::with_config(runtime, fns, data, EngineConfig::default())
    }

    /// Build an engine with explicit cost knobs.
    pub fn with_config(runtime: R, fns: FnTable, data: DataRegistry, config: EngineConfig) -> Self {
        Engine {
            runtime,
            fns,
            data,
            config,
            rdds: Vec::new(),
            vars: Vec::new(),
            roots: RootSet::new(),
            stats: ExecStats::default(),
            disk_store: HashMap::new(),
            native_store: HashMap::new(),
            transients: Vec::new(),
            persist_order: Vec::new(),
            ser_store: HashMap::new(),
            random_read_depth: 0,
            stage_seq: 0,
        }
    }

    /// The runtime (heap, GC, energy reports).
    pub fn runtime(&self) -> &R {
        &self.runtime
    }

    /// Mutable runtime access.
    pub fn runtime_mut(&mut self) -> &mut R {
        &mut self.runtime
    }

    /// The runtime RDD graph built so far.
    pub fn rdds(&self) -> &[RddNode] {
        &self.rdds
    }

    /// Execution counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Run a program under an instrumentation plan (use
    /// `InstrumentationPlan::default()` for un-instrumented baselines).
    /// # Panics
    ///
    /// Panics if the program is ill-formed (see [`sparklang::validate`]) —
    /// programs built with the [`sparklang::ProgramBuilder`] always pass.
    pub fn run(&mut self, program: &Program, plan: &InstrumentationPlan) -> RunOutcome {
        if let Err(e) = sparklang::validate(program) {
            panic!("ill-formed program {:?}: {e}", program.name);
        }
        self.vars = vec![None; program.n_vars()];
        let mut results = Vec::new();
        let mut next = 0u32;
        self.exec_block(program, &program.stmts, plan, &mut next, &mut results);
        RunOutcome {
            results,
            stats: self.stats,
        }
    }

    // ------------------------------------------------------------------
    // Interpreter
    // ------------------------------------------------------------------

    fn exec_block(
        &mut self,
        program: &Program,
        stmts: &[Stmt],
        plan: &InstrumentationPlan,
        next: &mut u32,
        results: &mut Vec<(String, ActionResult)>,
    ) {
        for s in stmts {
            let id = StmtId(*next);
            *next += 1;
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.driver_cpu_ns);
            match s {
                Stmt::Loop { n, body } => {
                    let body_count = count_stmts(body);
                    for _ in 0..*n {
                        let mut inner = *next;
                        self.exec_block(program, body, plan, &mut inner, results);
                    }
                    *next += body_count;
                }
                Stmt::Bind { var, expr } => {
                    let rdd = self.build_expr(expr);
                    self.rdds[rdd.0 as usize].label = Some(program.var_name(*var).to_string());
                    self.vars[var.0 as usize] = Some(rdd);
                }
                Stmt::Persist { var, level } => {
                    let rdd = self.var_rdd(*var);
                    // The instrumented rdd_alloc call passes the inferred
                    // tag down right before the materialization point.
                    if let Some(tag) = plan.tag_at(id) {
                        self.rdds[rdd.0 as usize].merge_tag(tag);
                    }
                    self.rdds[rdd.0 as usize].persisted = Some(*level);
                    self.persist_now(rdd);
                }
                Stmt::Unpersist { var } => {
                    let rdd = self.var_rdd(*var);
                    self.unpersist(rdd);
                }
                Stmt::Action { var, action } => {
                    let rdd = self.var_rdd(*var);
                    self.runtime.record_rdd_call(rdd.0);
                    if let Some(tag) = plan.tag_at(id) {
                        self.rdds[rdd.0 as usize].merge_tag(tag);
                    }
                    let value = self.run_action(rdd, action);
                    self.stats.actions += 1;
                    results.push((program.var_name(*var).to_string(), value));
                }
            }
        }
    }

    fn var_rdd(&self, var: VarId) -> RddId {
        self.vars[var.0 as usize].unwrap_or_else(|| panic!("variable v{} unbound", var.0))
    }

    fn build_expr(&mut self, expr: &RddExpr) -> RddId {
        match expr {
            RddExpr::Var(v) => {
                let rdd = self.var_rdd(*v);
                // A transformation invoked on a named RDD object is a
                // monitored method call (Section 4.2.2).
                self.runtime.record_rdd_call(rdd.0);
                rdd
            }
            RddExpr::Source(name) => self.new_node(RddOp::Source(name.clone())),
            RddExpr::Apply { transform, inputs } => {
                let parents: Vec<RddId> = inputs.iter().map(|e| self.build_expr(e)).collect();
                self.new_node(RddOp::Transformed {
                    transform: transform.clone(),
                    parents,
                })
            }
        }
    }

    fn new_node(&mut self, op: RddOp) -> RddId {
        let id = RddId(self.rdds.len() as u32);
        self.rdds.push(RddNode::new(id, op));
        self.stats.rdd_instances += 1;
        id
    }

    fn unpersist(&mut self, rdd: RddId) {
        if let Some(mat) = self.rdds[rdd.0 as usize].materialized.take() {
            self.roots.remove(mat.top);
        }
        self.disk_store.remove(&rdd);
        self.native_store.remove(&rdd);
        self.ser_store.remove(&rdd);
        self.persist_order.retain(|r| *r != rdd);
        self.rdds[rdd.0 as usize].persisted = None;
    }

    // ------------------------------------------------------------------
    // Evaluation lifecycle
    // ------------------------------------------------------------------

    /// Run one top-level evaluation (a persist materialization or an
    /// action): opens a root scope, cleans up transient ShuffledRDDs at
    /// the end, and gives the runtime a stage boundary.
    ///
    /// Emits paired `StageStart`/`StageEnd` events carrying *cumulative*
    /// device write counters, so an aggregator derives per-evaluation
    /// write traffic by differencing. (Wide transformations inside one
    /// evaluation also pass a GC stage boundary but do not emit stage
    /// events: the event granularity is the top-level evaluation.)
    fn evaluation<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let stage = self.stage_seq;
        self.stage_seq += 1;
        self.emit_stage_event(stage, true);
        self.roots.push_scope();
        let out = f(self);
        for rdd in std::mem::take(&mut self.transients) {
            if let Some(mat) = self.rdds[rdd.0 as usize].materialized.take() {
                self.roots.remove(mat.top);
            }
        }
        self.roots.pop_scope();
        self.runtime.stage_boundary(&self.roots);
        self.emit_stage_event(stage, false);
        out
    }

    /// Emit one `StageStart`/`StageEnd` observation (never charges).
    fn emit_stage_event(&self, stage: u32, start: bool) {
        let mem = self.runtime.heap().mem();
        let observer = mem.observer();
        if !observer.enabled() {
            return;
        }
        let dram_write_bytes = mem
            .stats()
            .total_kind_bytes(DeviceKind::Dram, AccessKind::Write);
        let nvm_write_bytes = mem
            .stats()
            .total_kind_bytes(DeviceKind::Nvm, AccessKind::Write);
        let event = if start {
            obs::Event::StageStart {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            }
        } else {
            obs::Event::StageEnd {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            }
        };
        observer.emit(mem.clock().now_ns(), &event);
    }

    /// Materialize a persisted RDD immediately (Section 2: "persisted RDDs
    /// are materialized at the moment the method persist is called").
    fn persist_now(&mut self, rdd: RddId) {
        if self.is_materialized(rdd) {
            return;
        }
        self.propagate_tag_of(rdd);
        let level = self.rdds[rdd.0 as usize].persisted;
        self.evaluation(|e| {
            let records = e.compute(rdd);
            match level {
                Some(StorageLevel::DiskOnly) => {
                    e.charge_disk(&records);
                    e.disk_store.insert(rdd, records);
                }
                Some(StorageLevel::OffHeap) => {
                    e.charge_native(&records, AccessKind::Write);
                    e.native_store.insert(rdd, records);
                }
                Some(l) if l.is_serialized() => {
                    // A wide node may already carry its shuffle's transient
                    // (deserialized) materialization; replace it with the
                    // serialized form.
                    if let Some(mat) = e.rdds[rdd.0 as usize].materialized.take() {
                        e.roots.remove(mat.top);
                        e.transients.retain(|r| *r != rdd);
                    }
                    e.materialize_serialized(rdd, records);
                    e.persist_order.push(rdd);
                }
                // A persisted wide RDD was already materialized
                // persistently by its own shuffle.
                _ if e.is_materialized(rdd) => {
                    e.persist_order.push(rdd);
                }
                _ => {
                    e.materialize_into_heap(rdd, &records, false);
                    e.persist_order.push(rdd);
                }
            }
        });
    }

    /// Spark's block manager under memory pressure: when the old
    /// generation cannot hold a new persisted RDD, evict the oldest
    /// heap-resident persisted RDD — dropping it (MEMORY_ONLY, to be
    /// recomputed on next use) or spilling it to disk (MEMORY_AND_DISK).
    fn ensure_heap_capacity(&mut self, records: &[Payload]) {
        let need: u64 = records
            .iter()
            .map(|r| self.runtime.heap().tuple_footprint(r.model_bytes()))
            .sum::<u64>()
            + 8 * records.len() as u64
            // Headroom for promotions out of the young generation: the
            // paper's JVM throws OutOfMemoryError here, but Spark's block
            // manager evicts cached blocks before that happens.
            + self.runtime.heap().config().young_bytes();
        loop {
            if self.runtime.heap().old_free() >= need {
                return;
            }
            let Some(pos) = self
                .persist_order
                .iter()
                .position(|r| self.rdds[r.0 as usize].materialized.is_some())
            else {
                return; // nothing to evict; allocation fallbacks take over
            };
            let victim = self.persist_order.remove(pos);
            self.evict(victim);
            self.runtime.force_major(&self.roots);
        }
    }

    fn evict(&mut self, rdd: RddId) {
        self.stats.evictions += 1;
        let level = self.rdds[rdd.0 as usize].persisted;
        let spill = matches!(
            level,
            Some(StorageLevel::MemoryAndDisk)
                | Some(StorageLevel::MemoryAndDisk2)
                | Some(StorageLevel::MemoryAndDiskSer)
                | Some(StorageLevel::MemoryAndDiskSer2)
        );
        if spill {
            // Serialized blocks spill their bytes directly — no
            // deserialization; deserialized blocks are read out first.
            let records = if let Some(records) = self.ser_store.remove(&rdd) {
                records
            } else {
                self.read_materialized(rdd)
            };
            self.charge_disk(&records);
            self.disk_store.insert(rdd, records);
        } else {
            self.ser_store.remove(&rdd);
        }
        if let Some(mat) = self.rdds[rdd.0 as usize].materialized.take() {
            self.roots.remove(mat.top);
        }
    }

    fn run_action(&mut self, rdd: RddId, action: &ActionKind) -> ActionResult {
        self.propagate_tag_of(rdd);
        self.evaluation(|e| {
            let records = e.compute(rdd);
            // Actions materialize their not-yet-persisted target
            // (Section 2) — transiently, since nothing keeps it alive.
            if !e.is_materialized(rdd) {
                e.materialize_into_heap(rdd, &records, true);
            }
            match action {
                ActionKind::Count => ActionResult::Count(records.len() as u64),
                ActionKind::Collect => ActionResult::Collected(
                    Rc::try_unwrap(records).unwrap_or_else(|rc| rc.as_ref().clone()),
                ),
                ActionKind::Reduce(f) => {
                    let mut it = records.iter();
                    let first = it.next().cloned();
                    let folded = first.map(|mut acc| {
                        for r in it {
                            acc = e.apply_reduce(*f, &acc, r);
                        }
                        acc
                    });
                    ActionResult::Reduced(folded)
                }
            }
        })
    }

    fn is_materialized(&self, rdd: RddId) -> bool {
        self.rdds[rdd.0 as usize].materialized.is_some()
            || self.disk_store.contains_key(&rdd)
            || self.native_store.contains_key(&rdd)
    }

    /// Panthera's stage-start lineage scan: push this RDD's tag backward
    /// to the unmaterialized shuffle outputs it depends on (DRAM wins).
    fn propagate_tag_of(&mut self, rdd: RddId) {
        if !self.runtime.lineage_propagation() {
            return;
        }
        let Some(tag) = self.rdds[rdd.0 as usize].tag else {
            return;
        };
        let mut queue = vec![rdd];
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = queue.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = &self.rdds[id.0 as usize];
            if id != rdd && (node.materialized.is_some() || node.persisted.is_some()) {
                // A previous stage's RDD: it has its own tag.
                continue;
            }
            queue.extend(node.parents().iter().copied());
            if node.is_wide() {
                self.rdds[id.0 as usize].merge_tag(tag);
            }
        }
    }

    /// Materialize `records` in serialized form: one compact byte buffer
    /// per partition (a `byte[]` in Spark), pretenured like any RDD array.
    /// Reads deserialize on the fly; the heap holds no per-tuple objects.
    fn materialize_serialized(&mut self, rdd: RddId, records: Rc<Vec<Payload>>) {
        debug_assert!(
            self.rdds[rdd.0 as usize].materialized.is_none(),
            "double materialization of {rdd}"
        );
        let tag = self.rdds[rdd.0 as usize].tag;
        // Serialization CPU, once per record.
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.serde_cpu_ns * records.len() as f64);
        self.roots.push_scope();
        let n_parts = self.config.partitions.clamp(1, records.len().max(1));
        let per_part = records.len().div_ceil(n_parts).max(1);
        let mut arrays = Vec::with_capacity(n_parts);
        for chunk in records.chunks(per_part) {
            let bytes: u64 = chunk.iter().map(Payload::model_bytes).sum();
            // The buffer is a primitive byte array: size it in 8-byte slots.
            let slots = (bytes.div_ceil(8) as usize).max(1);
            let array = self.runtime.alloc_rdd_array(&self.roots, rdd.0, slots, tag);
            self.roots.push(array);
            arrays.push(array);
        }
        if arrays.is_empty() {
            let array = self.runtime.alloc_rdd_array(&self.roots, rdd.0, 1, tag);
            self.roots.push(array);
            arrays.push(array);
        }
        let top = self
            .runtime
            .alloc_rdd_top(&self.roots, rdd.0, arrays[0], tag);
        for a in &arrays[1..] {
            self.runtime.heap_mut().push_ref(top, *a);
        }
        self.roots.pop_scope();
        self.roots.push_global(top);
        let len = records.len();
        self.ser_store.insert(rdd, records);
        self.rdds[rdd.0 as usize].materialized = Some(MatData {
            top,
            arrays,
            len,
            serialized: true,
        });
        self.stats.materializations += 1;
    }

    /// Build the Figure 1 object structure for `records`.
    fn materialize_into_heap(&mut self, rdd: RddId, records: &[Payload], transient: bool) {
        debug_assert!(
            self.rdds[rdd.0 as usize].materialized.is_none(),
            "double materialization of {rdd}"
        );
        self.ensure_heap_capacity(records);
        let tag = self.rdds[rdd.0 as usize].tag;
        self.roots.push_scope();
        // One backbone array per partition, allocated back to back (the
        // tasks' tuples come later, so consecutive arrays share boundary
        // cards unless padded).
        let n_parts = self.config.partitions.clamp(1, records.len().max(1));
        let per_part = records.len().div_ceil(n_parts).max(1);
        let mut arrays = Vec::with_capacity(n_parts);
        for chunk_len in partition_sizes(records.len(), n_parts) {
            let array = self
                .runtime
                .alloc_rdd_array(&self.roots, rdd.0, chunk_len, tag);
            self.roots.push(array);
            arrays.push(array);
        }
        let top = self
            .runtime
            .alloc_rdd_top(&self.roots, rdd.0, arrays[0], tag);
        for a in &arrays[1..] {
            self.runtime.heap_mut().push_ref(top, *a);
        }
        self.roots.push(top);
        for (i, r) in records.iter().enumerate() {
            let tuple = self
                .runtime
                .alloc_record(&self.roots, ObjKind::Tuple, r.clone());
            self.runtime
                .heap_mut()
                .push_ref(arrays[i / per_part], tuple);
        }
        self.roots.pop_scope();
        if transient {
            // Rooted for the current evaluation only.
            self.roots.push(top);
            self.transients.push(rdd);
        } else {
            // Long-lived: registered like Spark's block manager would.
            self.roots.push_global(top);
        }
        self.rdds[rdd.0 as usize].materialized = Some(MatData {
            top,
            arrays,
            len: records.len(),
            serialized: false,
        });
        self.stats.materializations += 1;
    }

    // ------------------------------------------------------------------
    // Record computation
    // ------------------------------------------------------------------

    /// Produce the records of `rdd`, charging all memory traffic. The
    /// result is shared: callers that only read (materialization, charge
    /// accounting, bucket filling) never copy the vector.
    fn compute(&mut self, rdd: RddId) -> Rc<Vec<Payload>> {
        if self.rdds[rdd.0 as usize].materialized.is_some() {
            return self.read_materialized(rdd);
        }
        if let Some(records) = self.disk_store.get(&rdd) {
            let records = Rc::clone(records);
            self.emulate_legacy_copies(&records);
            self.charge_disk(&records);
            return records;
        }
        if let Some(records) = self.native_store.get(&rdd) {
            let records = Rc::clone(records);
            self.emulate_legacy_copies(&records);
            self.charge_native(&records, AccessKind::Read);
            return records;
        }
        let op = self.rdds[rdd.0 as usize].op.clone();
        match op {
            RddOp::Source(name) => self.compute_source(&name),
            RddOp::Transformed { transform, parents } => {
                if transform.is_wide() {
                    self.compute_shuffle(rdd, &transform, &parents)
                } else if let Transform::Union = transform {
                    let mut out: Vec<Payload> = self.compute(parents[0]).as_ref().clone();
                    out.extend(self.compute(parents[1]).iter().cloned());
                    self.emulate_legacy_copies(&out);
                    Rc::new(out)
                } else if self.config.fuse_narrow {
                    self.compute_fused(rdd)
                } else {
                    let input = self.compute(parents[0]);
                    self.stream(&input, &transform)
                }
            }
        }
    }

    /// Host-cost emulation hook: one record crossing an engine boundary.
    /// Normally an `Rc` refcount bump; a structural copy when
    /// [`EngineConfig::legacy_copies`] benchmarks the pre-rework engine.
    fn copy_record(&self, r: &Payload) -> Payload {
        if self.config.legacy_copies {
            r.deep_clone()
        } else {
            r.clone()
        }
    }

    /// With [`EngineConfig::legacy_copies`] set, burn the pre-rework
    /// engine's per-record structural copy of `records` (copies are
    /// dropped; only host CPU is spent). No-op otherwise.
    fn emulate_legacy_copies(&self, records: &[Payload]) {
        if self.config.legacy_copies {
            for r in records {
                std::hint::black_box(r.deep_clone());
            }
        }
    }

    fn compute_source(&mut self, name: &str) -> Rc<Vec<Payload>> {
        let records = self.data.records_shared(name);
        self.charge_disk(&records);
        // Parsing allocates one short-lived young object per record.
        for i in 0..records.len() {
            let r = self.copy_record(&records[i]);
            self.stream_alloc(r);
        }
        records
    }

    /// Fused execution of the maximal narrow chain ending at `rdd`: every
    /// record flows through the whole chain depth-first, so intermediate
    /// stages never materialize a `Vec<Payload>` — only the chain's final
    /// output is collected. Simulated costs are *not* charged during the
    /// host-side pass; each stage logs its charge events (one CPU tick per
    /// input record, one young allocation per output record, in record
    /// order) and the logs are replayed stage-by-stage afterwards. The
    /// replayed sequence is exactly what the unfused engine would have
    /// issued, so simulated time, energy, and GC scheduling are
    /// bit-identical to stage-at-a-time execution.
    fn compute_fused(&mut self, rdd: RddId) -> Rc<Vec<Payload>> {
        let (base, stages) = self.narrow_chain(rdd);
        let input = self.compute(base);
        debug_assert!(!stages.is_empty(), "narrow node must contribute a stage");
        let mut logs: Vec<StageLog> = stages.iter().map(|_| StageLog::default()).collect();
        logs[0].outputs_per_input.reserve(input.len());
        logs[0].alloc_bytes.reserve(input.len());
        let mut out = Vec::with_capacity(input.len());
        for r in input.iter() {
            drive_chain(&self.fns, &stages, r, &mut logs, &mut out);
        }
        for log in &logs {
            let mut next = 0usize;
            for &n_out in &log.outputs_per_input {
                self.runtime
                    .heap_mut()
                    .mem_mut()
                    .compute(self.config.record_cpu_ns);
                for &bytes in &log.alloc_bytes[next..next + n_out as usize] {
                    self.stream_alloc(size_stand_in(bytes));
                }
                next += n_out as usize;
            }
        }
        Rc::new(out)
    }

    /// The maximal chain of fusable narrow transformations ending at
    /// `rdd`, bottom-up, plus the base RDD feeding it. Fusion stops at
    /// wide nodes, unions, sources, and anything already materialized or
    /// stored — those produce their records through their own paths.
    fn narrow_chain(&self, rdd: RddId) -> (RddId, Vec<Transform>) {
        let mut stages = Vec::new();
        let mut cur = rdd;
        loop {
            let node = &self.rdds[cur.0 as usize];
            if cur != rdd
                && (node.materialized.is_some()
                    || self.disk_store.contains_key(&cur)
                    || self.native_store.contains_key(&cur))
            {
                break;
            }
            match &node.op {
                RddOp::Transformed { transform, parents }
                    if !transform.is_wide() && !matches!(transform, Transform::Union) =>
                {
                    stages.push(transform.clone());
                    cur = parents[0];
                }
                _ => break,
            }
        }
        stages.reverse();
        (cur, stages)
    }

    /// Legacy stage-at-a-time streaming: apply one narrow transformation
    /// to every input record, allocating a short-lived young object per
    /// output record (the streaming behaviour of Section 2).
    fn stream(&mut self, input: &[Payload], transform: &Transform) -> Rc<Vec<Payload>> {
        let legacy = self.config.legacy_copies;
        let mut out = Vec::with_capacity(input.len());
        for r in input {
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.record_cpu_ns);
            let (runtime, stats) = (&mut self.runtime, &mut self.stats);
            let roots = &self.roots;
            apply_narrow(&self.fns, transform, r, &mut |p: Payload| {
                stats.records_streamed += 1;
                let stored = if legacy { p.deep_clone() } else { p.clone() };
                runtime.alloc_record(roots, ObjKind::Tuple, stored);
                out.push(p);
            });
        }
        Rc::new(out)
    }

    /// Allocate (and immediately abandon) the young object modelling one
    /// streamed record.
    fn stream_alloc(&mut self, record: Payload) {
        self.stats.records_streamed += 1;
        self.runtime
            .alloc_record(&self.roots, ObjKind::Tuple, record);
    }

    fn compute_shuffle(
        &mut self,
        rdd: RddId,
        transform: &Transform,
        parents: &[RddId],
    ) -> Rc<Vec<Payload>> {
        self.stats.shuffles += 1;
        // Joins build and probe per-key hash structures: their input
        // accesses are random, unlike the streaming scans of aggregations.
        // The flag covers only this shuffle's direct input chains — a
        // nested shuffle's own inputs are scanned sequentially again.
        let saved_depth = std::mem::take(&mut self.random_read_depth);
        let is_join = matches!(transform, Transform::Join);
        if is_join {
            self.random_read_depth = 1;
        }
        // Map side: bucket parent records and write shuffle files.
        let left_records = self.compute(parents[0]);
        self.charge_shuffle(&left_records);
        let mut left = Buckets::new();
        for r in left_records.iter() {
            left.add(self.copy_record(r));
        }
        let right = if parents.len() > 1 {
            let right_records = self.compute(parents[1]);
            self.charge_shuffle(&right_records);
            let mut b = Buckets::new();
            for r in right_records.iter() {
                b.add(self.copy_record(r));
            }
            Some(b)
        } else {
            None
        };
        self.random_read_depth = saved_depth;
        // The consuming stage starts by reading the shuffle files.
        self.runtime.stage_boundary(&self.roots);
        let out = reduce_side(transform, &self.fns, &left, right.as_ref());
        for _ in &out {
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.record_cpu_ns);
        }
        self.charge_shuffle(&out);
        // The ShuffledRDD is materialized immediately — it holds data read
        // freshly from shuffle files (Section 2). It dies with the current
        // evaluation unless this node is itself a heap-persisted RDD, in
        // which case the shuffle output *is* the persisted materialization.
        let persist_heap = matches!(self.rdds[rdd.0 as usize].persisted, Some(l) if l.uses_heap());
        self.materialize_into_heap(rdd, &out, !persist_heap);
        Rc::new(out)
    }

    fn read_materialized(&mut self, rdd: RddId) -> Rc<Vec<Payload>> {
        let mat = self.rdds[rdd.0 as usize]
            .materialized
            .clone()
            .expect("read_materialized on unmaterialized RDD");
        if mat.serialized {
            // Scan the byte buffers, then deserialize record by record —
            // each deserialized record is a fresh young object.
            for array in &mat.arrays {
                self.runtime.heap_mut().read_object_streaming(*array);
            }
            let records = self.ser_store.get(&rdd).map(Rc::clone).unwrap_or_default();
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.serde_cpu_ns * records.len() as f64);
            for i in 0..records.len() {
                let r = self.copy_record(&records[i]);
                self.stream_alloc(r);
            }
            return records;
        }
        let random = self.random_read_depth > 0;
        let mut out = Vec::with_capacity(mat.len);
        for array in mat.arrays {
            debug_assert!(
                matches!(
                    self.runtime.heap().obj(array).kind,
                    mheap::ObjKind::RddArray { rdd_id } if rdd_id == rdd.0
                ),
                "stale MatData: {rdd} holds someone else's array"
            );
            self.runtime.heap_mut().read_object_streaming(array);
            let tuples = self.runtime.heap().obj(array).refs.clone();
            for t in tuples {
                if random {
                    self.runtime.heap_mut().read_object(t);
                } else {
                    self.runtime.heap_mut().read_object_streaming(t);
                }
                // Shallow: the payload's contents stay shared with the
                // heap object.
                let p = self.runtime.heap().obj(t).payload.clone();
                out.push(if self.config.legacy_copies {
                    p.deep_clone()
                } else {
                    p
                });
            }
        }
        Rc::new(out)
    }

    // ------------------------------------------------------------------
    // Cost charging and closure lookup
    // ------------------------------------------------------------------

    fn charge_disk(&mut self, records: &[Payload]) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(bytes as f64 * self.config.disk_ns_per_byte);
    }

    fn charge_shuffle(&mut self, records: &[Payload]) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        self.stats.shuffle_bytes += bytes;
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(mem.clock().now_ns(), &obs::Event::ShuffleSpill { bytes });
            }
        }
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(bytes as f64 * self.config.disk_ns_per_byte);
    }

    fn charge_native(&mut self, records: &[Payload], kind: AccessKind) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        self.runtime.heap_mut().mem_mut().access_device(
            DeviceKind::Nvm,
            kind,
            bytes,
            AccessProfile::mutator(),
        );
    }

    fn apply_reduce(&mut self, f: FuncId, a: &Payload, b: &Payload) -> Payload {
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.record_cpu_ns);
        match self.fns.get(f) {
            UserFn::Reduce(f) => f(a, b),
            other => panic!("expected a reduce function, got {other:?}"),
        }
    }
}

/// The deferred simulated-cost log of one fused narrow stage, compact
/// enough to build on the hot path: entry `i` of `outputs_per_input` is
/// how many records input `i` produced, and `alloc_bytes` holds every
/// output's `model_bytes` in production order. Replaying charges, per
/// input: one CPU tick, then one young allocation per output — the exact
/// sequence the stage-at-a-time engine issues.
#[derive(Debug, Default)]
struct StageLog {
    outputs_per_input: Vec<u32>,
    alloc_bytes: Vec<u64>,
}

/// A payload with exactly the given modelled size, standing in for a
/// streamed temporary whose young object is never read back — only its
/// size matters to the allocator, the GC, and the access model.
fn size_stand_in(model_bytes: u64) -> Payload {
    match model_bytes {
        0 => Payload::Unit,
        8 => Payload::Long(0),
        m => {
            debug_assert!(m >= 16, "composite payloads model at least 16 bytes");
            Payload::Bytes { len: m - 16 }
        }
    }
}

/// Push one record depth-first through the chain's remaining stages,
/// logging each stage's charge events in the order the stage-at-a-time
/// engine would issue them and collecting the chain's final outputs into
/// `out`. `stages` and `logs` both start at the current stage (the caller
/// passes the full chain; recursion passes the tail).
fn drive_chain(
    fns: &FnTable,
    stages: &[Transform],
    r: &Payload,
    logs: &mut [StageLog],
    out: &mut Vec<Payload>,
) {
    let (transform, deeper_stages) = stages.split_first().expect("non-empty chain");
    // Split the log slice so the closure can log this stage while the
    // recursion logs the deeper ones.
    let (log_k, deeper_logs) = logs.split_first_mut().expect("one log per stage");
    let mut n_out: u32 = 0;
    let mut sink = |p: Payload| {
        n_out += 1;
        log_k.alloc_bytes.push(p.model_bytes());
        if deeper_stages.is_empty() {
            out.push(p);
        } else {
            drive_chain(fns, deeper_stages, &p, deeper_logs, out);
        }
    };
    apply_narrow(fns, transform, r, &mut sink);
    log_k.outputs_per_input.push(n_out);
}

/// Record-level semantics of the narrow transformations: feed every output
/// record for input `r` to `sink`, in order. Sink style keeps the hot path
/// free of a per-record `Vec` allocation (map/filter produce at most one
/// output).
fn apply_narrow(fns: &FnTable, transform: &Transform, r: &Payload, sink: &mut dyn FnMut(Payload)) {
    match transform {
        Transform::Map(f) => match fns.get(*f) {
            UserFn::Map(f) => sink(f(r)),
            other => panic!("map expects a map function, got {other:?}"),
        },
        Transform::MapValues(f) => match fns.get(*f) {
            UserFn::Map(f) => match r.as_pair() {
                Some((k, v)) => sink(Payload::pair(k.clone(), f(v))),
                None => sink(f(r)),
            },
            other => panic!("mapValues expects a map function, got {other:?}"),
        },
        Transform::FlatMap(f) => match fns.get(*f) {
            UserFn::FlatMap(f) => {
                for p in f(r) {
                    sink(p);
                }
            }
            UserFn::Map(f) => sink(f(r)),
            other => panic!("flatMap expects a flatMap function, got {other:?}"),
        },
        Transform::Filter(f) => match fns.get(*f) {
            UserFn::Filter(f) => {
                if f(r) {
                    sink(r.clone());
                }
            }
            other => panic!("filter expects a filter function, got {other:?}"),
        },
        Transform::Values => match r.as_pair() {
            Some((_, v)) => sink(v.clone()),
            None => sink(r.clone()),
        },
        Transform::Keys => match r.as_pair() {
            Some((k, _)) => sink(k.clone()),
            None => sink(r.clone()),
        },
        Transform::Sample { fraction, seed } => {
            // Deterministic Bernoulli: hash the record with the seed.
            let h = r.fingerprint() ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < *fraction {
                sink(r.clone());
            }
        }
        wide => panic!("{} is not narrow", wide.name()),
    }
}

/// Split `n` records into `parts` chunk lengths (the last may be short).
fn partition_sizes(n: usize, parts: usize) -> Vec<usize> {
    if n == 0 {
        return vec![0];
    }
    let per = n.div_ceil(parts).max(1);
    let mut out = Vec::new();
    let mut left = n;
    while left > 0 {
        let take = left.min(per);
        out.push(take);
        left -= take;
    }
    out
}

/// Statements in a block, counted the way the pre-order numbering does.
fn count_stmts(stmts: &[Stmt]) -> u32 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Loop { body, .. } => 1 + count_stmts(body),
            _ => 1,
        })
        .sum()
}
