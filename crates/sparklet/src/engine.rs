//! The execution engine: interprets driver programs over the simulated
//! heap, reproducing Spark's evaluation strategy as the paper describes it
//! (Section 2):
//!
//! * transformations are lazy — a `Bind` only creates runtime RDD nodes;
//! * `persist` materializes the RDD immediately, at the storage level (and
//!   DRAM/NVM sub-level) the analysis inferred;
//! * actions force evaluation and materialize their (non-persisted) target
//!   for the duration of the evaluation;
//! * wide transformations cut stages: map-side records are shuffled
//!   through simulated disk files, and the reduce side's output is
//!   materialized immediately as a `ShuffledRDD` that dies when the
//!   consuming evaluation completes;
//! * unmaterialized intermediate records stream through the young
//!   generation one at a time and die there — exactly the epochal
//!   behaviour Panthera's heap design exploits.

use crate::cluster::{
    ActionContrib, BeginOutcome, ClusterCtx, ClusterError, JournalOp, PartMeta, ShuffleContrib,
};
use crate::costs::{CostModel, ShuffleTransport};
use crate::data::DataRegistry;
use crate::rdd::{MatData, RddId, RddNode, RddOp};
use crate::runtime::MemoryRuntime;
use crate::shuffle::{reduce_side, Buckets};
use hybridmem::{AccessKind, AccessProfile, DeviceKind};
use mheap::{Key, ObjKind, OffHeapRegion, Payload, RegionHeap, RootSet, WirePayload};
use panthera_analysis::{collect_lifetimes, InstrumentationPlan, LifetimePlan};
use sparklang::ast::{ActionKind, Program, RddExpr, Stmt, StmtId, StorageLevel, Transform, VarId};
use sparklang::{FnTable, FuncId, UserFn};
use std::collections::HashMap;
use std::rc::Rc;

/// Cost knobs of the engine's non-heap activities.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Data-movement charges (disk, network, serde, shared memory) — the
    /// single source of truth the engine and the cluster exchange share.
    pub costs: CostModel,
    /// CPU cost of one user-closure application.
    pub record_cpu_ns: f64,
    /// CPU cost of interpreting one driver statement.
    pub driver_cpu_ns: f64,
    /// Partitions per materialized RDD: each partition gets its own
    /// backbone array, and the arrays are allocated back to back — the
    /// reason shared cards "exist pervasively" (Section 4.2.3).
    pub partitions: usize,
    /// Fuse maximal chains of narrow transformations into one host-side
    /// streaming pass (records flow record-at-a-time through the whole
    /// chain; no intermediate stage ever materializes a `Vec<Payload>`).
    /// Simulated costs are charged from per-stage event logs in exactly
    /// the stage-at-a-time order the unfused engine uses, so simulated
    /// time/energy/GC behaviour is bit-identical either way. `false`
    /// selects the legacy stage-at-a-time execution (kept for A/B
    /// benchmarking and the fused-vs-unfused equivalence tests).
    pub fuse_narrow: bool,
    /// Benchmark-only emulation of the pre-rework engine's host cost:
    /// every record handoff performs a structural [`Payload::deep_clone`]
    /// where the engine now bumps an `Rc` refcount. Pair with
    /// `fuse_narrow: false` to reproduce the seed engine's copy-per-stage
    /// behaviour for before/after trajectory benchmarks. Simulated
    /// time/energy is unaffected — only host CPU burns.
    pub legacy_copies: bool,
    /// How shuffle data crosses executors. Only consulted in cluster
    /// mode; a single-executor cluster never crosses executors, so the
    /// legacy single-runtime path is unaffected by this knob.
    pub transport: ShuffleTransport,
    /// Store heap-level persisted RDDs in the off-heap H2 region instead
    /// of materializing them into the traced heap: the GC neither traces
    /// nor card-marks them, they are never serialized, and they are
    /// released on the lifetime schedule the analysis crate computes.
    pub offheap_cache: bool,
    /// Lifetime-based region allocation (Deca-style): streamed
    /// temporaries bump a stage-scratch arena reset wholesale at stage
    /// end instead of allocating young heap objects, and heap-level
    /// persists go to refcounted RDD-lifetime bump arenas freed wholesale
    /// on the analysis crate's lifetime schedule. Region-resident data is
    /// never traced, card-marked, or promoted; action results are
    /// bit-identical to a region-off run. When both this and
    /// [`EngineConfig::offheap_cache`] are set, persists take the H2
    /// region and only the scratch arenas are active.
    pub region_alloc: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            costs: CostModel::default(),
            record_cpu_ns: 80.0,
            driver_cpu_ns: 1_000.0,
            partitions: 8,
            fuse_narrow: true,
            legacy_copies: false,
            transport: ShuffleTransport::Serde,
            offheap_cache: false,
            region_alloc: false,
        }
    }
}

/// The value an action produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionResult {
    /// `count()`.
    Count(u64),
    /// `collect()`.
    Collected(Vec<Payload>),
    /// `reduce(f)`; `None` for an empty RDD.
    Reduced(Option<Payload>),
}

impl ActionResult {
    /// The count, if this is a `Count` result.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            ActionResult::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The collected records, if this is a `Collected` result.
    pub fn as_collected(&self) -> Option<&[Payload]> {
        match self {
            ActionResult::Collected(v) => Some(v),
            _ => None,
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Records that flowed through narrow transformations.
    pub records_streamed: u64,
    /// Shuffles executed.
    pub shuffles: u64,
    /// Bytes written to + read from shuffle files.
    pub shuffle_bytes: u64,
    /// RDD materializations into the heap.
    pub materializations: u64,
    /// Actions executed.
    pub actions: u64,
    /// Runtime RDD instances created.
    pub rdd_instances: u64,
    /// Persisted RDDs evicted from the heap under memory pressure
    /// (dropped for MEMORY_ONLY levels, spilled to disk for
    /// MEMORY_AND_DISK levels — Spark's block-manager behaviour).
    pub evictions: u64,
    /// Shuffle bytes that crossed executors over the shared-region fast
    /// path instead of serde + network (these are the serde bytes
    /// avoided).
    pub fastpath_bytes: u64,
    /// Off-heap region blocks allocated.
    pub offheap_allocs: u64,
    /// Off-heap region blocks freed (refcount-zero releases, unpersists,
    /// and end-of-run sweeps together).
    pub offheap_frees: u64,
    /// Bytes allocated into the off-heap region.
    pub offheap_bytes: u64,
    /// Off-heap blocks still live at end of run and reclaimed by the
    /// sweep — a non-zero value means the lifetime schedule leaked.
    pub offheap_leaks: u64,
    /// Reads of off-heap record data whose region block was already
    /// freed — a non-zero value means the lifetime schedule freed early.
    pub offheap_dead_reads: u64,
    /// Stage-scratch region arenas opened (one per evaluation under
    /// [`EngineConfig::region_alloc`]).
    pub region_stage_arenas: u64,
    /// Bytes bumped into stage-scratch arenas (streamed temporaries and
    /// transient materializations that would otherwise hit the young
    /// generation).
    pub region_stage_bytes: u64,
    /// RDD-lifetime region arenas allocated.
    pub region_allocs: u64,
    /// RDD-lifetime region arenas freed wholesale (refcount-zero
    /// releases, unpersists, and end-of-run sweeps together).
    pub region_frees: u64,
    /// Bytes allocated into RDD-lifetime region arenas.
    pub region_bytes: u64,
    /// Region arenas still live at end of run and reclaimed by the sweep
    /// — a non-zero value means the lifetime schedule leaked.
    pub region_leaks: u64,
    /// Reads of region record data whose arena was already freed — a
    /// non-zero value means the lifetime schedule freed early.
    pub region_dead_reads: u64,
}

impl ExecStats {
    /// Serialize every counter as a JSON object with stable key order.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("records_streamed", Json::UInt(self.records_streamed)),
            ("shuffles", Json::UInt(self.shuffles)),
            ("shuffle_bytes", Json::UInt(self.shuffle_bytes)),
            ("materializations", Json::UInt(self.materializations)),
            ("actions", Json::UInt(self.actions)),
            ("rdd_instances", Json::UInt(self.rdd_instances)),
            ("evictions", Json::UInt(self.evictions)),
            ("fastpath_bytes", Json::UInt(self.fastpath_bytes)),
            ("offheap_allocs", Json::UInt(self.offheap_allocs)),
            ("offheap_frees", Json::UInt(self.offheap_frees)),
            ("offheap_bytes", Json::UInt(self.offheap_bytes)),
            ("offheap_leaks", Json::UInt(self.offheap_leaks)),
            ("offheap_dead_reads", Json::UInt(self.offheap_dead_reads)),
            ("region_stage_arenas", Json::UInt(self.region_stage_arenas)),
            ("region_stage_bytes", Json::UInt(self.region_stage_bytes)),
            ("region_allocs", Json::UInt(self.region_allocs)),
            ("region_frees", Json::UInt(self.region_frees)),
            ("region_bytes", Json::UInt(self.region_bytes)),
            ("region_leaks", Json::UInt(self.region_leaks)),
            ("region_dead_reads", Json::UInt(self.region_dead_reads)),
        ])
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// `(variable name, result)` per executed action, in order.
    pub results: Vec<(String, ActionResult)>,
    /// Execution counters.
    pub stats: ExecStats,
}

/// The engine. Owns the runtime, the function table, the input data, and
/// the runtime RDD graph.
#[derive(Debug)]
pub struct Engine<R: MemoryRuntime> {
    runtime: R,
    fns: FnTable,
    data: DataRegistry,
    config: EngineConfig,
    rdds: Vec<RddNode>,
    vars: Vec<Option<RddId>>,
    roots: RootSet,
    stats: ExecStats,
    /// Driver-side storage for DISK_ONLY persists. Stored behind `Rc` so
    /// re-reads hand out the same vector instead of copying it.
    disk_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// Native (off-heap) storage — placed entirely in NVM (Section 4.1).
    native_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// ShuffledRDDs (and action targets) materialized for the current
    /// evaluation only; reclaimed when it completes.
    transients: Vec<RddId>,
    /// Heap-persisted RDDs in persist order (LRU eviction order).
    persist_order: Vec<RddId>,
    /// Record contents of RDDs materialized in *serialized* form — their
    /// heap footprint is modelled by compact byte-buffer objects, so the
    /// payloads live driver-side.
    ser_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// Record contents of RDDs persisted into the off-heap H2 region
    /// ([`EngineConfig::offheap_cache`]). Entries live until `unpersist`;
    /// the region's simulated bytes are released earlier, on the lifetime
    /// schedule.
    offheap_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// Simulated-byte accounting for the off-heap region.
    offheap_region: OffHeapRegion,
    /// Record contents of RDDs held in lifetime-region arenas
    /// ([`EngineConfig::region_alloc`]): persisted RDD-lifetime arenas
    /// (entries live until `unpersist`; arena bytes are released earlier,
    /// on the lifetime schedule) and stage-transients (entries dropped at
    /// stage end, with the scratch arena).
    region_store: HashMap<RddId, Rc<Vec<Payload>>>,
    /// RDDs whose records live in the current stage's scratch arena;
    /// their `region_store` entries die when the evaluation completes.
    region_transients: Vec<RddId>,
    /// Simulated-byte accounting for the region arenas.
    region_heap: RegionHeap,
    /// The static release schedule driving off-heap refcounts; `Some`
    /// only when `offheap_cache` is on.
    lifetime: Option<LifetimePlan>,
    /// Dynamic statement counter, in the lifetime plan's step numbering.
    lifetime_step: usize,
    /// The statement step currently executing (what `persist_offheap`
    /// looks its planned block up under).
    lifetime_cur: usize,
    /// Which RDD each plan block id materialized as, in block order.
    plan_blocks: Vec<RddId>,
    /// Non-zero while computing the inputs of a join: hash-probe access is
    /// random (latency-bound), not streaming.
    random_read_depth: u32,
    /// Sequence number for `StageStart`/`StageEnd` events.
    stage_seq: u32,
    /// Cluster membership; `None` runs the legacy single-runtime path.
    cluster: Option<ClusterCtx>,
    /// Cluster mode: where each computed RDD's local records sit in the
    /// global partition space. Entries persist across evictions (a
    /// recompute re-derives the identical layout).
    part_meta: HashMap<RddId, PartMeta>,
    /// Cluster mode: monotone statement-barrier counter.
    barrier_seq: u64,
    /// Cluster mode: monotone action-gather counter.
    action_seq: u64,
}

impl<R: MemoryRuntime> Engine<R> {
    /// Build an engine over a runtime, closures, and input data.
    pub fn new(runtime: R, fns: FnTable, data: DataRegistry) -> Self {
        Self::with_config(runtime, fns, data, EngineConfig::default())
    }

    /// Build an engine with explicit cost knobs.
    pub fn with_config(runtime: R, fns: FnTable, data: DataRegistry, config: EngineConfig) -> Self {
        Engine {
            runtime,
            fns,
            data,
            config,
            rdds: Vec::new(),
            vars: Vec::new(),
            roots: RootSet::new(),
            stats: ExecStats::default(),
            disk_store: HashMap::new(),
            native_store: HashMap::new(),
            transients: Vec::new(),
            persist_order: Vec::new(),
            ser_store: HashMap::new(),
            offheap_store: HashMap::new(),
            offheap_region: OffHeapRegion::new(),
            region_store: HashMap::new(),
            region_transients: Vec::new(),
            region_heap: RegionHeap::new(),
            lifetime: None,
            lifetime_step: 0,
            lifetime_cur: 0,
            plan_blocks: Vec::new(),
            random_read_depth: 0,
            stage_seq: 0,
            cluster: None,
            part_meta: HashMap::new(),
            barrier_seq: 0,
            action_seq: 0,
        }
    }

    /// Build an executor-resident engine: it keeps only the source
    /// partitions assigned to `ctx.exec` and rendezvouses with its peers
    /// through `ctx.exchange` at shuffles, actions, and statement
    /// barriers. With `ctx.n_exec == 1` the run is bit-identical to the
    /// legacy single-runtime path.
    pub fn with_cluster(
        runtime: R,
        fns: FnTable,
        data: DataRegistry,
        config: EngineConfig,
        ctx: ClusterCtx,
    ) -> Self {
        let mut e = Self::with_config(runtime, fns, data, config);
        e.cluster = Some(ctx);
        e
    }

    /// The runtime (heap, GC, energy reports).
    pub fn runtime(&self) -> &R {
        &self.runtime
    }

    /// Mutable runtime access.
    pub fn runtime_mut(&mut self) -> &mut R {
        &mut self.runtime
    }

    /// The runtime RDD graph built so far.
    pub fn rdds(&self) -> &[RddNode] {
        &self.rdds
    }

    /// Execution counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Force a full collection with the engine's current root set.
    ///
    /// External drivers call this at a stage barrier after changing
    /// placement inputs (e.g. an online policy pinned new per-RDD tag
    /// overrides) so the dynamic re-assessment applies them immediately
    /// instead of waiting for an organic major collection.
    pub fn force_major(&mut self) {
        self.runtime.force_major(&self.roots);
    }

    /// Run a program under an instrumentation plan (use
    /// `InstrumentationPlan::default()` for un-instrumented baselines).
    /// # Panics
    ///
    /// Panics if the program is ill-formed (see [`sparklang::validate`]) —
    /// programs built with the [`sparklang::ProgramBuilder`] always pass.
    pub fn run(&mut self, program: &Program, plan: &InstrumentationPlan) -> RunOutcome {
        self.begin_run(program);
        let mut results = Vec::new();
        let mut next = 0u32;
        self.exec_block(program, &program.stmts, plan, &mut next, &mut results);
        self.finish_run();
        RunOutcome {
            results,
            stats: self.stats,
        }
    }

    /// Start-of-run setup shared by [`Engine::run`] and the resumable
    /// [`crate::StageCursor`]: validate the program, size the variable
    /// table, and (re)derive the lifetime schedule.
    pub(crate) fn begin_run(&mut self, program: &Program) {
        if let Err(e) = sparklang::validate(program) {
            panic!("ill-formed program {:?}: {e}", program.name);
        }
        self.vars = vec![None; program.n_vars()];
        if self.config.offheap_cache || self.config.region_alloc {
            self.lifetime = Some(collect_lifetimes(program));
            self.lifetime_step = 0;
            self.plan_blocks.clear();
        }
    }

    /// End-of-run sweeps shared by [`Engine::run`] and
    /// [`crate::StageCursor::finish`].
    pub(crate) fn finish_run(&mut self) {
        self.offheap_sweep();
        self.region_sweep();
    }

    /// End-of-run off-heap sweep: the lifetime schedule must have freed
    /// every block by now, so anything still resident is a leak — reclaim
    /// it and count it (tests pin the counter to zero).
    fn offheap_sweep(&mut self) {
        for rdd in self.offheap_region.live_rdds() {
            let freed = self.offheap_region.free(rdd);
            self.stats.offheap_leaks += 1;
            self.note_offheap_free(rdd, freed.bytes);
        }
    }

    /// End-of-run region sweep, the region arenas' counterpart of
    /// [`Engine::offheap_sweep`]: live arenas at this point are schedule
    /// leaks (tests pin the counter to zero).
    fn region_sweep(&mut self) {
        debug_assert!(
            !self.region_heap.stage_open(),
            "stage scratch arena left open past the last evaluation"
        );
        for rdd in self.region_heap.live_rdds() {
            let freed = self.region_heap.free(rdd);
            self.stats.region_leaks += 1;
            self.note_region_free(rdd, freed.bytes);
        }
    }

    // ------------------------------------------------------------------
    // Interpreter
    // ------------------------------------------------------------------

    fn exec_block(
        &mut self,
        program: &Program,
        stmts: &[Stmt],
        plan: &InstrumentationPlan,
        next: &mut u32,
        results: &mut Vec<(String, ActionResult)>,
    ) {
        for s in stmts {
            let id = StmtId(*next);
            *next += 1;
            let step = self.stmt_prologue();
            match s {
                Stmt::Loop { n, body } => {
                    let body_count = count_stmts(body);
                    for _ in 0..*n {
                        let mut inner = *next;
                        self.exec_block(program, body, plan, &mut inner, results);
                    }
                    *next += body_count;
                }
                other => self.exec_simple(program, other, id, plan, results),
            }
            self.stmt_epilogue(step);
        }
    }

    /// Per-statement entry bookkeeping: claim the next lifetime step and
    /// charge the driver-interpretation CPU cost. Returns the claimed
    /// step, which the matching [`Engine::stmt_epilogue`] consumes.
    pub(crate) fn stmt_prologue(&mut self) -> usize {
        let step = self.lifetime_step;
        self.lifetime_step += 1;
        self.lifetime_cur = step;
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.driver_cpu_ns);
        step
    }

    /// Execute one non-loop statement (loops are driven by
    /// [`Engine::exec_block`] or the [`crate::StageCursor`]'s flattened
    /// schedule, which call this for each body statement).
    pub(crate) fn exec_simple(
        &mut self,
        program: &Program,
        s: &Stmt,
        id: StmtId,
        plan: &InstrumentationPlan,
        results: &mut Vec<(String, ActionResult)>,
    ) {
        match s {
            Stmt::Loop { .. } => unreachable!("loops are unrolled by the caller"),
            Stmt::Bind { var, expr } => {
                let rdd = self.build_expr(expr);
                self.rdds[rdd.0 as usize].label = Some(program.var_name(*var).to_string());
                self.vars[var.0 as usize] = Some(rdd);
            }
            Stmt::Persist { var, level } => {
                let rdd = self.var_rdd(*var);
                // The instrumented rdd_alloc call passes the inferred
                // tag down right before the materialization point.
                if let Some(tag) = plan.tag_at(id) {
                    self.rdds[rdd.0 as usize].merge_tag(tag);
                }
                self.rdds[rdd.0 as usize].persisted = Some(*level);
                self.persist_now(rdd);
            }
            Stmt::Unpersist { var } => {
                let rdd = self.var_rdd(*var);
                self.unpersist(rdd);
            }
            Stmt::Checkpoint { var } => {
                let rdd = self.var_rdd(*var);
                self.rdds[rdd.0 as usize].checkpointed = true;
            }
            Stmt::Action { var, action } => {
                let rdd = self.var_rdd(*var);
                self.runtime.record_rdd_call(rdd.0);
                if let Some(tag) = plan.tag_at(id) {
                    self.rdds[rdd.0 as usize].merge_tag(tag);
                }
                let value = self.run_action(rdd, action);
                self.stats.actions += 1;
                results.push((program.var_name(*var).to_string(), value));
            }
        }
    }

    /// Per-statement exit bookkeeping, the other half of
    /// [`Engine::stmt_prologue`].
    pub(crate) fn stmt_epilogue(&mut self, step: usize) {
        // Off-heap bookkeeping scheduled for this statement: releases
        // for the persisted blocks its evaluation consumed, frees for
        // blocks born lineage-dead.
        self.apply_lifetime_ops(step);
        // Cluster mode: stage barrier after every statement. Loop trip
        // counts are static, so every executor reaches the same
        // barriers in the same order; the barrier clock is the max
        // arrival time — straggler skew stalls the whole cluster.
        self.cluster_barrier();
    }

    /// Statement barrier: rendezvous with every peer executor and advance
    /// this executor's virtual clock to the barrier time (the maximum
    /// arrival clock). No-op outside cluster mode, and a zero-length wait
    /// in a single-executor cluster.
    fn cluster_barrier(&mut self) {
        let Some(ctx) = self.cluster.clone() else {
            return;
        };
        self.crash_probe();
        let index = self.barrier_seq;
        self.barrier_seq += 1;
        let now = self.runtime.heap().mem().clock().now_ns();
        self.note_recovery_progress(&ctx, index, now);
        let t_bar = ctx
            .exchange
            .barrier(ctx.exec, index, now)
            .unwrap_or_else(|e| std::panic::panic_any(e));
        self.sync_to(t_bar);
    }

    /// Replay-completion bookkeeping: if this executor is a restarted
    /// incarnation and its replay just re-reached the barrier its
    /// predecessor crashed at, recovery is complete — close the window,
    /// charge nothing (the clock already carries the replay cost), and
    /// emit [`obs::Event::RecoveryEnd`].
    fn note_recovery_progress(&mut self, ctx: &ClusterCtx, index: u64, now: f64) {
        let Some(rec) = &ctx.recovery else {
            return;
        };
        let done = rec.slot.with(|c| {
            if c.replay_until == Some(index) {
                c.replay_until = None;
                c.in_replay = false;
                // Nested faults widen `replay_until` to the furthest crash
                // barrier, so reaching it closes the whole (possibly
                // overlapping) window at once: the depth resets and the
                // single window is charged from the outermost crash.
                c.replay_depth = 0;
                let recovery_ns = now - c.recovery_started_ns;
                c.recovery_ns += recovery_ns;
                c.marks.push((
                    now,
                    crate::cluster::RecoveryMark::End {
                        barrier: index,
                        recovery_ns,
                    },
                ));
                Some(recovery_ns)
            } else {
                None
            }
        });
        if let Some(recovery_ns) = done {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::RecoveryEnd {
                        barrier: index,
                        recovery_ns,
                    },
                );
            }
        }
    }

    /// Advance the virtual clock to `t_bar` if it is behind (the executor
    /// idles until the cluster's straggler arrives). Monotone: a cached
    /// barrier time from a re-gathered shuffle never rewinds the clock.
    fn sync_to(&mut self, t_bar: f64) {
        let now = self.runtime.heap().mem().clock().now_ns();
        if t_bar > now {
            self.runtime.heap_mut().mem_mut().compute(t_bar - now);
        }
    }

    fn var_rdd(&self, var: VarId) -> RddId {
        self.vars[var.0 as usize].unwrap_or_else(|| panic!("variable v{} unbound", var.0))
    }

    fn build_expr(&mut self, expr: &RddExpr) -> RddId {
        match expr {
            RddExpr::Var(v) => {
                let rdd = self.var_rdd(*v);
                // A transformation invoked on a named RDD object is a
                // monitored method call (Section 4.2.2).
                self.runtime.record_rdd_call(rdd.0);
                rdd
            }
            RddExpr::Source(name) => self.new_node(RddOp::Source(name.clone())),
            RddExpr::Apply { transform, inputs } => {
                let parents: Vec<RddId> = inputs.iter().map(|e| self.build_expr(e)).collect();
                self.new_node(RddOp::Transformed {
                    transform: transform.clone(),
                    parents,
                })
            }
        }
    }

    fn new_node(&mut self, op: RddOp) -> RddId {
        let id = RddId(self.rdds.len() as u32);
        self.rdds.push(RddNode::new(id, op));
        self.stats.rdd_instances += 1;
        id
    }

    fn unpersist(&mut self, rdd: RddId) {
        if let Some(mat) = self.rdds[rdd.0 as usize].materialized.take() {
            self.roots.remove(mat.top);
        }
        self.disk_store.remove(&rdd);
        self.native_store.remove(&rdd);
        self.ser_store.remove(&rdd);
        if self.offheap_store.remove(&rdd).is_some() && self.offheap_region.block(rdd.0).is_some() {
            // The lifetime schedule releases a block's last reference at
            // its last consuming statement, which precedes any unpersist —
            // so this free is defensive only.
            let freed = self.offheap_region.free(rdd.0);
            self.note_offheap_free(rdd.0, freed.bytes);
        }
        self.region_transients.retain(|r| *r != rdd);
        if self.region_store.remove(&rdd).is_some() && self.region_heap.block(rdd.0).is_some() {
            // Defensive for the same scheduling reason as the off-heap
            // free above.
            let freed = self.region_heap.free(rdd.0);
            self.note_region_free(rdd.0, freed.bytes);
        }
        self.persist_order.retain(|r| *r != rdd);
        self.rdds[rdd.0 as usize].persisted = None;
    }

    // ------------------------------------------------------------------
    // Evaluation lifecycle
    // ------------------------------------------------------------------

    /// Run one top-level evaluation (a persist materialization or an
    /// action): opens a root scope, cleans up transient ShuffledRDDs at
    /// the end, and gives the runtime a stage boundary.
    ///
    /// Emits paired `StageStart`/`StageEnd` events carrying *cumulative*
    /// device write counters, so an aggregator derives per-evaluation
    /// write traffic by differencing. (Wide transformations inside one
    /// evaluation also pass a GC stage boundary but do not emit stage
    /// events: the event granularity is the top-level evaluation.)
    fn evaluation<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let stage = self.stage_seq;
        self.stage_seq += 1;
        self.emit_stage_event(stage, true);
        if self.config.region_alloc {
            // Every streamed temporary of this evaluation bumps the stage
            // scratch arena instead of the young generation.
            self.region_heap.open_stage();
            self.stats.region_stage_arenas += 1;
        }
        self.roots.push_scope();
        let out = f(self);
        for rdd in std::mem::take(&mut self.transients) {
            if let Some(mat) = self.rdds[rdd.0 as usize].materialized.take() {
                self.roots.remove(mat.top);
            }
        }
        for rdd in std::mem::take(&mut self.region_transients) {
            self.region_store.remove(&rdd);
        }
        if self.config.region_alloc {
            // Wholesale reset: no per-object work, no GC involvement.
            let freed = self.region_heap.close_stage();
            if freed > 0 {
                let mem = self.runtime.heap().mem();
                let observer = mem.observer();
                if observer.enabled() {
                    observer.emit(
                        mem.clock().now_ns(),
                        &obs::Event::RegionStageFree { bytes: freed },
                    );
                }
            }
            if cfg!(debug_assertions) {
                if let Err(e) = self.region_heap.check_invariants() {
                    panic!("region invariant violated at stage {stage}: {e}");
                }
            }
        }
        self.roots.pop_scope();
        self.runtime.stage_boundary(&self.roots);
        self.emit_stage_event(stage, false);
        out
    }

    /// Emit one `StageStart`/`StageEnd` observation (never charges).
    fn emit_stage_event(&self, stage: u32, start: bool) {
        let mem = self.runtime.heap().mem();
        let observer = mem.observer();
        if !observer.enabled() {
            return;
        }
        let dram_write_bytes = mem
            .stats()
            .total_kind_bytes(DeviceKind::Dram, AccessKind::Write);
        let nvm_write_bytes = mem
            .stats()
            .total_kind_bytes(DeviceKind::Nvm, AccessKind::Write);
        let event = if start {
            obs::Event::StageStart {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            }
        } else {
            obs::Event::StageEnd {
                stage,
                dram_write_bytes,
                nvm_write_bytes,
            }
        };
        observer.emit(mem.clock().now_ns(), &event);
    }

    /// Materialize a persisted RDD immediately (Section 2: "persisted RDDs
    /// are materialized at the moment the method persist is called").
    fn persist_now(&mut self, rdd: RddId) {
        if self.is_materialized(rdd) {
            return;
        }
        self.propagate_tag_of(rdd);
        let level = self.rdds[rdd.0 as usize].persisted;
        self.evaluation(|e| {
            let records = e.compute(rdd);
            match level {
                Some(StorageLevel::DiskOnly) => {
                    e.charge_disk(&records);
                    e.disk_store.insert(rdd, records);
                }
                Some(StorageLevel::OffHeap) => {
                    e.charge_native(&records, AccessKind::Write);
                    e.native_store.insert(rdd, records);
                }
                // With the H2 region enabled, every heap-level persist —
                // serialized levels included, since the region is never
                // serialized — goes off-heap instead of into old gen.
                Some(l) if l.uses_heap() && e.config.offheap_cache => {
                    e.persist_offheap(rdd, records);
                }
                // Region allocation: heap-level persists get a refcounted
                // RDD-lifetime arena (off-heap H2 wins when both are on).
                Some(l) if l.uses_heap() && e.config.region_alloc => {
                    e.persist_region(rdd, records);
                }
                Some(l) if l.is_serialized() => {
                    // A wide node may already carry its shuffle's transient
                    // (deserialized) materialization; replace it with the
                    // serialized form.
                    if let Some(mat) = e.rdds[rdd.0 as usize].materialized.take() {
                        e.roots.remove(mat.top);
                        e.transients.retain(|r| *r != rdd);
                    }
                    e.materialize_serialized(rdd, records);
                    e.persist_order.push(rdd);
                }
                // A persisted wide RDD was already materialized
                // persistently by its own shuffle.
                _ if e.is_materialized(rdd) => {
                    e.persist_order.push(rdd);
                }
                _ => {
                    e.materialize_into_heap(rdd, &records, false);
                    e.persist_order.push(rdd);
                }
            }
        });
    }

    /// Spark's block manager under memory pressure: when the old
    /// generation cannot hold a new persisted RDD, evict the oldest
    /// heap-resident persisted RDD — dropping it (MEMORY_ONLY, to be
    /// recomputed on next use) or spilling it to disk (MEMORY_AND_DISK).
    fn ensure_heap_capacity(&mut self, records: &[Payload]) {
        let need: u64 = records
            .iter()
            .map(|r| self.runtime.heap().tuple_footprint(r.model_bytes()))
            .sum::<u64>()
            + 8 * records.len() as u64
            // Headroom for promotions out of the young generation: the
            // paper's JVM throws OutOfMemoryError here, but Spark's block
            // manager evicts cached blocks before that happens.
            + self.runtime.heap().config().young_bytes();
        loop {
            if self.runtime.heap().old_free() >= need {
                return;
            }
            let Some(pos) = self
                .persist_order
                .iter()
                .position(|r| self.rdds[r.0 as usize].materialized.is_some())
            else {
                return; // nothing to evict; allocation fallbacks take over
            };
            let victim = self.persist_order.remove(pos);
            self.evict(victim);
            self.runtime.force_major(&self.roots);
        }
    }

    fn evict(&mut self, rdd: RddId) {
        self.stats.evictions += 1;
        let level = self.rdds[rdd.0 as usize].persisted;
        let spill = matches!(
            level,
            Some(StorageLevel::MemoryAndDisk)
                | Some(StorageLevel::MemoryAndDisk2)
                | Some(StorageLevel::MemoryAndDiskSer)
                | Some(StorageLevel::MemoryAndDiskSer2)
        );
        if spill {
            // Serialized blocks spill their bytes directly — no
            // deserialization; deserialized blocks are read out first.
            let records = if let Some(records) = self.ser_store.remove(&rdd) {
                records
            } else {
                self.read_materialized(rdd)
            };
            self.charge_disk(&records);
            self.disk_store.insert(rdd, records);
        } else {
            self.ser_store.remove(&rdd);
        }
        if let Some(mat) = self.rdds[rdd.0 as usize].materialized.take() {
            self.roots.remove(mat.top);
        }
    }

    fn run_action(&mut self, rdd: RddId, action: &ActionKind) -> ActionResult {
        if self.cluster.is_some() {
            return self.run_action_cluster(rdd, action);
        }
        self.propagate_tag_of(rdd);
        self.evaluation(|e| {
            let records = e.compute(rdd);
            // Actions materialize their not-yet-persisted target
            // (Section 2) — transiently, since nothing keeps it alive.
            if !e.is_materialized(rdd) {
                e.materialize_into_heap(rdd, &records, true);
            }
            match action {
                ActionKind::Count => ActionResult::Count(records.len() as u64),
                ActionKind::Collect => ActionResult::Collected(
                    Rc::try_unwrap(records).unwrap_or_else(|rc| rc.as_ref().clone()),
                ),
                ActionKind::Reduce(f) => {
                    let mut it = records.iter();
                    let first = it.next().cloned();
                    let folded = first.map(|mut acc| {
                        for r in it {
                            acc = e.apply_reduce(*f, &acc, r);
                        }
                        acc
                    });
                    ActionResult::Reduced(folded)
                }
            }
        })
    }

    /// Cluster-mode action: every executor evaluates its local slice,
    /// contributes a partial (count, wired partitions, or a locally-folded
    /// reduce partial), and merges the gathered partials into the global
    /// result — identically on every executor, so the driver can take any
    /// one of them. Local folds charge per-step CPU like the legacy path;
    /// the cross-executor merge of reduce partials is uncharged driver
    /// work (a parallel-reduce tree root). With one executor the local
    /// partial *is* the global result.
    fn run_action_cluster(&mut self, rdd: RddId, action: &ActionKind) -> ActionResult {
        let ctx = self
            .cluster
            .clone()
            .expect("cluster action outside cluster");
        self.propagate_tag_of(rdd);
        self.evaluation(|e| {
            let records = e.compute(rdd);
            if !e.is_materialized(rdd) {
                e.materialize_into_heap(rdd, &records, true);
            }
            let contrib = match action {
                ActionKind::Count => ActionContrib::Count(records.len() as u64),
                ActionKind::Collect => ActionContrib::Collect(e.wire_parts(rdd, &records)),
                ActionKind::Reduce(f) => {
                    let mut it = records.iter();
                    let first = it.next().cloned();
                    let folded = first.map(|mut acc| {
                        for r in it {
                            acc = e.apply_reduce(*f, &acc, r);
                        }
                        acc
                    });
                    ActionContrib::Reduce(folded.as_ref().map(WirePayload::from))
                }
            };
            let seq = e.action_seq;
            e.action_seq += 1;
            // Journaled deposit: begin (persist intent + digest), deposit,
            // commit. The probes expose both torn windows — crashed before
            // the deposit landed (replay rolls it forward) and after (the
            // exchange validates the replayed digest and keeps the
            // original).
            e.journal_begin(JournalOp::ActionDeposit, seq, contrib.digest(), 0);
            e.crash_probe();
            let now = e.runtime.heap().mem().clock().now_ns();
            let (contribs, t_bar) = ctx
                .exchange
                .gather_action(ctx.exec, seq, contrib, now)
                .unwrap_or_else(|err| std::panic::panic_any(err));
            e.sync_to(t_bar);
            e.crash_probe();
            e.journal_commit(JournalOp::ActionDeposit, seq);
            match action {
                ActionKind::Count => ActionResult::Count(
                    contribs
                        .iter()
                        .map(|c| match c {
                            ActionContrib::Count(n) => *n,
                            other => panic!("mismatched action contribution {other:?}"),
                        })
                        .sum(),
                ),
                ActionKind::Collect => {
                    let mut parts: Vec<(u64, Vec<Payload>)> = contribs
                        .iter()
                        .flat_map(|c| match c {
                            ActionContrib::Collect(parts) => parts.iter().map(|(gid, recs)| {
                                (*gid, recs.iter().map(Payload::from).collect())
                            }),
                            other => panic!("mismatched action contribution {other:?}"),
                        })
                        .collect();
                    parts.sort_by_key(|(gid, _)| *gid);
                    ActionResult::Collected(parts.into_iter().flat_map(|(_, recs)| recs).collect())
                }
                ActionKind::Reduce(f) => {
                    let partials: Vec<Payload> = contribs
                        .iter()
                        .filter_map(|c| match c {
                            ActionContrib::Reduce(p) => p.as_ref().map(Payload::from),
                            other => panic!("mismatched action contribution {other:?}"),
                        })
                        .collect();
                    let combine = match e.fns.get(*f) {
                        UserFn::Reduce(f) => f,
                        other => panic!("expected a reduce function, got {other:?}"),
                    };
                    ActionResult::Reduced(partials.into_iter().reduce(|a, b| combine(&a, &b)))
                }
            }
        })
    }

    fn is_materialized(&self, rdd: RddId) -> bool {
        self.rdds[rdd.0 as usize].materialized.is_some()
            || self.disk_store.contains_key(&rdd)
            || self.native_store.contains_key(&rdd)
            || self.offheap_store.contains_key(&rdd)
            || self.region_store.contains_key(&rdd)
    }

    /// Panthera's stage-start lineage scan: push this RDD's tag backward
    /// to the unmaterialized shuffle outputs it depends on (DRAM wins).
    fn propagate_tag_of(&mut self, rdd: RddId) {
        if !self.runtime.lineage_propagation() {
            return;
        }
        let Some(tag) = self.rdds[rdd.0 as usize].tag else {
            return;
        };
        let mut queue = vec![rdd];
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = queue.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = &self.rdds[id.0 as usize];
            if id != rdd && (node.materialized.is_some() || node.persisted.is_some()) {
                // A previous stage's RDD: it has its own tag.
                continue;
            }
            queue.extend(node.parents().iter().copied());
            if node.is_wide() {
                self.rdds[id.0 as usize].merge_tag(tag);
            }
        }
    }

    /// Materialize `records` in serialized form: one compact byte buffer
    /// per partition (a `byte[]` in Spark), pretenured like any RDD array.
    /// Reads deserialize on the fly; the heap holds no per-tuple objects.
    fn materialize_serialized(&mut self, rdd: RddId, records: Rc<Vec<Payload>>) {
        debug_assert!(
            self.rdds[rdd.0 as usize].materialized.is_none(),
            "double materialization of {rdd}"
        );
        let tag = self.rdds[rdd.0 as usize].tag;
        // Serialization CPU, once per record.
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.costs.serde_ns(records.len() as u64));
        self.roots.push_scope();
        let n_parts = self.config.partitions.clamp(1, records.len().max(1));
        let per_part = records.len().div_ceil(n_parts).max(1);
        let mut arrays = Vec::with_capacity(n_parts);
        for chunk in records.chunks(per_part) {
            let bytes: u64 = chunk.iter().map(Payload::model_bytes).sum();
            // The buffer is a primitive byte array: size it in 8-byte slots.
            let slots = (bytes.div_ceil(8) as usize).max(1);
            let array = self.runtime.alloc_rdd_array(&self.roots, rdd.0, slots, tag);
            self.roots.push(array);
            arrays.push(array);
        }
        if arrays.is_empty() {
            let array = self.runtime.alloc_rdd_array(&self.roots, rdd.0, 1, tag);
            self.roots.push(array);
            arrays.push(array);
        }
        let top = self
            .runtime
            .alloc_rdd_top(&self.roots, rdd.0, arrays[0], tag);
        for a in &arrays[1..] {
            self.runtime.heap_mut().push_ref(top, *a);
        }
        self.roots.pop_scope();
        self.roots.push_global(top);
        let len = records.len();
        self.ser_store.insert(rdd, records);
        self.rdds[rdd.0 as usize].materialized = Some(MatData {
            top,
            arrays,
            len,
            serialized: true,
        });
        self.stats.materializations += 1;
    }

    /// Build the Figure 1 object structure for `records`.
    fn materialize_into_heap(&mut self, rdd: RddId, records: &[Payload], transient: bool) {
        debug_assert!(
            self.rdds[rdd.0 as usize].materialized.is_none(),
            "double materialization of {rdd}"
        );
        if self.config.region_alloc && transient && self.region_heap.stage_open() {
            // A transient materialization dies with the evaluation: route
            // it into the stage scratch arena instead of the young gen.
            self.materialize_region_transient(rdd, records);
            return;
        }
        self.fault_probe_materialize(records);
        self.ensure_heap_capacity(records);
        let tag = self.rdds[rdd.0 as usize].tag;
        self.roots.push_scope();
        // One backbone array per partition, allocated back to back (the
        // tasks' tuples come later, so consecutive arrays share boundary
        // cards unless padded).
        let n_parts = self.config.partitions.clamp(1, records.len().max(1));
        let per_part = records.len().div_ceil(n_parts).max(1);
        let mut arrays = Vec::with_capacity(n_parts);
        for chunk_len in partition_sizes(records.len(), n_parts) {
            let array = self
                .runtime
                .alloc_rdd_array(&self.roots, rdd.0, chunk_len, tag);
            self.roots.push(array);
            arrays.push(array);
        }
        let top = self
            .runtime
            .alloc_rdd_top(&self.roots, rdd.0, arrays[0], tag);
        for a in &arrays[1..] {
            self.runtime.heap_mut().push_ref(top, *a);
        }
        self.roots.push(top);
        for (i, r) in records.iter().enumerate() {
            let tuple = self
                .runtime
                .alloc_record(&self.roots, ObjKind::Tuple, r.clone());
            self.runtime
                .heap_mut()
                .push_ref(arrays[i / per_part], tuple);
        }
        self.roots.pop_scope();
        if transient {
            // Rooted for the current evaluation only.
            self.roots.push(top);
            self.transients.push(rdd);
        } else {
            // Long-lived: registered like Spark's block manager would.
            self.roots.push_global(top);
        }
        self.rdds[rdd.0 as usize].materialized = Some(MatData {
            top,
            arrays,
            len: records.len(),
            serialized: false,
        });
        self.stats.materializations += 1;
        self.note_live_partitions(rdd);
        self.maybe_checkpoint(rdd, records);
    }

    // ------------------------------------------------------------------
    // Fault injection and checkpoint/recovery hooks (cluster mode only).
    // Every hook is a no-op — no charge, no event, no counter — unless
    // the cluster runs under a fault plan or checkpoint policy, so the
    // legacy and fault-free paths are bit-identical to a build without
    // these hooks.
    // ------------------------------------------------------------------

    /// Virtual-time crash probe: if the fault plan schedules a crash for
    /// this executor at a virtual time its clock has now reached, consume
    /// that crash point and kill the incarnation. Probes sit at every
    /// interruptible point of a stage — materializations, barrier
    /// entries, both legs of an exchange deposit, and inside checkpoint
    /// saves — so a planned time maps to the *first probe at or past it*,
    /// a deterministic structural point regardless of host scheduling.
    /// `vcrash_next` lives in the recovery slot and survives restarts, so
    /// each planned point fires exactly once; a point that falls inside a
    /// still-open recovery window crashes the replaying incarnation
    /// (crash-during-recovery), which the driver handles by widening the
    /// replay window rather than starting a second one.
    fn crash_probe(&mut self) {
        let Some(ctx) = self.cluster.as_ref() else {
            return;
        };
        let Some(rec) = ctx.recovery.as_ref() else {
            return;
        };
        if rec.crash_points.is_empty() {
            return;
        }
        let exec = ctx.exec;
        let barrier = self.barrier_seq;
        let now = self.runtime.heap().mem().clock().now_ns();
        let fire = rec
            .slot
            .with(|c| match rec.crash_points.get(c.vcrash_next) {
                Some(&at) if now >= at => {
                    c.vcrash_next += 1;
                    true
                }
                _ => false,
            });
        if fire {
            std::panic::panic_any(ClusterError::InjectedCrash {
                exec,
                barrier,
                at_ns: now,
            });
        }
    }

    /// Open a journal entry for an exchange deposit or checkpoint save.
    /// Pure NVM bookkeeping — charges no virtual time (the persist leg
    /// rides on the operation's own device charges), so fault-free runs
    /// are bit-identical whether or not anything ever reads the journal.
    /// Replay/torn outcomes are counted (and surfaced as events) only
    /// while the executor is replaying: a same-incarnation re-issue (an
    /// evicted RDD recomputed) is a quiet idempotent hit, not a recovery
    /// event. A digest mismatch panics inside the journal — replay
    /// produced a different payload than the committed one, which breaks
    /// the determinism argument idempotent recovery rests on.
    fn journal_begin(&mut self, op: JournalOp, key: u64, digest: u64, bytes: u64) {
        let Some(ctx) = self.cluster.clone() else {
            return;
        };
        let Some(rec) = ctx.recovery.as_ref() else {
            return;
        };
        let outcome = rec.journal.begin(ctx.exec, op, key, digest, bytes);
        let event = rec.slot.with(|c| {
            if !c.in_replay {
                return None;
            }
            match outcome {
                BeginOutcome::Fresh => None,
                BeginOutcome::Replay => {
                    c.journal_noops += 1;
                    Some(obs::Event::JournalNoop {
                        kind: journal_kind(op),
                        key,
                    })
                }
                BeginOutcome::Torn => {
                    c.journal_torn += 1;
                    Some(obs::Event::JournalTorn {
                        kind: journal_kind(op),
                        key,
                    })
                }
            }
        });
        if let Some(ev) = event {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(mem.clock().now_ns(), &ev);
            }
        }
    }

    /// Mark a journaled operation durable. Idempotent: re-committing a
    /// replayed entry is a no-op, so the replay path can run the same
    /// begin → effect → commit sequence as a fresh execution.
    fn journal_commit(&mut self, op: JournalOp, key: u64) {
        let Some(ctx) = self.cluster.as_ref() else {
            return;
        };
        let Some(rec) = ctx.recovery.as_ref() else {
            return;
        };
        rec.journal.commit(ctx.exec, op, key);
    }

    /// Planned transient allocation failure: fires when this executor's
    /// (monotone, attempt-spanning) materialization ordinal is listed in
    /// the fault plan. The failed attempt is retried after a charged
    /// back-off, modelling an allocation that succeeds on its second try.
    fn fault_probe_materialize(&mut self, records: &[Payload]) {
        self.crash_probe();
        let Some(rec) = self.cluster.as_ref().and_then(|c| c.recovery.clone()) else {
            return;
        };
        let seq = rec.slot.with(|c| {
            let s = c.materialize_seq;
            c.materialize_seq += 1;
            s
        });
        if !rec.alloc_faults.contains(&seq) {
            return;
        }
        rec.slot.with(|c| c.alloc_faults += 1);
        let need: u64 = records.iter().map(Payload::model_bytes).sum();
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::AllocFail {
                        space: obs::AllocSpace::Eden,
                        need,
                    },
                );
            }
        }
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(rec.alloc_retry_ns);
    }

    /// Track how many partitions are currently materialized in this
    /// incarnation's heap — what a crash right now would lose.
    fn note_live_partitions(&mut self, rdd: RddId) {
        let Some(rec) = self.cluster.as_ref().and_then(|c| c.recovery.as_ref()) else {
            return;
        };
        let parts = self
            .part_meta
            .get(&rdd)
            .map(|m| m.gids.len() as u64)
            .unwrap_or(0);
        rec.slot.with(|c| c.live_partitions += parts);
    }

    /// Snapshot `rdd`'s local partitions into the durable NVM checkpoint
    /// store if the policy selects it: explicitly `checkpoint()`-marked,
    /// or every `n`-th shuffle output under `CheckpointEvery(n)` (counted
    /// by structural ordinal, which is stable across executors and replay
    /// attempts). Writes are charged to the NVM device; `save` is
    /// idempotent, so a replaying executor never double-charges.
    fn maybe_checkpoint(&mut self, rdd: RddId, records: &[Payload]) {
        let Some(ctx) = self.cluster.clone() else {
            return;
        };
        let Some(rec) = ctx.recovery.as_ref() else {
            return;
        };
        if !self.part_meta.contains_key(&rdd) {
            return;
        }
        let node = &self.rdds[rdd.0 as usize];
        let auto = rec.checkpoint_every > 0
            && node.is_wide()
            && (self.wide_ordinal(rdd) + 1).is_multiple_of(u64::from(rec.checkpoint_every));
        if !(node.checkpointed || auto) {
            return;
        }
        let tag = node.tag;
        let parts = self.wire_parts(rdd, records);
        let bytes: u64 = parts
            .iter()
            .flat_map(|(_, recs)| recs.iter())
            .map(WirePayload::model_bytes)
            .sum();
        let entry = crate::cluster::CheckpointEntry {
            parts,
            global_parts: self.part_meta[&rdd].global_parts,
            bytes,
            tag,
        };
        // Journaled save: the first probe exposes the torn window (intent
        // journaled, snapshot not yet durable — replay rolls it forward),
        // the last one a crash after the charged write (replay finds the
        // committed entry and validates the no-op).
        self.journal_begin(
            JournalOp::CheckpointSave,
            u64::from(rdd.0),
            entry.digest(),
            bytes,
        );
        self.crash_probe();
        if !rec.store.save(rdd.0, ctx.exec, entry) {
            // Already durable (a replay re-reached this point): settle the
            // journal and move on without re-charging the write.
            self.journal_commit(JournalOp::CheckpointSave, u64::from(rdd.0));
            return;
        }
        self.journal_commit(JournalOp::CheckpointSave, u64::from(rdd.0));
        rec.slot.with(|c| {
            c.checkpoint_writes += 1;
            c.checkpoint_bytes += bytes;
        });
        self.charge_native(records, AccessKind::Write);
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::CheckpointWrite { rdd: rdd.0, bytes },
                );
            }
        }
        self.crash_probe();
    }

    /// The structural ordinal of a wide node: how many wide nodes precede
    /// it in instance order. Replay rebuilds the identical graph, so the
    /// ordinal — unlike anything keyed on time — is replay-stable.
    fn wide_ordinal(&self, rdd: RddId) -> u64 {
        self.rdds[..rdd.0 as usize]
            .iter()
            .filter(|n| n.is_wide())
            .count() as u64
    }

    /// Serve a materialization from the durable checkpoint store, if this
    /// executor snapshotted `rdd` in a previous (crashed) incarnation or
    /// earlier in this one. Short-circuits the lineage recursion — this is
    /// what bounds replay recomputation under `CheckpointEvery(n)`. Reads
    /// are charged to the NVM device.
    fn try_restore_checkpoint(&mut self, rdd: RddId) -> Option<Rc<Vec<Payload>>> {
        let ctx = self.cluster.clone()?;
        let rec = ctx.recovery.as_ref()?;
        let entry = rec.store.load(rdd.0, ctx.exec)?;
        let mut gids = Vec::with_capacity(entry.parts.len());
        let mut lens = Vec::with_capacity(entry.parts.len());
        let mut records = Vec::new();
        for (gid, recs) in &entry.parts {
            gids.push(*gid);
            lens.push(recs.len());
            records.extend(recs.iter().map(Payload::from));
        }
        if let Some(tag) = entry.tag {
            self.rdds[rdd.0 as usize].merge_tag(tag);
        }
        let restored_parts = gids.len() as u64;
        rec.slot.with(|c| {
            c.partitions_restored += restored_parts;
            c.restore_bytes += entry.bytes;
        });
        self.part_meta.insert(
            rdd,
            PartMeta {
                gids,
                lens,
                global_parts: entry.global_parts,
            },
        );
        self.charge_native(&records, AccessKind::Read);
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::CheckpointRestore {
                        rdd: rdd.0,
                        bytes: entry.bytes,
                    },
                );
            }
        }
        let persist_heap = !self.config.offheap_cache
            && !self.config.region_alloc
            && matches!(self.rdds[rdd.0 as usize].persisted, Some(l) if l.uses_heap());
        self.materialize_into_heap(rdd, &records, !persist_heap);
        Some(Rc::new(records))
    }

    // ------------------------------------------------------------------
    // Record computation
    // ------------------------------------------------------------------

    /// Produce the records of `rdd`, charging all memory traffic. The
    /// result is shared: callers that only read (materialization, charge
    /// accounting, bucket filling) never copy the vector.
    fn compute(&mut self, rdd: RddId) -> Rc<Vec<Payload>> {
        if self.rdds[rdd.0 as usize].materialized.is_some() {
            return self.read_materialized(rdd);
        }
        if let Some(records) = self.disk_store.get(&rdd) {
            let records = Rc::clone(records);
            self.emulate_legacy_copies(&records);
            self.charge_disk(&records);
            return records;
        }
        if let Some(records) = self.native_store.get(&rdd) {
            let records = Rc::clone(records);
            self.emulate_legacy_copies(&records);
            self.charge_native(&records, AccessKind::Read);
            return records;
        }
        if let Some(records) = self.offheap_store.get(&rdd) {
            let records = Rc::clone(records);
            self.emulate_legacy_copies(&records);
            if self.offheap_region.block(rdd.0).is_none() {
                // The schedule freed this block before its last read —
                // results stay correct (the store keeps the records), but
                // the premature free must be visible to tests.
                self.stats.offheap_dead_reads += 1;
            }
            let device = self.offheap_device(rdd);
            let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
            self.runtime.heap_mut().mem_mut().access_device(
                device,
                AccessKind::Read,
                bytes,
                AccessProfile::mutator(),
            );
            return records;
        }
        if let Some(records) = self.region_store.get(&rdd) {
            let records = Rc::clone(records);
            self.emulate_legacy_copies(&records);
            let device = match self.region_heap.block(rdd.0) {
                Some(b) => b.device,
                None if self.region_transients.contains(&rdd) => DeviceKind::Dram,
                None => {
                    // The schedule freed this arena before its last read —
                    // results stay correct (the store keeps the records),
                    // but the premature free must be visible to tests.
                    self.stats.region_dead_reads += 1;
                    self.offheap_device(rdd)
                }
            };
            let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
            self.runtime.heap_mut().mem_mut().access_device(
                device,
                AccessKind::Read,
                bytes,
                AccessProfile::mutator(),
            );
            return records;
        }
        if let Some(records) = self.try_restore_checkpoint(rdd) {
            return records;
        }
        let op = self.rdds[rdd.0 as usize].op.clone();
        match op {
            RddOp::Source(name) => {
                if self.cluster.is_some() {
                    self.compute_source_cluster(rdd, &name)
                } else {
                    self.compute_source(&name)
                }
            }
            RddOp::Transformed { transform, parents } => {
                if transform.is_wide() {
                    if self.cluster.is_some() {
                        self.compute_shuffle_cluster(rdd, &transform, &parents)
                    } else {
                        self.compute_shuffle(rdd, &transform, &parents)
                    }
                } else if let Transform::Union = transform {
                    let mut out: Vec<Payload> = self.compute(parents[0]).as_ref().clone();
                    out.extend(self.compute(parents[1]).iter().cloned());
                    self.emulate_legacy_copies(&out);
                    if self.cluster.is_some() {
                        // The union's local flat is parent 0's partitions
                        // followed by parent 1's, renumbered past parent
                        // 0's global partition space (ownership inherits
                        // parent placement, like Spark's UnionRDD).
                        let m0 = self.part_meta[&parents[0]].clone();
                        let m1 = self.part_meta[&parents[1]].clone();
                        let mut gids = m0.gids;
                        gids.extend(m1.gids.iter().map(|g| g + m0.global_parts));
                        let mut lens = m0.lens;
                        lens.extend_from_slice(&m1.lens);
                        self.part_meta.insert(
                            rdd,
                            PartMeta {
                                gids,
                                lens,
                                global_parts: m0.global_parts + m1.global_parts,
                            },
                        );
                    }
                    Rc::new(out)
                } else if self.cluster.is_some() {
                    // Cluster mode always executes stage-at-a-time so each
                    // output partition's length is tracked; charges are
                    // partition-independent, so slicing costs nothing.
                    let input = self.compute(parents[0]);
                    self.stream_cluster(rdd, parents[0], &input, &transform)
                } else if self.config.fuse_narrow {
                    self.compute_fused(rdd)
                } else {
                    let input = self.compute(parents[0]);
                    self.stream(&input, &transform)
                }
            }
        }
    }

    /// Host-cost emulation hook: one record crossing an engine boundary.
    /// Normally an `Rc` refcount bump; a structural copy when
    /// [`EngineConfig::legacy_copies`] benchmarks the pre-rework engine.
    fn copy_record(&self, r: &Payload) -> Payload {
        if self.config.legacy_copies {
            r.deep_clone()
        } else {
            r.clone()
        }
    }

    /// With [`EngineConfig::legacy_copies`] set, burn the pre-rework
    /// engine's per-record structural copy of `records` (copies are
    /// dropped; only host CPU is spent). No-op otherwise.
    fn emulate_legacy_copies(&self, records: &[Payload]) {
        if self.config.legacy_copies {
            for r in records {
                std::hint::black_box(r.deep_clone());
            }
        }
    }

    fn compute_source(&mut self, name: &str) -> Rc<Vec<Payload>> {
        let records = self.data.records_shared(name);
        self.charge_disk(&records);
        // Parsing allocates one short-lived young object per record.
        for i in 0..records.len() {
            let r = self.copy_record(&records[i]);
            self.stream_alloc(r);
        }
        records
    }

    /// Cluster-mode source scan: partition the global input exactly as the
    /// single-runtime engine would lay it out, keep the partitions owned
    /// by this executor (`gid % n_exec == exec`), and charge disk and
    /// parsing for the local records only. At `n_exec == 1` every
    /// partition is local, so the records, charges, and layout match the
    /// legacy path bit for bit.
    fn compute_source_cluster(&mut self, rdd: RddId, name: &str) -> Rc<Vec<Payload>> {
        let ctx = self
            .cluster
            .clone()
            .expect("cluster source outside cluster");
        let global = self.data.records_shared(name);
        let n_parts = self.config.partitions.clamp(1, global.len().max(1));
        let sizes = partition_sizes(global.len(), n_parts);
        let mut local = Vec::new();
        let mut gids = Vec::new();
        let mut lens = Vec::new();
        let mut off = 0usize;
        for (gid, &len) in sizes.iter().enumerate() {
            if gid as u64 % u64::from(ctx.n_exec) == u64::from(ctx.exec) {
                local.extend_from_slice(&global[off..off + len]);
                gids.push(gid as u64);
                lens.push(len);
            }
            off += len;
        }
        self.charge_disk(&local);
        for rec in &local {
            let r = self.copy_record(rec);
            self.stream_alloc(r);
        }
        self.part_meta.insert(
            rdd,
            PartMeta {
                gids,
                lens,
                global_parts: sizes.len() as u64,
            },
        );
        Rc::new(local)
    }

    /// Convert this executor's local records of `rdd` into their wire form
    /// grouped by global partition id, ready to contribute to a gather.
    fn wire_parts(&self, rdd: RddId, records: &[Payload]) -> Vec<(u64, Vec<WirePayload>)> {
        let meta = &self.part_meta[&rdd];
        let mut out = Vec::with_capacity(meta.gids.len());
        let mut off = 0usize;
        for (i, &gid) in meta.gids.iter().enumerate() {
            let len = meta.lens[i];
            out.push((
                gid,
                records[off..off + len]
                    .iter()
                    .map(WirePayload::from)
                    .collect(),
            ));
            off += len;
        }
        debug_assert_eq!(off, records.len(), "partition metadata out of sync");
        out
    }

    /// Fused execution of the maximal narrow chain ending at `rdd`: every
    /// record flows through the whole chain depth-first, so intermediate
    /// stages never materialize a `Vec<Payload>` — only the chain's final
    /// output is collected. Simulated costs are *not* charged during the
    /// host-side pass; each stage logs its charge events (one CPU tick per
    /// input record, one young allocation per output record, in record
    /// order) and the logs are replayed stage-by-stage afterwards. The
    /// replayed sequence is exactly what the unfused engine would have
    /// issued, so simulated time, energy, and GC scheduling are
    /// bit-identical to stage-at-a-time execution.
    fn compute_fused(&mut self, rdd: RddId) -> Rc<Vec<Payload>> {
        let (base, stages) = self.narrow_chain(rdd);
        let input = self.compute(base);
        debug_assert!(!stages.is_empty(), "narrow node must contribute a stage");
        let mut logs: Vec<StageLog> = stages.iter().map(|_| StageLog::default()).collect();
        logs[0].outputs_per_input.reserve(input.len());
        logs[0].alloc_bytes.reserve(input.len());
        let mut out = Vec::with_capacity(input.len());
        for r in input.iter() {
            drive_chain(&self.fns, &stages, r, &mut logs, &mut out);
        }
        for log in &logs {
            let mut next = 0usize;
            for &n_out in &log.outputs_per_input {
                self.runtime
                    .heap_mut()
                    .mem_mut()
                    .compute(self.config.record_cpu_ns);
                for &bytes in &log.alloc_bytes[next..next + n_out as usize] {
                    self.stream_alloc(size_stand_in(bytes));
                }
                next += n_out as usize;
            }
        }
        Rc::new(out)
    }

    /// The maximal chain of fusable narrow transformations ending at
    /// `rdd`, bottom-up, plus the base RDD feeding it. Fusion stops at
    /// wide nodes, unions, sources, and anything already materialized or
    /// stored — those produce their records through their own paths.
    fn narrow_chain(&self, rdd: RddId) -> (RddId, Vec<Transform>) {
        let mut stages = Vec::new();
        let mut cur = rdd;
        loop {
            let node = &self.rdds[cur.0 as usize];
            if cur != rdd
                && (node.materialized.is_some()
                    || self.disk_store.contains_key(&cur)
                    || self.native_store.contains_key(&cur)
                    || self.offheap_store.contains_key(&cur)
                    || self.region_store.contains_key(&cur))
            {
                break;
            }
            match &node.op {
                RddOp::Transformed { transform, parents }
                    if !transform.is_wide() && !matches!(transform, Transform::Union) =>
                {
                    stages.push(transform.clone());
                    cur = parents[0];
                }
                _ => break,
            }
        }
        stages.reverse();
        (cur, stages)
    }

    /// Legacy stage-at-a-time streaming: apply one narrow transformation
    /// to every input record, allocating a short-lived young object per
    /// output record (the streaming behaviour of Section 2).
    fn stream(&mut self, input: &[Payload], transform: &Transform) -> Rc<Vec<Payload>> {
        let mut out = Vec::with_capacity(input.len());
        self.stream_into(input, transform, &mut out);
        Rc::new(out)
    }

    /// The streaming loop of [`Engine::stream`], appending to `out` so
    /// cluster mode can run it once per local partition (tracking each
    /// partition's output length) while charging the exact sequence one
    /// whole-input pass would.
    fn stream_into(&mut self, input: &[Payload], transform: &Transform, out: &mut Vec<Payload>) {
        let legacy = self.config.legacy_copies;
        let region_on = self.config.region_alloc;
        for r in input {
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.record_cpu_ns);
            let (runtime, stats, region) =
                (&mut self.runtime, &mut self.stats, &mut self.region_heap);
            let roots = &self.roots;
            apply_narrow(&self.fns, transform, r, &mut |p: Payload| {
                stats.records_streamed += 1;
                let stored = if legacy { p.deep_clone() } else { p.clone() };
                if region_on && region.stage_open() {
                    // Stage-scoped scratch: the record bumps the stage
                    // arena, dies wholesale at stage close, and never
                    // enters the young generation (no GC tracing).
                    let bytes = runtime.heap().tuple_footprint(stored.model_bytes());
                    region.stage_bump(bytes);
                    stats.region_stage_bytes += bytes;
                    runtime.heap_mut().mem_mut().access_device(
                        DeviceKind::Dram,
                        AccessKind::Write,
                        bytes,
                        AccessProfile::mutator(),
                    );
                } else {
                    runtime.alloc_record(roots, ObjKind::Tuple, stored);
                }
                out.push(p);
            });
        }
    }

    /// Cluster-mode narrow stage: stream each local partition through the
    /// transformation separately, recording the output partition lengths.
    /// Narrow transformations are element-wise, so the charge sequence is
    /// identical to one pass over the whole local flat.
    fn stream_cluster(
        &mut self,
        rdd: RddId,
        parent: RddId,
        input: &[Payload],
        transform: &Transform,
    ) -> Rc<Vec<Payload>> {
        let meta = self
            .part_meta
            .get(&parent)
            .cloned()
            .expect("cluster mode: parent computed without partition metadata");
        let mut out = Vec::with_capacity(input.len());
        let mut lens = Vec::with_capacity(meta.lens.len());
        let mut off = 0usize;
        for &len in &meta.lens {
            let before = out.len();
            self.stream_into(&input[off..off + len], transform, &mut out);
            lens.push(out.len() - before);
            off += len;
        }
        debug_assert_eq!(off, input.len(), "partition metadata out of sync");
        self.part_meta.insert(
            rdd,
            PartMeta {
                gids: meta.gids,
                lens,
                global_parts: meta.global_parts,
            },
        );
        Rc::new(out)
    }

    /// Allocate (and immediately abandon) the young object modelling one
    /// streamed record — or, under region allocation, bump the stage
    /// scratch arena so the record never touches the traced heap.
    fn stream_alloc(&mut self, record: Payload) {
        self.stats.records_streamed += 1;
        if self.config.region_alloc && self.region_heap.stage_open() {
            let bytes = self.runtime.heap().tuple_footprint(record.model_bytes());
            self.region_heap.stage_bump(bytes);
            self.stats.region_stage_bytes += bytes;
            self.runtime.heap_mut().mem_mut().access_device(
                DeviceKind::Dram,
                AccessKind::Write,
                bytes,
                AccessProfile::mutator(),
            );
        } else {
            self.runtime
                .alloc_record(&self.roots, ObjKind::Tuple, record);
        }
    }

    fn compute_shuffle(
        &mut self,
        rdd: RddId,
        transform: &Transform,
        parents: &[RddId],
    ) -> Rc<Vec<Payload>> {
        self.stats.shuffles += 1;
        // Joins build and probe per-key hash structures: their input
        // accesses are random, unlike the streaming scans of aggregations.
        // The flag covers only this shuffle's direct input chains — a
        // nested shuffle's own inputs are scanned sequentially again.
        let saved_depth = std::mem::take(&mut self.random_read_depth);
        let is_join = matches!(transform, Transform::Join);
        if is_join {
            self.random_read_depth = 1;
        }
        // Map side: bucket parent records and write shuffle files.
        let left_records = self.compute(parents[0]);
        self.charge_shuffle(&left_records);
        let mut left = Buckets::new();
        for r in left_records.iter() {
            left.add(self.copy_record(r));
        }
        let right = if parents.len() > 1 {
            let right_records = self.compute(parents[1]);
            self.charge_shuffle(&right_records);
            let mut b = Buckets::new();
            for r in right_records.iter() {
                b.add(self.copy_record(r));
            }
            Some(b)
        } else {
            None
        };
        self.random_read_depth = saved_depth;
        // The consuming stage starts by reading the shuffle files.
        self.runtime.stage_boundary(&self.roots);
        let out = reduce_side(transform, &self.fns, &left, right.as_ref());
        for _ in &out {
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.record_cpu_ns);
        }
        self.charge_shuffle(&out);
        // The ShuffledRDD is materialized immediately — it holds data read
        // freshly from shuffle files (Section 2). It dies with the current
        // evaluation unless this node is itself a heap-persisted RDD, in
        // which case the shuffle output *is* the persisted materialization.
        let persist_heap = !self.config.offheap_cache
            && !self.config.region_alloc
            && matches!(self.rdds[rdd.0 as usize].persisted, Some(l) if l.uses_heap());
        self.materialize_into_heap(rdd, &out, !persist_heap);
        Rc::new(out)
    }

    /// Cluster-mode shuffle: spill the local map-side partitions, all-
    /// gather every executor's spill through the exchange, charge the
    /// cross-executor transfer, then run the reduce side over the global
    /// buckets (replicated host work, deterministic on every executor) and
    /// keep only the output partitions this executor owns. At
    /// `n_exec == 1` nothing crosses the network and the charge sequence
    /// collapses to the single-runtime [`Engine::compute_shuffle`].
    fn compute_shuffle_cluster(
        &mut self,
        rdd: RddId,
        transform: &Transform,
        parents: &[RddId],
    ) -> Rc<Vec<Payload>> {
        let ctx = self
            .cluster
            .clone()
            .expect("cluster shuffle outside cluster");
        self.stats.shuffles += 1;
        let saved_depth = std::mem::take(&mut self.random_read_depth);
        if matches!(transform, Transform::Join) {
            self.random_read_depth = 1;
        }
        // Map side: compute the local slices of each parent and write the
        // local shuffle files, exactly as the single-runtime engine does.
        let left_records = self.compute(parents[0]);
        self.charge_shuffle(&left_records);
        let left_wire = self.wire_parts(parents[0], &left_records);
        let right_wire = if parents.len() > 1 {
            let right_records = self.compute(parents[1]);
            self.charge_shuffle(&right_records);
            Some(self.wire_parts(parents[1], &right_records))
        } else {
            None
        };
        self.random_read_depth = saved_depth;
        let contrib = ShuffleContrib {
            left: left_wire,
            right: right_wire,
        };
        // Journaled deposit (see `run_action_cluster` for the protocol).
        let deposit_bytes: u64 = contrib
            .left
            .iter()
            .chain(contrib.right.iter().flatten())
            .flat_map(|(_, recs)| recs.iter())
            .map(WirePayload::model_bytes)
            .sum();
        self.journal_begin(
            JournalOp::ShuffleDeposit,
            u64::from(rdd.0),
            contrib.digest(),
            deposit_bytes,
        );
        self.crash_probe();
        let now = self.runtime.heap().mem().clock().now_ns();
        let (contribs, t_bar) = ctx
            .exchange
            .gather_shuffle(ctx.exec, rdd.0, contrib, now)
            .unwrap_or_else(|err| std::panic::panic_any(err));
        self.sync_to(t_bar);
        self.crash_probe();
        self.journal_commit(JournalOp::ShuffleDeposit, u64::from(rdd.0));
        // Reassemble the global map output, remembering each partition's
        // origin executor for the transfer accounting.
        let left_global = merge_contrib_parts(&contribs, |c| Some(&c.left));
        let right_global = merge_contrib_parts(&contribs, |c| c.right.as_deref());
        let (xfer_records, xfer_bytes) =
            transfer_cost(&left_global, &right_global, ctx.exec, ctx.n_exec);
        let xfer_ns =
            self.config
                .costs
                .transfer_ns(self.config.transport, xfer_records, xfer_bytes);
        if xfer_ns > 0.0 {
            self.runtime.heap_mut().mem_mut().compute(xfer_ns);
        }
        if xfer_bytes > 0 && self.config.transport == ShuffleTransport::SharedRegion {
            // Colocated fast path taken: these bytes moved at memory
            // bandwidth with zero serde. E=1 transfers nothing, so this
            // never fires there and the single-runtime identity holds.
            self.stats.fastpath_bytes += xfer_bytes;
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::ShuffleFastPath { bytes: xfer_bytes },
                );
            }
        }
        // The consuming stage starts by reading the shuffle files.
        self.runtime.stage_boundary(&self.roots);
        let mut left_buckets = Buckets::new();
        for (_, _, recs) in &left_global {
            for r in recs {
                left_buckets.add(self.copy_record(r));
            }
        }
        let right_buckets = if parents.len() > 1 {
            let mut b = Buckets::new();
            for (_, _, recs) in &right_global {
                for r in recs {
                    b.add(self.copy_record(r));
                }
            }
            Some(b)
        } else {
            None
        };
        let out_global = reduce_side(transform, &self.fns, &left_buckets, right_buckets.as_ref());
        // Keep the output partitions this executor owns (`gid % E == e`,
        // the same placement rule sources use).
        let n_parts = self.config.partitions.clamp(1, out_global.len().max(1));
        let sizes = partition_sizes(out_global.len(), n_parts);
        let mut local = Vec::new();
        let mut gids = Vec::new();
        let mut lens = Vec::new();
        let mut off = 0usize;
        for (gid, &len) in sizes.iter().enumerate() {
            if gid as u64 % u64::from(ctx.n_exec) == u64::from(ctx.exec) {
                local.extend_from_slice(&out_global[off..off + len]);
                gids.push(gid as u64);
                lens.push(len);
            }
            off += len;
        }
        for _ in &local {
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.record_cpu_ns);
        }
        self.charge_shuffle(&local);
        let owned_parts = gids.len() as u64;
        // Meta must precede materialization: the checkpoint hook inside
        // `materialize_into_heap` snapshots by global partition id.
        self.part_meta.insert(
            rdd,
            PartMeta {
                gids,
                lens,
                global_parts: sizes.len() as u64,
            },
        );
        if let Some(rec) = ctx.recovery.as_ref() {
            rec.slot.with(|c| {
                if c.in_replay {
                    c.stages_recomputed += 1;
                    c.partitions_recomputed += owned_parts;
                }
            });
        }
        let persist_heap = !self.config.offheap_cache
            && !self.config.region_alloc
            && matches!(self.rdds[rdd.0 as usize].persisted, Some(l) if l.uses_heap());
        self.materialize_into_heap(rdd, &local, !persist_heap);
        Rc::new(local)
    }

    fn read_materialized(&mut self, rdd: RddId) -> Rc<Vec<Payload>> {
        let mat = self.rdds[rdd.0 as usize]
            .materialized
            .clone()
            .expect("read_materialized on unmaterialized RDD");
        if mat.serialized {
            // Scan the byte buffers, then deserialize record by record —
            // each deserialized record is a fresh young object.
            for array in &mat.arrays {
                self.runtime.heap_mut().read_object_streaming(*array);
            }
            let records = self.ser_store.get(&rdd).map(Rc::clone).unwrap_or_default();
            self.runtime
                .heap_mut()
                .mem_mut()
                .compute(self.config.costs.serde_ns(records.len() as u64));
            for i in 0..records.len() {
                let r = self.copy_record(&records[i]);
                self.stream_alloc(r);
            }
            return records;
        }
        let random = self.random_read_depth > 0;
        let mut out = Vec::with_capacity(mat.len);
        for array in mat.arrays {
            debug_assert!(
                matches!(
                    self.runtime.heap().obj(array).kind,
                    mheap::ObjKind::RddArray { rdd_id } if rdd_id == rdd.0
                ),
                "stale MatData: {rdd} holds someone else's array"
            );
            self.runtime.heap_mut().read_object_streaming(array);
            let tuples = self.runtime.heap().obj(array).refs.clone();
            for t in tuples {
                if random {
                    self.runtime.heap_mut().read_object(t);
                } else {
                    self.runtime.heap_mut().read_object_streaming(t);
                }
                // Shallow: the payload's contents stay shared with the
                // heap object.
                let p = self.runtime.heap().obj(t).payload.clone();
                out.push(if self.config.legacy_copies {
                    p.deep_clone()
                } else {
                    p
                });
            }
        }
        Rc::new(out)
    }

    // ------------------------------------------------------------------
    // Cost charging and closure lookup
    // ------------------------------------------------------------------

    fn charge_disk(&mut self, records: &[Payload]) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.costs.disk_ns(bytes));
    }

    fn charge_shuffle(&mut self, records: &[Payload]) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        self.stats.shuffle_bytes += bytes;
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(mem.clock().now_ns(), &obs::Event::ShuffleSpill { bytes });
            }
        }
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.costs.disk_ns(bytes));
    }

    fn charge_native(&mut self, records: &[Payload], kind: AccessKind) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        self.runtime.heap_mut().mem_mut().access_device(
            DeviceKind::Nvm,
            kind,
            bytes,
            AccessProfile::mutator(),
        );
    }

    // ------------------------------------------------------------------
    // Off-heap H2 region ([`EngineConfig::offheap_cache`])
    // ------------------------------------------------------------------

    /// Simulated-byte accounting of the off-heap region (tests assert its
    /// invariants and end-of-run emptiness).
    pub fn offheap_region(&self) -> &OffHeapRegion {
        &self.offheap_region
    }

    /// Simulated-byte accounting of the lifetime-based region arenas
    /// (tests assert its invariants and end-of-run emptiness).
    pub fn region_heap(&self) -> &RegionHeap {
        &self.region_heap
    }

    /// Which device an off-heap block for `rdd` lives on: the analysis
    /// tag decides, exactly as it does for heap placement — DRAM-tagged
    /// RDDs go to DRAM, everything else to NVM.
    fn offheap_device(&self, rdd: RddId) -> DeviceKind {
        match self.rdds[rdd.0 as usize].tag {
            Some(sparklang::ast::MemoryTag::Dram) => DeviceKind::Dram,
            _ => DeviceKind::Nvm,
        }
    }

    /// Persist `records` into the off-heap region: copy them there at the
    /// tagged device's bandwidth, register the block under its planned
    /// refcount, and make the RDD off-heap-materialized. The GC never
    /// sees the block — no heap objects, no roots, no cards — and the
    /// records are never serialized.
    fn persist_offheap(&mut self, rdd: RddId, records: Rc<Vec<Payload>>) {
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        let device = self.offheap_device(rdd);
        let step = self.lifetime_cur;
        let block = self
            .lifetime
            .as_ref()
            .and_then(|p| p.ops(step))
            .and_then(|o| o.block)
            .unwrap_or_else(|| {
                panic!("off-heap persist of {rdd} at step {step} has no planned block")
            });
        assert_eq!(
            block.id as usize,
            self.plan_blocks.len(),
            "off-heap block order diverged from the lifetime plan"
        );
        self.plan_blocks.push(rdd);
        self.offheap_region
            .alloc(rdd.0, bytes, device, block.retain);
        self.runtime.heap_mut().mem_mut().access_device(
            device,
            AccessKind::Write,
            bytes,
            AccessProfile::mutator(),
        );
        self.stats.offheap_allocs += 1;
        self.stats.offheap_bytes += bytes;
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::OffHeapAlloc { rdd: rdd.0, bytes },
                );
            }
        }
        // A wide node reaches here already carrying its shuffle's
        // transient materialization, which ran both hooks; only a
        // never-materialized (narrow) target still needs them.
        if self.rdds[rdd.0 as usize].materialized.is_none() {
            self.note_live_partitions(rdd);
            self.maybe_checkpoint(rdd, &records);
        }
        self.offheap_store.insert(rdd, records);
    }

    /// Persist `records` into a refcounted RDD-lifetime arena: one bump
    /// allocation on the tagged device, registered under the lifetime
    /// plan's refcount and region class, freed wholesale when the count
    /// reaches zero. Like the off-heap region, the GC never sees the
    /// arena — no heap objects, no roots, no cards — and the records are
    /// never serialized. If the plan abstains (no block for this step),
    /// fall back to the traced heap.
    fn persist_region(&mut self, rdd: RddId, records: Rc<Vec<Payload>>) {
        let step = self.lifetime_cur;
        let Some(block) = self
            .lifetime
            .as_ref()
            .and_then(|p| p.ops(step))
            .and_then(|o| o.block)
        else {
            // Plan abstained: undo any stage-transient routing of this
            // node's shuffle output and take the ordinary heap path.
            self.region_transients.retain(|r| *r != rdd);
            self.region_store.remove(&rdd);
            if !self.is_materialized(rdd) {
                self.materialize_into_heap(rdd, &records, false);
            }
            self.persist_order.push(rdd);
            return;
        };
        let bytes: u64 = records.iter().map(Payload::model_bytes).sum();
        let device = self.offheap_device(rdd);
        assert_eq!(
            block.id as usize,
            self.plan_blocks.len(),
            "region block order diverged from the lifetime plan"
        );
        self.plan_blocks.push(rdd);
        self.region_heap
            .alloc_block(rdd.0, bytes, device, block.class, block.retain);
        self.runtime.heap_mut().mem_mut().access_device(
            device,
            AccessKind::Write,
            bytes,
            AccessProfile::mutator(),
        );
        self.stats.region_allocs += 1;
        self.stats.region_bytes += bytes;
        {
            let mem = self.runtime.heap().mem();
            let observer = mem.observer();
            if observer.enabled() {
                observer.emit(
                    mem.clock().now_ns(),
                    &obs::Event::RegionAlloc { rdd: rdd.0, bytes },
                );
            }
        }
        // A wide node reaches here as a stage transient that already ran
        // both hooks; drop its transient marking so the stage close keeps
        // the store entry. A never-materialized (narrow) target still
        // needs the hooks.
        let was_transient = self.region_transients.contains(&rdd);
        if was_transient {
            self.region_transients.retain(|r| *r != rdd);
        } else if self.rdds[rdd.0 as usize].materialized.is_none()
            && !self.region_store.contains_key(&rdd)
        {
            self.note_live_partitions(rdd);
            self.maybe_checkpoint(rdd, &records);
        }
        self.region_store.insert(rdd, records);
    }

    /// Route a transient materialization into the stage scratch arena:
    /// the records bump the arena (charged as one DRAM copy), the store
    /// keeps them readable for the rest of the evaluation, and the whole
    /// arena dies at stage close — no heap objects, no roots, no cards.
    fn materialize_region_transient(&mut self, rdd: RddId, records: &[Payload]) {
        self.fault_probe_materialize(records);
        let bytes: u64 = records
            .iter()
            .map(|r| self.runtime.heap().tuple_footprint(r.model_bytes()))
            .sum();
        self.region_heap.stage_bump(bytes);
        self.stats.region_stage_bytes += bytes;
        self.runtime.heap_mut().mem_mut().access_device(
            DeviceKind::Dram,
            AccessKind::Write,
            bytes,
            AccessProfile::mutator(),
        );
        self.region_store.insert(rdd, Rc::new(records.to_vec()));
        self.region_transients.push(rdd);
        self.stats.materializations += 1;
        self.note_live_partitions(rdd);
        self.maybe_checkpoint(rdd, records);
    }

    /// Apply the lifetime schedule's operations for dynamic statement
    /// `step`: decrement each consumed block once (freeing at zero) and
    /// force-free blocks born lineage-dead at this statement. Blocks live
    /// in the off-heap region when `offheap_cache` is set (it wins when
    /// both are on), else in the region heap's RDD-lifetime arenas.
    fn apply_lifetime_ops(&mut self, step: usize) {
        let Some(plan) = &self.lifetime else {
            return;
        };
        let Some(ops) = plan.ops(step) else {
            return;
        };
        if ops.releases.is_empty() && ops.frees.is_empty() {
            return;
        }
        let releases = ops.releases.clone();
        let frees = ops.frees.clone();
        let offheap = self.config.offheap_cache;
        for b in releases {
            let rdd = self.plan_blocks[b as usize];
            if offheap {
                if let Some(freed) = self.offheap_region.release(rdd.0) {
                    self.note_offheap_free(rdd.0, freed.bytes);
                }
            } else if let Some(freed) = self.region_heap.release(rdd.0) {
                self.note_region_free(rdd.0, freed.bytes);
            }
        }
        for b in frees {
            let rdd = self.plan_blocks[b as usize];
            if offheap {
                let freed = self.offheap_region.free(rdd.0);
                self.note_offheap_free(rdd.0, freed.bytes);
            } else {
                let freed = self.region_heap.free(rdd.0);
                self.note_region_free(rdd.0, freed.bytes);
            }
        }
    }

    /// Count one off-heap block free and emit its observation.
    fn note_offheap_free(&mut self, rdd: u32, bytes: u64) {
        self.stats.offheap_frees += 1;
        let mem = self.runtime.heap().mem();
        let observer = mem.observer();
        if observer.enabled() {
            observer.emit(
                mem.clock().now_ns(),
                &obs::Event::OffHeapFree { rdd, bytes },
            );
        }
    }

    /// Count one RDD-lifetime arena free and emit its observation.
    fn note_region_free(&mut self, rdd: u32, bytes: u64) {
        self.stats.region_frees += 1;
        let mem = self.runtime.heap().mem();
        let observer = mem.observer();
        if observer.enabled() {
            observer.emit(mem.clock().now_ns(), &obs::Event::RegionFree { rdd, bytes });
        }
    }

    fn apply_reduce(&mut self, f: FuncId, a: &Payload, b: &Payload) -> Payload {
        self.runtime
            .heap_mut()
            .mem_mut()
            .compute(self.config.record_cpu_ns);
        match self.fns.get(f) {
            UserFn::Reduce(f) => f(a, b),
            other => panic!("expected a reduce function, got {other:?}"),
        }
    }
}

/// The deferred simulated-cost log of one fused narrow stage, compact
/// enough to build on the hot path: entry `i` of `outputs_per_input` is
/// how many records input `i` produced, and `alloc_bytes` holds every
/// output's `model_bytes` in production order. Replaying charges, per
/// input: one CPU tick, then one young allocation per output — the exact
/// sequence the stage-at-a-time engine issues.
#[derive(Debug, Default)]
struct StageLog {
    outputs_per_input: Vec<u32>,
    alloc_bytes: Vec<u64>,
}

/// A payload with exactly the given modelled size, standing in for a
/// streamed temporary whose young object is never read back — only its
/// size matters to the allocator, the GC, and the access model.
fn size_stand_in(model_bytes: u64) -> Payload {
    match model_bytes {
        0 => Payload::Unit,
        8 => Payload::Long(0),
        m => {
            debug_assert!(m >= 16, "composite payloads model at least 16 bytes");
            Payload::Bytes { len: m - 16 }
        }
    }
}

/// Push one record depth-first through the chain's remaining stages,
/// logging each stage's charge events in the order the stage-at-a-time
/// engine would issue them and collecting the chain's final outputs into
/// `out`. `stages` and `logs` both start at the current stage (the caller
/// passes the full chain; recursion passes the tail).
fn drive_chain(
    fns: &FnTable,
    stages: &[Transform],
    r: &Payload,
    logs: &mut [StageLog],
    out: &mut Vec<Payload>,
) {
    let (transform, deeper_stages) = stages.split_first().expect("non-empty chain");
    // Split the log slice so the closure can log this stage while the
    // recursion logs the deeper ones.
    let (log_k, deeper_logs) = logs.split_first_mut().expect("one log per stage");
    let mut n_out: u32 = 0;
    let mut sink = |p: Payload| {
        n_out += 1;
        log_k.alloc_bytes.push(p.model_bytes());
        if deeper_stages.is_empty() {
            out.push(p);
        } else {
            drive_chain(fns, deeper_stages, &p, deeper_logs, out);
        }
    };
    apply_narrow(fns, transform, r, &mut sink);
    log_k.outputs_per_input.push(n_out);
}

/// Record-level semantics of the narrow transformations: feed every output
/// record for input `r` to `sink`, in order. Sink style keeps the hot path
/// free of a per-record `Vec` allocation (map/filter produce at most one
/// output).
fn apply_narrow(fns: &FnTable, transform: &Transform, r: &Payload, sink: &mut dyn FnMut(Payload)) {
    match transform {
        Transform::Map(f) => match fns.get(*f) {
            UserFn::Map(f) => sink(f(r)),
            other => panic!("map expects a map function, got {other:?}"),
        },
        Transform::MapValues(f) => match fns.get(*f) {
            UserFn::Map(f) => match r.as_pair() {
                Some((k, v)) => sink(Payload::pair(k.clone(), f(v))),
                None => sink(f(r)),
            },
            other => panic!("mapValues expects a map function, got {other:?}"),
        },
        Transform::FlatMap(f) => match fns.get(*f) {
            UserFn::FlatMap(f) => {
                for p in f(r) {
                    sink(p);
                }
            }
            UserFn::Map(f) => sink(f(r)),
            other => panic!("flatMap expects a flatMap function, got {other:?}"),
        },
        Transform::Filter(f) => match fns.get(*f) {
            UserFn::Filter(f) => {
                if f(r) {
                    sink(r.clone());
                }
            }
            other => panic!("filter expects a filter function, got {other:?}"),
        },
        Transform::Values => match r.as_pair() {
            Some((_, v)) => sink(v.clone()),
            None => sink(r.clone()),
        },
        Transform::Keys => match r.as_pair() {
            Some((k, _)) => sink(k.clone()),
            None => sink(r.clone()),
        },
        Transform::Sample { fraction, seed } => {
            // Deterministic Bernoulli: hash the record with the seed.
            let h = r.fingerprint() ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < *fraction {
                sink(r.clone());
            }
        }
        wide => panic!("{} is not narrow", wide.name()),
    }
}

/// Collect one side's partitions from every executor's contribution as
/// `(global partition id, origin executor, records)` tuples, ascending by
/// partition id — the order the single-runtime engine would scan them in.
fn journal_kind(op: JournalOp) -> obs::JournalKind {
    match op {
        JournalOp::ShuffleDeposit => obs::JournalKind::Shuffle,
        JournalOp::ActionDeposit => obs::JournalKind::Action,
        JournalOp::CheckpointSave => obs::JournalKind::Checkpoint,
    }
}

fn merge_contrib_parts(
    contribs: &[ShuffleContrib],
    side: impl Fn(&ShuffleContrib) -> Option<&[(u64, Vec<WirePayload>)]>,
) -> Vec<(u64, u16, Vec<Payload>)> {
    let mut out = Vec::new();
    for (origin, c) in contribs.iter().enumerate() {
        if let Some(parts) = side(c) {
            for (gid, recs) in parts {
                out.push((
                    *gid,
                    origin as u16,
                    recs.iter().map(Payload::from).collect(),
                ));
            }
        }
    }
    out.sort_by_key(|(gid, _, _)| *gid);
    out
}

/// Cross-executor shuffle traffic chargeable to executor `exec`: records
/// it sends to reducers on other executors plus records it receives from
/// other executors' map sides. Reducer ownership follows key
/// first-appearance order, round-robin across executors — the same
/// modulo placement rule partitions use. With one executor every record
/// stays put and the cost is exactly zero.
fn transfer_cost(
    left: &[(u64, u16, Vec<Payload>)],
    right: &[(u64, u16, Vec<Payload>)],
    exec: u16,
    n_exec: u16,
) -> (u64, u64) {
    let mut key_bucket: HashMap<Key, usize> = HashMap::new();
    for (_, _, recs) in left.iter().chain(right.iter()) {
        for r in recs {
            let next = key_bucket.len();
            key_bucket.entry(r.shuffle_key()).or_insert(next);
        }
    }
    let mut records = 0u64;
    let mut bytes = 0u64;
    for (_, origin, recs) in left.iter().chain(right.iter()) {
        for r in recs {
            let reducer = (key_bucket[&r.shuffle_key()] % n_exec as usize) as u16;
            let crossing = if *origin == exec {
                reducer != exec
            } else {
                reducer == exec
            };
            if crossing {
                records += 1;
                bytes += r.model_bytes();
            }
        }
    }
    (records, bytes)
}

/// Split `n` records into `parts` chunk lengths (the last may be short).
/// This is the engine's canonical partitioning rule: materialized heap
/// layouts, cluster source placement, and shuffle-output placement all
/// chunk with it, so tests can predict partition boundaries.
pub fn partition_sizes(n: usize, parts: usize) -> Vec<usize> {
    if n == 0 {
        return vec![0];
    }
    let per = n.div_ceil(parts).max(1);
    let mut out = Vec::new();
    let mut left = n;
    while left > 0 {
        let take = left.min(per);
        out.push(take);
        left -= take;
    }
    out
}

/// Statements in a block, counted the way the pre-order numbering does.
pub(crate) fn count_stmts(stmts: &[Stmt]) -> u32 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Loop { body, .. } => 1 + count_stmts(body),
            _ => 1,
        })
        .sum()
}
