//! The runtime RDD graph: one node per RDD *instance* created while the
//! driver program executes.
//!
//! Unlike the program IR — where `ranks` is a single variable — the runtime
//! graph gets a fresh node every time a binding re-executes in a loop,
//! which is exactly the instance churn Panthera's analysis reasons about
//! (each iteration's old instance is left cached and unused).

use mheap::ObjId;
use sparklang::ast::{MemoryTag, StorageLevel, Transform};
use std::fmt;

/// Identity of a runtime RDD instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RddId(pub u32);

impl fmt::Display for RddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rdd[{}]", self.0)
    }
}

/// How a runtime RDD is produced.
#[derive(Debug, Clone, PartialEq)]
pub enum RddOp {
    /// An input source, resolved by name in the data registry.
    Source(String),
    /// A transformation over parent instances. Wide transforms make this
    /// node a `ShuffledRDD`-style stage input when it materializes.
    Transformed {
        /// The transformation.
        transform: Transform,
        /// Parent instances.
        parents: Vec<RddId>,
    },
}

/// Heap anchorage of a materialized RDD: the top object and one backbone
/// array per partition (Figure 1 of the paper). The tuples hang off the
/// arrays' refs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatData {
    /// The `org.apache.spark.rdd.RDD` top object.
    pub top: ObjId,
    /// The partitions' backbone arrays, in partition order. For serialized
    /// storage levels these are the compact byte buffers themselves.
    pub arrays: Vec<ObjId>,
    /// Number of records across all partitions.
    pub len: usize,
    /// Stored in serialized form (`*_SER` levels): reads must deserialize.
    pub serialized: bool,
}

/// One runtime RDD instance.
#[derive(Debug, Clone)]
pub struct RddNode {
    /// This node's id.
    pub id: RddId,
    /// Producing operation.
    pub op: RddOp,
    /// The variable name it was last bound to, for reports.
    pub label: Option<String>,
    /// Storage level, if `persist` was called on it.
    pub persisted: Option<StorageLevel>,
    /// The memory tag the runtime knows: from instrumented `rdd_alloc`
    /// calls or from lineage back-propagation. DRAM wins merges.
    pub tag: Option<MemoryTag>,
    /// Heap objects, once materialized.
    pub materialized: Option<MatData>,
    /// `checkpoint()` was called on this instance: snapshot it to durable
    /// NVM storage when it next materializes (cluster mode only).
    pub checkpointed: bool,
}

impl RddNode {
    /// Create an unmaterialized node.
    pub fn new(id: RddId, op: RddOp) -> Self {
        RddNode {
            id,
            op,
            label: None,
            persisted: None,
            tag: None,
            materialized: None,
            checkpointed: false,
        }
    }

    /// Merge a tag into the node (DRAM wins conflicts).
    pub fn merge_tag(&mut self, tag: MemoryTag) {
        self.tag = Some(match self.tag {
            Some(existing) => existing.max(tag),
            None => tag,
        });
    }

    /// Parent instances, if any.
    pub fn parents(&self) -> &[RddId] {
        match &self.op {
            RddOp::Source(_) => &[],
            RddOp::Transformed { parents, .. } => parents,
        }
    }

    /// Is this node the output of a wide transformation (a shuffle)?
    pub fn is_wide(&self) -> bool {
        matches!(&self.op, RddOp::Transformed { transform, .. } if transform.is_wide())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklang::ast::MemoryTag;

    #[test]
    fn tag_merging_prefers_dram() {
        let mut n = RddNode::new(RddId(0), RddOp::Source("x".into()));
        assert_eq!(n.tag, None);
        n.merge_tag(MemoryTag::Nvm);
        assert_eq!(n.tag, Some(MemoryTag::Nvm));
        n.merge_tag(MemoryTag::Dram);
        assert_eq!(n.tag, Some(MemoryTag::Dram));
        n.merge_tag(MemoryTag::Nvm);
        assert_eq!(n.tag, Some(MemoryTag::Dram), "DRAM sticks");
    }

    #[test]
    fn wideness_tracks_transform() {
        let src = RddNode::new(RddId(0), RddOp::Source("x".into()));
        assert!(!src.is_wide());
        assert!(src.parents().is_empty());
        let shuffled = RddNode::new(
            RddId(1),
            RddOp::Transformed {
                transform: Transform::GroupByKey,
                parents: vec![RddId(0)],
            },
        );
        assert!(shuffled.is_wide());
        assert_eq!(shuffled.parents(), &[RddId(0)]);
    }
}
