//! Resumable stage cursor: run a program one statement-stage at a time.
//!
//! [`Engine::run`] drives a program to completion in one call by recursing
//! through [`sparklang`] blocks. A multi-tenant scheduler needs to pause a
//! job at each stage barrier and hand the executor pool to somebody else,
//! so [`StageCursor`] flattens the recursive interpretation into a
//! precomputed step schedule — loops unrolled by their static trip counts —
//! and executes exactly one statement per [`StageCursor::step`] call.
//!
//! The cursor is *bit-identical* to [`Engine::run`]: it calls the same
//! `pub(crate)` prologue/execute/epilogue helpers in the same order with
//! the same pre-order statement ids, so every simulated clock tick, heap
//! event, and lifetime-schedule application happens exactly as it would in
//! a one-shot run. `cursor_matches_run` in this module's tests pins that.

use crate::engine::{count_stmts, ActionResult, Engine, RunOutcome};
use crate::runtime::MemoryRuntime;
use panthera_analysis::InstrumentationPlan;
use sparklang::ast::{Program, Stmt, StmtId};

/// What a flattened step does when executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    /// A non-loop statement: prologue, execute, epilogue.
    Simple,
    /// Entry of a `Loop` statement: runs the loop's own per-statement
    /// prologue once, before the first unrolled iteration.
    LoopEnter,
    /// Exit of a `Loop` statement: runs the loop's per-statement epilogue
    /// once, after the last unrolled iteration.
    LoopExit,
}

/// One entry of the flattened schedule.
#[derive(Debug, Clone)]
struct CursorStep {
    /// Child indices from the program root down to the statement; each
    /// non-final component descends into a `Loop` body.
    path: Vec<u16>,
    /// The pre-order [`StmtId`] the recursive interpreter would assign at
    /// this point (ids repeat across unrolled loop iterations, exactly as
    /// `exec_block` re-numbers each iteration from the loop's base).
    id: u32,
    kind: StepKind,
}

/// Flatten a block into the step schedule, reproducing `exec_block`'s
/// pre-order statement numbering: each statement claims one id, a loop
/// body is re-numbered from the same base every iteration, and the loop
/// advances the counter past one body's worth of ids when it closes.
fn flatten(stmts: &[Stmt], path: &mut Vec<u16>, next: &mut u32, out: &mut Vec<CursorStep>) {
    for (i, s) in stmts.iter().enumerate() {
        let id = *next;
        *next += 1;
        path.push(i as u16);
        match s {
            Stmt::Loop { n, body } => {
                let body_count = count_stmts(body);
                out.push(CursorStep {
                    path: path.clone(),
                    id,
                    kind: StepKind::LoopEnter,
                });
                for _ in 0..*n {
                    let mut inner = *next;
                    flatten(body, path, &mut inner, out);
                }
                *next += body_count;
                out.push(CursorStep {
                    path: path.clone(),
                    id,
                    kind: StepKind::LoopExit,
                });
            }
            _ => out.push(CursorStep {
                path: path.clone(),
                id,
                kind: StepKind::Simple,
            }),
        }
        path.pop();
    }
}

/// Walk a path back to its statement.
fn resolve<'p>(stmts: &'p [Stmt], path: &[u16]) -> &'p Stmt {
    let s = &stmts[path[0] as usize];
    if path.len() == 1 {
        return s;
    }
    match s {
        Stmt::Loop { body, .. } => resolve(body, &path[1..]),
        _ => unreachable!("cursor path descends through a non-loop statement"),
    }
}

/// A paused, resumable run: owns the engine and the program and executes
/// one statement-stage per [`StageCursor::step`] call.
///
/// Statement boundaries are exactly the engine's stage barriers (the
/// epilogue's `cluster_barrier`), so pausing here never splits a shuffle,
/// a collective, or a journaled deposit — the preemption-safety argument
/// of DESIGN.md §13 rests on this.
#[derive(Debug)]
pub struct StageCursor<R: MemoryRuntime> {
    engine: Engine<R>,
    program: Program,
    plan: InstrumentationPlan,
    steps: Vec<CursorStep>,
    pos: usize,
    /// Lifetime steps claimed by the prologues of still-open loops,
    /// innermost last; popped by the matching `LoopExit`.
    loop_frames: Vec<usize>,
    results: Vec<(String, ActionResult)>,
}

impl<R: MemoryRuntime> StageCursor<R> {
    /// Begin a resumable run of `program` on `engine`.
    ///
    /// Performs the same start-of-run setup as [`Engine::run`] (program
    /// validation, variable table, lifetime schedule) and precomputes the
    /// flattened step schedule. Panics on an ill-formed program, like
    /// [`Engine::run`] does.
    pub fn new(mut engine: Engine<R>, program: Program, plan: InstrumentationPlan) -> Self {
        engine.begin_run(&program);
        let mut steps = Vec::new();
        let mut path = Vec::new();
        let mut next = 0u32;
        flatten(&program.stmts, &mut path, &mut next, &mut steps);
        StageCursor {
            engine,
            program,
            plan,
            steps,
            pos: 0,
            loop_frames: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Total statement-stages in the flattened schedule.
    pub fn total_stages(&self) -> usize {
        self.steps.len()
    }

    /// Stages still to run.
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.pos
    }

    /// Whether every stage has executed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.steps.len()
    }

    /// The engine's simulated clock, in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.engine.runtime().heap().mem().clock().now_ns()
    }

    /// Read access to the engine between stages.
    pub fn engine(&self) -> &Engine<R> {
        &self.engine
    }

    /// Mutable engine access between stages, for drivers that act at
    /// stage barriers (the streaming driver re-tags and forces
    /// collections here). Statement boundaries are safe points: no
    /// evaluation is in flight.
    pub fn engine_mut(&mut self) -> &mut Engine<R> {
        &mut self.engine
    }

    /// Mutable access to the instrumentation plan between stages, so an
    /// online policy can override the static tags of sites that have not
    /// executed yet. Sites already executed are unaffected (their tags
    /// were consumed at execution).
    pub fn plan_mut(&mut self) -> &mut InstrumentationPlan {
        &mut self.plan
    }

    /// Execute the next statement-stage. Returns `false` if the schedule
    /// was already exhausted (and nothing ran).
    pub fn step(&mut self) -> bool {
        if self.pos >= self.steps.len() {
            return false;
        }
        let cs = &self.steps[self.pos];
        self.pos += 1;
        match cs.kind {
            StepKind::LoopEnter => {
                let step = self.engine.stmt_prologue();
                self.loop_frames.push(step);
            }
            StepKind::LoopExit => {
                let step = self
                    .loop_frames
                    .pop()
                    .expect("LoopExit without a matching LoopEnter");
                self.engine.stmt_epilogue(step);
            }
            StepKind::Simple => {
                let stmt = resolve(&self.program.stmts, &cs.path);
                let step = self.engine.stmt_prologue();
                self.engine.exec_simple(
                    &self.program,
                    stmt,
                    StmtId(cs.id),
                    &self.plan,
                    &mut self.results,
                );
                self.engine.stmt_epilogue(step);
            }
        }
        true
    }

    /// Finish the run: performs the same end-of-run sweeps as
    /// [`Engine::run`] and returns the engine plus the [`RunOutcome`].
    ///
    /// Panics if stages remain — drive [`StageCursor::step`] to
    /// completion first.
    pub fn finish(mut self) -> (Engine<R>, RunOutcome) {
        assert!(
            self.is_done(),
            "StageCursor::finish with {} stages remaining",
            self.remaining()
        );
        self.engine.finish_run();
        let stats = *self.engine.stats();
        (
            self.engine,
            RunOutcome {
                results: self.results,
                stats,
            },
        )
    }
}
