//! The consolidated cost model: every per-byte / per-record charge the
//! engine and exchange apply for data movement, in one struct.
//!
//! Before this module the constants were scattered across `EngineConfig`
//! fields and inline expressions in the shuffle transfer path; now the
//! engine, the cluster exchange, and the bench suite all charge from the
//! same source of truth (`SystemConfig.costs` mirrors into
//! `EngineConfig.costs` at every run entry point).

/// How shuffle data crosses executors in a cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleTransport {
    /// The distributed default: map-side output is serialized, shipped
    /// over the network, and deserialized on the reduce side. Charged at
    /// `serde_cpu_ns` per crossing record plus `net_ns_per_byte` per
    /// crossing byte.
    #[default]
    Serde,
    /// Colocated executors on one large-memory machine: map-side buckets
    /// are deposited as intern-table-backed `WirePayload`s into a shared
    /// simulated memory region and the reducer reads them in place.
    /// No serialization on either side — transfer is charged at
    /// `mem_ns_per_byte` (memory bandwidth) per crossing byte only.
    SharedRegion,
}

impl ShuffleTransport {
    /// Stable label for reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            ShuffleTransport::Serde => "serde",
            ShuffleTransport::SharedRegion => "shared_region",
        }
    }
}

/// Per-byte and per-record charges for simulated data movement.
///
/// All values are virtual nanoseconds; a zero disables the charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Simulated disk bandwidth (shuffle spill files, `DISK_ONLY`
    /// persists), ns per byte.
    pub disk_ns_per_byte: f64,
    /// Cross-executor network bandwidth for the serde transport, ns per
    /// byte.
    pub net_ns_per_byte: f64,
    /// Serialization + deserialization CPU cost per record (charged on
    /// serialized persists, serialized reads, and every record crossing
    /// executors under the serde transport).
    pub serde_cpu_ns: f64,
    /// Shared-memory bandwidth for the `SharedRegion` transport, ns per
    /// byte. An order of magnitude cheaper than the network and with no
    /// per-record serde term — that is the whole fast path.
    pub mem_ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            disk_ns_per_byte: 0.5,
            net_ns_per_byte: 1.0,
            serde_cpu_ns: 60.0,
            mem_ns_per_byte: 0.1,
        }
    }
}

impl CostModel {
    /// Charge for moving `bytes` through the simulated disk.
    pub fn disk_ns(&self, bytes: u64) -> f64 {
        self.disk_ns_per_byte * bytes as f64
    }

    /// Serde CPU charge for `records` records.
    pub fn serde_ns(&self, records: u64) -> f64 {
        self.serde_cpu_ns * records as f64
    }

    /// Full serde-transport charge for a cross-executor transfer:
    /// serialize every crossing record and push every byte over the
    /// network.
    pub fn serde_transfer_ns(&self, records: u64, bytes: u64) -> f64 {
        self.serde_cpu_ns * records as f64 + self.net_ns_per_byte * bytes as f64
    }

    /// Shared-region transport charge: memory bandwidth only, zero serde.
    pub fn shared_region_ns(&self, bytes: u64) -> f64 {
        self.mem_ns_per_byte * bytes as f64
    }

    /// Charge for a cross-executor transfer under `transport`.
    pub fn transfer_ns(&self, transport: ShuffleTransport, records: u64, bytes: u64) -> f64 {
        match transport {
            ShuffleTransport::Serde => self.serde_transfer_ns(records, bytes),
            ShuffleTransport::SharedRegion => self.shared_region_ns(bytes),
        }
    }

    /// True if every charge is non-negative (a negative cost would run
    /// the simulated clock backwards).
    pub fn is_valid(&self) -> bool {
        self.disk_ns_per_byte >= 0.0
            && self.net_ns_per_byte >= 0.0
            && self.serde_cpu_ns >= 0.0
            && self.mem_ns_per_byte >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_fast_path_is_cheaper() {
        let c = CostModel::default();
        assert!(c.is_valid());
        // 1000 records / 64 KiB: the fast path must beat serde + net.
        let bytes = 64 * 1024;
        let serde = c.transfer_ns(ShuffleTransport::Serde, 1000, bytes);
        let shared = c.transfer_ns(ShuffleTransport::SharedRegion, 1000, bytes);
        assert!(shared < serde, "{shared} >= {serde}");
        assert_eq!(shared, c.mem_ns_per_byte * bytes as f64);
    }

    #[test]
    fn zero_bytes_costs_nothing_on_either_transport() {
        let c = CostModel::default();
        assert_eq!(c.transfer_ns(ShuffleTransport::Serde, 0, 0), 0.0);
        assert_eq!(c.transfer_ns(ShuffleTransport::SharedRegion, 0, 0), 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ShuffleTransport::Serde.label(), "serde");
        assert_eq!(ShuffleTransport::SharedRegion.label(), "shared_region");
        assert_eq!(ShuffleTransport::default(), ShuffleTransport::Serde);
    }

    #[test]
    fn negative_cost_is_invalid() {
        let c = CostModel {
            net_ns_per_byte: -1.0,
            ..CostModel::default()
        };
        assert!(!c.is_valid());
    }
}
