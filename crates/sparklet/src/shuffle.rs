//! Shuffle semantics: the reduce-side of the wide transformations.
//!
//! Map-side outputs are bucketed by shuffle key; this module implements
//! what the reducer does with each bucket — grouping, combining, joining,
//! deduplicating. The heap effects (disk traffic, `ShuffledRDD`
//! materialization) are charged by the engine; this is pure record logic.

use mheap::{Key, Payload};
use sparklang::{FnTable, FuncId, Transform, UserFn};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiplicative hasher: one rotate-xor-multiply per 8-byte
/// word. Shuffle keys are one or two words, so this is a handful of
/// instructions per insert versus SipHash's full rounds — and unlike
/// `RandomState` it is deterministic across processes, which keeps bucket
/// iteration order (and therefore simulated cost) reproducible.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.write_u64(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Deterministic build-hasher for shuffle-side hash maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Map-side output grouped by key, in first-appearance order (kept
/// deterministic for reproducible runs).
#[derive(Debug, Clone, Default)]
pub struct Buckets {
    order: Vec<Key>,
    by_key: HashMap<Key, Vec<Payload>, FxBuildHasher>,
}

impl Buckets {
    /// Empty buckets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one record under its shuffle key.
    ///
    /// # Panics
    ///
    /// Panics if the record has no shuffle key (not a pair or scalar).
    pub fn add(&mut self, record: Payload) {
        let key = record.shuffle_key();
        self.by_key
            .entry(key)
            .or_insert_with(|| {
                self.order.push(key);
                Vec::new()
            })
            .push(record);
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        self.order.len()
    }

    /// Total records across all keys.
    pub fn n_records(&self) -> usize {
        self.by_key.values().map(Vec::len).sum()
    }

    /// Iterate `(key, records)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &[Payload])> + '_ {
        self.order
            .iter()
            .map(move |k| (*k, self.by_key[k].as_slice()))
    }
}

/// The value of a pair record (or the record itself if not a pair).
fn value_of(record: &Payload) -> Payload {
    match record.as_pair() {
        Some((_, v)) => v.clone(),
        None => record.clone(),
    }
}

/// The key component of a pair record as a payload.
fn key_payload(record: &Payload) -> Payload {
    match record.as_pair() {
        Some((k, _)) => k.clone(),
        None => record.clone(),
    }
}

/// Run the reduce side of `transform` over bucketed map output.
///
/// For [`Transform::Join`], `right` must hold the second input's buckets.
///
/// # Panics
///
/// Panics if `transform` is narrow, if a required function id is of the
/// wrong kind, or if `Join` is invoked without `right`.
pub fn reduce_side(
    transform: &Transform,
    fns: &FnTable,
    left: &Buckets,
    right: Option<&Buckets>,
) -> Vec<Payload> {
    match transform {
        Transform::ReduceByKey(f) => reduce_by_key(fns, *f, left),
        Transform::GroupByKey => group_by_key(left),
        Transform::Distinct => distinct(left),
        Transform::Join => join(left, right.expect("join needs two inputs")),
        Transform::SortByKey => sort_by_key(left),
        other => panic!("{} is not a wide transformation", other.name()),
    }
}

fn combiner(fns: &FnTable, f: FuncId) -> &dyn Fn(&Payload, &Payload) -> Payload {
    match fns.get(f) {
        UserFn::Reduce(f) => f,
        other => panic!("reduceByKey requires a reduce function, got {other:?}"),
    }
}

fn reduce_by_key(fns: &FnTable, f: FuncId, buckets: &Buckets) -> Vec<Payload> {
    let combine = combiner(fns, f);
    let mut out = Vec::with_capacity(buckets.n_keys());
    for (_, records) in buckets.iter() {
        let mut acc = value_of(&records[0]);
        for r in &records[1..] {
            acc = combine(&acc, &value_of(r));
        }
        out.push(Payload::pair(key_payload(&records[0]), acc));
    }
    out
}

fn group_by_key(buckets: &Buckets) -> Vec<Payload> {
    buckets
        .iter()
        .map(|(_, records)| {
            let values: Vec<Payload> = records.iter().map(value_of).collect();
            Payload::pair(key_payload(&records[0]), Payload::list(values))
        })
        .collect()
}

fn distinct(buckets: &Buckets) -> Vec<Payload> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (_, records) in buckets.iter() {
        for r in records {
            if seen.insert(r.fingerprint()) {
                out.push(r.clone());
            }
        }
    }
    out
}

fn sort_by_key(buckets: &Buckets) -> Vec<Payload> {
    let mut keyed: Vec<(Key, &[Payload])> = buckets.iter().collect();
    keyed.sort_by_key(|(k, _)| *k);
    keyed
        .into_iter()
        .flat_map(|(_, records)| records.iter().cloned())
        .collect()
}

fn join(left: &Buckets, right: &Buckets) -> Vec<Payload> {
    let mut out = Vec::new();
    for (key, lrecords) in left.iter() {
        let Some(rrecords) = right.by_key.get(&key) else {
            continue;
        };
        for l in lrecords {
            for r in rrecords {
                out.push(Payload::pair(
                    key_payload(l),
                    Payload::pair(value_of(l), value_of(r)),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklang::ProgramBuilder;

    fn keyed(k: i64, v: i64) -> Payload {
        Payload::keyed(k, Payload::Long(v))
    }

    fn bucket(records: Vec<Payload>) -> Buckets {
        let mut b = Buckets::new();
        for r in records {
            b.add(r);
        }
        b
    }

    #[test]
    fn reduce_by_key_sums() {
        let mut b = ProgramBuilder::new("t");
        let add = b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap() + c.as_long().unwrap()));
        let (_, fns) = b.finish();
        let buckets = bucket(vec![keyed(1, 10), keyed(2, 5), keyed(1, 7)]);
        let out = reduce_side(&Transform::ReduceByKey(add), &fns, &buckets, None);
        assert_eq!(out, vec![keyed(1, 17), keyed(2, 5)]);
    }

    #[test]
    fn group_by_key_builds_lists() {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let buckets = bucket(vec![keyed(1, 10), keyed(1, 20)]);
        let out = reduce_side(&Transform::GroupByKey, &fns, &buckets, None);
        assert_eq!(out.len(), 1);
        let (k, v) = out[0].as_pair().unwrap();
        assert_eq!(k.as_long(), Some(1));
        assert!(matches!(v, Payload::List(items) if items.len() == 2));
    }

    #[test]
    fn distinct_dedupes_whole_records() {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let buckets = bucket(vec![keyed(1, 10), keyed(1, 10), keyed(1, 11)]);
        let out = reduce_side(&Transform::Distinct, &fns, &buckets, None);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_is_a_cross_product_per_key() {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let left = bucket(vec![keyed(1, 10), keyed(1, 11), keyed(2, 20)]);
        let right = bucket(vec![keyed(1, 100), keyed(3, 300)]);
        let out = reduce_side(&Transform::Join, &fns, &left, Some(&right));
        // Key 1: 2x1 combinations; key 2 and 3 have no match.
        assert_eq!(out.len(), 2);
        let (k, v) = out[0].as_pair().unwrap();
        assert_eq!(k.as_long(), Some(1));
        let (l, r) = v.as_pair().unwrap();
        assert_eq!(l.as_long(), Some(10));
        assert_eq!(r.as_long(), Some(100));
    }

    #[test]
    fn sort_by_key_orders_records() {
        let (_, fns) = ProgramBuilder::new("t").finish();
        let buckets = bucket(vec![keyed(5, 50), keyed(1, 10), keyed(3, 30), keyed(1, 11)]);
        let out = reduce_side(&Transform::SortByKey, &fns, &buckets, None);
        let keys: Vec<i64> = out
            .iter()
            .map(|r| r.as_pair().unwrap().0.as_long().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "not a wide transformation")]
    fn narrow_transform_rejected() {
        let (_, fns) = ProgramBuilder::new("t").finish();
        reduce_side(&Transform::Values, &fns, &Buckets::new(), None);
    }

    #[test]
    fn buckets_preserve_insertion_order() {
        let buckets = bucket(vec![keyed(5, 0), keyed(3, 0), keyed(5, 1)]);
        let keys: Vec<Key> = buckets.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![Key::Long(5), Key::Long(3)]);
        assert_eq!(buckets.n_keys(), 2);
        assert_eq!(buckets.n_records(), 3);
    }
}
