#![deny(missing_docs)]

//! A miniature Spark: RDDs, lineage, stages, and shuffles, executed over
//! the simulated managed heap.
//!
//! The [`Engine`] interprets [`sparklang`] driver programs, building a
//! runtime RDD graph (one node per RDD *instance*, so loop iterations
//! produce the instance churn Panthera's analysis reasons about) and
//! evaluating actions and persists the way the paper describes Spark doing
//! it: lazy narrow chains streaming records through the young generation,
//! wide transformations shuffling through simulated disk files, and
//! `ShuffledRDD`s materialized at stage starts and collected when the
//! consuming evaluation completes.
//!
//! Memory management is abstracted behind the [`MemoryRuntime`] trait —
//! the `panthera` crate implements it for Panthera proper and for every
//! baseline memory mode.

mod cluster;
mod costs;
mod cursor;
mod data;
mod engine;
mod rdd;
mod runtime;
mod shuffle;

pub use cluster::{
    ActionContrib, BeginOutcome, CheckpointEntry, CheckpointStore, ClusterCtx, ClusterError,
    DepositJournal, ExchangeClient, JournalOp, PartMeta, RecoveryCounters, RecoveryCtx,
    RecoveryMark, RecoverySlot, ShuffleContrib,
};
pub use costs::{CostModel, ShuffleTransport};
pub use cursor::StageCursor;
pub use data::{DataRegistry, InternTable};
pub use engine::{partition_sizes, ActionResult, Engine, EngineConfig, ExecStats, RunOutcome};
pub use rdd::{MatData, RddId, RddNode, RddOp};
pub use runtime::MemoryRuntime;
pub use shuffle::{reduce_side, Buckets};
