//! Input sources: named, pre-generated datasets standing in for
//! `ctx.textFile(...)` over HDFS, plus the string intern table backing
//! [`Payload::Text`].

use crate::shuffle::FxBuildHasher;
use mheap::Payload;
use std::collections::HashMap;
use std::rc::Rc;

/// A deterministic string intern table.
///
/// Symbols are dense ids assigned in first-intern order, so the same
/// sequence of `intern` calls always yields the same ids regardless of
/// process, platform, or hash-map iteration order. Strings are stored
/// once as `Rc<str>`; [`InternTable::resolve`] hands out shared
/// references, never copies. [`Payload::Text`] carries only the symbol
/// id and modelled length, so text records stay two words no matter how
/// long the underlying string is.
#[derive(Debug, Clone, Default)]
pub struct InternTable {
    by_string: HashMap<Rc<str>, u64, FxBuildHasher>,
    by_sym: Vec<Rc<str>>,
}

impl InternTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The symbol for `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> u64 {
        if let Some(&sym) = self.by_string.get(s) {
            return sym;
        }
        let sym = self.by_sym.len() as u64;
        let shared: Rc<str> = Rc::from(s);
        self.by_sym.push(Rc::clone(&shared));
        self.by_string.insert(shared, sym);
        sym
    }

    /// The interned string for `sym`, if assigned.
    pub fn resolve(&self, sym: u64) -> Option<Rc<str>> {
        self.by_sym.get(sym as usize).cloned()
    }

    /// The symbol already assigned to `s`, if any (no interning).
    pub fn lookup(&self, s: &str) -> Option<u64> {
        self.by_string.get(s).copied()
    }

    /// Intern `s` and wrap it as a [`Payload::Text`] whose modelled
    /// length is the string's UTF-8 length.
    pub fn text(&mut self, s: &str) -> Payload {
        let sym = self.intern(s);
        Payload::Text {
            sym,
            len: s.len() as u32,
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_sym.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_sym.is_empty()
    }
}

/// Registry of named input datasets.
///
/// Datasets are stored behind `Rc` so the engine can hold a source RDD's
/// records without copying the vector every time a lineage re-computation
/// re-reads the input.
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    sources: HashMap<String, Rc<Vec<Payload>>>,
}

impl DataRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dataset under `name`, replacing any previous one.
    pub fn register(&mut self, name: &str, records: Vec<Payload>) {
        self.sources.insert(name.to_string(), Rc::new(records));
    }

    /// The records of `name`.
    ///
    /// # Panics
    ///
    /// Panics if no dataset was registered under `name` — a mis-wired
    /// workload, not a runtime condition.
    pub fn records(&self, name: &str) -> &[Payload] {
        self.records_shared_ref(name)
    }

    /// The records of `name`, shared (no copy).
    ///
    /// # Panics
    ///
    /// Panics if no dataset was registered under `name`.
    pub fn records_shared(&self, name: &str) -> Rc<Vec<Payload>> {
        Rc::clone(self.records_shared_ref(name))
    }

    fn records_shared_ref(&self, name: &str) -> &Rc<Vec<Payload>> {
        self.sources
            .get(name)
            .unwrap_or_else(|| panic!("no dataset registered under {name:?}"))
    }

    /// Total modelled bytes of a dataset.
    pub fn bytes(&self, name: &str) -> u64 {
        self.records(name).iter().map(Payload::model_bytes).sum()
    }

    /// Registered dataset names (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.sources.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_fetch() {
        let mut r = DataRegistry::new();
        r.register("edges", vec![Payload::keyed(1, Payload::Long(2))]);
        assert_eq!(r.records("edges").len(), 1);
        assert_eq!(r.bytes("edges"), 32);
        assert_eq!(r.names(), vec!["edges"]);
    }

    #[test]
    #[should_panic(expected = "no dataset registered")]
    fn missing_dataset_panics() {
        DataRegistry::new().records("nope");
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = InternTable::new();
        let a = t.intern("spark.apache.org");
        let b = t.intern("wikipedia.org");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(t.intern("spark.apache.org"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("wikipedia.org"), Some(b));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.resolve(a).as_deref(), Some("spark.apache.org"));
        assert!(t.resolve(99).is_none());
    }

    #[test]
    fn interned_text_payloads_compare_by_symbol() {
        let mut t = InternTable::new();
        let x = t.text("alpha");
        let y = t.text("alpha");
        let z = t.text("beta");
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_eq!(x.fingerprint(), y.fingerprint());
        match x {
            Payload::Text { len, .. } => assert_eq!(len, 5),
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn resolve_shares_storage() {
        let mut t = InternTable::new();
        let sym = t.intern("shared");
        let a = t.resolve(sym).unwrap();
        let b = t.resolve(sym).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
    }
}
