//! Input sources: named, pre-generated datasets standing in for
//! `ctx.textFile(...)` over HDFS.

use mheap::Payload;
use std::collections::HashMap;

/// Registry of named input datasets.
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    sources: HashMap<String, Vec<Payload>>,
}

impl DataRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dataset under `name`, replacing any previous one.
    pub fn register(&mut self, name: &str, records: Vec<Payload>) {
        self.sources.insert(name.to_string(), records);
    }

    /// The records of `name`.
    ///
    /// # Panics
    ///
    /// Panics if no dataset was registered under `name` — a mis-wired
    /// workload, not a runtime condition.
    pub fn records(&self, name: &str) -> &[Payload] {
        self.sources
            .get(name)
            .unwrap_or_else(|| panic!("no dataset registered under {name:?}"))
    }

    /// Total modelled bytes of a dataset.
    pub fn bytes(&self, name: &str) -> u64 {
        self.records(name).iter().map(Payload::model_bytes).sum()
    }

    /// Registered dataset names (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.sources.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_fetch() {
        let mut r = DataRegistry::new();
        r.register("edges", vec![Payload::keyed(1, Payload::Long(2))]);
        assert_eq!(r.records("edges").len(), 1);
        assert_eq!(r.bytes("edges"), 32);
        assert_eq!(r.names(), vec!["edges"]);
    }

    #[test]
    #[should_panic(expected = "no dataset registered")]
    fn missing_dataset_panics() {
        DataRegistry::new().records("nope");
    }
}
