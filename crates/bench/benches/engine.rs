//! Micro-benchmarks of the execution engine: streaming, shuffles, and
//! materialized reads through the simulated heap.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mheap::Payload;
use panthera::{MemoryMode, PantheraRuntime, SystemConfig, SIM_GB};
use panthera_analysis::analyze;
use sparklang::{ActionKind, FnTable, Program, ProgramBuilder, StorageLevel};
use sparklet::{DataRegistry, Engine, EngineConfig};
use std::hint::black_box;

fn stream_program(n_maps: u32) -> (Program, FnTable) {
    let mut b = ProgramBuilder::new("stream");
    let inc = b.map_fn(|p| Payload::Long(p.as_long().unwrap_or(0) + 1));
    let src = b.source("nums");
    let mut e = src;
    for _ in 0..n_maps {
        e = e.map(inc);
    }
    let x = b.bind("x", e);
    b.action(x, ActionKind::Count);
    b.finish()
}

fn shuffle_program() -> (Program, FnTable) {
    let mut b = ProgramBuilder::new("shuffle");
    let add =
        b.reduce_fn(|a, c| Payload::Long(a.as_long().unwrap_or(0) + c.as_long().unwrap_or(0)));
    let src = b.source("pairs");
    let x = b.bind("x", src.reduce_by_key(add));
    b.persist(x, StorageLevel::MemoryOnly);
    b.action(x, ActionKind::Count);
    b.finish()
}

fn engine() -> impl FnMut(Program, FnTable, DataRegistry) -> u64 {
    move |program, fns, data| {
        let cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
        let rt = PantheraRuntime::new(&cfg).expect("valid config");
        let mut e = Engine::new(rt, fns, data);
        let plan = analyze(&program).plan;
        let out = e.run(&program, &plan);
        out.stats.records_streamed
    }
}

fn bench_streaming(c: &mut Criterion) {
    c.bench_function("engine/stream_4_maps_x_4k_records", |b| {
        let mut run = engine();
        b.iter_batched(
            || {
                let (p, fns) = stream_program(4);
                let mut data = DataRegistry::new();
                data.register("nums", (0..4_096).map(Payload::Long).collect());
                (p, fns, data)
            },
            |(p, fns, data)| black_box(run(p, fns, data)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_shuffle(c: &mut Criterion) {
    c.bench_function("engine/shuffle_4k_records_64_keys", |b| {
        let mut run = engine();
        b.iter_batched(
            || {
                let (p, fns) = shuffle_program();
                let mut data = DataRegistry::new();
                data.register(
                    "pairs",
                    (0..4_096)
                        .map(|i| Payload::keyed(i % 64, Payload::Long(i)))
                        .collect(),
                );
                (p, fns, data)
            },
            |(p, fns, data)| black_box(run(p, fns, data)),
            BatchSize::SmallInput,
        );
    });
}

fn pair_pipeline_program(n_maps: u32) -> (Program, FnTable) {
    let mut b = ProgramBuilder::new("pipeline");
    // Structure-preserving map: every handoff moves a composite record,
    // so the Rc-vs-deep-copy difference is what gets measured.
    let keep = b.map_fn(|p| p.clone());
    let src = b.source("pairs");
    let mut e = src;
    for _ in 0..n_maps {
        e = e.map(keep);
    }
    let x = b.bind("x", e);
    b.action(x, ActionKind::Count);
    b.finish()
}

/// The zero-clone pipeline's three execution modes over one narrow chain
/// of eight maps on composite (pair-of-doubles) records:
///
/// * `fused` — the default engine (single streaming pass, `Rc` handoffs);
/// * `unfused` — stage-at-a-time with `Rc` handoffs;
/// * `legacy_copies` — stage-at-a-time with a structural deep copy at
///   every handoff, emulating the pre-rework engine.
///
/// All three report bit-identical simulated results; only host time
/// differs. Save a baseline with `CRITERION_SAVE_BASELINE=<name>`.
fn bench_pipeline_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for (label, fuse, legacy) in [
        ("fused", true, false),
        ("unfused", false, false),
        ("legacy_copies", false, true),
    ] {
        g.bench_with_input(
            BenchmarkId::new("8_maps_x_4k_pairs", label),
            &(fuse, legacy),
            |b, &(fuse, legacy)| {
                b.iter_batched(
                    || {
                        let (p, fns) = pair_pipeline_program(8);
                        let mut data = DataRegistry::new();
                        data.register(
                            "pairs",
                            (0..4_096)
                                .map(|i| Payload::keyed(i, Payload::doubles(vec![i as f64; 8])))
                                .collect(),
                        );
                        (p, fns, data)
                    },
                    |(p, fns, data)| {
                        let cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
                        let rt = PantheraRuntime::new(&cfg).expect("valid config");
                        let ecfg = EngineConfig {
                            fuse_narrow: fuse,
                            legacy_copies: legacy,
                            ..EngineConfig::default()
                        };
                        let mut e = Engine::with_config(rt, fns, data, ecfg);
                        let plan = analyze(&p).plan;
                        black_box(e.run(&p, &plan).stats.records_streamed)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_streaming,
    bench_shuffle,
    bench_pipeline_modes
);
criterion_main!(benches);
