//! Micro-benchmarks of the static analysis — the paper stresses it adds
//! zero runtime overhead; here we show it is also cheap at compile time.

use criterion::{criterion_group, criterion_main, Criterion};
use panthera_analysis::{analyze, infer_tags};
use sparklang::{ActionKind, Program, ProgramBuilder, StorageLevel};
use std::hint::black_box;

/// A deep program: `depth` nested loops, each defining and persisting RDDs.
fn deep_program(depth: u32) -> Program {
    fn nest(b: &mut ProgramBuilder, outer: sparklang::VarId, depth: u32) {
        if depth == 0 {
            b.action(outer, ActionKind::Count);
            return;
        }
        b.loop_n(3, |b| {
            let inner = b.bind("inner", b.var(outer).distinct());
            b.persist(inner, StorageLevel::MemoryOnly);
            nest(b, inner, depth - 1);
        });
    }
    let mut b = ProgramBuilder::new("deep");
    let src = b.source("input");
    let root = b.bind("root", src);
    b.persist(root, StorageLevel::MemoryOnly);
    nest(&mut b, root, depth);
    b.finish().0
}

/// A wide program: `n` independent persisted variables used in one loop.
fn wide_program(n: u32) -> Program {
    let mut b = ProgramBuilder::new("wide");
    let mut vars = Vec::new();
    for i in 0..n {
        let src = b.source(&format!("s{i}"));
        let v = b.bind(&format!("v{i}"), src.distinct());
        b.persist(v, StorageLevel::MemoryOnly);
        vars.push(v);
    }
    b.loop_n(5, |b| {
        for v in &vars {
            b.action(*v, ActionKind::Count);
        }
    });
    b.finish().0
}

fn bench_infer(c: &mut Criterion) {
    let deep = deep_program(8);
    let wide = wide_program(64);
    c.bench_function("analysis/infer_deep_8", |b| {
        b.iter(|| black_box(infer_tags(black_box(&deep))))
    });
    c.bench_function("analysis/infer_wide_64", |b| {
        b.iter(|| black_box(infer_tags(black_box(&wide))))
    });
    c.bench_function("analysis/full_pipeline_wide_64", |b| {
        b.iter(|| black_box(analyze(black_box(&wide))))
    });
}

criterion_group!(benches, bench_infer);
criterion_main!(benches);
