//! Micro-benchmarks of the collectors: minor scavenges over dead/live
//! populations, tag propagation, and major mark-compact.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gc::{GcCoordinator, PantheraPolicy};
use hybridmem::{Addr, MemorySystemConfig};
use mheap::{CardTable, Heap, HeapConfig, MemTag, ObjKind, Payload, RootSet, CARD_BYTES};
use std::hint::black_box;

fn setup() -> (Heap, GcCoordinator) {
    let heap = Heap::new(
        HeapConfig::panthera(64 << 20, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(21 << 20, 43 << 20),
    )
    .expect("valid config");
    (
        heap,
        GcCoordinator::new(Box::new(PantheraPolicy::default())),
    )
}

fn bench_minor_all_dead(c: &mut Criterion) {
    c.bench_function("gc/minor_4k_dead", |b| {
        b.iter_batched(
            || {
                let (mut heap, gc) = setup();
                let roots = RootSet::new();
                for i in 0..4_096 {
                    heap.alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(i))
                        .unwrap();
                }
                (heap, gc, roots)
            },
            |(mut heap, mut gc, roots)| {
                gc.minor_gc(&mut heap, &roots);
                black_box(heap.live_objects())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_minor_with_tagged_survivors(c: &mut Criterion) {
    c.bench_function("gc/minor_1k_eager_promotions", |b| {
        b.iter_batched(
            || {
                let (mut heap, gc) = setup();
                let mut roots = RootSet::new();
                let nvm = heap.old_nvm().unwrap();
                let arr = heap.alloc_array_old(nvm, 1, 1_024, MemTag::Nvm).unwrap();
                roots.push(arr);
                for i in 0..1_024 {
                    let t = heap
                        .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(i))
                        .unwrap();
                    heap.push_ref(arr, t);
                }
                (heap, gc, roots)
            },
            |(mut heap, mut gc, roots)| {
                gc.minor_gc(&mut heap, &roots);
                black_box(gc.stats().eager_promotions)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_major_compaction(c: &mut Criterion) {
    c.bench_function("gc/major_2k_live_2k_dead", |b| {
        b.iter_batched(
            || {
                let (mut heap, gc) = setup();
                let mut roots = RootSet::new();
                let nvm = heap.old_nvm().unwrap();
                for i in 0..4_096i64 {
                    let id = heap
                        .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(i))
                        .unwrap();
                    if i % 2 == 0 {
                        roots.push(id);
                    }
                }
                (heap, gc, roots)
            },
            |(mut heap, mut gc, roots)| {
                gc.major_gc(&mut heap, &roots);
                black_box(gc.stats().old_freed)
            },
            BatchSize::SmallInput,
        );
    });
}

/// The minor GC's dirty-card sweep in isolation: a 64 MiB card table
/// (131 072 cards) walked with the word-skipping bitmap cursor, at the
/// two densities that matter — sparse post-mutator dirt and a quarter-
/// dirty table after heavy barrier traffic. Compare against a saved
/// baseline with `CRITERION_BASELINE=<name>`.
fn bench_card_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("cards");
    for (label, stride) in [("sparse_1pct", 97usize), ("dense_1of4", 4)] {
        let mut table = CardTable::new(Addr(0), 64 << 20);
        let n = table.len();
        let mut i = 0usize;
        while i < n {
            table.mark_dirty(Addr(i as u64 * CARD_BYTES));
            i += stride;
        }
        g.bench_with_input(BenchmarkId::new("sweep_64MiB", label), &table, |b, t| {
            b.iter(|| {
                let mut sum = 0usize;
                let mut cursor = 0usize;
                while let Some(card) = t.next_dirty_from(cursor) {
                    sum += card;
                    cursor = card + 1;
                }
                black_box(sum + t.dirty_count())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_minor_all_dead,
    bench_minor_with_tagged_survivors,
    bench_major_compaction,
    bench_card_sweep
);
criterion_main!(benches);
