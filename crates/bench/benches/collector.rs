//! Micro-benchmarks of the collectors: minor scavenges over dead/live
//! populations, tag propagation, and major mark-compact.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gc::{GcCoordinator, PantheraPolicy};
use hybridmem::MemorySystemConfig;
use mheap::{Heap, HeapConfig, MemTag, ObjKind, Payload, RootSet};
use std::hint::black_box;

fn setup() -> (Heap, GcCoordinator) {
    let heap = Heap::new(
        HeapConfig::panthera(64 << 20, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(21 << 20, 43 << 20),
    )
    .expect("valid config");
    (heap, GcCoordinator::new(Box::new(PantheraPolicy::default())))
}

fn bench_minor_all_dead(c: &mut Criterion) {
    c.bench_function("gc/minor_4k_dead", |b| {
        b.iter_batched(
            || {
                let (mut heap, gc) = setup();
                let roots = RootSet::new();
                for i in 0..4_096 {
                    heap.alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(i))
                        .unwrap();
                }
                (heap, gc, roots)
            },
            |(mut heap, mut gc, roots)| {
                gc.minor_gc(&mut heap, &roots);
                black_box(heap.live_objects())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_minor_with_tagged_survivors(c: &mut Criterion) {
    c.bench_function("gc/minor_1k_eager_promotions", |b| {
        b.iter_batched(
            || {
                let (mut heap, gc) = setup();
                let mut roots = RootSet::new();
                let nvm = heap.old_nvm().unwrap();
                let arr = heap.alloc_array_old(nvm, 1, 1_024, MemTag::Nvm).unwrap();
                roots.push(arr);
                for i in 0..1_024 {
                    let t = heap
                        .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(i))
                        .unwrap();
                    heap.push_ref(arr, t);
                }
                (heap, gc, roots)
            },
            |(mut heap, mut gc, roots)| {
                gc.minor_gc(&mut heap, &roots);
                black_box(gc.stats().eager_promotions)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_major_compaction(c: &mut Criterion) {
    c.bench_function("gc/major_2k_live_2k_dead", |b| {
        b.iter_batched(
            || {
                let (mut heap, gc) = setup();
                let mut roots = RootSet::new();
                let nvm = heap.old_nvm().unwrap();
                for i in 0..4_096i64 {
                    let id = heap
                        .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(i))
                        .unwrap();
                    if i % 2 == 0 {
                        roots.push(id);
                    }
                }
                (heap, gc, roots)
            },
            |(mut heap, mut gc, roots)| {
                gc.major_gc(&mut heap, &roots);
                black_box(gc.stats().old_freed)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_minor_all_dead,
    bench_minor_with_tagged_survivors,
    bench_major_compaction
);
criterion_main!(benches);
