//! End-to-end wall-clock cost of simulating each workload under each
//! memory mode (small scale — this measures the *simulator*, not the
//! simulated system; the simulated results live in the `fig*`/`table*`
//! binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
use std::hint::black_box;
use workloads::{build_workload, WorkloadId};

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    for id in [WorkloadId::Pr, WorkloadId::Km, WorkloadId::Cc] {
        for mode in [
            MemoryMode::DramOnly,
            MemoryMode::Unmanaged,
            MemoryMode::Panthera,
        ] {
            g.bench_with_input(
                BenchmarkId::new(id.name(), mode.label()),
                &(id, mode),
                |b, (id, mode)| {
                    b.iter(|| {
                        let w = build_workload(*id, 0.1, 7);
                        let cfg = SystemConfig::new(*mode, 16 * SIM_GB, 1.0 / 3.0);
                        let run = RunBuilder::new(&w.program, w.fns, w.data)
                            .config(cfg)
                            .run()
                            .expect("valid configuration");
                        black_box(run.report.elapsed_s)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
