//! Micro-benchmarks of the heap's allocation paths: the young-generation
//! fast path, pretenured array allocation, and the write barrier.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hybridmem::MemorySystemConfig;
use mheap::{Heap, HeapConfig, MemTag, ObjKind, Payload};
use std::hint::black_box;

fn heap() -> Heap {
    Heap::new(
        HeapConfig::panthera(256 << 20, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(85 << 20, 171 << 20),
    )
    .expect("valid config")
}

fn bench_young_alloc(c: &mut Criterion) {
    c.bench_function("alloc/young_tuple_x1024", |b| {
        b.iter_batched(
            heap,
            |mut h| {
                for i in 0..1_024 {
                    let id = h
                        .alloc_young(
                            ObjKind::Tuple,
                            MemTag::None,
                            vec![],
                            Payload::Long(black_box(i)),
                        )
                        .expect("eden sized for the batch");
                    black_box(id);
                }
                h
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_pretenured_array(c: &mut Criterion) {
    c.bench_function("alloc/pretenured_array_1k_slots_x64", |b| {
        b.iter_batched(
            heap,
            |mut h| {
                let nvm = h.old_nvm().unwrap();
                for rdd in 0..64 {
                    black_box(
                        h.alloc_array_old(nvm, rdd, 1024, MemTag::Nvm)
                            .expect("space"),
                    );
                }
                h
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_write_barrier(c: &mut Criterion) {
    c.bench_function("alloc/write_barrier_push_ref_x1024", |b| {
        b.iter_batched(
            || {
                let mut h = heap();
                let nvm = h.old_nvm().unwrap();
                let arr = h.alloc_array_old(nvm, 1, 1 << 20, MemTag::Nvm).unwrap();
                let t = h
                    .alloc_young(ObjKind::Tuple, MemTag::None, vec![], Payload::Long(1))
                    .unwrap();
                (h, arr, t)
            },
            |(mut h, arr, t)| {
                for _ in 0..1_024 {
                    h.push_ref(black_box(arr), black_box(t));
                }
                h
            },
            BatchSize::LargeInput,
        );
    });
}

criterion_group!(
    benches,
    bench_young_alloc,
    bench_pretenured_array,
    bench_write_barrier
);
criterion_main!(benches);
