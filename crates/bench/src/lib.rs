//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (Section 5).
//!
//! Each `src/bin/*` binary reproduces one artifact:
//!
//! | Binary | Artifact |
//! |--------|----------|
//! | `fig2c` | Figure 2(c): PageRank under 120 GB DRAM vs 32 GB DRAM vs hybrid |
//! | `table1` | Table 1: allocation policies |
//! | `table2` | Table 2: device parameters |
//! | `table4` | Table 4: programs and datasets |
//! | `fig4` | Figure 4: time & energy, 7 workloads, 64 GB heap, 1/3 DRAM |
//! | `fig5` | Figure 5: computation vs GC time breakdown |
//! | `fig6` | Figure 6: time across {64,120} GB × {1/4,1/3} DRAM |
//! | `fig7` | Figure 7: energy across the same sweep |
//! | `fig8` | Figure 8: GraphX-CC bandwidth over time |
//! | `table5` | Table 5: monitored calls and migrated RDDs |
//! | `baselines` | Section 5.2: Kingsguard-N/W comparison |
//! | `ablation` | Section 5.3/5.5: eager promotion, card padding, migration |
//!
//! Set `PANTHERA_SCALE` (default `1.0`) to shrink or grow every dataset,
//! e.g. `PANTHERA_SCALE=0.2` for a quick pass.

use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use workloads::{build_workload, WorkloadId};

/// Shared deterministic seed for all experiments.
pub const SEED: u64 = 7;

/// Dataset scale from `PANTHERA_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("PANTHERA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(1.0)
}

/// Run one workload under one mode on a heap of `heap_gb` simulated GB
/// with the given DRAM ratio.
pub fn run(id: WorkloadId, mode: MemoryMode, heap_gb: u64, dram_ratio: f64) -> RunReport {
    run_with(id, SystemConfig::new(mode, heap_gb * SIM_GB, dram_ratio))
}

/// Run one workload under an explicit configuration.
pub fn run_with(id: WorkloadId, config: SystemConfig) -> RunReport {
    let w = build_workload(id, scale(), SEED);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(config)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .report
}

/// The paper's main setup: 64 GB heap, 1/3 DRAM.
pub fn run_main(id: WorkloadId, mode: MemoryMode) -> RunReport {
    run(id, mode, 64, 1.0 / 3.0)
}

/// Print a standard figure header.
pub fn header(title: &str, paper: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(paper reference: {paper}; scale {})", scale());
    println!("================================================================");
}

/// Format a normalized value column.
pub fn norm(x: f64) -> String {
    format!("{x:>6.2}")
}

/// If `PANTHERA_CSV_DIR` is set, append the reports to
/// `<dir>/<experiment>.csv` (with a header when the file is new) for
/// plotting pipelines. Silently does nothing otherwise.
pub fn maybe_csv(experiment: &str, reports: &[&RunReport]) {
    let Ok(dir) = std::env::var("PANTHERA_CSV_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{experiment}.csv"));
    let fresh = !path.exists();
    let _ = std::fs::create_dir_all(&dir);
    let mut body = String::new();
    if fresh {
        body.push_str(RunReport::csv_header());
        body.push('\n');
    }
    for r in reports {
        body.push_str(&r.csv_row());
        body.push('\n');
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(body.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_parses_and_defaults() {
        // Env-var driven; just exercise the default path (no var set in
        // the test environment means 1.0, or whatever the runner set).
        let s = super::scale();
        assert!(s > 0.0);
    }

    #[test]
    fn norm_formats_fixed_width() {
        assert_eq!(super::norm(1.0), "  1.00");
        assert_eq!(super::norm(12.345), " 12.35");
    }
}
