//! Figure 7: energy for two heaps (64/120 GB) x two DRAM ratios (1/4,
//! 1/3), on PR, LR, GraphX-CC, MLlib-BC, normalized to the same-size
//! DRAM-only baseline.

use panthera::MemoryMode;
use panthera_bench::{header, norm, run};
use workloads::WorkloadId;

const WORKLOADS: [WorkloadId; 4] = [
    WorkloadId::Pr,
    WorkloadId::Lr,
    WorkloadId::Cc,
    WorkloadId::Bc,
];

fn main() {
    header(
        "Figure 7: normalized energy across heaps and DRAM ratios",
        "Fig. 7; paper panthera averages: (64GB,1/4) 0.583, (64GB,1/3) 0.620, \
         (120GB,1/4) 0.430, (120GB,1/3) 0.483",
    );
    for heap_gb in [120u64, 64] {
        println!("--- {heap_gb} GB heap (normalized to {heap_gb} GB DRAM-only) ---");
        println!(
            "{:<12} | {:>10} {:>10} | {:>10} {:>10}",
            "workload", "unm 1/4", "pan 1/4", "unm 1/3", "pan 1/3"
        );
        let mut sums = [0.0f64; 4];
        for id in WORKLOADS {
            let base = run(id, MemoryMode::DramOnly, heap_gb, 1.0);
            let mut cols = Vec::new();
            for ratio in [0.25, 1.0 / 3.0] {
                let unm = run(id, MemoryMode::Unmanaged, heap_gb, ratio);
                let pan = run(id, MemoryMode::Panthera, heap_gb, ratio);
                cols.push(unm.energy_vs(&base));
                cols.push(pan.energy_vs(&base));
            }
            println!(
                "{:<12} | {:>10} {:>10} | {:>10} {:>10}",
                id.name(),
                norm(cols[0]),
                norm(cols[1]),
                norm(cols[2]),
                norm(cols[3])
            );
            for (s, c) in sums.iter_mut().zip(&cols) {
                *s += c;
            }
        }
        let n = WORKLOADS.len() as f64;
        println!(
            "{:<12} | {:>10} {:>10} | {:>10} {:>10}",
            "average",
            norm(sums[0] / n),
            norm(sums[1] / n),
            norm(sums[2] / n),
            norm(sums[3] / n)
        );
        println!();
    }
    println!(
        "expected shape: smaller DRAM ratios and bigger heaps save more \
         energy; panthera beats unmanaged at equal ratios (paper Section 5.3)."
    );
}
