//! Section 5.2's baseline comparison: Kingsguard-Nursery and
//! Kingsguard-Writes (the Write Rationing GC) against unmanaged and
//! Panthera.

use panthera::MemoryMode;
use panthera_bench::{header, norm, run_main};
use workloads::WorkloadId;

fn main() {
    header(
        "Section 5.2 baselines: time normalized to 64GB DRAM-only",
        "paper: KW averaged +41% time; unmanaged outperformed both KN and KW",
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "workload", "unmanaged", "kn", "kw", "panthera"
    );
    println!("{}", "-".repeat(54));
    let mut sums = [0.0f64; 4];
    for id in WorkloadId::ALL {
        let base = run_main(id, MemoryMode::DramOnly);
        let cols = [
            run_main(id, MemoryMode::Unmanaged).time_vs(&base),
            run_main(id, MemoryMode::KingsguardNursery).time_vs(&base),
            run_main(id, MemoryMode::KingsguardWrites).time_vs(&base),
            run_main(id, MemoryMode::Panthera).time_vs(&base),
        ];
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9}",
            id.name(),
            norm(cols[0]),
            norm(cols[1]),
            norm(cols[2]),
            norm(cols[3])
        );
        for (s, c) in sums.iter_mut().zip(&cols) {
            *s += c;
        }
    }
    let n = WorkloadId::ALL.len() as f64;
    println!("{}", "-".repeat(54));
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "average",
        norm(sums[0] / n),
        norm(sums[1] / n),
        norm(sums[2] / n),
        norm(sums[3] / n)
    );
    println!();
    println!(
        "expected shape: panthera < unmanaged < Kingsguard. Write rationing \
         settles read-mostly persisted RDDs in NVM and pays write-barrier \
         and migration costs on top."
    );
}
