//! Ablations of Panthera's optimizations (Sections 4.2.2, 4.2.3, 5.3,
//! 5.5): eager promotion, card padding, and dynamic monitoring/migration.

use panthera::{MemoryMode, SystemConfig, SIM_GB};
use panthera_bench::{header, run_with, scale};
use workloads::WorkloadId;

fn config(mutate: impl FnOnce(&mut SystemConfig)) -> SystemConfig {
    let mut c = SystemConfig::new(MemoryMode::Panthera, 64 * SIM_GB, 1.0 / 3.0);
    mutate(&mut c);
    c
}

fn main() {
    header(
        "Ablation: Panthera without each optimization (64GB, 1/3 DRAM)",
        "Section 5.3: -card padding => GC time +60%; eager promotion ~9% of \
         the GC win. Section 5.5: disabling monitoring+migration is not \
         noticeable on average",
    );
    let _ = scale();
    println!(
        "{:<12} | {:>10} {:>10} {:>10} {:>10} | {:>11} {:>11}",
        "workload", "full", "-eager", "-padding", "-migration", "gc -eager", "gc -padding"
    );
    println!("{}", "-".repeat(86));
    let mut gc_pad_ratios = Vec::new();
    let mut gc_eager_ratios = Vec::new();
    for id in WorkloadId::ALL {
        let full = run_with(id, config(|_| {}));
        let no_eager = run_with(id, config(|c| c.eager_promotion = false));
        let no_pad = run_with(id, config(|c| c.card_padding = false));
        let no_migration = run_with(id, config(|c| c.dynamic_migration = false));
        println!(
            "{:<12} | {:>9.4}s {:>9.4}s {:>9.4}s {:>9.4}s | {:>10.2}x {:>10.2}x",
            id.name(),
            full.elapsed_s,
            no_eager.elapsed_s,
            no_pad.elapsed_s,
            no_migration.elapsed_s,
            no_eager.gc_s() / full.gc_s(),
            no_pad.gc_s() / full.gc_s(),
        );
        gc_eager_ratios.push(no_eager.gc_s() / full.gc_s());
        gc_pad_ratios.push(no_pad.gc_s() / full.gc_s());
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("{}", "-".repeat(86));
    println!(
        "average GC-time blowup: without eager promotion {:.2}x, without card \
         padding {:.2}x (paper: padding off => GC +60%)",
        avg(&gc_eager_ratios),
        avg(&gc_pad_ratios)
    );
}
