//! Table 5: dynamic monitoring and migration under Panthera — monitored
//! RDD method calls and dynamically migrated RDDs per workload.

use panthera::MemoryMode;
use panthera_bench::{header, run_main};
use workloads::WorkloadId;

fn main() {
    header(
        "Table 5: dynamic monitoring and migration (Panthera, 64GB, 1/3 DRAM)",
        "Table 5; paper: PR 328/0, KM 550/0, LR 333/0, TC 217/0, CC 2945/1, \
         SSSP 3632/1, BC 336/0",
    );
    println!(
        "{:<12} {:>18} {:>16}",
        "Program", "# Calls monitored", "# RDDs migrated"
    );
    println!("{}", "-".repeat(48));
    for id in WorkloadId::ALL {
        let r = run_main(id, MemoryMode::Panthera);
        println!(
            "{:<12} {:>18} {:>16}",
            id.name(),
            r.monitored_calls,
            r.gc.rdds_migrated
        );
    }
    println!();
    println!(
        "expected shape: monitoring counts are small everywhere (overhead \
         < 1%); only the GraphX workloads — whose per-superstep graph RDDs \
         the analysis over-tags as hot — see dynamic migrations."
    );
}
