//! perfsuite: the host-performance trajectory harness (`BENCH_PR4.json`).
//!
//! Unlike the `fig*`/`table*` binaries, which reproduce the paper's
//! *simulated* results, this suite measures how fast the simulator itself
//! runs on the host — the quantity the zero-clone pipeline rework
//! optimizes. It times four Table 4 workloads end-to-end under two engine
//! configurations:
//!
//! * **new** — the current engine: `Rc`-shared payloads, fused narrow
//!   chains, bitmap card scanning;
//! * **legacy** — the pre-rework engine emulated faithfully:
//!   stage-at-a-time narrow execution (`fuse_narrow: false`) plus a
//!   structural deep copy at every record handoff
//!   (`legacy_copies: true`), the cost profile of the seed's boxed
//!   payloads.
//!
//! Both arms must report **bit-identical simulated results** (elapsed
//! time, energy, GC counts) — the suite asserts this invariant and
//! records it in the JSON. Host times are the median of `N` samples
//! (`PERFSUITE_SAMPLES`, default 5).
//!
//! Three micro-passes cover the allocator, the minor-GC cycle, and the
//! dirty-card sweep in isolation.
//!
//! An **executor-scaling arm** runs PageRank and an inline hash join on
//! the cluster path of `RunBuilder` at E = 1, 2, 4 executors (host threads
//! from `PANTHERA_HOST_THREADS`, default one per executor), asserting
//! that the E = 1 cluster report is bit-identical to the single-runtime
//! path and that host-thread count is invisible to the simulation.
//!
//! Output: `BENCH_PR4.json` in the current directory (override with
//! `PERFSUITE_OUT`), plus a host-time-free companion at `<out>.sim`
//! containing only simulated quantities — two perfsuite runs with
//! different host-thread budgets must produce byte-identical `.sim`
//! files, which CI checks with `cmp`.
//!
//! Flags:
//!
//! * `--quick` — one sample per arm at scale 0.05 (CI smoke), unless the
//!   `PERFSUITE_SAMPLES` / `PANTHERA_SCALE` environment overrides are set;
//! * `--executors N` — replace the default E = 1, 2, 4 scaling ladder
//!   with E = 1, N (E = 1 always runs, anchoring the legacy check);
//! * `--trace [PATH]` — after the benchmark, run PageRank under Panthera
//!   with the structured event stream attached and write it as JSONL to
//!   `PATH` (default `trace.jsonl`). Feed the file to `trace_summary`.
//! * `--faults SEED` — run the recovery-overhead suite instead: cluster
//!   PageRank under `{Recompute, CheckpointEvery(2)}` × {fault-free, one
//!   seeded mid-run executor crash}, asserting the faulted arms produce
//!   bit-identical results and host-thread-invariant reports. Emits
//!   `BENCH_PR5.json` plus its `.sim` companion.
//! * `--faults-anywhere SEED` — run the crash-anywhere suite instead:
//!   cluster PageRank under both recovery policies with virtual-time
//!   crash points drawn uniformly over the fault-free run's duration
//!   (crashes mid-stage, mid-deposit, mid-checkpoint — not at barriers),
//!   asserting bit-identical results, journal-validated no-op replays,
//!   and host-thread-invariant reports. Emits `BENCH_PR8.json` plus its
//!   `.sim` companion.
//! * `--shuffle` — run the serde-tax suite instead: shuffle-heavy join
//!   and group-by arms at E = 2, 4, 8 under both shuffle transports
//!   (per-record serde vs zero-copy shared region), asserting
//!   bit-identical results and a simulated win for the shared region,
//!   plus a cached-PageRank arm with and without the off-heap H2 region
//!   comparing GC pause totals. Emits `BENCH_PR6.json` plus its `.sim`
//!   companion.
//! * `--service` — run the multi-tenant scheduling suite instead: a
//!   20-job mixed workload (long PageRank front-runners plus trailing
//!   small jobs and atomic 2-executor hash joins) over an E = 4 shared
//!   pool under fair-share and FIFO policies, asserting fair share beats
//!   FIFO on p99 queueing delay at no more than 5% throughput cost and
//!   that the `ServiceReport` is host-thread invariant. Emits
//!   `BENCH_PR9.json` plus its `.sim` companion.
//! * `--stream` — run the streaming-regret suite instead: one seeded
//!   drifting micro-batch stream under the static, online, and oracle
//!   re-tagging policies, asserting byte-identical window outputs and
//!   the regret ordering (online ≤ static against the clairvoyant
//!   oracle), with per-policy DRAM hit ratios and batch-latency / GC
//!   pause quantiles. Emits `BENCH_PR10.json` plus its `.sim` companion.
//! * `--regions` — run the region-arena suite instead: every Table 4
//!   workload at a fixed cache-heavy scale with `region_alloc` off and
//!   on, asserting bit-identical results and drained arenas, and
//!   requiring at least 4 of the 7 workloads to reduce both the minor-GC
//!   pause p90 and the cards scanned; plus clustered PageRank arms at
//!   E = 2, 4 with regions on. Emits `BENCH_PR7.json` plus its `.sim`
//!   companion.

use gc::{GcCoordinator, PantheraPolicy};
use hybridmem::{Addr, MemorySystemConfig};
use mheap::{CardTable, Heap, HeapConfig, MemTag, ObjKind, Payload, RootSet, CARD_BYTES};
use obs::{Json, JsonlSink, MetricsAggregator, Observer};
use panthera::cluster::{host_threads_from_env, FaultPlan, FaultSpec};
use panthera::{
    MemoryMode, RecoveryPolicy, RunBuilder, RunReport, RunSummary, SystemConfig, SIM_GB,
};
use panthera_jobs::{JobOutcome, JobService, JobSpec, SchedPolicy, ServiceConfig, ServiceReport};
use panthera_stream::{RetagPolicy, StreamBuilder, StreamReport, StreamSpec};
use sparklang::{ActionKind, FnTable, Program, ProgramBuilder};
use sparklet::{DataRegistry, EngineConfig, ShuffleTransport};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant;
use workloads::{build_workload, WorkloadId};

/// Write a benchmark artifact atomically: the bytes land in `<path>.tmp`
/// and rename into place, so an interrupted run never leaves a stray
/// half-written artifact next to the canonical one (the PR 6 suite once
/// leaked a `BENCH_PR6.json.sim` into the tree this way).
fn write_atomic(path: &str, contents: String) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

/// Workloads timed end-to-end (PageRank, K-Means, Logistic Regression,
/// Connected Components — the ISSUE's Table 4 picks).
const WORKLOADS: [WorkloadId; 4] = [
    WorkloadId::Pr,
    WorkloadId::Km,
    WorkloadId::Lr,
    WorkloadId::Cc,
];

const SEED: u64 = 7;

/// Parsed command line: `--quick`, `--executors N`, `--trace [PATH]`,
/// `--faults SEED`, `--faults-anywhere SEED`, `--shuffle`, and
/// `--regions`.
struct Cli {
    quick: bool,
    executors: Option<u16>,
    trace: Option<String>,
    faults: Option<u64>,
    faults_anywhere: Option<u64>,
    shuffle: bool,
    regions: bool,
    service: bool,
    stream: bool,
}

impl Cli {
    fn parse() -> Cli {
        let mut cli = Cli {
            quick: false,
            executors: None,
            trace: None,
            faults: None,
            faults_anywhere: None,
            shuffle: false,
            regions: false,
            service: false,
            stream: false,
        };
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--executors" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse::<u16>().ok())
                        .filter(|&n| n >= 1);
                    match n {
                        Some(n) => cli.executors = Some(n),
                        None => {
                            eprintln!("perfsuite: --executors needs a positive integer");
                            std::process::exit(2);
                        }
                    }
                }
                "--trace" => {
                    let path = match args.peek() {
                        Some(next) if !next.starts_with("--") => args.next().unwrap(),
                        _ => "trace.jsonl".to_string(),
                    };
                    cli.trace = Some(path);
                }
                "--faults" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(seed) => cli.faults = Some(seed),
                    None => {
                        eprintln!("perfsuite: --faults needs an integer seed");
                        std::process::exit(2);
                    }
                },
                "--faults-anywhere" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(seed) => cli.faults_anywhere = Some(seed),
                    None => {
                        eprintln!("perfsuite: --faults-anywhere needs an integer seed");
                        std::process::exit(2);
                    }
                },
                "--shuffle" => cli.shuffle = true,
                "--regions" => cli.regions = true,
                "--service" => cli.service = true,
                "--stream" => cli.stream = true,
                other => {
                    eprintln!("perfsuite: unknown flag `{other}`");
                    eprintln!(
                        "usage: perfsuite [--quick] [--executors N] [--trace [PATH]] \
                         [--faults SEED] [--faults-anywhere SEED] [--shuffle] [--regions] \
                         [--service] [--stream]"
                    );
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// The executor-count ladder for the scaling arm: `1, 2, 4` by
    /// default, or `1, N` under `--executors N` (E = 1 always runs so
    /// the legacy-equivalence check has its anchor).
    fn executor_ladder(&self) -> Vec<u16> {
        match self.executors {
            None => vec![1, 2, 4],
            Some(1) => vec![1],
            Some(n) => vec![1, n],
        }
    }
}

fn samples(cli: &Cli) -> usize {
    std::env::var("PERFSUITE_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|n: &usize| *n >= 1)
        .unwrap_or(if cli.quick { 1 } else { 5 })
}

fn scale_with(cli: &Cli) -> f64 {
    std::env::var("PANTHERA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(if cli.quick { 0.05 } else { 0.15 })
}

/// Median of host-time samples for `f`, in nanoseconds, plus the value
/// from the final run.
fn median_host_ns<T, F: FnMut() -> T>(n: usize, mut f: F) -> (u64, T) {
    let mut times = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let report = black_box(f());
        times.push(t0.elapsed().as_nanos() as u64);
        last = Some(report);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("n >= 1"))
}

fn run_arm(id: WorkloadId, ecfg: EngineConfig, scale: f64) -> RunReport {
    let w = build_workload(id, scale, SEED);
    let cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .engine(ecfg)
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", id.name()))
        .report
}

struct WorkloadRow {
    name: &'static str,
    legacy_ns: u64,
    new_ns: u64,
    speedup: f64,
    sim_elapsed_s: f64,
    sim_identical: bool,
    report: RunReport,
}

fn bench_workload(id: WorkloadId, n: usize, scale: f64) -> WorkloadRow {
    let legacy_cfg = EngineConfig {
        fuse_narrow: false,
        legacy_copies: true,
        ..EngineConfig::default()
    };
    let (legacy_ns, legacy_rep) = median_host_ns(n, || run_arm(id, legacy_cfg.clone(), scale));
    let (new_ns, new_rep) = median_host_ns(n, || run_arm(id, EngineConfig::default(), scale));
    // The invariant that makes the comparison meaningful: both engines
    // simulate the same machine doing the same thing.
    let sim_identical = legacy_rep.elapsed_s.to_bits() == new_rep.elapsed_s.to_bits()
        && legacy_rep.energy_j().to_bits() == new_rep.energy_j().to_bits()
        && legacy_rep.gc.minor_count == new_rep.gc.minor_count
        && legacy_rep.gc.major_count == new_rep.gc.major_count
        && legacy_rep.heap.allocated_bytes == new_rep.heap.allocated_bytes;
    assert!(
        sim_identical,
        "{}: legacy and new engines diverged in simulated results",
        id.name()
    );
    WorkloadRow {
        name: id.name(),
        legacy_ns,
        new_ns,
        speedup: legacy_ns as f64 / new_ns.max(1) as f64,
        sim_elapsed_s: new_rep.elapsed_s,
        sim_identical,
        report: new_rep,
    }
}

/// An inline two-source hash join (no `WorkloadId` covers one): `n`
/// keyed records joined against `n / 2`, keys folded so buckets collide,
/// counted once. Exercises the two-parent shuffle path the cluster
/// exchange has to merge from both sides.
fn hashjoin_build(scale: f64) -> (Program, FnTable, DataRegistry) {
    let n = ((40_000.0 * scale) as usize).max(64);
    let keys = (n / 8).max(1) as i64;
    let mut b = ProgramBuilder::new("hashjoin");
    let left = b.source("left");
    let right = b.source("right");
    let joined = b.bind("joined", left.join(right));
    b.action(joined, ActionKind::Count);
    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "left",
        (0..n)
            .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 31 + 7)))
            .collect(),
    );
    data.register(
        "right",
        (0..n / 2)
            .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 13 + 1)))
            .collect(),
    );
    (program, fns, data)
}

fn cluster_run_once(wl: &str, scale: f64, executors: u16, host_threads: usize) -> RunSummary {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = executors;
    // An empty fault plan pins the cluster path even at E = 1, so the
    // e1_matches_legacy check compares the two runtimes, not one with
    // itself.
    let none = FaultPlan::none();
    let pr_build = || {
        let w = build_workload(WorkloadId::Pr, scale, SEED);
        (w.program, w.fns, w.data)
    };
    let hj_build = || hashjoin_build(scale);
    let builder = match wl {
        "pr" => RunBuilder::from_build(&pr_build),
        _ => RunBuilder::from_build(&hj_build),
    };
    builder
        .config(cfg)
        .host_threads(host_threads)
        .faults(&none)
        .run()
        .expect("valid cluster config")
}

struct ScalingRow {
    workload: &'static str,
    executors: u16,
    host_ns: u64,
    e1_matches_legacy: Option<bool>,
    report: RunReport,
}

/// The executor-scaling arm: each workload across the E ladder, plus the
/// two cluster invariants — E = 1 must be bit-identical to the
/// single-runtime path, and (spot-checked at the ladder's top) the report
/// must not depend on the host-thread budget.
fn bench_scaling(ladder: &[u16], n: usize, scale: f64) -> (Vec<ScalingRow>, bool) {
    let mut rows = Vec::new();
    let mut determinism = true;
    let top = *ladder.last().expect("non-empty ladder");
    for wl in ["pr", "hashjoin"] {
        for &e in ladder {
            let host_threads = host_threads_from_env(usize::from(e));
            let (host_ns, out) = median_host_ns(n, || cluster_run_once(wl, scale, e, host_threads));
            let e1_matches_legacy = (e == 1).then(|| {
                let legacy = match wl {
                    "pr" => run_arm(WorkloadId::Pr, EngineConfig::default(), scale),
                    _ => {
                        let (program, fns, data) = hashjoin_build(scale);
                        let cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
                        RunBuilder::new(&program, fns, data)
                            .config(cfg)
                            .run()
                            .expect("valid configuration")
                            .report
                    }
                };
                let ok = out.report.to_json().to_compact() == legacy.to_json().to_compact();
                assert!(
                    ok,
                    "{wl}: E=1 cluster diverged from the single-runtime path"
                );
                ok
            });
            if e == top && e > 1 {
                let serial = cluster_run_once(wl, scale, e, 1);
                let ok = serial.report.to_json().to_compact() == out.report.to_json().to_compact();
                assert!(ok, "{wl} E={e}: report depends on the host-thread budget");
                determinism &= ok;
            }
            rows.push(ScalingRow {
                workload: wl,
                executors: e,
                host_ns,
                e1_matches_legacy,
                report: out.report,
            });
        }
    }
    (rows, determinism)
}

fn scaling_json(rows: &[ScalingRow], sim_only: bool) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                let mut fields = vec![
                    ("workload", Json::Str(r.workload.into())),
                    ("executors", Json::UInt(u64::from(r.executors))),
                    ("sim_elapsed_s", Json::Num(r.report.elapsed_s)),
                    ("sim_energy_j", Json::Num(r.report.energy_j())),
                ];
                if !sim_only {
                    fields.push(("host_ns", Json::UInt(r.host_ns)));
                }
                if let Some(ok) = r.e1_matches_legacy {
                    fields.push(("e1_matches_legacy", Json::Bool(ok)));
                }
                fields.push(("report", r.report.to_json()));
                Json::obj(fields)
            })
            .collect(),
    )
}

/// The `--trace` run: PageRank under Panthera on a heap tight enough to
/// force dynamic migration (scale 0.2, 8 GB — the configuration the
/// observability tests pin down), with a JSONL sink and a metrics
/// aggregator attached. Events observe, never charge, so the trace run's
/// simulated results are identical to an untraced run of the same config.
fn write_trace(path: &str) {
    let jsonl = match JsonlSink::create(std::path::Path::new(path)) {
        Ok(sink) => Rc::new(RefCell::new(sink)),
        Err(e) => {
            eprintln!("perfsuite: cannot create {path}: {e}");
            std::process::exit(1);
        }
    };
    let metrics = Rc::new(RefCell::new(MetricsAggregator::new()));
    let observer = Observer::with_sink(jsonl.clone());
    observer.attach(metrics.clone());

    let w = build_workload(WorkloadId::Pr, 0.2, 3);
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
    cfg.observer = observer;
    let report = RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .unwrap_or_else(|e| panic!("trace config invalid: {e}"))
        .report;
    jsonl.borrow_mut().flush().expect("flush trace");

    let m = metrics.borrow();
    println!();
    println!(
        "trace: {} events -> {path} ({} RDDs migrated)",
        m.events_seen(),
        report.gc.rdds_migrated
    );
    print!("{}", m.summary_table());
    assert!(
        report.gc.rdds_migrated >= 1,
        "the trace run must exercise dynamic migration"
    );
}

/// Allocator micro-pass: young allocations through the full coordinator
/// path (bump allocation + automatic minor GCs when eden fills).
fn micro_alloc_ns_per_op() -> f64 {
    let mut heap = Heap::new(
        HeapConfig::panthera(48_000_000, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(16_000_000, 32_000_000),
    )
    .unwrap();
    let mut gc = GcCoordinator::new(Box::new(PantheraPolicy::default()));
    let roots = RootSet::new();
    const OPS: usize = 200_000;
    let t0 = Instant::now();
    for i in 0..OPS {
        black_box(gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i as i64),
        ));
    }
    t0.elapsed().as_nanos() as f64 / OPS as f64
}

/// Minor-GC micro-pass: fill eden with short-lived tuples, collect,
/// repeat. Reports nanoseconds per collection cycle.
fn micro_minor_gc_ns() -> f64 {
    let mut heap = Heap::new(
        HeapConfig::panthera(48_000_000, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(16_000_000, 32_000_000),
    )
    .unwrap();
    let mut gc = GcCoordinator::new(Box::new(PantheraPolicy::default()));
    let roots = RootSet::new();
    const CYCLES: usize = 50;
    const PER_CYCLE: usize = 2_000;
    let t0 = Instant::now();
    for _ in 0..CYCLES {
        for i in 0..PER_CYCLE {
            gc.alloc_young(
                &mut heap,
                &roots,
                ObjKind::Tuple,
                MemTag::None,
                vec![],
                Payload::Long(i as i64),
            );
        }
        gc.minor_gc(&mut heap, &roots);
    }
    t0.elapsed().as_nanos() as f64 / CYCLES as f64
}

/// Card-scan micro-pass: sweep a 64 MiB card table with sparse dirt via
/// the word-skipping cursor. Reports nanoseconds per full sweep.
fn micro_card_scan() -> (f64, usize, usize) {
    let capacity = 64u64 << 20;
    let mut table = CardTable::new(Addr(0), capacity);
    let n_cards = table.len();
    // Sparse dirt, the common post-mutator state: ~1% of cards.
    let mut dirty = 0usize;
    let mut idx = 0usize;
    while idx < n_cards {
        table.mark_dirty(Addr(idx as u64 * CARD_BYTES));
        dirty += 1;
        idx += 97;
    }
    const SWEEPS: usize = 2_000;
    let t0 = Instant::now();
    for _ in 0..SWEEPS {
        let mut sum = 0usize;
        let mut cursor = 0usize;
        while let Some(card) = table.next_dirty_from(cursor) {
            sum += card;
            cursor = card + 1;
        }
        black_box(sum);
        black_box(table.dirty_count());
    }
    let per_sweep = t0.elapsed().as_nanos() as f64 / SWEEPS as f64;
    (per_sweep, n_cards, dirty)
}

// ---------------------------------------------------------------------------
// The `--faults SEED` recovery-overhead suite (`BENCH_PR5.json`).
// ---------------------------------------------------------------------------

/// One measured recovery arm: a policy, with or without the injected
/// mid-run crash.
struct FaultRow {
    policy: &'static str,
    faulted: bool,
    host_ns: u64,
    outcome: RunSummary,
}

fn fault_run(
    scale: f64,
    executors: u16,
    policy: RecoveryPolicy,
    plan: &FaultPlan,
    host_threads: usize,
) -> RunSummary {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = executors;
    cfg.recovery = policy;
    let build = || {
        let w = build_workload(WorkloadId::Pr, scale, SEED);
        (w.program, w.fns, w.data)
    };
    RunBuilder::from_build(&build)
        .config(cfg)
        .host_threads(host_threads)
        .faults(plan)
        .run()
        .expect("valid cluster config")
}

fn fault_row_json(r: &FaultRow, sim_only: bool) -> Json {
    let rec = &r.outcome.report.recovery;
    let mut fields = vec![
        ("policy", Json::Str(r.policy.into())),
        ("faulted", Json::Bool(r.faulted)),
        ("sim_elapsed_s", Json::Num(r.outcome.report.elapsed_s)),
        ("sim_energy_j", Json::Num(r.outcome.report.energy_j())),
        ("executor_crashes", Json::UInt(rec.executor_crashes)),
        ("messages_lost", Json::UInt(rec.messages_lost)),
        ("alloc_faults", Json::UInt(rec.alloc_faults)),
        (
            "partitions_recomputed",
            Json::UInt(rec.partitions_recomputed),
        ),
        ("partitions_restored", Json::UInt(rec.partitions_restored)),
        ("stages_recomputed", Json::UInt(rec.stages_recomputed)),
        ("checkpoint_writes", Json::UInt(rec.checkpoint_writes)),
        ("checkpoint_bytes", Json::UInt(rec.checkpoint_bytes)),
        ("journal_noops", Json::UInt(rec.journal_noops)),
        ("journal_torn", Json::UInt(rec.journal_torn)),
        ("recovery_s", Json::Num(rec.recovery_s)),
    ];
    if !sim_only {
        fields.insert(2, ("host_ns", Json::UInt(r.host_ns)));
    }
    fields.push(("report", r.outcome.report.to_json()));
    Json::obj(fields)
}

/// The recovery-overhead suite: PageRank on the cluster driver, four
/// arms — {`Recompute`, `CheckpointEvery(2)`} × {fault-free, one
/// seeded mid-run crash} — plus the core PR 5 guarantee, asserted:
/// faulted arms produce bit-identical workload results to their
/// fault-free twins, and neither the aggregate report nor any
/// per-executor sub-report depends on the host-thread budget.
///
/// Output: `BENCH_PR5.json` (override with `PERFSUITE_OUT`) and the
/// host-time-free `<out>.sim` companion CI `cmp`s across
/// `PANTHERA_HOST_THREADS` budgets.
fn run_fault_suite(seed: u64, cli: &Cli, n: usize, scale: f64) {
    let executors: u16 = if cli.quick { 2 } else { 3 };
    let host_threads = host_threads_from_env(usize::from(executors));
    let plan = FaultPlan::generate(
        seed,
        executors,
        FaultSpec {
            crashes: 1,
            ..FaultSpec::default()
        },
    );
    assert!(
        !plan.crashes.is_empty(),
        "the fault suite needs its mid-run crash"
    );
    println!(
        "fault suite: seed {seed}, E={executors}, {} crash(es) at barrier(s) {:?}, \
         {} loss(es), {} alloc fault(s)",
        plan.crashes.len(),
        plan.crashes.iter().map(|c| c.barrier).collect::<Vec<_>>(),
        plan.losses.len(),
        plan.alloc_faults.len()
    );

    let policies = [
        ("recompute", RecoveryPolicy::Recompute),
        ("checkpoint_every_2", RecoveryPolicy::CheckpointEvery(2)),
    ];
    let mut rows: Vec<FaultRow> = Vec::new();
    let mut overheads = Vec::new();
    for (name, policy) in policies {
        let (clean_ns, clean) = median_host_ns(n, || {
            fault_run(scale, executors, policy, &FaultPlan::none(), host_threads)
        });
        let (faulted_ns, faulted) = median_host_ns(n, || {
            fault_run(scale, executors, policy, &plan, host_threads)
        });

        // The PR 5 core guarantee, measured here so the benchmark is
        // meaningless unless it holds.
        assert_eq!(
            faulted.results, clean.results,
            "{name}: fault injection changed the workload results"
        );
        assert!(
            faulted.report.recovery.executor_crashes >= 1,
            "{name}: the planned crash fired"
        );
        let serial = fault_run(scale, executors, policy, &plan, 1);
        assert_eq!(
            serial.report.to_json().to_compact(),
            faulted.report.to_json().to_compact(),
            "{name}: faulted aggregate report depends on the host-thread budget"
        );
        for (e, (s, t)) in serial
            .per_executor
            .iter()
            .zip(faulted.per_executor.iter())
            .enumerate()
        {
            assert_eq!(
                s.to_json().to_compact(),
                t.to_json().to_compact(),
                "{name}: executor {e} sub-report depends on the host-thread budget"
            );
        }

        let overhead_s = faulted.report.elapsed_s - clean.report.elapsed_s;
        let overhead_pct = 100.0 * overhead_s / clean.report.elapsed_s;
        println!(
            "{:<20} | clean {:>9.4}s sim | faulted {:>9.4}s sim | overhead {:>6.2}% \
             | recovery {:>8.4}s",
            name,
            clean.report.elapsed_s,
            faulted.report.elapsed_s,
            overhead_pct,
            faulted.report.recovery.recovery_s,
        );
        overheads.push((name, overhead_s, overhead_pct));
        rows.push(FaultRow {
            policy: name,
            faulted: false,
            host_ns: clean_ns,
            outcome: clean,
        });
        rows.push(FaultRow {
            policy: name,
            faulted: true,
            host_ns: faulted_ns,
            outcome: faulted,
        });
    }

    let plan_json = Json::obj(vec![
        ("seed", Json::UInt(seed)),
        (
            "crash_barriers",
            Json::Arr(plan.crashes.iter().map(|c| Json::UInt(c.barrier)).collect()),
        ),
        ("losses", Json::UInt(plan.losses.len() as u64)),
        ("alloc_faults", Json::UInt(plan.alloc_faults.len() as u64)),
    ]);
    let overhead_json = |(name, s, pct): &(&str, f64, f64)| {
        Json::obj(vec![
            ("policy", Json::Str((*name).into())),
            ("overhead_sim_s", Json::Num(*s)),
            ("overhead_pct", Json::Num(*pct)),
        ])
    };

    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR5".into())),
        ("scale", Json::Num(scale)),
        ("samples_per_arm", Json::UInt(n as u64)),
        ("executors", Json::UInt(u64::from(executors))),
        ("fault_plan", plan_json.clone()),
        (
            "arms",
            Json::Arr(rows.iter().map(|r| fault_row_json(r, false)).collect()),
        ),
        (
            "recovery_overhead",
            Json::Arr(overheads.iter().map(overhead_json).collect()),
        ),
        ("results_identical", Json::Bool(true)),
        ("host_thread_invariant", Json::Bool(true)),
    ]);
    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR5.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR5.sim".into())),
        ("scale", Json::Num(scale)),
        ("executors", Json::UInt(u64::from(executors))),
        ("fault_plan", plan_json),
        (
            "arms",
            Json::Arr(rows.iter().map(|r| fault_row_json(r, true)).collect()),
        ),
        (
            "recovery_overhead",
            Json::Arr(overheads.iter().map(overhead_json).collect()),
        ),
        ("results_identical", Json::Bool(true)),
        ("host_thread_invariant", Json::Bool(true)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");
}

// ---------------------------------------------------------------------------
// The `--faults-anywhere SEED` random-point crash suite (`BENCH_PR8.json`).
// ---------------------------------------------------------------------------

/// The crash-anywhere overhead suite (PR 8): PageRank on the cluster
/// driver with virtual-time crash points drawn uniformly over the
/// fault-free run's duration, under both recovery policies — so
/// executors die mid-stage, mid-deposit, and mid-checkpoint rather than
/// at barriers. Asserts the PR 8 acceptance before reporting a number:
/// faulted results bit-identical to the fault-free twin, replayed
/// deposits validated as journal no-ops, and neither the aggregate
/// report nor any per-executor sub-report depending on the host-thread
/// budget.
///
/// Output: `BENCH_PR8.json` (override with `PERFSUITE_OUT`) and the
/// host-time-free `<out>.sim` companion CI `cmp`s across
/// `PANTHERA_HOST_THREADS` budgets.
fn run_faults_anywhere_suite(seed: u64, cli: &Cli, n: usize, scale: f64) {
    let executors: u16 = if cli.quick { 2 } else { 3 };
    let host_threads = host_threads_from_env(usize::from(executors));
    let vcrashes: u32 = if cli.quick { 2 } else { 3 };
    let policies = [
        ("recompute", RecoveryPolicy::Recompute),
        ("checkpoint_every_2", RecoveryPolicy::CheckpointEvery(2)),
    ];
    let mut rows: Vec<FaultRow> = Vec::new();
    let mut overheads = Vec::new();
    let mut plans_json = Vec::new();
    for (name, policy) in policies {
        let (clean_ns, clean) = median_host_ns(n, || {
            fault_run(scale, executors, policy, &FaultPlan::none(), host_threads)
        });
        // The fault-free duration bounds the window crash points are
        // drawn from. It is a simulated quantity, so every host-thread
        // budget derives the identical plan — the `.sim` artifact stays
        // byte-comparable across budgets.
        let horizon_ns = clean.report.elapsed_s * 1e9;
        let plan = FaultPlan::generate(
            seed,
            executors,
            FaultSpec {
                crashes: 0,
                max_losses: 0,
                max_alloc_faults: 0,
                vcrashes,
                vtime_lo_ns: 0.0,
                vtime_hi_ns: horizon_ns,
                ..FaultSpec::default()
            },
        );
        assert!(
            !plan.vcrashes.is_empty(),
            "the crash-anywhere suite needs its crash points"
        );
        println!(
            "{name}: {} random-point crash(es): {:?}",
            plan.vcrashes.len(),
            plan.vcrashes
                .iter()
                .map(|p| (p.exec, p.at_ns))
                .collect::<Vec<_>>()
        );
        let (faulted_ns, faulted) = median_host_ns(n, || {
            fault_run(scale, executors, policy, &plan, host_threads)
        });

        assert_eq!(
            faulted.results, clean.results,
            "{name}: random-point crashes changed the workload results"
        );
        let rec = &faulted.report.recovery;
        assert!(
            rec.executor_crashes >= 1,
            "{name}: at least one planned point fired"
        );
        assert!(
            rec.journal_noops > 0,
            "{name}: the replay re-validated committed deposits"
        );
        let serial = fault_run(scale, executors, policy, &plan, 1);
        assert_eq!(
            serial.report.to_json().to_compact(),
            faulted.report.to_json().to_compact(),
            "{name}: crash-anywhere aggregate report depends on the host-thread budget"
        );
        for (e, (s, t)) in serial
            .per_executor
            .iter()
            .zip(faulted.per_executor.iter())
            .enumerate()
        {
            assert_eq!(
                s.to_json().to_compact(),
                t.to_json().to_compact(),
                "{name}: executor {e} sub-report depends on the host-thread budget"
            );
        }

        let overhead_s = faulted.report.elapsed_s - clean.report.elapsed_s;
        let overhead_pct = 100.0 * overhead_s / clean.report.elapsed_s;
        println!(
            "{:<20} | clean {:>9.4}s sim | faulted {:>9.4}s sim | overhead {:>6.2}% \
             | {} crash(es), {} no-op(s), {} torn",
            name,
            clean.report.elapsed_s,
            faulted.report.elapsed_s,
            overhead_pct,
            rec.executor_crashes,
            rec.journal_noops,
            rec.journal_torn,
        );
        overheads.push((name, overhead_s, overhead_pct));
        plans_json.push(Json::obj(vec![
            ("policy", Json::Str(name.into())),
            ("seed", Json::UInt(seed)),
            (
                "points",
                Json::Arr(
                    plan.vcrashes
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("exec", Json::UInt(u64::from(p.exec))),
                                ("at_ns", Json::Num(p.at_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
        rows.push(FaultRow {
            policy: name,
            faulted: false,
            host_ns: clean_ns,
            outcome: clean,
        });
        rows.push(FaultRow {
            policy: name,
            faulted: true,
            host_ns: faulted_ns,
            outcome: faulted,
        });
    }

    let overhead_json = |(name, s, pct): &(&str, f64, f64)| {
        Json::obj(vec![
            ("policy", Json::Str((*name).into())),
            ("overhead_sim_s", Json::Num(*s)),
            ("overhead_pct", Json::Num(*pct)),
        ])
    };
    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR8".into())),
        ("scale", Json::Num(scale)),
        ("samples_per_arm", Json::UInt(n as u64)),
        ("executors", Json::UInt(u64::from(executors))),
        ("fault_plans", Json::Arr(plans_json.clone())),
        (
            "arms",
            Json::Arr(rows.iter().map(|r| fault_row_json(r, false)).collect()),
        ),
        (
            "recovery_overhead",
            Json::Arr(overheads.iter().map(overhead_json).collect()),
        ),
        ("results_identical", Json::Bool(true)),
        ("host_thread_invariant", Json::Bool(true)),
    ]);
    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR8.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR8.sim".into())),
        ("scale", Json::Num(scale)),
        ("executors", Json::UInt(u64::from(executors))),
        ("fault_plans", Json::Arr(plans_json)),
        (
            "arms",
            Json::Arr(rows.iter().map(|r| fault_row_json(r, true)).collect()),
        ),
        (
            "recovery_overhead",
            Json::Arr(overheads.iter().map(overhead_json).collect()),
        ),
        ("results_identical", Json::Bool(true)),
        ("host_thread_invariant", Json::Bool(true)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");
}

// ---------------------------------------------------------------------------
// The `--shuffle` serde-tax suite (`BENCH_PR6.json`).
// ---------------------------------------------------------------------------

/// One measured shuffle arm: a workload at an executor count under one
/// transport.
struct ShuffleRow {
    workload: &'static str,
    executors: u16,
    transport: &'static str,
    host_ns: u64,
    shared_region_bytes: u64,
    outcome: RunSummary,
}

/// An inline group-by (`n` keyed records folded into colliding buckets,
/// grouped, counted) — the shuffle whose map output is pure fan-out.
fn groupby_build(scale: f64) -> (Program, FnTable, DataRegistry) {
    let n = ((40_000.0 * scale) as usize).max(64);
    let keys = (n / 8).max(1) as i64;
    let mut b = ProgramBuilder::new("groupby");
    let src = b.source("src");
    let grouped = b.bind("grouped", src.group_by_key());
    b.action(grouped, ActionKind::Count);
    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "src",
        (0..n)
            .map(|i| Payload::keyed(i as i64 % keys, Payload::Long(i as i64 * 31 + 7)))
            .collect(),
    );
    (program, fns, data)
}

fn shuffle_run(
    wl: &str,
    scale: f64,
    executors: u16,
    transport: ShuffleTransport,
    host_threads: usize,
) -> RunSummary {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = executors;
    cfg.transport = transport;
    let none = FaultPlan::none();
    let hj_build = || hashjoin_build(scale);
    let gb_build = || groupby_build(scale);
    let builder = match wl {
        "hashjoin" => RunBuilder::from_build(&hj_build),
        _ => RunBuilder::from_build(&gb_build),
    };
    builder
        .config(cfg)
        .host_threads(host_threads)
        .faults(&none)
        .run()
        .expect("valid cluster config")
}

fn shuffle_row_json(r: &ShuffleRow, sim_only: bool) -> Json {
    let mut fields = vec![
        ("workload", Json::Str(r.workload.into())),
        ("executors", Json::UInt(u64::from(r.executors))),
        ("transport", Json::Str(r.transport.into())),
        ("sim_elapsed_s", Json::Num(r.outcome.report.elapsed_s)),
        ("sim_energy_j", Json::Num(r.outcome.report.energy_j())),
        (
            "shuffle_bytes",
            Json::UInt(r.outcome.report.exec.shuffle_bytes),
        ),
        (
            "fastpath_bytes",
            Json::UInt(r.outcome.report.exec.fastpath_bytes),
        ),
        ("shared_region_bytes", Json::UInt(r.shared_region_bytes)),
    ];
    if !sim_only {
        fields.insert(3, ("host_ns", Json::UInt(r.host_ns)));
    }
    fields.push(("report", r.outcome.report.to_json()));
    Json::obj(fields)
}

/// The serde-tax suite: shuffle-heavy join and group-by at E = 2, 4, 8
/// under both transports, plus a cached-PageRank arm with and without
/// the off-heap H2 region. Asserted while measuring:
///
/// * the two transports produce bit-identical action results, and the
///   shared region never simulates slower than serde;
/// * serde arms charge zero fast-path bytes, shared-region arms at this
///   scale always move cross-executor bytes through it;
/// * the off-heap region changes no PageRank value, drains exactly, and
///   strictly reduces total GC pause time on the cache-heavy arm.
fn run_shuffle_suite(cli: &Cli, n: usize, scale: f64) {
    let ladder: [u16; 3] = [2, 4, 8];
    println!("shuffle suite: E={ladder:?}, both transports, {n} samples/arm");
    println!(
        "{:<10} {:>4} | {:>11} {:>11} | {:>10} | {:>14}",
        "wl", "E", "serde s", "shared s", "saved %", "bytes avoided"
    );
    println!("{}", "-".repeat(72));

    let mut rows: Vec<ShuffleRow> = Vec::new();
    let mut reductions = Vec::new();
    for wl in ["hashjoin", "groupby"] {
        for &e in &ladder {
            let host_threads = host_threads_from_env(usize::from(e));
            let (serde_ns, serde) = median_host_ns(n, || {
                shuffle_run(wl, scale, e, ShuffleTransport::Serde, host_threads)
            });
            let (shared_ns, shared) = median_host_ns(n, || {
                shuffle_run(wl, scale, e, ShuffleTransport::SharedRegion, host_threads)
            });
            assert_eq!(
                shared.results, serde.results,
                "{wl} E={e}: transport changed the workload results"
            );
            assert_eq!(
                serde.report.exec.fastpath_bytes, 0,
                "{wl} E={e}: serde transport charged the fast path"
            );
            assert!(
                shared.report.exec.fastpath_bytes > 0,
                "{wl} E={e}: no cross-executor bytes rode the shared region"
            );
            assert!(
                shared.report.elapsed_s <= serde.report.elapsed_s,
                "{wl} E={e}: shared region simulated slower than serde \
                 ({} > {})",
                shared.report.elapsed_s,
                serde.report.elapsed_s
            );
            let saved_s = serde.report.elapsed_s - shared.report.elapsed_s;
            let saved_pct = 100.0 * saved_s / serde.report.elapsed_s;
            println!(
                "{:<10} {:>4} | {:>10.4}s {:>10.4}s | {:>9.2}% | {:>14}",
                wl,
                e,
                serde.report.elapsed_s,
                shared.report.elapsed_s,
                saved_pct,
                shared.report.exec.fastpath_bytes
            );
            reductions.push((wl, e, saved_s, saved_pct));
            rows.push(ShuffleRow {
                workload: wl,
                executors: e,
                transport: "serde",
                host_ns: serde_ns,
                shared_region_bytes: serde.shared_region_bytes,
                outcome: serde,
            });
            rows.push(ShuffleRow {
                workload: wl,
                executors: e,
                transport: "shared_region",
                host_ns: shared_ns,
                shared_region_bytes: shared.shared_region_bytes,
                outcome: shared,
            });
        }
    }

    // The cached-RDD arm: PageRank re-reads its persisted link structure
    // every iteration. Run it at a fixed cache-heavy scale (independent
    // of the CLI scale so the GC effect is out of the noise floor) with
    // the H2 region off and on.
    const GC_SCALE: f64 = 0.4;
    let pr_arm = |offheap: bool| {
        let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
        cfg.offheap_cache = offheap;
        let w = build_workload(WorkloadId::Pr, GC_SCALE, SEED);
        RunBuilder::new(&w.program, w.fns, w.data)
            .config(cfg)
            .run()
            .expect("valid configuration")
    };
    let (heap_run, off_run) = (pr_arm(false), pr_arm(true));
    let (heap_rep, off_rep) = (&heap_run.report, &off_run.report);
    assert_eq!(
        off_run.results, heap_run.results,
        "cached-PageRank: the off-heap region changed a value"
    );
    assert_eq!(
        off_rep.exec.offheap_frees, off_rep.exec.offheap_allocs,
        "cached-PageRank: the off-heap region must drain"
    );
    assert_eq!(off_rep.exec.offheap_leaks, 0, "cached-PageRank: leaks");
    let gc_heap = heap_rep.minor_gc_s + heap_rep.major_gc_s;
    let gc_off = off_rep.minor_gc_s + off_rep.major_gc_s;
    assert!(
        gc_off < gc_heap,
        "cached-PageRank: off-heap caching must reduce GC pause totals \
         ({gc_off} >= {gc_heap})"
    );
    let gc_saved_pct = 100.0 * (gc_heap - gc_off) / gc_heap;
    println!("{}", "-".repeat(72));
    println!(
        "cached PR (scale {GC_SCALE}): GC pauses {:.6}s heap-cached -> {:.6}s off-heap \
         ({gc_saved_pct:.1}% less), {} off-heap allocs",
        gc_heap, gc_off, off_rep.exec.offheap_allocs
    );

    let reduction_json = |(wl, e, s, pct): &(&str, u16, f64, f64)| {
        Json::obj(vec![
            ("workload", Json::Str((*wl).into())),
            ("executors", Json::UInt(u64::from(*e))),
            ("saved_sim_s", Json::Num(*s)),
            ("saved_pct", Json::Num(*pct)),
        ])
    };
    let pagerank_json = |sim_only: bool| {
        let mut fields = vec![
            ("scale", Json::Num(GC_SCALE)),
            ("gc_pause_s_heap_cached", Json::Num(gc_heap)),
            ("gc_pause_s_offheap", Json::Num(gc_off)),
            ("gc_pause_saved_pct", Json::Num(gc_saved_pct)),
            ("offheap_allocs", Json::UInt(off_rep.exec.offheap_allocs)),
            ("offheap_bytes", Json::UInt(off_rep.exec.offheap_bytes)),
            (
                "heap_allocated_bytes_heap_cached",
                Json::UInt(heap_rep.heap.allocated_bytes),
            ),
            (
                "heap_allocated_bytes_offheap",
                Json::UInt(off_rep.heap.allocated_bytes),
            ),
        ];
        if !sim_only {
            fields.push(("report_heap_cached", heap_rep.to_json()));
            fields.push(("report_offheap", off_rep.to_json()));
        }
        Json::obj(fields)
    };

    let arms =
        |sim_only: bool| Json::Arr(rows.iter().map(|r| shuffle_row_json(r, sim_only)).collect());
    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR6".into())),
        ("scale", Json::Num(scale)),
        ("samples_per_arm", Json::UInt(n as u64)),
        ("arms", arms(false)),
        (
            "shuffle_cost_reduction",
            Json::Arr(reductions.iter().map(reduction_json).collect()),
        ),
        ("cached_pagerank", pagerank_json(false)),
        ("results_identical", Json::Bool(true)),
    ]);
    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR6.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR6.sim".into())),
        ("scale", Json::Num(scale)),
        ("arms", arms(true)),
        (
            "shuffle_cost_reduction",
            Json::Arr(reductions.iter().map(reduction_json).collect()),
        ),
        ("cached_pagerank", pagerank_json(true)),
        ("results_identical", Json::Bool(true)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");
    let _ = cli;
}

// ---------------------------------------------------------------------------
// The `--regions` lifetime-region suite (`BENCH_PR7.json`).
// ---------------------------------------------------------------------------

/// One workload measured with region arenas off and on.
struct RegionRow {
    workload: &'static str,
    host_ns_off: u64,
    host_ns_on: u64,
    off: RunSummary,
    on: RunSummary,
}

impl RegionRow {
    /// Did regions strictly reduce both the minor-pause p90 and the
    /// number of cards scanned?
    fn improved(&self) -> bool {
        let (off, on) = (&self.off.report, &self.on.report);
        on.minor_pauses.quantile_ns(0.90) < off.minor_pauses.quantile_ns(0.90)
            && on.gc.cards_scanned < off.gc.cards_scanned
    }
}

fn region_row_json(r: &RegionRow, sim_only: bool) -> Json {
    let (off, on) = (&r.off.report, &r.on.report);
    let mut fields = vec![
        ("workload", Json::Str(r.workload.into())),
        (
            "minor_p90_ns_off",
            Json::Num(off.minor_pauses.quantile_ns(0.90)),
        ),
        (
            "minor_p90_ns_on",
            Json::Num(on.minor_pauses.quantile_ns(0.90)),
        ),
        ("cards_scanned_off", Json::UInt(off.gc.cards_scanned)),
        ("cards_scanned_on", Json::UInt(on.gc.cards_scanned)),
        ("minor_gc_s_off", Json::Num(off.minor_gc_s)),
        ("minor_gc_s_on", Json::Num(on.minor_gc_s)),
        ("region_allocs", Json::UInt(on.exec.region_allocs)),
        (
            "region_stage_arenas",
            Json::UInt(on.exec.region_stage_arenas),
        ),
        ("region_stage_bytes", Json::UInt(on.exec.region_stage_bytes)),
        ("improved", Json::Bool(r.improved())),
    ];
    if !sim_only {
        fields.insert(1, ("host_ns_off", Json::UInt(r.host_ns_off)));
        fields.insert(2, ("host_ns_on", Json::UInt(r.host_ns_on)));
        fields.push(("report_off", off.to_json()));
        fields.push(("report_on", on.to_json()));
    }
    Json::obj(fields)
}

/// The region-arena suite: every Table 4 workload at a fixed
/// cache-heavy scale with `region_alloc` off and on, plus clustered
/// PageRank at E = 2, 4 with regions on. Asserted while measuring:
///
/// * action results are bit-identical with regions off or on, at every
///   width;
/// * every RDD-lifetime arena drains exactly (frees == allocs, no
///   leaks, no dead reads) in every run and every executor;
/// * at least 4 of the 7 workloads strictly reduce both the minor-GC
///   pause p90 and the cards scanned.
fn run_region_suite(cli: &Cli, n: usize) {
    // Fixed cache-heavy scale (like the shuffle suite's cached-PR arm):
    // the GC effect regions remove must be out of the noise floor.
    const REGION_SCALE: f64 = 0.4;
    println!("region suite: scale {REGION_SCALE}, {n} samples/arm");
    println!(
        "{:<6} | {:>12} {:>12} | {:>10} {:>10} | {:>8}",
        "wl", "p90 off(ns)", "p90 on(ns)", "cards off", "cards on", "improved"
    );
    println!("{}", "-".repeat(72));

    let run_one = |id: WorkloadId, regions: bool| {
        let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
        cfg.region_alloc = regions;
        let w = build_workload(id, REGION_SCALE, SEED);
        RunBuilder::new(&w.program, w.fns, w.data)
            .config(cfg)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", id.name()))
    };

    let mut rows: Vec<RegionRow> = Vec::new();
    for id in WorkloadId::ALL {
        let (host_ns_off, off) = median_host_ns(n, || run_one(id, false));
        let (host_ns_on, on) = median_host_ns(n, || run_one(id, true));
        assert_eq!(
            on.results,
            off.results,
            "{}: region allocation changed a value",
            id.name()
        );
        let e = &on.report.exec;
        assert_eq!(
            e.region_frees,
            e.region_allocs,
            "{}: RDD-lifetime arenas must drain",
            id.name()
        );
        assert_eq!(e.region_leaks, 0, "{}: arena leaks", id.name());
        assert_eq!(e.region_dead_reads, 0, "{}: arena dead reads", id.name());
        let row = RegionRow {
            workload: id.name(),
            host_ns_off,
            host_ns_on,
            off,
            on,
        };
        println!(
            "{:<6} | {:>12.0} {:>12.0} | {:>10} {:>10} | {:>8}",
            row.workload,
            row.off.report.minor_pauses.quantile_ns(0.90),
            row.on.report.minor_pauses.quantile_ns(0.90),
            row.off.report.gc.cards_scanned,
            row.on.report.gc.cards_scanned,
            row.improved()
        );
        rows.push(row);
    }
    let improved = rows.iter().filter(|r| r.improved()).count();
    println!("{}", "-".repeat(72));
    println!(
        "{improved}/{} workloads reduced both minor-pause p90 and cards scanned",
        rows.len()
    );
    assert!(
        improved >= 4,
        "region arenas must reduce minor-pause p90 and cards scanned on \
         at least 4 of {} workloads (got {improved})",
        rows.len()
    );

    // Clustered PageRank with regions on: per-executor arenas must drain
    // and results must match the off run at the same width. These arms
    // carry the host-thread-invariance burden of the `.sim` artifact.
    let cluster_arm = |executors: u16, regions: bool| {
        let build = || {
            let w = build_workload(WorkloadId::Pr, REGION_SCALE, SEED);
            (w.program, w.fns, w.data)
        };
        let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
        cfg.executors = executors;
        cfg.region_alloc = regions;
        let none = FaultPlan::none();
        RunBuilder::from_build(&build)
            .config(cfg)
            .host_threads(host_threads_from_env(usize::from(executors)))
            .faults(&none)
            .run()
            .expect("valid cluster config")
    };
    let mut cluster_rows = Vec::new();
    for e in [2u16, 4] {
        let off = cluster_arm(e, false);
        let on = cluster_arm(e, true);
        assert_eq!(
            on.results, off.results,
            "clustered PR E={e}: region allocation changed a value"
        );
        for (i, rep) in on.per_executor.iter().enumerate() {
            assert_eq!(
                rep.exec.region_frees, rep.exec.region_allocs,
                "clustered PR E={e} executor {i}: arenas must drain"
            );
            assert_eq!(
                rep.exec.region_leaks, 0,
                "clustered PR E={e} executor {i}: leaks"
            );
        }
        println!(
            "cluster PR E={e}: regions on matches off, {} arenas drained across executors",
            on.report.exec.region_allocs
        );
        cluster_rows.push((e, on));
    }
    let cluster_json = |sim_only: bool| {
        Json::Arr(
            cluster_rows
                .iter()
                .map(|(e, on)| {
                    let mut fields = vec![
                        ("executors", Json::UInt(u64::from(*e))),
                        ("sim_elapsed_s", Json::Num(on.report.elapsed_s)),
                        ("region_allocs", Json::UInt(on.report.exec.region_allocs)),
                        (
                            "region_stage_arenas",
                            Json::UInt(on.report.exec.region_stage_arenas),
                        ),
                    ];
                    if !sim_only {
                        fields.push(("report", on.report.to_json()));
                    }
                    Json::obj(fields)
                })
                .collect(),
        )
    };

    let arms =
        |sim_only: bool| Json::Arr(rows.iter().map(|r| region_row_json(r, sim_only)).collect());
    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR7".into())),
        ("scale", Json::Num(REGION_SCALE)),
        ("samples_per_arm", Json::UInt(n as u64)),
        ("arms", arms(false)),
        ("cluster_pagerank", cluster_json(false)),
        ("workloads_improved", Json::UInt(improved as u64)),
        ("results_identical", Json::Bool(true)),
    ]);
    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR7.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR7.sim".into())),
        ("scale", Json::Num(REGION_SCALE)),
        ("arms", arms(true)),
        ("cluster_pagerank", cluster_json(true)),
        ("workloads_improved", Json::UInt(improved as u64)),
        ("results_identical", Json::Bool(true)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");
    let _ = cli;
}

// ---------------------------------------------------------------------------
// The `--service` multi-tenant scheduling suite (`BENCH_PR9.json`).
// ---------------------------------------------------------------------------

/// Rebuild source for the service suite's atomic 2-executor jobs (a
/// plain `fn` so it outlives any service borrowing it).
fn service_hashjoin_build() -> (Program, FnTable, DataRegistry) {
    hashjoin_build(0.05)
}

/// Submit the 20-job mixed workload and drain the service under
/// `policy`. The sequence is adversarial for FIFO: one tenant front-loads
/// five long PageRank jobs, then two tenants trail in with thirteen small
/// jobs and two atomic 2-executor hash joins — under FIFO every small job
/// queues behind the long ones; under fair share the light tenants
/// dispatch at the first stage barriers.
fn service_run_once(
    policy: SchedPolicy,
    host_threads: Option<usize>,
    quick: bool,
) -> ServiceReport {
    let huge_scale = if quick { 0.08 } else { 0.2 };
    let tiny_scale = if quick { 0.02 } else { 0.03 };
    // PageRank at scale 0.2 needs the 8 GB heap the migration suite uses;
    // the budget and quota scale with it so the DRAM split and the
    // quota-gating of tenant 3's atomic jobs behave the same in both
    // modes.
    let heap = if quick { 4 } else { 8 } * SIM_GB;
    let mut svc = JobService::new(ServiceConfig {
        pool_executors: 4,
        policy,
        dram_budget_bytes: Some(6 * heap),
        host_threads,
    });
    svc.add_tenant(1, 1.0, None);
    svc.add_tenant(2, 1.0, None);
    svc.add_tenant(3, 1.0, Some(4 * heap));
    let job_cfg = SystemConfig::new(MemoryMode::Panthera, heap, 1.0 / 3.0);
    // Jobs 0-4: tenant 1's long PageRank runs, front of the queue.
    for seed in 0..5u64 {
        let w = build_workload(WorkloadId::Pr, huge_scale, seed);
        svc.submit(JobSpec::inline(1, w.program, w.fns, w.data).with_config(job_cfg.clone()))
            .expect("admissible");
    }
    // Jobs 5-17: tenants 2 and 3 alternate small Table 4 jobs.
    const SMALL: [WorkloadId; 6] = [
        WorkloadId::Km,
        WorkloadId::Lr,
        WorkloadId::Tc,
        WorkloadId::Cc,
        WorkloadId::Sssp,
        WorkloadId::Bc,
    ];
    for i in 0..13u64 {
        let tenant = 2 + (i % 2) as u32;
        let w = build_workload(SMALL[(i % 6) as usize], tiny_scale, 100 + i);
        svc.submit(
            JobSpec::inline(tenant, w.program, w.fns, w.data)
                .with_config(job_cfg.clone())
                .with_priority((i % 3) as u32),
        )
        .expect("admissible");
    }
    // Jobs 18-19: tenant 3's atomic 2-executor hash joins (the cluster
    // path inside the service).
    for _ in 0..2 {
        let mut c = job_cfg.clone();
        c.executors = 2;
        svc.submit(JobSpec::rebuild(3, "hashjoin-e2", &service_hashjoin_build).with_config(c))
            .expect("admissible");
    }
    svc.run()
}

fn service_arm_json(policy: &str, host_ns: u64, r: &ServiceReport, sim_only: bool) -> Json {
    let mut fields = vec![
        ("policy", Json::Str(policy.into())),
        ("jobs_per_s", Json::Num(r.jobs_per_s)),
        ("makespan_s", Json::Num(r.makespan_s)),
        ("queue_p50_s", Json::Num(r.queue_p50_s)),
        ("queue_p99_s", Json::Num(r.queue_p99_s)),
        ("queue_max_s", Json::Num(r.queue_max_s)),
        ("preemptions", Json::UInt(r.preemptions)),
        ("max_vtime_spread_s", Json::Num(r.max_vtime_spread_s)),
        ("max_stage_charge_s", Json::Num(r.max_stage_charge_s)),
    ];
    if !sim_only {
        fields.insert(1, ("host_ns", Json::UInt(host_ns)));
    }
    fields.push(("report", r.to_json()));
    Json::obj(fields)
}

/// The multi-tenant service suite: the 20-job mixed workload over an
/// E = 4 pool under fair share and FIFO. Asserted while measuring:
///
/// * every job finishes under both policies;
/// * fair share beats FIFO on p99 queueing delay without giving up more
///   than 5% throughput (jobs per service second) — the PR 9 SLO;
/// * the `ServiceReport` is bit-identical across host-thread budgets
///   (checked in-process at 1 vs 4 threads here, and across
///   `PANTHERA_HOST_THREADS` budgets by CI `cmp`ing the `.sim` files).
fn run_service_suite(cli: &Cli, n: usize) {
    let run = |policy: SchedPolicy| median_host_ns(n, || service_run_once(policy, None, cli.quick));
    let (fair_ns, fair) = run(SchedPolicy::FairShare);
    let (fifo_ns, fifo) = run(SchedPolicy::Fifo);

    for (name, r) in [("fair_share", &fair), ("fifo", &fifo)] {
        for job in &r.jobs {
            assert_eq!(
                job.outcome,
                JobOutcome::Finished,
                "{name}: job {} ({}) did not finish",
                job.job,
                job.name
            );
        }
    }
    let throughput_ratio = fair.jobs_per_s / fifo.jobs_per_s;
    assert!(
        fair.queue_p99_s < fifo.queue_p99_s,
        "fair share must beat FIFO on p99 queueing delay \
         (fair={}, fifo={})",
        fair.queue_p99_s,
        fifo.queue_p99_s
    );
    assert!(
        throughput_ratio >= 0.95,
        "fair share gave up more than 5% throughput (ratio {throughput_ratio})"
    );
    // The one-stage spread bound is a theorem only under single-slot
    // contention (the panthera-jobs proptest pins it there). On a
    // multi-slot pool, a tenant whose only job is mid-stage stands still
    // in virtual time while other tenants keep dispatching, so its lag
    // legitimately exceeds one charge (DESIGN.md §13). Report the spread;
    // do not bound it here.
    // Host threads only bound the atomic jobs' wall-clock concurrency;
    // the report must not notice.
    let t1 = service_run_once(SchedPolicy::FairShare, Some(1), cli.quick);
    let t4 = service_run_once(SchedPolicy::FairShare, Some(4), cli.quick);
    let invariant = t1.to_json().to_compact() == t4.to_json().to_compact();
    assert!(invariant, "ServiceReport depends on the host-thread budget");

    let p99_saved_pct = 100.0 * (fifo.queue_p99_s - fair.queue_p99_s) / fifo.queue_p99_s;
    println!(
        "{:<12} | {:>9} | {:>11} | {:>11} | {:>11}",
        "policy", "jobs/s", "p50 queue", "p99 queue", "preemptions"
    );
    println!("{}", "-".repeat(72));
    for (name, r) in [("fair_share", &fair), ("fifo", &fifo)] {
        println!(
            "{:<12} | {:>9.4} | {:>10.4}s | {:>10.4}s | {:>11}",
            name, r.jobs_per_s, r.queue_p50_s, r.queue_p99_s, r.preemptions
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "fair share: p99 queueing delay {p99_saved_pct:.1}% below FIFO at {:.1}% of its \
         throughput; vtime spread {:.6}s (max stage charge {:.6}s); \
         host-thread invariant: {invariant}",
        100.0 * throughput_ratio,
        fair.max_vtime_spread_s,
        fair.max_stage_charge_s,
    );

    let fairness_json = Json::obj(vec![
        ("queue_p99_s_fair", Json::Num(fair.queue_p99_s)),
        ("queue_p99_s_fifo", Json::Num(fifo.queue_p99_s)),
        ("p99_saved_pct", Json::Num(p99_saved_pct)),
        ("throughput_ratio", Json::Num(throughput_ratio)),
        ("slo_holds", Json::Bool(true)),
    ]);
    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR9".into())),
        ("samples_per_arm", Json::UInt(n as u64)),
        ("jobs", Json::UInt(fair.jobs.len() as u64)),
        ("pool_executors", Json::UInt(u64::from(fair.pool_executors))),
        (
            "arms",
            Json::Arr(vec![
                service_arm_json("fair_share", fair_ns, &fair, false),
                service_arm_json("fifo", fifo_ns, &fifo, false),
            ]),
        ),
        ("fairness", fairness_json.clone()),
        ("host_thread_invariant", Json::Bool(invariant)),
    ]);
    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR9.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR9.sim".into())),
        ("jobs", Json::UInt(fair.jobs.len() as u64)),
        ("pool_executors", Json::UInt(u64::from(fair.pool_executors))),
        (
            "arms",
            Json::Arr(vec![
                service_arm_json("fair_share", 0, &fair, true),
                service_arm_json("fifo", 0, &fifo, true),
            ]),
        ),
        ("fairness", fairness_json),
        ("host_thread_invariant", Json::Bool(invariant)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");
}

// ---------------------------------------------------------------------------
// The `--stream` micro-batch streaming-regret suite (`BENCH_PR10.json`).
// ---------------------------------------------------------------------------

/// One measured streaming arm: a re-tagging policy over the shared spec.
struct StreamArm {
    policy: &'static str,
    host_ns: u64,
    report: StreamReport,
}

fn stream_arm_json(r: &StreamArm, sim_only: bool) -> Json {
    let run = &r.report.run;
    let mut fields = vec![
        ("policy", Json::Str(r.policy.into())),
        ("sim_elapsed_ns", Json::Num(r.report.elapsed_ns)),
        (
            "batch_latency_p50_ns",
            Json::Num(r.report.latency_quantile_ns(0.50)),
        ),
        (
            "batch_latency_p90_ns",
            Json::Num(r.report.latency_quantile_ns(0.90)),
        ),
        (
            "batch_latency_p99_ns",
            Json::Num(r.report.latency_quantile_ns(0.99)),
        ),
        ("dram_byte_frac", Json::Num(r.report.dram_byte_frac)),
        (
            "minor_pause_p90_ns",
            Json::Num(run.minor_pauses.quantile_ns(0.90)),
        ),
        (
            "major_pause_p90_ns",
            Json::Num(run.major_pauses.quantile_ns(0.90)),
        ),
        ("retags", Json::UInt(u64::from(r.report.retags))),
        ("migrations", Json::UInt(r.report.migrations)),
        ("outputs_digest", Json::UInt(r.report.outputs_digest)),
    ];
    if !sim_only {
        fields.insert(1, ("host_ns", Json::UInt(r.host_ns)));
    }
    fields.push(("stream", r.report.to_json()));
    Json::obj(fields)
}

/// The streaming-regret suite: one seeded drifting stream driven under
/// the three re-tagging policies. Asserted while measuring:
///
/// * window outputs are byte-identical under all three policies —
///   placement moves bytes, never answers;
/// * the online policy's regret against the clairvoyant oracle is at
///   most the static prior's (closing the loop from observed access
///   frequencies pays for itself);
/// * the oracle never loses to the static prior outright.
///
/// The stream runs on the single-runtime path, so every simulated
/// quantity is host-thread invariant by construction; CI still `cmp`s
/// the `.sim` companion across `PANTHERA_HOST_THREADS` budgets to pin
/// it. `--quick` swaps the benchmark-sized sliding-window spec for the
/// small tumbling one on the default heap.
fn run_stream_suite(cli: &Cli, n: usize) {
    let (spec, heap_gb) = if cli.quick {
        (StreamSpec::small(SEED), 4u64)
    } else {
        // The perf spec's resident datasets overflow a small DRAM share;
        // 16 sim-GB is the smallest heap that avoids promotion failure
        // while keeping placement contended.
        (StreamSpec::perf(SEED), 16u64)
    };
    let cfg = SystemConfig::new(MemoryMode::Panthera, heap_gb * SIM_GB, 1.0 / 3.0);
    println!(
        "stream suite: {} ({} batches x {} datasets, {:?}), heap {heap_gb} sim-GB, \
         {n} samples/arm",
        spec.name, spec.batches, spec.datasets, spec.window
    );

    let arm = |policy: RetagPolicy| {
        let b = StreamBuilder::new(spec.clone())
            .config(cfg.clone())
            .policy(policy);
        median_host_ns(n, || b.run().expect("valid stream spec"))
    };
    let (static_ns, static_run) = arm(RetagPolicy::Static);
    let (online_ns, online) = arm(RetagPolicy::Online { hysteresis: 1 });
    let (oracle_ns, oracle) = arm(RetagPolicy::Oracle);
    let arms = [
        StreamArm {
            policy: "static",
            host_ns: static_ns,
            report: static_run,
        },
        StreamArm {
            policy: "online",
            host_ns: online_ns,
            report: online,
        },
        StreamArm {
            policy: "oracle",
            host_ns: oracle_ns,
            report: oracle,
        },
    ];
    let cmp = panthera_stream::StreamComparison {
        static_run: arms[0].report.clone(),
        online: arms[1].report.clone(),
        oracle: arms[2].report.clone(),
    };

    // The PR 10 acceptance, asserted so the artifact cannot exist
    // without it holding.
    assert!(
        cmp.outputs_identical(),
        "a re-tagging policy changed the window outputs"
    );
    assert!(
        cmp.online_regret_ns() <= cmp.static_regret_ns(),
        "online regret ({:.3e} ns) exceeds static regret ({:.3e} ns)",
        cmp.online_regret_ns(),
        cmp.static_regret_ns()
    );
    assert!(
        cmp.oracle.elapsed_ns <= cmp.static_run.elapsed_ns,
        "the clairvoyant oracle lost to the static prior"
    );

    println!(
        "{:<8} | {:>14} | {:>12} | {:>7} | {:>6} | {:>5}",
        "policy", "elapsed ns", "p99 ns", "dram", "retags", "migr"
    );
    println!("{}", "-".repeat(72));
    for r in &arms {
        println!(
            "{:<8} | {:>14.4e} | {:>12.4e} | {:>6.1}% | {:>6} | {:>5}",
            r.policy,
            r.report.elapsed_ns,
            r.report.latency_quantile_ns(0.99),
            100.0 * r.report.dram_byte_frac,
            r.report.retags,
            r.report.migrations
        );
    }
    let closed_pct = if cmp.static_regret_ns() > 0.0 {
        100.0 * (cmp.static_regret_ns() - cmp.online_regret_ns()) / cmp.static_regret_ns()
    } else {
        0.0
    };
    println!("{}", "-".repeat(72));
    println!(
        "regret vs oracle: static {:.3e} ns, online {:.3e} ns \
         (online closed {closed_pct:.1}% of the gap)",
        cmp.static_regret_ns(),
        cmp.online_regret_ns()
    );

    let spec_json = Json::obj(vec![
        ("name", Json::Str(spec.name.clone())),
        ("seed", Json::UInt(spec.seed)),
        ("batches", Json::UInt(u64::from(spec.batches))),
        ("datasets", Json::UInt(u64::from(spec.datasets))),
        ("window", Json::Str(format!("{:?}", spec.window))),
        ("drift_period", Json::UInt(u64::from(spec.drift_period))),
        ("hot_threshold", Json::UInt(spec.hot_threshold)),
    ]);
    let regret_json = Json::obj(vec![
        ("static_ns", Json::Num(cmp.static_regret_ns())),
        ("online_ns", Json::Num(cmp.online_regret_ns())),
        ("online_closed_pct", Json::Num(closed_pct)),
    ]);
    let arms_json =
        |sim_only: bool| Json::Arr(arms.iter().map(|r| stream_arm_json(r, sim_only)).collect());
    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR10".into())),
        ("samples_per_arm", Json::UInt(n as u64)),
        ("heap_sim_gb", Json::UInt(heap_gb)),
        ("spec", spec_json.clone()),
        ("arms", arms_json(false)),
        ("regret_ns", regret_json.clone()),
        ("outputs_identical", Json::Bool(true)),
    ]);
    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR10.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR10.sim".into())),
        ("heap_sim_gb", Json::UInt(heap_gb)),
        ("spec", spec_json),
        ("arms", arms_json(true)),
        ("regret_ns", regret_json),
        ("outputs_identical", Json::Bool(true)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");
}

fn main() {
    let cli = Cli::parse();
    let n = samples(&cli);
    let scale = scale_with(&cli);
    if cli.stream {
        println!("perfsuite --stream: {n} samples/arm");
        run_stream_suite(&cli, n);
        if let Some(path) = &cli.trace {
            write_trace(path);
        }
        return;
    }
    if cli.service {
        println!("perfsuite --service: {n} samples/arm");
        run_service_suite(&cli, n);
        if let Some(path) = &cli.trace {
            write_trace(path);
        }
        return;
    }
    if cli.regions {
        println!("perfsuite --regions: {n} samples/arm");
        run_region_suite(&cli, n);
        if let Some(path) = &cli.trace {
            write_trace(path);
        }
        return;
    }
    if cli.shuffle {
        println!("perfsuite --shuffle: {n} samples/arm, scale {scale}");
        run_shuffle_suite(&cli, n, scale);
        if let Some(path) = &cli.trace {
            write_trace(path);
        }
        return;
    }
    if let Some(seed) = cli.faults {
        println!("perfsuite --faults: {n} samples/arm, scale {scale}");
        run_fault_suite(seed, &cli, n, scale);
        if let Some(path) = &cli.trace {
            write_trace(path);
        }
        return;
    }
    if let Some(seed) = cli.faults_anywhere {
        println!("perfsuite --faults-anywhere: {n} samples/arm, scale {scale}");
        run_faults_anywhere_suite(seed, &cli, n, scale);
        if let Some(path) = &cli.trace {
            write_trace(path);
        }
        return;
    }
    println!("perfsuite: {n} samples/arm, scale {scale}");
    println!(
        "{:<6} | {:>12} {:>12} {:>9} | {:>12} sim-identical",
        "wl", "legacy ms", "new ms", "speedup", "sim elapsed"
    );
    println!("{}", "-".repeat(72));

    let rows: Vec<WorkloadRow> = WORKLOADS
        .iter()
        .map(|id| bench_workload(*id, n, scale))
        .collect();
    for r in &rows {
        println!(
            "{:<6} | {:>12.2} {:>12.2} {:>8.2}x | {:>11.4}s {}",
            r.name,
            r.legacy_ns as f64 / 1e6,
            r.new_ns as f64 / 1e6,
            r.speedup,
            r.sim_elapsed_s,
            r.sim_identical
        );
    }

    let alloc_ns = micro_alloc_ns_per_op();
    let minor_ns = micro_minor_gc_ns();
    let (scan_ns, scan_cards, scan_dirty) = micro_card_scan();
    println!("{}", "-".repeat(72));
    println!("alloc_young           : {alloc_ns:>10.1} ns/op");
    println!("minor GC cycle        : {minor_ns:>10.1} ns/collection");
    println!("card sweep ({scan_dirty}/{scan_cards} dirty): {scan_ns:>10.1} ns/sweep");

    let max_speedup = rows
        .iter()
        .map(|r| r.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    let invariants = rows.iter().all(|r| r.sim_identical);
    println!("max end-to-end speedup: {max_speedup:.2}x (invariants hold: {invariants})");

    let ladder = cli.executor_ladder();
    println!("{}", "-".repeat(72));
    println!("executor scaling (E = {ladder:?}):");
    let (scaling_rows, determinism) = bench_scaling(&ladder, n, scale);
    for r in &scaling_rows {
        println!(
            "{:<10} E={:<2} | {:>12.2} ms host | {:>11.4}s sim {}",
            r.workload,
            r.executors,
            r.host_ns as f64 / 1e6,
            r.report.elapsed_s,
            match r.e1_matches_legacy {
                Some(true) => "(matches single-runtime)",
                Some(false) => "(DIVERGED)",
                None => "",
            }
        );
    }
    println!("host-thread determinism holds: {determinism}");

    // One serialization path: host timings inline, full simulated results
    // through `RunReport::to_json`.
    let j = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR4".into())),
        ("scale", Json::Num(scale)),
        ("samples_per_arm", Json::UInt(n as u64)),
        (
            "workloads",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("id", Json::Str(r.name.into())),
                            ("legacy_host_ns", Json::UInt(r.legacy_ns)),
                            ("new_host_ns", Json::UInt(r.new_ns)),
                            ("speedup", Json::Num(r.speedup)),
                            ("sim_elapsed_s", Json::Num(r.sim_elapsed_s)),
                            ("sim_identical", Json::Bool(r.sim_identical)),
                            ("report", r.report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "micro",
            Json::obj(vec![
                ("alloc_young_ns_per_op", Json::Num(alloc_ns)),
                ("minor_gc_ns_per_collection", Json::Num(minor_ns)),
                ("card_sweep_ns", Json::Num(scan_ns)),
                ("card_sweep_cards", Json::UInt(scan_cards as u64)),
                ("card_sweep_dirty", Json::UInt(scan_dirty as u64)),
            ]),
        ),
        ("executor_scaling", scaling_json(&scaling_rows, false)),
        ("max_speedup", Json::Num(max_speedup)),
        ("sim_invariants_hold", Json::Bool(invariants)),
        ("cluster_determinism_holds", Json::Bool(determinism)),
    ]);

    let out = std::env::var("PERFSUITE_OUT").unwrap_or_else(|_| "BENCH_PR4.json".into());
    write_atomic(&out, j.to_pretty() + "\n");
    println!("wrote {out}");

    // The host-time-free companion: only simulated quantities, so two
    // perfsuite runs under different host-thread budgets must produce
    // byte-identical files (CI `cmp`s them).
    let sim = Json::obj(vec![
        ("bench", Json::Str("BENCH_PR4.sim".into())),
        ("scale", Json::Num(scale)),
        (
            "workloads",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("id", Json::Str(r.name.into())),
                            ("sim_elapsed_s", Json::Num(r.sim_elapsed_s)),
                            ("sim_identical", Json::Bool(r.sim_identical)),
                            ("report", r.report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("executor_scaling", scaling_json(&scaling_rows, true)),
        ("sim_invariants_hold", Json::Bool(invariants)),
        ("cluster_determinism_holds", Json::Bool(determinism)),
    ]);
    let sim_out = format!("{out}.sim");
    write_atomic(&sim_out, sim.to_pretty() + "\n");
    println!("wrote {sim_out}");

    if let Some(path) = &cli.trace {
        write_trace(path);
    }
}
