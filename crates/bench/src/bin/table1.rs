//! Table 1: Panthera's allocation policies — initial and final space for
//! each combination of tag and object type, demonstrated live on a heap.

use gc::{GcCoordinator, PantheraPolicy};
use hybridmem::MemorySystemConfig;
use mheap::{Heap, HeapConfig, MemTag, ObjKind, Payload, RootSet, SpaceId};
use panthera_bench::header;

fn space_name(heap: &Heap, s: SpaceId) -> &'static str {
    match s {
        SpaceId::Eden | SpaceId::Survivor0 | SpaceId::Survivor1 => "Young Gen.",
        SpaceId::Old(o) if Some(o) == heap.old_dram() => "DRAM of Old Gen.",
        SpaceId::Old(o) if Some(o) == heap.old_nvm() => "NVM of Old Gen.",
        SpaceId::Old(_) => "Old Gen.",
    }
}

fn main() {
    header("Table 1: Panthera's allocation policies", "Table 1");
    println!(
        "{:<6} {:<10} {:>18} {:>20}",
        "Tag", "Obj Type", "Initial Space", "Final Space"
    );
    println!("{}", "-".repeat(58));

    for tag in [MemTag::Dram, MemTag::Nvm, MemTag::None] {
        let mut heap = Heap::new(
            HeapConfig::panthera(4 << 20, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(4 << 20, 8 << 20),
        )
        .expect("valid config");
        let mut gc = GcCoordinator::new(Box::new(PantheraPolicy::default()));
        let mut roots = RootSet::new();

        // RDD array: pretenured if tagged, young otherwise.
        let array = gc.alloc_rdd_array(&mut heap, &roots, 1, 512, tag);
        // RDD top object and a data tuple: always young first.
        let top = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::RddTop { rdd_id: 1 },
            tag,
            vec![array],
            Payload::Unit,
        );
        let tuple = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(1),
        );
        heap.push_ref(array, tuple);
        roots.push(top);

        let initial = [
            space_name(&heap, heap.obj(top).space),
            space_name(&heap, heap.obj(array).space),
            space_name(&heap, heap.obj(tuple).space),
        ];
        // Age everything to its final home.
        for _ in 0..4 {
            gc.minor_gc(&mut heap, &roots);
        }
        let final_ = [
            space_name(&heap, heap.obj(top).space),
            space_name(&heap, heap.obj(array).space),
            space_name(&heap, heap.obj(tuple).space),
        ];
        for (kind, init, fin) in [
            ("RDD Top", initial[0], final_[0]),
            ("RDD Array", initial[1], final_[1]),
            ("Data Objs", initial[2], final_[2]),
        ] {
            println!(
                "{:<6} {:<10} {:>18} {:>20}",
                tag.to_string(),
                kind,
                init,
                fin
            );
        }
        println!();
    }
    println!(
        "paper's Table 1: DRAM/NVM-tagged arrays pretenure into their old-gen \
         component; tops and data objects start young and are moved to the \
         tagged space by the GC; untagged objects end in young or NVM."
    );
}
