//! Figure 2(c): the motivating PageRank experiment — a 32 GB DRAM system,
//! the same system with 88 GB of unmanaged NVM added, and with Panthera
//! managing the hybrid, all normalized to a 120 GB DRAM-only system.

use panthera::{MemoryMode, SystemConfig, SIM_GB};
use panthera_bench::{header, norm, run_with};
use workloads::WorkloadId;

fn main() {
    header(
        "Figure 2(c): PageRank, 32GB DRAM vs 32GB+88GB hybrid, normalized to 120GB DRAM",
        "Fig. 2(c); paper: 32GB-DRAM 1.42/0.55, unmanaged 1.23/0.81, panthera 1.00/0.60",
    );
    // 120 GB DRAM-only baseline.
    let baseline = run_with(
        WorkloadId::Pr,
        SystemConfig::new(MemoryMode::DramOnly, 120 * SIM_GB, 1.0),
    );
    // 32 GB DRAM only: a 32 GB heap — the workload no longer fits
    // comfortably, forcing evictions and recomputation.
    let small = run_with(
        WorkloadId::Pr,
        SystemConfig::new(MemoryMode::DramOnly, 32 * SIM_GB, 1.0),
    );
    // 32 GB DRAM + 88 GB NVM = 120 GB hybrid, DRAM ratio 32/120.
    let ratio = 32.0 / 120.0;
    let unmanaged = run_with(
        WorkloadId::Pr,
        SystemConfig::new(MemoryMode::Unmanaged, 120 * SIM_GB, ratio),
    );
    let panthera = run_with(
        WorkloadId::Pr,
        SystemConfig::new(MemoryMode::Panthera, 120 * SIM_GB, ratio),
    );

    println!("{:<34} {:>12} {:>12}", "configuration", "time", "energy");
    println!("{}", "-".repeat(60));
    for (label, r) in [
        ("120GB DRAM (baseline)", &baseline),
        ("32GB DRAM", &small),
        ("32GB DRAM + 88GB NVM, unmanaged", &unmanaged),
        ("32GB DRAM + 88GB NVM, panthera", &panthera),
    ] {
        println!(
            "{:<34} {:>12} {:>12}",
            label,
            norm(r.time_vs(&baseline)),
            norm(r.energy_vs(&baseline))
        );
    }
    println!();
    println!(
        "expected shape: the small-DRAM system is slowest but cheapest; \
         adding NVM unmanaged recovers some time at an energy cost; \
         panthera approaches 120GB-DRAM performance at a fraction of its energy."
    );
}
