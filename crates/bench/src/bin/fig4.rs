//! Figure 4: overall performance and energy, 64 GB heap, 1/3 DRAM,
//! normalized to the 64 GB DRAM-only baseline.

use panthera::MemoryMode;
use panthera_bench::{header, maybe_csv, norm, run_main};
use workloads::WorkloadId;

fn main() {
    header(
        "Figure 4: elapsed time / energy normalized to 64GB DRAM-only",
        "Fig. 4; paper averages: unmanaged 1.214 / 0.690, panthera 1.043 / 0.626",
    );
    println!(
        "{:<12} | {:>9} {:>9} | {:>9} {:>9}",
        "workload", "unmanaged", "panthera", "unmanaged", "panthera"
    );
    println!("{:<12} | {:^19} | {:^19}", "", "elapsed time", "energy");
    println!("{}", "-".repeat(58));
    let (mut sum_tu, mut sum_tp, mut sum_eu, mut sum_ep) = (0.0, 0.0, 0.0, 0.0);
    for id in WorkloadId::ALL {
        let base = run_main(id, MemoryMode::DramOnly);
        let unmanaged = run_main(id, MemoryMode::Unmanaged);
        let panthera = run_main(id, MemoryMode::Panthera);
        maybe_csv("fig4", &[&base, &unmanaged, &panthera]);
        let (tu, tp) = (unmanaged.time_vs(&base), panthera.time_vs(&base));
        let (eu, ep) = (unmanaged.energy_vs(&base), panthera.energy_vs(&base));
        println!(
            "{:<12} | {} {} | {} {}",
            id.name(),
            norm(tu),
            norm(tp),
            norm(eu),
            norm(ep)
        );
        sum_tu += tu;
        sum_tp += tp;
        sum_eu += eu;
        sum_ep += ep;
    }
    let n = WorkloadId::ALL.len() as f64;
    println!("{}", "-".repeat(58));
    println!(
        "{:<12} | {} {} | {} {}",
        "average",
        norm(sum_tu / n),
        norm(sum_tp / n),
        norm(sum_eu / n),
        norm(sum_ep / n)
    );
    println!();
    println!(
        "expected shape: panthera time ~= DRAM-only (paper: +4.3%) with a \
         large energy reduction (paper: -37.4%); unmanaged pays ~+21% time."
    );
}
