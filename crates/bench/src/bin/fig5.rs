//! Figure 5: elapsed time broken into computation and GC time per
//! workload, for DRAM-only / Panthera / Unmanaged (64 GB heap).

use panthera::{MemoryMode, RunReport};
use panthera_bench::{header, run_main};
use workloads::WorkloadId;

fn row(r: &RunReport) -> String {
    format!(
        "{:<20} computation {:>9.4}s   gc {:>9.4}s  (minor {:>8.4}s / major {:>8.4}s,          {} minor + {} major GCs, worst pause {:.2}ms)",
        r.mode,
        r.mutator_s,
        r.gc_s(),
        r.minor_gc_s,
        r.major_gc_s,
        r.gc.minor_count,
        r.gc.major_count,
        r.max_pause_ms(),
    )
}

fn main() {
    header(
        "Figure 5: computation vs GC time (64GB heap, 1/3 DRAM)",
        "Fig. 5; paper: unmanaged GC overhead 60.4%, panthera 4.7% vs DRAM-only",
    );
    let mut gc_overhead_unmanaged = Vec::new();
    let mut gc_overhead_panthera = Vec::new();
    let mut comp_overhead_unmanaged = Vec::new();
    let mut comp_overhead_panthera = Vec::new();
    for id in WorkloadId::ALL {
        println!("{}", id.name());
        let base = run_main(id, MemoryMode::DramOnly);
        let pan = run_main(id, MemoryMode::Panthera);
        let unm = run_main(id, MemoryMode::Unmanaged);
        println!("  {}", row(&base));
        println!("  {}", row(&pan));
        println!("  {}", row(&unm));
        gc_overhead_unmanaged.push(unm.gc_s() / base.gc_s() - 1.0);
        gc_overhead_panthera.push(pan.gc_s() / base.gc_s() - 1.0);
        comp_overhead_unmanaged.push(unm.mutator_s / base.mutator_s - 1.0);
        comp_overhead_panthera.push(pan.mutator_s / base.mutator_s - 1.0);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!();
    println!(
        "average GC overhead vs DRAM-only:      unmanaged {:+.1}%  panthera {:+.1}%  (paper: +60.4% / +4.7%)",
        avg(&gc_overhead_unmanaged),
        avg(&gc_overhead_panthera)
    );
    println!(
        "average computation overhead:          unmanaged {:+.1}%  panthera {:+.1}%  (paper: +6.9% / +4.5%)",
        avg(&comp_overhead_unmanaged),
        avg(&comp_overhead_panthera)
    );
}
