//! Run the complete evaluation: every table, figure, baseline, and
//! ablation, in paper order. Equivalent to running each binary in turn.

use std::process::Command;

const EXPERIMENTS: [&str; 16] = [
    "table1",
    "table2",
    "table4",
    "fig2c",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table5",
    "baselines",
    "ablation",
    "nursery",
    "hashjoin",
    "nvmtech",
    "matrix",
];

fn main() {
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for name in EXPERIMENTS {
        let bin = dir.join(name);
        println!();
        let status = Command::new(&bin)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed: {status}");
    }
    println!();
    println!("all {} experiments completed.", EXPERIMENTS.len());
}
