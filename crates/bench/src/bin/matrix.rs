use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use panthera_bench::maybe_csv;
use workloads::{build_workload, WorkloadId};

fn main() {
    let modes = [
        MemoryMode::DramOnly,
        MemoryMode::Unmanaged,
        MemoryMode::Panthera,
        MemoryMode::KingsguardNursery,
        MemoryMode::KingsguardWrites,
    ];
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}   | energy ratios",
        "workload", "dram", "unmgd", "panthera", "kn", "kw"
    );
    for id in WorkloadId::ALL {
        let mut reports: Vec<RunReport> = Vec::new();
        for mode in modes {
            let w = build_workload(id, 1.0, 7);
            let cfg = SystemConfig::new(mode, 64 * SIM_GB, 1.0 / 3.0);
            let run = RunBuilder::new(&w.program, w.fns, w.data)
                .config(cfg)
                .run()
                .unwrap_or_else(|e| panic!("{e}"));
            reports.push(run.report);
        }
        maybe_csv("matrix", &reports.iter().collect::<Vec<_>>());
        let base = &reports[0];
        print!("{:<12}", id.name());
        for r in &reports {
            print!(" {:>9.3}", r.time_vs(base));
        }
        print!("   |");
        for r in &reports {
            print!(" {:>5.2}", r.energy_vs(base));
        }
        println!(
            "  (migr {} mon {})",
            reports[2].gc.rdds_migrated, reports[2].monitored_calls
        );
    }
}
