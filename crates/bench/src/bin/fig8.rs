//! Figure 8: GraphX-CC's DRAM and NVM read/write bandwidth over elapsed
//! time, under the unmanaged baseline and Panthera (1/3 DRAM).
//!
//! Prints four series per mode (DRAM read/write, NVM read/write) sampled
//! per traffic window, plus the peaks the paper's commentary keys on:
//! Panthera migrates most traffic from NVM to DRAM and flattens the NVM
//! peaks.

use hybridmem::{AccessKind, DeviceKind};
use panthera::{MemoryMode, RunReport};
use panthera_bench::{header, run_main};
use workloads::WorkloadId;

fn print_series(r: &RunReport) {
    println!("--- {} ---", r.mode);
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12}",
        "t(ms)", "dram-R GB/s", "dram-W GB/s", "nvm-R GB/s", "nvm-W GB/s"
    );
    let dr = r.traffic.series(DeviceKind::Dram, AccessKind::Read);
    let dw = r.traffic.series(DeviceKind::Dram, AccessKind::Write);
    let nr = r.traffic.series(DeviceKind::Nvm, AccessKind::Read);
    let nw = r.traffic.series(DeviceKind::Nvm, AccessKind::Write);
    // Downsample to at most 40 rows for readability.
    let n = dr.len().max(1);
    let step = n.div_ceil(40);
    for i in (0..n).step_by(step) {
        println!(
            "{:>9.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            dr[i].t_ns / 1e6,
            dr[i].gbps,
            dw[i].gbps,
            nr.get(i).map_or(0.0, |s| s.gbps),
            nw.get(i).map_or(0.0, |s| s.gbps),
        );
    }
    println!(
        "peaks: dram-R {:.2}  dram-W {:.2}  nvm-R {:.2}  nvm-W {:.2} GB/s; \
         totals: dram {:.1} MB, nvm {:.1} MB",
        r.traffic.peak_gbps(DeviceKind::Dram, AccessKind::Read),
        r.traffic.peak_gbps(DeviceKind::Dram, AccessKind::Write),
        r.traffic.peak_gbps(DeviceKind::Nvm, AccessKind::Read),
        r.traffic.peak_gbps(DeviceKind::Nvm, AccessKind::Write),
        r.device_bytes[0] as f64 / 1e6,
        r.device_bytes[1] as f64 / 1e6,
    );
    println!();
}

fn main() {
    header(
        "Figure 8: GraphX-CC memory bandwidth over time (1/3 DRAM)",
        "Fig. 8; panthera shifts read/write traffic from NVM to DRAM and \
         eliminates high instantaneous NVM bandwidth peaks",
    );
    let unm = run_main(WorkloadId::Cc, MemoryMode::Unmanaged);
    let pan = run_main(WorkloadId::Cc, MemoryMode::Panthera);
    print_series(&unm);
    print_series(&pan);

    let unm_nvm = unm.device_bytes[1] as f64;
    let pan_nvm = pan.device_bytes[1] as f64;
    println!(
        "NVM traffic reduced by {:.0}% under panthera; NVM read peak {:.2} -> {:.2} GB/s",
        (1.0 - pan_nvm / unm_nvm) * 100.0,
        unm.peak_nvm_read_gbps(),
        pan.peak_nvm_read_gbps(),
    );
}
