//! Table 4: the seven programs and their (scaled, synthetic) datasets.

use panthera_bench::{header, scale, SEED};
use workloads::{build_workload, WorkloadId};

fn main() {
    header("Table 4: programs and datasets", "Table 4");
    println!(
        "{:<12} {:<40} {:>9} {:>12}",
        "Program", "Paper dataset", "records", "bytes"
    );
    println!("{}", "-".repeat(78));
    for id in WorkloadId::ALL {
        let w = build_workload(id, scale(), SEED);
        let names = w.data.names();
        let (records, bytes): (usize, u64) = names
            .iter()
            .map(|n| (w.data.records(n).len(), w.data.bytes(n)))
            .fold((0, 0), |(r, b), (r2, b2)| (r + r2, b + b2));
        println!(
            "{:<12} {:<40} {:>9} {:>10}KB",
            id.name(),
            id.paper_dataset(),
            records,
            bytes / 1024
        );
    }
    println!();
    println!(
        "the synthetic datasets are ~1000x scaled-down stand-ins for the \
         paper's inputs (1 simulated MB per paper GB); Section 5.2 notes \
         that intermediate data dwarfs the input sizes, which the engine \
         reproduces."
    );
}
