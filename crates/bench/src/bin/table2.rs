//! Table 2: the DRAM and NVM device parameters the simulator uses.

use hybridmem::DeviceSpec;
use panthera_bench::header;

fn main() {
    header("Table 2: DRAM vs NVM device model", "Table 2 + Section 5.1");
    let d = DeviceSpec::dram();
    let n = DeviceSpec::nvm();
    println!("{:<34} {:>14} {:>16}", "", "DRAM", "NVM");
    println!("{}", "-".repeat(66));
    println!(
        "{:<34} {:>14} {:>16}",
        "Read latency (ns)",
        d.read_latency_ns,
        format!("{} (one-hop)", n.read_latency_ns)
    );
    println!(
        "{:<34} {:>14} {:>16}",
        "Bandwidth (GB/s)", d.read_bandwidth_bpns, n.read_bandwidth_bpns
    );
    println!(
        "{:<34} {:>14} {:>16}",
        "Static power (W/GB)", d.static_power_w_per_gb, n.static_power_w_per_gb
    );
    println!(
        "{:<34} {:>14} {:>16}",
        "Read energy (pJ/cache line)", d.read_energy_pj_per_line, n.read_energy_pj_per_line
    );
    println!(
        "{:<34} {:>14} {:>16}",
        "Write energy (pJ/cache line)", d.write_energy_pj_per_line, n.write_energy_pj_per_line
    );
    println!();
    println!(
        "paper values: NVM reads 300ns (2.5x DRAM's 120ns); NVM bandwidth \
         capped at 10 GB/s vs DRAM's 30 GB/s; NVM writes 31200 pJ/line \
         (Section 5.1's row-buffer-miss accounting); NVM static power \
         negligible vs DRAM."
    );
}
