//! Section 5.2's nursery sensitivity study: the paper tried young
//! generations of 1/4, 1/5, 1/6, and 1/7 of the heap, found 1/4-1/6
//! marginal and 1/7 worse, and settled on 1/6 to leave more DRAM to the
//! old generation.

use panthera::{MemoryMode, SystemConfig, SIM_GB};
use panthera_bench::{header, run_with};
use workloads::WorkloadId;

fn main() {
    header(
        "Section 5.2: nursery-size sensitivity (Panthera, 64GB, 1/3 DRAM)",
        "paper: 1/4, 1/5, 1/6 within noise; 1/7 worse; 1/6 chosen",
    );
    let fractions = [(4, 0.25), (5, 0.2), (6, 1.0 / 6.0), (7, 1.0 / 7.0)];
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "workload", "young=1/4", "young=1/5", "young=1/6", "young=1/7"
    );
    println!("{}", "-".repeat(56));
    let mut sums = [0.0f64; 4];
    let workloads = [
        WorkloadId::Pr,
        WorkloadId::Km,
        WorkloadId::Cc,
        WorkloadId::Bc,
    ];
    for id in workloads {
        let mut cols = Vec::new();
        for (_, frac) in fractions {
            let mut cfg = SystemConfig::new(MemoryMode::Panthera, 64 * SIM_GB, 1.0 / 3.0);
            cfg.nursery_fraction = frac;
            cols.push(run_with(id, cfg).elapsed_s);
        }
        let base = cols[2]; // normalize to the paper's chosen 1/6
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            id.name(),
            cols[0] / base,
            cols[1] / base,
            cols[2] / base,
            cols[3] / base
        );
        for (s, c) in sums.iter_mut().zip(&cols) {
            *s += c / base;
        }
    }
    let n = workloads.len() as f64;
    println!("{}", "-".repeat(56));
    println!(
        "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        "average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    println!();
    println!(
        "expected shape: the curve is flat near the paper's choice; large \
         nurseries steal old-generation DRAM, which is why the paper picks \
         1/6 over 1/4."
    );
}
