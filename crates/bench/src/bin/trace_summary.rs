//! trace_summary: replay a JSONL event trace (from `perfsuite --trace` or
//! any [`obs::JsonlSink`]) through the metrics aggregator and print the
//! derived aggregates — pause histograms, per-stage NVM-write ratios,
//! migration churn — followed by the full aggregate JSON.
//!
//! ```sh
//! cargo run -p panthera-bench --bin trace_summary -- trace.jsonl
//! ```
//!
//! Exits non-zero if the file is missing, malformed, or contains no
//! events, so CI can use it as a trace-integrity check.

use obs::{replay_path, MetricsAggregator};
use std::path::Path;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_summary TRACE.jsonl");
            std::process::exit(2);
        }
    };

    let mut metrics = MetricsAggregator::new();
    let n = match replay_path(Path::new(&path), &mut metrics) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("trace_summary: {path}: {e}");
            std::process::exit(1);
        }
    };
    if n == 0 {
        eprintln!("trace_summary: {path}: trace is empty");
        std::process::exit(1);
    }

    println!("{path}: {n} events");
    print!("{}", metrics.summary_table());
    println!();
    println!("{}", metrics.to_json().to_pretty());
}
