//! Extension experiment: how does Panthera's benefit change with the NVM
//! technology? The paper's introduction motivates hybrid memories with
//! PCM, STT-MRAM, RRAM, and 3D XPoint; the evaluation models PCM
//! (Table 2). This sweep re-runs the headline comparison for each
//! technology's device parameters.

use hybridmem::DeviceSpec;
use panthera::{MemoryMode, SystemConfig, SIM_GB};
use panthera_bench::{header, norm, run_with};
use workloads::WorkloadId;

type SpecFn = fn() -> DeviceSpec;

fn main() {
    header(
        "Extension: Panthera across NVM technologies (PR + GraphX-CC, 64GB, 1/3 DRAM)",
        "the paper evaluates PCM-like parameters (Table 2); the intro cites \
         STT-MRAM, RRAM, and 3D XPoint as alternative NVMs",
    );
    let techs: [(&str, SpecFn); 4] = [
        ("PCM (paper)", DeviceSpec::pcm),
        ("STT-MRAM", DeviceSpec::stt_mram),
        ("RRAM", DeviceSpec::rram),
        ("3D XPoint", DeviceSpec::xpoint),
    ];
    println!(
        "{:<12} {:<12} | {:>9} {:>9} | {:>9} {:>9}",
        "tech", "workload", "unm time", "pan time", "unm enrg", "pan enrg"
    );
    println!("{}", "-".repeat(72));
    for (name, spec) in techs {
        for id in [WorkloadId::Pr, WorkloadId::Cc] {
            let base = run_with(
                id,
                SystemConfig::new(MemoryMode::DramOnly, 64 * SIM_GB, 1.0),
            );
            let mut unm_cfg = SystemConfig::new(MemoryMode::Unmanaged, 64 * SIM_GB, 1.0 / 3.0);
            unm_cfg.nvm_spec = Some(spec());
            let unm = run_with(id, unm_cfg);
            let mut pan_cfg = SystemConfig::new(MemoryMode::Panthera, 64 * SIM_GB, 1.0 / 3.0);
            pan_cfg.nvm_spec = Some(spec());
            let pan = run_with(id, pan_cfg);
            println!(
                "{:<12} {:<12} | {} {} | {} {}",
                name,
                id.name(),
                norm(unm.time_vs(&base)),
                norm(pan.time_vs(&base)),
                norm(unm.energy_vs(&base)),
                norm(pan.energy_vs(&base)),
            );
        }
    }
    println!();
    println!(
        "expected shape: the faster the NVM (STT-MRAM), the smaller the gap \
         between unmanaged and Panthera — semantics-aware placement matters \
         most for slow NVMs (RRAM, XPoint), where unmanaged placement is \
         costliest."
    );
}
