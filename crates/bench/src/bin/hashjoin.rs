//! Section 4.3 applicability experiment: the Hadoop-style HashJoin driven
//! by Panthera's public runtime APIs (no Spark, no static analysis),
//! across every memory mode.

use panthera::{MemoryMode, SystemConfig, SIM_GB};
use panthera_bench::header;
use workloads::{hashjoin_input, run_hashjoin};

fn main() {
    header(
        "Section 4.3: API-driven HashJoin across memory modes",
        "the build table is pretenured in DRAM (API 1) and its scans are \
         monitored (API 2); probe partitions die in the young generation",
    );
    let scale = panthera_bench::scale();
    let input = hashjoin_input(
        (4_096.0 * scale) as usize,
        8,
        (8_192.0 * scale) as usize,
        panthera_bench::SEED,
    );
    println!(
        "{:<20} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "mode", "time(ms)", "gc(ms)", "energy(mJ)", "dram MB", "nvm MB"
    );
    println!("{}", "-".repeat(78));
    let mut baseline = None;
    for mode in MemoryMode::ALL {
        let cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
        let out = run_hashjoin(&input, &cfg);
        let r = &out.report;
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>12.3} {:>10.2} {:>10.2}",
            r.mode,
            r.elapsed_s * 1e3,
            r.gc_s() * 1e3,
            r.energy_j() * 1e3,
            r.device_bytes[0] as f64 / 1e6,
            r.device_bytes[1] as f64 / 1e6,
        );
        if mode == MemoryMode::DramOnly {
            baseline = Some(out);
        }
    }
    let base = baseline.expect("dram-only ran");
    let pan = run_hashjoin(
        &input,
        &SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0),
    );
    assert_eq!(
        base.matches, pan.matches,
        "join output must not depend on mode"
    );
    println!();
    println!(
        "{} matched rows in every mode; panthera: {:.2}x time, {:.2}x energy \
         vs DRAM-only",
        pan.matches,
        pan.report.time_vs(&base.report),
        pan.report.energy_vs(&base.report)
    );
    println!(
        "expected shape: panthera probes the DRAM-resident build table at \
         DRAM-only speed; KN/KW leave it in NVM and pay per-probe latency."
    );
}
