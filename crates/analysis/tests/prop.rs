//! Property tests for the static analysis over randomly generated
//! programs: totality, tag-domain invariants, and the all-NVM flip rule.

use panthera_analysis::{analyze, infer_tags, TagReason};
use proptest::prelude::*;
use sparklang::ast::MemoryTag;
use sparklang::{ActionKind, Program, ProgramBuilder, StorageLevel, VarId};

/// A random but well-formed program: a pool of variables defined from
/// sources or from each other, optionally persisted, with random loops.
#[derive(Debug, Clone)]
struct ProgSpec {
    ops: Vec<Op>,
}

#[derive(Debug, Clone)]
enum Op {
    NewVar,
    Persist(usize, u8),
    Action(usize),
    LoopStart(u8),
    LoopEnd,
    RebindFromSelf(usize),
    Use(usize),
}

fn spec() -> impl Strategy<Value = ProgSpec> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::NewVar),
            (any::<prop::sample::Index>(), 0u8..10).prop_map(|(i, l)| Op::Persist(i.index(64), l)),
            any::<prop::sample::Index>().prop_map(|i| Op::Action(i.index(64))),
            (1u8..4).prop_map(Op::LoopStart),
            Just(Op::LoopEnd),
            any::<prop::sample::Index>().prop_map(|i| Op::RebindFromSelf(i.index(64))),
            any::<prop::sample::Index>().prop_map(|i| Op::Use(i.index(64))),
        ],
        1..40,
    )
    .prop_map(|ops| ProgSpec { ops })
}

const LEVELS: [StorageLevel; 10] = StorageLevel::ALL;

/// Interpret the spec into a real program (skipping ops that would be
/// ill-formed at that point).
fn build(spec: &ProgSpec) -> Program {
    fn emit(b: &mut ProgramBuilder, vars: &mut Vec<VarId>, depth: &mut u32, op: &Op) {
        match op {
            Op::NewVar => {
                let name = format!("v{}", vars.len());
                let src = b.source(&format!("s{}", vars.len()));
                let v = b.bind(&name, src.distinct());
                vars.push(v);
            }
            Op::Persist(i, l) if !vars.is_empty() => {
                let v = vars[i % vars.len()];
                b.persist(v, LEVELS[*l as usize % LEVELS.len()]);
            }
            Op::Action(i) if !vars.is_empty() => {
                b.action(vars[i % vars.len()], ActionKind::Count);
            }
            Op::RebindFromSelf(i) if !vars.is_empty() => {
                let v = vars[i % vars.len()];
                let e = b.var(v).distinct();
                b.rebind(v, e);
            }
            Op::Use(i) if !vars.is_empty() => {
                let v = vars[i % vars.len()];
                let name = format!("u{}", vars.len());
                let u = b.bind(&name, b.var(v).group_by_key());
                vars.push(u);
            }
            _ => {}
        }
        let _ = depth;
    }

    let mut b = ProgramBuilder::new("random");
    let mut vars: Vec<VarId> = Vec::new();
    let mut depth = 0u32;

    // Split the op stream at loop markers and build nested loops
    // iteratively via a simple recursive descent.
    fn go(
        ops: &[Op],
        pos: &mut usize,
        b: &mut ProgramBuilder,
        vars: &mut Vec<VarId>,
        depth: &mut u32,
    ) {
        while *pos < ops.len() {
            match &ops[*pos] {
                Op::LoopStart(n) if *depth < 3 => {
                    let n = *n;
                    *pos += 1;
                    *depth += 1;
                    // Collect the body by recursion.
                    let body_start = *pos;
                    let _ = body_start;
                    b.loop_n(n as u32, |b| go(ops, pos, b, vars, depth));
                    *depth -= 1;
                }
                Op::LoopEnd => {
                    *pos += 1;
                    if *depth > 0 {
                        return;
                    }
                }
                op => {
                    emit(b, vars, depth, op);
                    *pos += 1;
                }
            }
        }
    }
    let mut pos = 0;
    go(&spec.ops, &mut pos, &mut b, &mut vars, &mut depth);
    b.finish().0
}

proptest! {
    /// The analysis is total and only tags materialized variables.
    #[test]
    fn analysis_is_total(s in spec()) {
        let p = build(&s);
        let report = analyze(&p);
        for (v, t) in &report.tags.vars {
            prop_assert!((v.0 as usize) < p.n_vars());
            // DISK_ONLY is the only untagged reason.
            if t.tag.is_none() {
                prop_assert_eq!(&t.reason, &TagReason::DiskOnly);
            }
        }
        // Every instrumented site refers to a tagged decision's variable.
        for site in report.plan.sites.values() {
            prop_assert!(report.tags.vars.contains_key(&site.var));
        }
    }

    /// The flip rule never leaves a rule-based NVM-only assignment: if no
    /// variable earned DRAM, every rule-based decision is flipped.
    #[test]
    fn flip_rule_invariant(s in spec()) {
        let p = build(&s);
        let tags = infer_tags(&p);
        let rule_based: Vec<_> = tags
            .vars
            .values()
            .filter(|t| {
                matches!(
                    t.reason,
                    TagReason::UsedOnlyInLoop
                        | TagReason::DefinedInLoop
                        | TagReason::NoQualifyingLoop
                        | TagReason::AllNvmFlip
                )
            })
            .collect();
        if !rule_based.is_empty() {
            let any_dram = rule_based.iter().any(|t| t.tag == Some(MemoryTag::Dram));
            prop_assert!(
                any_dram,
                "analysis left all rule-based tags NVM without flipping"
            );
        }
    }

    /// Determinism: analyzing twice gives identical assignments.
    #[test]
    fn analysis_is_deterministic(s in spec()) {
        let p = build(&s);
        let a = infer_tags(&p);
        let b = infer_tags(&p);
        prop_assert_eq!(a.vars, b.vars);
    }
}
