//! Memory-tag inference (paper Section 3).
//!
//! For each materialized RDD variable the analysis asks: *after this RDD
//! materializes, is it repeatedly read, or does each loop iteration replace
//! it with a fresh instance?* Concretely:
//!
//! 1. Consider only loops whose extent the materialization point precedes
//!    or lies within — behaviour before materialization is irrelevant.
//! 2. If some such loop *uses* the variable without ever *defining* it,
//!    only one RDD instance exists and is read every iteration → **DRAM**.
//! 3. Otherwise (defined in the loops, or no qualifying loop at all) most
//!    instances are written once and left cached → **NVM**.
//! 4. `OFF_HEAP` persists are forced to NVM; `DISK_ONLY` gets no tag.
//! 5. If *every* heap-persisted RDD ended up NVM, flip them all to DRAM —
//!    DRAM should be filled first, with overflow spilling to NVM anyway.

use crate::defuse::DefUse;
use sparklang::ast::{MemoryTag, Program, StmtId, StorageLevel, VarId};
use std::collections::BTreeMap;

/// Options controlling optional analysis extensions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Understand `unpersist`: a variable that is redefined in a loop but
    /// *unpersisted in the same loop* does not accumulate stale cached
    /// instances — the single live instance is read every iteration, so it
    /// earns a DRAM tag. The paper's analysis lacks this (Section 5.5:
    /// GraphX's per-superstep graphs are handled by dynamic migration
    /// instead); off by default for paper fidelity.
    pub unpersist_support: bool,
}

/// Why a variable got its tag — kept for reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagReason {
    /// Used-only in a qualifying loop.
    UsedOnlyInLoop,
    /// Defined in every qualifying loop it appears in.
    DefinedInLoop,
    /// No qualifying loop follows or contains the materialization point.
    NoQualifyingLoop,
    /// `OFF_HEAP` storage level forces NVM.
    OffHeapForced,
    /// `DISK_ONLY` carries no memory tag.
    DiskOnly,
    /// Flipped NVM→DRAM because every persisted RDD was NVM.
    AllNvmFlip,
    /// Extension (`unpersist_support`): redefined in a loop but promptly
    /// unpersisted there, so only the hot live instance exists.
    RecycledInLoop,
}

/// The tag assigned to one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarTag {
    /// The inferred tag; `None` for `DISK_ONLY`.
    pub tag: Option<MemoryTag>,
    /// Why.
    pub reason: TagReason,
    /// The materialization point the decision was keyed on.
    pub mat_point: StmtId,
}

/// The full assignment for a program.
#[derive(Debug, Clone, Default)]
pub struct TagAssignment {
    /// Per-variable decisions (ordered for deterministic reports).
    pub vars: BTreeMap<VarId, VarTag>,
}

impl TagAssignment {
    /// The tag for `var`, if the variable is materialized and tagged.
    pub fn tag(&self, var: VarId) -> Option<MemoryTag> {
        self.vars.get(&var).and_then(|t| t.tag)
    }

    /// Expanded storage-level name for a persist site, e.g.
    /// `MEMORY_ONLY_DRAM` (Section 3's sub-level expansion).
    pub fn expanded_level(&self, var: VarId, level: StorageLevel) -> String {
        match (level.expands_to_tagged(), self.tag(var)) {
            (true, Some(t)) => format!("{level}_{t}"),
            (_, _) if level == StorageLevel::OffHeap => "OFF_HEAP_NVM".to_string(),
            _ => level.to_string(),
        }
    }
}

/// Run the inference over a program with the paper's exact rules.
///
/// # Examples
///
/// ```
/// use panthera_analysis::infer_tags;
/// use sparklang::{ActionKind, MemoryTag, ProgramBuilder, StorageLevel};
///
/// let mut b = ProgramBuilder::new("cache");
/// let src = b.source("input");
/// let table = b.bind("table", src.distinct());
/// b.persist(table, StorageLevel::MemoryOnly);
/// b.loop_n(8, |b| b.action(table, ActionKind::Count));
/// let (program, _) = b.finish();
///
/// // Used-only in a loop after materialization => hot => DRAM.
/// assert_eq!(infer_tags(&program).tag(table), Some(MemoryTag::Dram));
/// ```
pub fn infer_tags(program: &Program) -> TagAssignment {
    infer_tags_with(program, AnalysisOptions::default())
}

/// Run the inference with optional extensions enabled.
pub fn infer_tags_with(program: &Program, options: AnalysisOptions) -> TagAssignment {
    let du = DefUse::collect(program);
    infer_from_defuse_with(program, &du, options)
}

/// Run the paper-faithful inference over pre-collected def/use facts.
pub fn infer_from_defuse(program: &Program, du: &DefUse) -> TagAssignment {
    infer_from_defuse_with(program, du, AnalysisOptions::default())
}

/// Run the inference over pre-collected def/use facts with extensions.
pub fn infer_from_defuse_with(
    program: &Program,
    du: &DefUse,
    options: AnalysisOptions,
) -> TagAssignment {
    let mut out = TagAssignment::default();
    for var in du.materialized_vars() {
        let Some(mat) = du.materialization_point(var) else {
            continue;
        };
        let level = du
            .persists
            .get(&var)
            .and_then(|p| p.iter().min_by_key(|s| s.stmt))
            .map(|s| s.level);

        let decision = match level {
            Some(StorageLevel::OffHeap) => VarTag {
                tag: Some(MemoryTag::Nvm),
                reason: TagReason::OffHeapForced,
                mat_point: mat,
            },
            Some(StorageLevel::DiskOnly) => VarTag {
                tag: None,
                reason: TagReason::DiskOnly,
                mat_point: mat,
            },
            _ => rule_based(du, var, mat, options),
        };
        out.vars.insert(var, decision);
    }

    // Rule 5: the all-NVM flip. Only rule-based decisions participate —
    // OFF_HEAP stays NVM and DISK_ONLY stays untagged.
    let rule_based: Vec<VarId> = out
        .vars
        .iter()
        .filter(|(_, t)| {
            matches!(
                t.reason,
                TagReason::UsedOnlyInLoop
                    | TagReason::DefinedInLoop
                    | TagReason::NoQualifyingLoop
                    | TagReason::RecycledInLoop
            )
        })
        .map(|(v, _)| *v)
        .collect();
    let all_nvm = !rule_based.is_empty()
        && rule_based
            .iter()
            .all(|v| out.vars[v].tag == Some(MemoryTag::Nvm));
    if all_nvm {
        for v in rule_based {
            let t = out.vars.get_mut(&v).expect("just inserted");
            t.tag = Some(MemoryTag::Dram);
            t.reason = TagReason::AllNvmFlip;
        }
    }
    let _ = program;
    out
}

fn rule_based(du: &DefUse, var: VarId, mat: StmtId, options: AnalysisOptions) -> VarTag {
    // Qualifying loops: the materialization point precedes the loop or
    // lies inside its extent.
    let mut saw_qualifying = false;
    for (loop_id, extent) in &du.loops {
        // Qualifies if the loop follows the materialization point or contains it.
        let qualifies = mat < extent.start || mat <= extent.end;
        if !qualifies {
            continue;
        }
        if !du.used_in(var, *loop_id) {
            continue;
        }
        saw_qualifying = true;
        if !du.defined_in(var, *loop_id) {
            // Used-only in a loop that follows/contains materialization.
            return VarTag {
                tag: Some(MemoryTag::Dram),
                reason: TagReason::UsedOnlyInLoop,
                mat_point: mat,
            };
        }
        if options.unpersist_support && unpersisted_in(du, var, *loop_id) {
            // Extension: the loop recycles the variable's instances, so
            // only the (hot) live one occupies memory.
            return VarTag {
                tag: Some(MemoryTag::Dram),
                reason: TagReason::RecycledInLoop,
                mat_point: mat,
            };
        }
    }
    let reason = if saw_qualifying {
        TagReason::DefinedInLoop
    } else {
        TagReason::NoQualifyingLoop
    };
    VarTag {
        tag: Some(MemoryTag::Nvm),
        reason,
        mat_point: mat,
    }
}

fn unpersisted_in(du: &DefUse, var: VarId, l: sparklang::ast::LoopId) -> bool {
    du.unpersists
        .get(&var)
        .is_some_and(|v| v.iter().any(|o| o.in_loop(l)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklang::{ActionKind, ProgramBuilder, StorageLevel};

    /// Figure 2(a)'s PageRank: links → DRAM, contribs → NVM, ranks → NVM.
    fn pagerank() -> sparklang::Program {
        let mut b = ProgramBuilder::new("pr");
        let f = b.map_fn(|p| p.clone());
        let src = b.source("wiki");
        let links = b.bind("links", src.map(f).distinct().group_by_key());
        b.persist(links, StorageLevel::MemoryOnly);
        let ranks = b.bind("ranks", b.var(links).map_values(f));
        b.loop_n(10, |b| {
            let e = b.var(links).join(b.var(ranks)).values().flat_map(f);
            let contribs = b.bind("contribs", e);
            b.persist(contribs, StorageLevel::MemoryAndDiskSer);
            let e2 = b.var(contribs).reduce_by_key(f).map_values(f);
            b.rebind(ranks, e2);
        });
        b.action(ranks, ActionKind::Count);
        b.finish().0
    }

    #[test]
    fn pagerank_tags_match_paper() {
        let p = pagerank();
        let tags = infer_tags(&p);
        let (links, ranks, contribs) = (VarId(0), VarId(1), VarId(2));
        assert_eq!(tags.tag(links), Some(MemoryTag::Dram));
        assert_eq!(tags.vars[&links].reason, TagReason::UsedOnlyInLoop);
        assert_eq!(tags.tag(contribs), Some(MemoryTag::Nvm));
        assert_eq!(tags.vars[&contribs].reason, TagReason::DefinedInLoop);
        // ranks materializes at count() *after* the loop — the loop does
        // not qualify, so ranks is NVM (Section 3's ordering constraint).
        assert_eq!(tags.tag(ranks), Some(MemoryTag::Nvm));
        assert_eq!(tags.vars[&ranks].reason, TagReason::NoQualifyingLoop);
    }

    #[test]
    fn expanded_level_names() {
        let p = pagerank();
        let tags = infer_tags(&p);
        assert_eq!(
            tags.expanded_level(VarId(0), StorageLevel::MemoryOnly),
            "MEMORY_ONLY_DRAM"
        );
        assert_eq!(
            tags.expanded_level(VarId(2), StorageLevel::MemoryAndDiskSer),
            "MEMORY_AND_DISK_SER_NVM"
        );
    }

    #[test]
    fn no_loop_program_flips_to_dram() {
        // Section 3: with no loops, everything is NVM first, then the
        // all-NVM rule flips every tag to DRAM to fill DRAM first.
        let mut b = ProgramBuilder::new("batch");
        let src = b.source("input");
        let x = b.bind("x", src.distinct());
        b.persist(x, StorageLevel::MemoryOnly);
        b.action(x, ActionKind::Count);
        let (p, _) = b.finish();
        let tags = infer_tags(&p);
        assert_eq!(tags.tag(x), Some(MemoryTag::Dram));
        assert_eq!(tags.vars[&x].reason, TagReason::AllNvmFlip);
    }

    #[test]
    fn off_heap_is_forced_nvm_and_excluded_from_flip() {
        let mut b = ProgramBuilder::new("t");
        let s1 = b.source("a");
        let s2 = b.source("b");
        let x = b.bind("x", s1);
        b.persist(x, StorageLevel::OffHeap);
        let y = b.bind("y", s2);
        b.persist(y, StorageLevel::MemoryOnly);
        b.action(y, ActionKind::Count);
        let (p, _) = b.finish();
        let tags = infer_tags(&p);
        assert_eq!(tags.vars[&x].reason, TagReason::OffHeapForced);
        assert_eq!(tags.tag(x), Some(MemoryTag::Nvm));
        // y was rule-based NVM and is the only rule-based var → flipped.
        assert_eq!(tags.tag(y), Some(MemoryTag::Dram));
        assert_eq!(
            tags.expanded_level(x, StorageLevel::OffHeap),
            "OFF_HEAP_NVM"
        );
    }

    #[test]
    fn disk_only_gets_no_tag() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("a");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::DiskOnly);
        b.loop_n(3, |b| {
            b.action(x, ActionKind::Count);
        });
        let (p, _) = b.finish();
        let tags = infer_tags(&p);
        assert_eq!(tags.tag(x), None);
        assert_eq!(tags.vars[&x].reason, TagReason::DiskOnly);
        assert_eq!(tags.expanded_level(x, StorageLevel::DiskOnly), "DISK_ONLY");
    }

    #[test]
    fn used_only_in_later_loop_wins_over_earlier_defining_loop() {
        // "If there are multiple loops ... tag DRAM as long as there exists
        // one loop in which the variable is used-only and that loop follows
        // or contains the materialization point."
        let mut b = ProgramBuilder::new("t");
        let f = b.map_fn(|p| p.clone());
        let src = b.source("a");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        b.loop_n(2, |b| {
            let e = b.var(x).map(f);
            b.rebind(x, e); // defined here → would be NVM
        });
        b.loop_n(2, |b| {
            b.action(x, ActionKind::Count); // used-only here → DRAM
        });
        let (p, _) = b.finish();
        let tags = infer_tags(&p);
        assert_eq!(tags.tag(x), Some(MemoryTag::Dram));
        assert_eq!(tags.vars[&x].reason, TagReason::UsedOnlyInLoop);
    }

    #[test]
    fn transitive_closure_tags() {
        // TC: tc = tc.union(tc.join(edges)...).distinct() in a loop — tc is
        // defined every iteration. edges used-only. So edges=DRAM, tc=NVM,
        // no flip.
        let mut b = ProgramBuilder::new("tc");
        let f = b.map_fn(|p| p.clone());
        let src = b.source("graph");
        let edges = b.bind("edges", src);
        b.persist(edges, StorageLevel::MemoryOnly);
        let tc = b.bind("tc", b.var(edges));
        b.persist(tc, StorageLevel::MemoryOnly);
        b.loop_n(5, |b| {
            let grown = b.var(tc).join(b.var(edges)).values().map(f);
            let e = b.var(tc).union(grown).distinct();
            b.rebind(tc, e);
            b.persist(tc, StorageLevel::MemoryOnly);
        });
        b.action(tc, ActionKind::Count);
        let (p, _) = b.finish();
        let tags = infer_tags(&p);
        assert_eq!(tags.tag(edges), Some(MemoryTag::Dram));
        assert_eq!(tags.tag(tc), Some(MemoryTag::Nvm));
    }

    #[test]
    fn unpersist_extension_recognizes_recycling() {
        // The GraphX pattern: state redefined each superstep but promptly
        // unpersisted — stale instances never accumulate.
        let build = || {
            let mut b = ProgramBuilder::new("pregel");
            let f = b.map_fn(|p| p.clone());
            let src = b.source("g");
            let anchor = b.bind("anchor", src.distinct());
            b.persist(anchor, StorageLevel::MemoryOnly);
            let state = b.bind("state", b.var(anchor).map(f));
            b.persist(state, StorageLevel::MemoryOnly);
            b.loop_n(5, |b| {
                let e = b.var(state).map(f);
                b.unpersist(state);
                b.rebind(state, e);
                b.persist(state, StorageLevel::MemoryOnly);
                b.action(anchor, ActionKind::Count); // keeps anchor DRAM
            });
            (b.finish().0, state)
        };
        let (p, state) = build();
        // Paper-faithful: defined-in-loop => NVM.
        let base = infer_tags(&p);
        assert_eq!(base.tag(state), Some(MemoryTag::Nvm));
        assert_eq!(base.vars[&state].reason, TagReason::DefinedInLoop);
        // Extension: recycled => DRAM.
        let ext = infer_tags_with(
            &p,
            AnalysisOptions {
                unpersist_support: true,
            },
        );
        assert_eq!(ext.tag(state), Some(MemoryTag::Dram));
        assert_eq!(ext.vars[&state].reason, TagReason::RecycledInLoop);
    }

    #[test]
    fn unpersist_extension_leaves_pagerank_alone() {
        // contribs is never unpersisted: the extension must not change
        // Figure 2(a)'s tags.
        let p = pagerank();
        let ext = infer_tags_with(
            &p,
            AnalysisOptions {
                unpersist_support: true,
            },
        );
        assert_eq!(ext.tag(VarId(0)), Some(MemoryTag::Dram), "links");
        assert_eq!(ext.tag(VarId(2)), Some(MemoryTag::Nvm), "contribs");
    }

    #[test]
    fn unmaterialized_vars_get_no_entry() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("a");
        let x = b.bind("x", src);
        let y = b.bind("y", b.var(x).distinct());
        b.action(y, ActionKind::Count);
        let (p, _) = b.finish();
        let tags = infer_tags(&p);
        assert!(!tags.vars.contains_key(&x), "x is never materialized");
        assert!(tags.vars.contains_key(&y));
    }
}
