//! Def/use collection: for every RDD variable, where it is defined, used,
//! persisted, and acted on, and inside which loops.

use sparklang::ast::{LoopId, Program, Stmt, StmtId, StorageLevel, VarId};
use sparklang::visit::{walk, Visitor};
use std::collections::HashMap;

/// One occurrence of a variable, with its loop context (outermost first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    /// Statement position.
    pub stmt: StmtId,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopId>,
}

impl Occurrence {
    /// Is this occurrence inside loop `l`?
    pub fn in_loop(&self, l: LoopId) -> bool {
        self.loops.contains(&l)
    }
}

/// A `persist` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistSite {
    /// Statement position.
    pub stmt: StmtId,
    /// Requested storage level.
    pub level: StorageLevel,
    /// Enclosing loops.
    pub loops: Vec<LoopId>,
}

/// Loop extent in pre-order statement ids: the loop header is `start`; the
/// last statement of its body is `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopExtent {
    /// Loop header position.
    pub start: StmtId,
    /// Last body-statement position.
    pub end: StmtId,
    /// Iteration count.
    pub n: u32,
}

/// Def/use facts for one program.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// Definitions (binds) per variable.
    pub defs: HashMap<VarId, Vec<Occurrence>>,
    /// Uses (expression mentions and actions) per variable.
    pub uses: HashMap<VarId, Vec<Occurrence>>,
    /// `persist` sites per variable.
    pub persists: HashMap<VarId, Vec<PersistSite>>,
    /// Action sites per variable.
    pub actions: HashMap<VarId, Vec<Occurrence>>,
    /// `unpersist` sites per variable (recorded but — like the paper's
    /// analysis, see Section 5.5 — not used for tag inference).
    pub unpersists: HashMap<VarId, Vec<Occurrence>>,
    /// Extents of all loops.
    pub loops: HashMap<LoopId, LoopExtent>,
}

impl DefUse {
    /// Collect facts from a program.
    pub fn collect(program: &Program) -> DefUse {
        let mut c = Collector::default();
        walk(program, &mut c);
        c.out
    }

    /// Is `var` defined anywhere inside loop `l`?
    pub fn defined_in(&self, var: VarId, l: LoopId) -> bool {
        self.defs
            .get(&var)
            .is_some_and(|v| v.iter().any(|o| o.in_loop(l)))
    }

    /// Is `var` used anywhere inside loop `l`?
    pub fn used_in(&self, var: VarId, l: LoopId) -> bool {
        self.uses
            .get(&var)
            .is_some_and(|v| v.iter().any(|o| o.in_loop(l)))
    }

    /// The *materialization point* of `var`: its first `persist` site, or
    /// failing that its first action site.
    pub fn materialization_point(&self, var: VarId) -> Option<StmtId> {
        self.persists
            .get(&var)
            .and_then(|p| p.iter().map(|s| s.stmt).min())
            .or_else(|| {
                self.actions
                    .get(&var)
                    .and_then(|a| a.iter().map(|o| o.stmt).min())
            })
    }

    /// Variables that are materialized (persisted or action targets), in
    /// id order.
    pub fn materialized_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .persists
            .keys()
            .chain(self.actions.keys())
            .copied()
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }
}

#[derive(Default)]
struct Collector {
    out: DefUse,
    loop_stack: Vec<(LoopId, StmtId, u32)>,
}

impl Visitor for Collector {
    fn stmt(&mut self, id: StmtId, stmt: &Stmt, loops: &[LoopId]) {
        let occ = |id| Occurrence {
            stmt: id,
            loops: loops.to_vec(),
        };
        match stmt {
            Stmt::Bind { var, expr } => {
                self.out.defs.entry(*var).or_default().push(occ(id));
                for u in expr.vars() {
                    self.out.uses.entry(u).or_default().push(occ(id));
                }
            }
            Stmt::Persist { var, level } => {
                self.out
                    .persists
                    .entry(*var)
                    .or_default()
                    .push(PersistSite {
                        stmt: id,
                        level: *level,
                        loops: loops.to_vec(),
                    });
            }
            Stmt::Unpersist { var } => {
                self.out.unpersists.entry(*var).or_default().push(occ(id));
            }
            Stmt::Checkpoint { var } => {
                // A checkpoint reads the RDD (the snapshot walks it), so
                // it keeps the instance live like any other use.
                self.out.uses.entry(*var).or_default().push(occ(id));
            }
            Stmt::Action { var, .. } => {
                self.out.actions.entry(*var).or_default().push(occ(id));
                // An action reads the RDD: it is also a use.
                self.out.uses.entry(*var).or_default().push(occ(id));
            }
            Stmt::Loop { .. } => unreachable!("loops dispatch via enter_loop"),
        }
    }

    fn enter_loop(&mut self, id: StmtId, loop_id: LoopId, n: u32) {
        self.loop_stack.push((loop_id, id, n));
    }

    fn exit_loop(&mut self, loop_id: LoopId, last: StmtId) {
        let (lid, start, n) = self.loop_stack.pop().expect("balanced loops");
        debug_assert_eq!(lid, loop_id);
        self.out.loops.insert(
            loop_id,
            LoopExtent {
                start,
                end: last,
                n,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklang::{ActionKind, ProgramBuilder, StorageLevel};

    #[test]
    fn collects_pagerank_shape() {
        // Figure 2(a): links used-only in the loop, contribs defined in it.
        let mut b = ProgramBuilder::new("pr");
        let f = b.map_fn(|p| p.clone());
        let src = b.source("wiki");
        let links = b.bind("links", src.map(f).distinct().group_by_key());
        b.persist(links, StorageLevel::MemoryOnly);
        let ranks = b.bind("ranks", b.var(links).map_values(f));
        b.loop_n(10, |b| {
            let e = b.var(links).join(b.var(ranks)).values().flat_map(f);
            let contribs = b.bind("contribs", e);
            b.persist(contribs, StorageLevel::MemoryAndDiskSer);
            let e2 = b.var(contribs).reduce_by_key(f).map_values(f);
            b.rebind(ranks, e2);
        });
        b.action(ranks, ActionKind::Count);
        let (p, _) = b.finish();
        let du = DefUse::collect(&p);

        let l0 = LoopId(0);
        assert!(du.used_in(links, l0));
        assert!(!du.defined_in(links, l0));
        assert!(du.used_in(ranks, l0));
        assert!(du.defined_in(ranks, l0));
        let contribs = VarId(2);
        assert!(du.used_in(contribs, l0));
        assert!(du.defined_in(contribs, l0));

        // Materialization points: persist for links/contribs, the action
        // for ranks — and the loop precedes the action.
        let ranks_mat = du.materialization_point(ranks).unwrap();
        let extent = du.loops[&l0];
        assert!(ranks_mat > extent.end, "ranks materializes after the loop");
        assert!(du.materialization_point(links).unwrap() < extent.start);
        let cm = du.materialization_point(contribs).unwrap();
        assert!(
            cm >= extent.start && cm <= extent.end,
            "contribs persists inside"
        );
        assert_eq!(du.materialized_vars(), vec![links, ranks, contribs]);
    }

    #[test]
    fn flatmap_var_and_action_uses() {
        use sparklang::VarId;
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.action(x, ActionKind::Collect);
        let (p, _) = b.finish();
        let du = DefUse::collect(&p);
        assert_eq!(du.uses[&x].len(), 1, "action counts as a use");
        assert_eq!(du.defs[&x].len(), 1);
        assert!(du.materialization_point(VarId(9)).is_none());
    }
}
