//! Static RDD lifetimes: the release schedule for the off-heap region.
//!
//! The engine's off-heap "H2" region holds persisted RDDs outside the
//! traced heap, reference-counted at RDD granularity. The refcounts come
//! from here: this pass statically mirrors the engine's deterministic
//! execution (loop trip counts are static, evaluation order is fixed) and
//! computes, for every *dynamic* statement execution, which persisted RDD
//! instances that statement's evaluation consumes. A persisted instance's
//! retain count is exactly the number of future consuming statements, so
//! the engine — decrementing once per consuming statement on this
//! schedule — frees each block at the precise statement where the
//! def/use lifetime says the RDD is dead.
//!
//! The mirroring is exact because both sides follow the same rules:
//!
//! * dynamic steps are numbered in engine visit order — a `Loop`
//!   statement is one step, then its body statements are numbered per
//!   iteration;
//! * `Bind` is lazy (no consumption); a pure-alias bind (`y = x`) shares
//!   `x`'s instance, any other bind creates a fresh instance whose
//!   parents are the instances of the variables the expression mentions;
//! * `Persist` evaluates unless the instance is already materialized,
//!   and materializes it (creating an off-heap block for heap storage
//!   levels — `DISK_ONLY` and native `OFF_HEAP` persists materialize
//!   without one);
//! * `Action` always evaluates;
//! * an evaluation consumes the persisted instances reachable from its
//!   target through *unmaterialized* bindings, stopping at materialized
//!   instances (the engine's compute recursion short-circuits there);
//! * `Unpersist` drops the materialization, so later evaluations recurse
//!   past the instance and consume its ancestors instead.

use mheap::RegionClass;
use sparklang::ast::{Program, RddExpr, Stmt, VarId};
use std::collections::{BTreeSet, HashMap};

/// An off-heap block the plan schedules: created by the persist step that
/// carries it, kept alive for exactly `retain` future consuming steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanBlock {
    /// Sequential block id, in persist-execution order. The engine keys
    /// its block registry by this id.
    pub id: u32,
    /// Number of future steps that consume the block. Zero means the RDD
    /// is lineage-dead at birth; the creating step lists the block in its
    /// own `frees`.
    pub retain: u32,
    /// Region class of the block's data: [`RegionClass::Eternal`] when
    /// the last consuming step is the final dynamic step of the program
    /// (the data lives to the end of the run), [`RegionClass::RddLifetime`]
    /// otherwise. Plan blocks are never stage scratch — that class covers
    /// the engine's streamed temporaries, which no block addresses.
    pub class: RegionClass,
}

/// The off-heap operations one dynamic statement execution performs,
/// applied by the engine after the statement completes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepOps {
    /// Block this step creates (persist of a heap-level RDD).
    pub block: Option<PlanBlock>,
    /// Blocks this step's evaluation consumed: decrement each once.
    pub releases: Vec<u32>,
    /// Blocks to force-free after this step (retain-zero births).
    pub frees: Vec<u32>,
}

impl StepOps {
    /// True if the step performs no off-heap operation.
    pub fn is_empty(&self) -> bool {
        self.block.is_none() && self.releases.is_empty() && self.frees.is_empty()
    }
}

/// The full release schedule: one [`StepOps`] per dynamic statement
/// execution, in engine visit order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifetimePlan {
    /// Per-step operations, indexed by dynamic step number.
    pub steps: Vec<StepOps>,
    /// Total blocks the schedule creates.
    pub n_blocks: u32,
}

impl LifetimePlan {
    /// The operations of dynamic step `step`, if the plan covers it.
    pub fn ops(&self, step: usize) -> Option<&StepOps> {
        self.steps.get(step)
    }

    /// Internal consistency: every block is released exactly `retain`
    /// times, all after its creating step, and retain-zero blocks are
    /// freed at birth.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (the walk cannot
    /// produce one; this is the test suite's cross-check).
    pub fn check(&self) -> Result<(), String> {
        let mut created: HashMap<u32, usize> = HashMap::new();
        let mut released: HashMap<u32, u32> = HashMap::new();
        for (i, ops) in self.steps.iter().enumerate() {
            if let Some(b) = &ops.block {
                if created.insert(b.id, i).is_some() {
                    return Err(format!("block {} created twice", b.id));
                }
                if b.retain == 0 && !ops.frees.contains(&b.id) {
                    return Err(format!("retain-0 block {} not freed at birth", b.id));
                }
            }
            for &b in &ops.releases {
                match created.get(&b) {
                    None => return Err(format!("block {b} released before creation (step {i})")),
                    Some(&c) if c >= i => {
                        return Err(format!("block {b} released at its own creating step {i}"))
                    }
                    _ => {}
                }
                *released.entry(b).or_insert(0) += 1;
            }
        }
        let mut last_release: HashMap<u32, usize> = HashMap::new();
        for (i, ops) in self.steps.iter().enumerate() {
            for &b in &ops.releases {
                last_release.insert(b, i);
            }
        }
        let final_step = self.steps.len().saturating_sub(1);
        for (i, ops) in self.steps.iter().enumerate() {
            if let Some(b) = &ops.block {
                let got = released.get(&b.id).copied().unwrap_or(0);
                if got != b.retain {
                    return Err(format!(
                        "block {} (step {i}) retain {} but released {got} times",
                        b.id, b.retain
                    ));
                }
                let want = if b.retain > 0 && last_release.get(&b.id) == Some(&final_step) {
                    mheap::RegionClass::Eternal
                } else {
                    mheap::RegionClass::RddLifetime
                };
                if b.class != want {
                    return Err(format!(
                        "block {} classified {:?} but its schedule says {want:?}",
                        b.id, b.class
                    ));
                }
            }
        }
        if created.len() != self.n_blocks as usize {
            return Err(format!(
                "plan says {} blocks but {} were created",
                self.n_blocks,
                created.len()
            ));
        }
        Ok(())
    }
}

/// Abstract RDD instance id inside the walk.
type Inst = usize;

#[derive(Default)]
struct Walker {
    steps: Vec<StepOps>,
    /// Parents of each instance (instances of the vars its bind mentions).
    parents: Vec<Vec<Inst>>,
    /// Current binding of each variable.
    env: HashMap<VarId, Inst>,
    /// Materialized instances → their off-heap block id (`None` for
    /// disk/native materializations, which have no block).
    materialized: HashMap<Inst, Option<u32>>,
    n_blocks: u32,
}

impl Walker {
    fn instance_of(&mut self, expr: &RddExpr) -> Inst {
        if let RddExpr::Var(v) = expr {
            // Pure alias: the engine reuses the variable's node.
            return self.env[v];
        }
        let mut parents: Vec<Inst> = Vec::new();
        for v in expr.vars() {
            let inst = self.env[&v];
            if !parents.contains(&inst) {
                parents.push(inst);
            }
        }
        self.parents.push(parents);
        self.parents.len() - 1
    }

    /// The persisted instances an evaluation of `target` consumes:
    /// reachable through unmaterialized bindings, stopping at (and
    /// collecting) materialized instances.
    fn consumed(&self, target: Inst) -> BTreeSet<Inst> {
        let mut out = BTreeSet::new();
        let mut seen = vec![false; self.parents.len()];
        let mut stack = vec![target];
        while let Some(inst) = stack.pop() {
            if std::mem::replace(&mut seen[inst], true) {
                continue;
            }
            if self.materialized.contains_key(&inst) {
                out.insert(inst);
            } else {
                stack.extend(self.parents[inst].iter().copied());
            }
        }
        out
    }

    /// Attribute an evaluation's consumption to the consumed instances'
    /// blocks (instances materialized without a block decrement nothing).
    fn attribute(&mut self, step: usize, consumed: &BTreeSet<Inst>) {
        for inst in consumed {
            if let Some(Some(block)) = self.materialized.get(inst) {
                self.steps[step].releases.push(*block);
            }
        }
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            let step = self.steps.len();
            self.steps.push(StepOps::default());
            match s {
                Stmt::Loop { n, body } => {
                    for _ in 0..*n {
                        self.walk(body);
                    }
                }
                Stmt::Bind { var, expr } => {
                    let inst = self.instance_of(expr);
                    self.env.insert(*var, inst);
                }
                Stmt::Persist { var, level } => {
                    let inst = self.env[var];
                    if self.materialized.contains_key(&inst) {
                        continue; // The engine's early return: no evaluation.
                    }
                    let consumed = self.consumed(inst);
                    self.attribute(step, &consumed);
                    let block = if level.uses_heap() {
                        let id = self.n_blocks;
                        self.n_blocks += 1;
                        self.steps[step].block = Some(PlanBlock {
                            id,
                            retain: 0,
                            class: RegionClass::RddLifetime,
                        });
                        Some(id)
                    } else {
                        None
                    };
                    self.materialized.insert(inst, block);
                }
                Stmt::Unpersist { var } => {
                    self.materialized.remove(&self.env[var]);
                }
                Stmt::Checkpoint { .. } => {}
                Stmt::Action { var, .. } => {
                    let consumed = self.consumed(self.env[var]);
                    self.attribute(step, &consumed);
                }
            }
        }
    }
}

/// Compute the off-heap release schedule for `program`.
///
/// # Panics
///
/// Panics if the program is ill-formed (uses a variable before binding
/// it); run [`sparklang::validate`] first — the engine already does.
pub fn collect_lifetimes(program: &Program) -> LifetimePlan {
    let mut w = Walker::default();
    w.walk(&program.stmts);
    // Pass 2: retain counts, region classes, and freeing retain-zero
    // blocks at birth.
    let mut released: HashMap<u32, u32> = HashMap::new();
    let mut last_release: HashMap<u32, usize> = HashMap::new();
    for (i, ops) in w.steps.iter().enumerate() {
        for &b in &ops.releases {
            *released.entry(b).or_insert(0) += 1;
            last_release.insert(b, i);
        }
    }
    let final_step = w.steps.len().saturating_sub(1);
    for ops in &mut w.steps {
        if let Some(block) = &mut ops.block {
            block.retain = released.get(&block.id).copied().unwrap_or(0);
            if block.retain == 0 {
                ops.frees.push(block.id);
            } else if last_release.get(&block.id) == Some(&final_step) {
                // The last consumer is the program's final dynamic step:
                // the data effectively lives to the end of the run.
                block.class = RegionClass::Eternal;
            }
        }
    }
    LifetimePlan {
        steps: w.steps,
        n_blocks: w.n_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklang::ast::{ActionKind, StorageLevel};
    use sparklang::ProgramBuilder;

    #[test]
    fn persist_retained_once_per_consumer() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        b.action(x, ActionKind::Count);
        b.action(x, ActionKind::Count);
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        assert_eq!(plan.n_blocks, 1);
        // Steps: 0 bind, 1 persist, 2 action, 3 action.
        let block = plan.steps[1].block.unwrap();
        assert_eq!(block.retain, 2);
        assert_eq!(plan.steps[2].releases, vec![0]);
        assert_eq!(plan.steps[3].releases, vec![0]);
    }

    #[test]
    fn consumers_reach_through_unmaterialized_bindings() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        let y = b.bind("y", b.var(x).values());
        b.action(y, ActionKind::Count); // Evaluating y reads x.
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        assert_eq!(plan.steps[1].block.unwrap().retain, 1);
        assert_eq!(plan.steps[3].releases, vec![0]);
    }

    #[test]
    fn rebind_does_not_kill_instances_still_reachable() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        let y = b.bind("y", b.var(x).values()); // y's lineage references old x.
        let src2 = b.source("s2");
        b.rebind(x, src2);
        b.action(y, ActionKind::Count); // Still consumes the old instance.
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        assert_eq!(plan.steps[1].block.unwrap().retain, 1);
        assert_eq!(plan.steps[4].releases, vec![0]);
    }

    #[test]
    fn disk_persist_stops_attribution_without_a_block() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        let y = b.bind("y", b.var(x).values());
        b.persist(y, StorageLevel::DiskOnly); // Consumes x; no block for y.
        b.action(y, ActionKind::Count); // Stops at y: x not consumed.
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        assert_eq!(plan.n_blocks, 1);
        assert_eq!(plan.steps[1].block.unwrap().retain, 1);
        assert_eq!(plan.steps[3].releases, vec![0]); // y's persist evaluation.
        assert!(plan.steps[3].block.is_none());
        assert!(plan.steps[4].releases.is_empty());
    }

    #[test]
    fn unconsumed_block_is_freed_at_birth() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        let block = plan.steps[1].block.unwrap();
        assert_eq!(block.retain, 0);
        assert_eq!(plan.steps[1].frees, vec![0]);
    }

    #[test]
    fn loop_iterations_get_their_own_steps_and_blocks() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.loop_n(3, |b| {
            let y = b.bind("y", b.var(x).values());
            b.persist(y, StorageLevel::MemoryOnly);
            b.action(y, ActionKind::Count);
        });
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        // Steps: 0 bind x, 1 loop, then 3 iterations of (bind, persist,
        // action) — but `y` aliases no new instance per iteration? It
        // does: each `bind y = x.values()` creates a fresh instance, so
        // three blocks, each retained by its iteration's action.
        assert_eq!(plan.steps.len(), 2 + 3 * 3);
        assert_eq!(plan.n_blocks, 3);
        for i in 0..3 {
            let persist_step = 2 + i * 3 + 1;
            let action_step = persist_step + 1;
            let block = plan.steps[persist_step].block.unwrap();
            assert_eq!(block.retain, 1);
            assert_eq!(plan.steps[action_step].releases, vec![block.id]);
        }
        // The loop header itself does nothing.
        assert!(plan.steps[1].is_empty());
    }

    #[test]
    fn unpersist_ends_attribution() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        b.action(x, ActionKind::Count);
        b.unpersist(x);
        b.action(x, ActionKind::Count); // Recomputes from source: no release.
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        assert_eq!(plan.steps[1].block.unwrap().retain, 1);
        assert_eq!(plan.steps[2].releases, vec![0]);
        assert!(plan.steps[4].releases.is_empty());
    }

    #[test]
    fn last_step_consumer_makes_a_block_eternal() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("s");
        let x = b.bind("x", src);
        b.persist(x, StorageLevel::MemoryOnly);
        let y = b.bind("y", b.var(x).values());
        b.persist(y, StorageLevel::MemoryOnly);
        b.action(x, ActionKind::Count); // x consumed mid-program.
        b.action(y, ActionKind::Count); // y consumed at the final step.
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        assert_eq!(plan.steps[1].block.unwrap().class, RegionClass::RddLifetime);
        assert_eq!(plan.steps[3].block.unwrap().class, RegionClass::Eternal);
    }

    #[test]
    fn pagerank_schedule_is_consistent() {
        // The paper's running example: `links` cached once and read every
        // iteration; `contribs` re-created and persisted per iteration.
        let mut b = ProgramBuilder::new("pagerank-shape");
        let one = b.map_fn(|_| mheap::Payload::Long(1));
        let lines = b.source("edges");
        let links = b.bind("links", lines.distinct().group_by_key());
        b.persist(links, StorageLevel::MemoryOnly);
        let ranks = b.bind("ranks", b.var(links).map_values(one));
        b.loop_n(4, |b| {
            let contribs = b.bind("contribs", b.var(links).join(b.var(ranks)).values());
            b.persist(contribs, StorageLevel::MemoryAndDiskSer);
            b.rebind(ranks, b.var(contribs).map_values(one));
        });
        b.action(ranks, ActionKind::Count);
        let (p, _) = b.finish();
        let plan = collect_lifetimes(&p);
        plan.check().unwrap();
        // One block for links + one per loop iteration for contribs.
        assert_eq!(plan.n_blocks, 5);
        // links is consumed by every iteration's contribs persist (the
        // join reads it); contribs_i is consumed by the next iteration's
        // persist (through the unmaterialized ranks rebind) or by the
        // final action.
        let links_block = plan
            .steps
            .iter()
            .find_map(|s| s.block)
            .expect("links block");
        assert_eq!(links_block.retain, 4);
        for ops in &plan.steps {
            if let Some(b) = ops.block {
                if b.id > 0 {
                    assert_eq!(b.retain, 1, "contribs block {} retained once", b.id);
                }
            }
        }
    }
}
