#![deny(missing_docs)]

//! Static inference of memory tags (paper Section 3).
//!
//! Given a [`sparklang`] driver program, this crate reproduces Panthera's
//! Scala-side analysis: it collects def/use facts per RDD variable
//! ([`DefUse`]), infers a DRAM/NVM [`MemoryTag`](sparklang::MemoryTag) for
//! each materialized variable ([`infer_tags`]), and plans the `rdd_alloc`
//! instrumentation the runtime consumes ([`InstrumentationPlan`]).
//!
//! The inference rules, verbatim from the paper:
//!
//! * a variable *defined* in each iteration of a qualifying loop leaves its
//!   old instances cached-but-unused → **NVM**;
//! * a variable *used-only* in some qualifying loop is one instance read
//!   repeatedly → **DRAM**;
//! * a loop qualifies only if the variable's materialization point
//!   (its first `persist`, else its first action) precedes or lies inside
//!   the loop;
//! * no loops → **NVM**; all heap-persisted variables NVM → flip all to
//!   **DRAM**;
//! * `OFF_HEAP` → `OFF_HEAP_NVM`; `DISK_ONLY` → no tag.
//!
//! ```
//! use sparklang::{ProgramBuilder, StorageLevel, ActionKind, MemoryTag};
//! use panthera_analysis::{analyze, infer_tags};
//!
//! let mut b = ProgramBuilder::new("loop-cache");
//! let src = b.source("points");
//! let points = b.bind("points", src);
//! b.persist(points, StorageLevel::MemoryOnly);
//! b.loop_n(10, |b| {
//!     b.action(points, ActionKind::Count); // used-only in the loop
//! });
//! let (program, _) = b.finish();
//!
//! assert_eq!(infer_tags(&program).tag(points), Some(MemoryTag::Dram));
//! let report = analyze(&program);
//! assert_eq!(report.plan.sites.len(), 1);
//! ```

mod defuse;
mod infer;
mod instrument;
mod lifetime;

pub use defuse::{DefUse, LoopExtent, Occurrence, PersistSite};
pub use infer::{
    infer_from_defuse, infer_from_defuse_with, infer_tags, infer_tags_with, AnalysisOptions,
    TagAssignment, TagReason, VarTag,
};
pub use instrument::{InstrumentationPlan, RddAllocSite};
pub use lifetime::{collect_lifetimes, LifetimePlan, PlanBlock, StepOps};

use sparklang::ast::Program;

/// Everything the analysis produces for one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Def/use facts.
    pub defuse: DefUse,
    /// The tag assignment.
    pub tags: TagAssignment,
    /// The instrumentation plan.
    pub plan: InstrumentationPlan,
}

impl AnalysisReport {
    /// Human-readable per-variable summary lines.
    pub fn summary(&self, program: &Program) -> Vec<String> {
        self.tags
            .vars
            .iter()
            .map(|(v, t)| {
                let tag = t
                    .tag
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string());
                format!(
                    "{:<12} -> {:<5} ({:?})",
                    program.var_name(*v),
                    tag,
                    t.reason
                )
            })
            .collect()
    }
}

/// Run the complete pipeline: collect, infer, plan.
pub fn analyze(program: &Program) -> AnalysisReport {
    let defuse = DefUse::collect(program);
    let tags = infer_from_defuse(program, &defuse);
    let plan = InstrumentationPlan::build(program, &defuse, &tags);
    AnalysisReport { defuse, tags, plan }
}
