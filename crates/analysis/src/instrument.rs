//! Instrumentation planning: which `rdd_alloc(rdd, tag)` calls to insert.
//!
//! Panthera's analysis rewrites the Spark program, inserting a native
//! `rdd_alloc` call right before each materialization point (a `persist`
//! call or a Spark action) so the inferred tag reaches the runtime
//! (Section 4.2.1). Our interpreter consults this plan when it executes
//! the corresponding statement.

use crate::defuse::DefUse;
use crate::infer::TagAssignment;
use sparklang::ast::{MemoryTag, Program, StmtId, VarId};
use std::collections::BTreeMap;

/// One inserted `rdd_alloc` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RddAllocSite {
    /// The statement the call precedes.
    pub stmt: StmtId,
    /// The RDD variable whose top object gets its `MEMORY_BITS` set.
    pub var: VarId,
    /// The tag passed to the runtime; `None` for untagged (`DISK_ONLY`)
    /// RDDs, for which no call is inserted but the site is recorded.
    pub tag: Option<MemoryTag>,
}

/// The full instrumentation plan for a program.
#[derive(Debug, Clone, Default)]
pub struct InstrumentationPlan {
    /// Sites keyed by statement (each persist/action statement has at most
    /// one site).
    pub sites: BTreeMap<StmtId, RddAllocSite>,
}

impl InstrumentationPlan {
    /// Build a plan from the def/use facts and the tag assignment.
    pub fn build(program: &Program, du: &DefUse, tags: &TagAssignment) -> Self {
        let _ = program;
        let mut sites = BTreeMap::new();
        for (var, persists) in &du.persists {
            for p in persists {
                sites.insert(
                    p.stmt,
                    RddAllocSite {
                        stmt: p.stmt,
                        var: *var,
                        tag: tags.tag(*var),
                    },
                );
            }
        }
        for (var, actions) in &du.actions {
            // Actions materialize only not-yet-persisted RDDs; if the
            // variable also has persist sites, those already carry the tag.
            if du.persists.contains_key(var) {
                continue;
            }
            for a in actions {
                sites.insert(
                    a.stmt,
                    RddAllocSite {
                        stmt: a.stmt,
                        var: *var,
                        tag: tags.tag(*var),
                    },
                );
            }
        }
        InstrumentationPlan { sites }
    }

    /// The site (if any) attached to a statement.
    pub fn site_at(&self, stmt: StmtId) -> Option<&RddAllocSite> {
        self.sites.get(&stmt)
    }

    /// The tag to pass to `rdd_alloc` at `stmt`, if a tagged site exists.
    pub fn tag_at(&self, stmt: StmtId) -> Option<MemoryTag> {
        self.sites.get(&stmt).and_then(|s| s.tag)
    }

    /// Override the tag at every site that materializes `var`, returning
    /// how many sites changed.
    ///
    /// The statically inferred tags are *priors*: an online re-tagging
    /// policy that has watched real access frequencies may overwrite them
    /// (before a run, or between streaming micro-batches for sites not
    /// yet executed) when the static guess is measurably wrong.
    pub fn override_tag(&mut self, var: VarId, tag: Option<MemoryTag>) -> usize {
        let mut changed = 0;
        for site in self.sites.values_mut() {
            if site.var == var && site.tag != tag {
                site.tag = tag;
                changed += 1;
            }
        }
        changed
    }

    /// Override the tag at one site. Returns `false` (and does nothing)
    /// if the statement has no site.
    pub fn override_tag_at(&mut self, stmt: StmtId, tag: Option<MemoryTag>) -> bool {
        match self.sites.get_mut(&stmt) {
            Some(site) => {
                site.tag = tag;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_from_defuse;
    use sparklang::{ActionKind, ProgramBuilder, StorageLevel};

    #[test]
    fn plan_covers_persists_and_bare_actions() {
        let mut b = ProgramBuilder::new("t");
        let s1 = b.source("a");
        let s2 = b.source("b");
        let x = b.bind("x", s1);
        b.persist(x, StorageLevel::MemoryOnly);
        let y = b.bind("y", s2);
        b.action(y, ActionKind::Count);
        b.action(x, ActionKind::Count); // x already persisted: no new site
        let (p, _) = b.finish();
        let du = DefUse::collect(&p);
        let tags = infer_from_defuse(&p, &du);
        let plan = InstrumentationPlan::build(&p, &du, &tags);

        assert_eq!(plan.sites.len(), 2);
        let persist_stmt = du.persists[&x][0].stmt;
        assert_eq!(plan.site_at(persist_stmt).unwrap().var, x);
        let y_action = du.actions[&y][0].stmt;
        assert_eq!(plan.site_at(y_action).unwrap().var, y);
        let x_action = du.actions[&x][0].stmt;
        assert!(plan.site_at(x_action).is_none());
        assert!(plan.tag_at(persist_stmt).is_some());
    }
}
