//! Randomized end-to-end stress: generate arbitrary (well-formed)
//! pipelines over keyed integer data, execute them under different memory
//! modes, and check that (a) results never depend on memory management,
//! (b) the heap's structural invariants survive, and (c) runs are
//! deterministic.

use mheap::Payload;
use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
use proptest::prelude::*;
use sparklang::{ActionKind, Expr, FnTable, Program, ProgramBuilder, StorageLevel};
use sparklet::{ActionResult, DataRegistry};

/// One step of a random pipeline.
#[derive(Debug, Clone)]
enum Step {
    MapAddOne,
    MapValuesDouble,
    FlatMapDup,
    FilterEvenKey,
    Distinct,
    GroupByKey,
    ReduceByKeySum,
    SortByKey,
    Sample(u64),
    KeysAsPairs,
}

#[derive(Debug, Clone)]
struct Pipeline {
    steps: Vec<Step>,
    persist_at: Option<(usize, u8)>,
    loops: u8,
    n_records: usize,
    n_keys: i64,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::MapAddOne),
        Just(Step::MapValuesDouble),
        Just(Step::FlatMapDup),
        Just(Step::FilterEvenKey),
        Just(Step::Distinct),
        Just(Step::GroupByKey),
        Just(Step::ReduceByKeySum),
        Just(Step::SortByKey),
        any::<u64>().prop_map(Step::Sample),
        Just(Step::KeysAsPairs),
    ]
}

fn pipeline() -> impl Strategy<Value = Pipeline> {
    (
        prop::collection::vec(step(), 1..7),
        prop::option::of((0usize..7, 0u8..4)),
        1u8..3,
        16usize..200,
        1i64..12,
    )
        .prop_map(|(steps, persist_at, loops, n_records, n_keys)| Pipeline {
            steps,
            persist_at,
            loops,
            n_records,
            n_keys,
        })
}

const LEVELS: [StorageLevel; 4] = [
    StorageLevel::MemoryOnly,
    StorageLevel::MemoryOnlySer,
    StorageLevel::MemoryAndDisk,
    StorageLevel::MemoryAndDiskSer,
];

/// A group value (list) reduced to something comparable and keyable.
fn normalize(p: &Payload) -> Payload {
    match p {
        Payload::Pair(k, v) => Payload::pair(normalize(k), normalize(v)),
        Payload::List(items) => Payload::Long(items.len() as i64),
        other => other.clone(),
    }
}

fn build(pipe: &Pipeline) -> (Program, FnTable, DataRegistry) {
    let mut b = ProgramBuilder::new("stress");
    let add_one = b.map_fn(|r| {
        let (k, v) = r.as_pair().expect("pair");
        Payload::pair(k.clone(), Payload::Long(v.as_long().unwrap_or(0) + 1))
    });
    let double = b.map_fn(|v| Payload::Long(v.as_long().unwrap_or(1) * 2));
    let dup = b.flat_map_fn(|r| vec![r.clone(), r.clone()]);
    let even = b.filter_fn(|r| r.as_pair().and_then(|(k, _)| k.as_long()).unwrap_or(0) % 2 == 0);
    let sum = b.reduce_fn(|a, c| {
        // Values may be longs or grouped lists; count lists as lengths.
        let x = match a {
            Payload::List(v) => v.len() as i64,
            other => other.as_long().unwrap_or(0),
        };
        let y = match c {
            Payload::List(v) => v.len() as i64,
            other => other.as_long().unwrap_or(0),
        };
        Payload::Long(x + y)
    });
    let key_self = b.map_fn(|r| {
        let k = r
            .as_pair()
            .map(|(k, _)| k.clone())
            .unwrap_or_else(|| r.clone());
        Payload::pair(k.clone(), k)
    });
    // groupByKey produces list values the next steps can't always digest:
    // normalize after every step to keep the pipeline total.
    let norm = b.map_fn(normalize);

    let apply = |e: Expr, s: &Step| -> Expr {
        let e = match s {
            Step::MapAddOne => e.map(add_one),
            Step::MapValuesDouble => e.map_values(double),
            Step::FlatMapDup => e.flat_map(dup),
            Step::FilterEvenKey => e.filter(even),
            Step::Distinct => e.distinct(),
            Step::GroupByKey => e.group_by_key(),
            Step::ReduceByKeySum => e.reduce_by_key(sum),
            Step::SortByKey => e.sort_by_key(),
            Step::Sample(seed) => e.sample(0.7, *seed),
            Step::KeysAsPairs => e.map(key_self),
        };
        e.map(norm)
    };

    let src = b.source("data");
    let mut expr = src;
    let mut persisted_prefix = None;
    for (i, s) in pipe.steps.iter().enumerate() {
        expr = apply(expr, s);
        if let Some((at, level)) = pipe.persist_at {
            if at == i {
                let v = b.bind("cached", expr.clone());
                b.persist(v, LEVELS[level as usize % LEVELS.len()]);
                persisted_prefix = Some(v);
                expr = b.var(v);
            }
        }
    }
    let out = b.bind("out", expr);
    b.loop_n(pipe.loops as u32, |b| {
        b.action(out, ActionKind::Count);
        if let Some(v) = persisted_prefix {
            b.action(v, ActionKind::Count);
        }
    });
    b.action(out, ActionKind::Collect);
    let (p, fns) = b.finish();

    let mut data = DataRegistry::new();
    data.register(
        "data",
        (0..pipe.n_records)
            .map(|i| Payload::keyed(i as i64 % pipe.n_keys, Payload::Long(i as i64)))
            .collect(),
    );
    (p, fns, data)
}

fn run(pipe: &Pipeline, mode: MemoryMode) -> Vec<(String, ActionResult)> {
    let (p, fns, data) = build(pipe);
    let cfg = SystemConfig::new(mode, 8 * SIM_GB, 1.0 / 3.0);
    RunBuilder::new(&p, fns, data)
        .config(cfg)
        .run()
        .expect("valid configuration")
        .results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn results_are_memory_mode_independent(pipe in pipeline()) {
        let base = run(&pipe, MemoryMode::DramOnly);
        for mode in [MemoryMode::Panthera, MemoryMode::Unmanaged, MemoryMode::KingsguardWrites] {
            let other = run(&pipe, mode);
            prop_assert_eq!(&base, &other, "{} changed results", mode);
        }
    }

    #[test]
    fn random_pipelines_are_deterministic(pipe in pipeline()) {
        let a = run(&pipe, MemoryMode::Panthera);
        let b = run(&pipe, MemoryMode::Panthera);
        prop_assert_eq!(a, b);
    }
}
