//! The workloads compute *correct answers*: each is checked against an
//! independent reference implementation over the same generated dataset.
//! Memory management must never change results, so references are compared
//! under the Panthera mode (the most intrusive one).

use mheap::Payload;
use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
use sparklet::ActionResult;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use workloads::{
    connected_components, naive_bayes, pagerank, power_law_edges, sssp, symmetric_edges,
    transitive_closure, weighted_edges,
};

const SEED: u64 = 21;

fn run(w: workloads::BuiltWorkload) -> Vec<(String, ActionResult)> {
    let cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration")
        .results
}

fn edge_pairs(records: &[Payload]) -> Vec<(i64, i64)> {
    records
        .iter()
        .map(|e| {
            let (s, d) = e.as_pair().unwrap();
            (s.as_long().unwrap(), d.as_long().unwrap())
        })
        .collect()
}

// ---------------------------------------------------------------------
// Connected components vs union-find
// ---------------------------------------------------------------------

struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
        }
        self.0[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.0[ra.max(rb)] = ra.min(rb);
    }
}

#[test]
fn cc_matches_union_find() {
    let (n, m, steps) = (120usize, 150usize, 16u32);
    let w = connected_components(n, m, steps, SEED);
    let results = run(w);
    let labels = results.last().unwrap().1.as_collected().unwrap();

    // Reference: union-find over the same symmetric edge set, component
    // labelled by its minimum vertex id.
    let edges = edge_pairs(&symmetric_edges(n, m, SEED));
    let mut uf = UnionFind::new(n);
    let mut present: BTreeSet<i64> = BTreeSet::new();
    for (s, d) in &edges {
        uf.union(*s as usize, *d as usize);
        present.insert(*s);
        present.insert(*d);
    }
    // Min label per component, over vertices that appear in the graph.
    let mut min_label: HashMap<usize, i64> = HashMap::new();
    for v in &present {
        let root = uf.find(*v as usize);
        let e = min_label.entry(root).or_insert(*v);
        *e = (*e).min(*v);
    }
    let expect: BTreeMap<i64, i64> = present
        .iter()
        .map(|v| (*v, min_label[&uf.find(*v as usize)]))
        .collect();

    let got: BTreeMap<i64, i64> = labels
        .iter()
        .map(|r| {
            let (v, l) = r.as_pair().unwrap();
            (v.as_long().unwrap(), l.as_long().unwrap())
        })
        .collect();
    assert_eq!(
        got, expect,
        "connected-components labels diverge from union-find"
    );
}

// ---------------------------------------------------------------------
// SSSP vs Dijkstra
// ---------------------------------------------------------------------

#[test]
fn sssp_matches_dijkstra() {
    let (n, m, steps) = (100usize, 260usize, 24u32);
    let w = sssp(n, m, steps, SEED);
    let results = run(w);
    let dists = results.last().unwrap().1.as_collected().unwrap();

    // Reference: Dijkstra from vertex 0 over the same weighted edges.
    let raw = weighted_edges(n, m, SEED);
    let mut adj: HashMap<i64, Vec<(i64, f64)>> = HashMap::new();
    let mut present: BTreeSet<i64> = BTreeSet::new();
    for e in &raw {
        let (s, dw) = e.as_pair().unwrap();
        let (d, wgt) = dw.as_pair().unwrap();
        let (s, d, wgt) = (
            s.as_long().unwrap(),
            d.as_long().unwrap(),
            wgt.as_double().unwrap(),
        );
        adj.entry(s).or_default().push((d, wgt));
        present.insert(s);
        present.insert(d);
    }
    let mut dist: HashMap<i64, f64> = HashMap::new();
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, i64)> = BinaryHeap::new();
    if present.contains(&0) {
        dist.insert(0, 0.0);
        heap.push((std::cmp::Reverse(0), 0));
    }
    while let Some((std::cmp::Reverse(bits), v)) = heap.pop() {
        let d = f64::from_bits(bits);
        if d > dist.get(&v).copied().unwrap_or(f64::MAX) {
            continue;
        }
        for (u, w) in adj.get(&v).into_iter().flatten() {
            let nd = d + w;
            if nd < dist.get(u).copied().unwrap_or(f64::MAX) {
                dist.insert(*u, nd);
                heap.push((std::cmp::Reverse(nd.to_bits()), *u));
            }
        }
    }

    const INF: f64 = f64::MAX / 4.0;
    for r in dists {
        let (v, d) = r.as_pair().unwrap();
        let (v, d) = (v.as_long().unwrap(), d.as_double().unwrap());
        match dist.get(&v) {
            Some(expect) => assert!(
                (d - expect).abs() < 1e-9,
                "vertex {v}: sssp {d}, dijkstra {expect}"
            ),
            None => assert!(d >= INF, "vertex {v} unreachable but got {d}"),
        }
    }
}

// ---------------------------------------------------------------------
// Transitive closure vs bounded reachability
// ---------------------------------------------------------------------

#[test]
fn tc_matches_bounded_reachability() {
    let (n, m, iters) = (48usize, 110usize, 3u32);
    let w = transitive_closure(n, m, iters, SEED);
    let results = run(w);
    let count = results.last().unwrap().1.as_count().unwrap();

    // The loop grows paths by one edge per iteration: after k iterations,
    // tc holds pairs (x, z) connected by a path of 1..=k+1 edges.
    let edges: BTreeSet<(i64, i64)> = edge_pairs(&power_law_edges(n, m, SEED))
        .into_iter()
        .collect();
    let mut closure: BTreeSet<(i64, i64)> = edges.clone();
    for _ in 0..iters {
        let grown: BTreeSet<(i64, i64)> = closure
            .iter()
            .flat_map(|(x, y)| {
                edges
                    .iter()
                    .filter(move |(s, _)| s == y)
                    .map(move |(_, z)| (*x, *z))
            })
            .collect();
        closure.extend(grown);
    }
    assert_eq!(
        count,
        closure.len() as u64,
        "transitive closure size diverges"
    );
}

// ---------------------------------------------------------------------
// PageRank vs a reference iteration
// ---------------------------------------------------------------------

#[test]
fn pagerank_count_matches_reference() {
    let (n, m, iters) = (150usize, 700usize, 4u32);
    let w = pagerank(n, m, iters, SEED);
    let results = run(w);
    let count = results.last().unwrap().1.as_count().unwrap();

    // Reference: mirror the program's semantics. links = distinct edges
    // grouped by src; ranks_0 = 1.0 for every src; each iteration spreads
    // rank/deg along links for srcs present in ranks, then ranks = damped
    // sums keyed by dst. The final count is |ranks_iters|.
    let edges: BTreeSet<(i64, i64)> = edge_pairs(&power_law_edges(n, m, SEED))
        .into_iter()
        .collect();
    let mut links: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    for (s, d) in &edges {
        links.entry(*s).or_default().push(*d);
    }
    let mut ranks: BTreeMap<i64, f64> = links.keys().map(|s| (*s, 1.0)).collect();
    for _ in 0..iters {
        let mut contribs: BTreeMap<i64, f64> = BTreeMap::new();
        for (src, rank) in &ranks {
            if let Some(dsts) = links.get(src) {
                let share = rank / dsts.len() as f64;
                for d in dsts {
                    *contribs.entry(*d).or_insert(0.0) += share;
                }
            }
        }
        ranks = contribs
            .into_iter()
            .map(|(d, c)| (d, 0.15 + 0.85 * c))
            .collect();
    }
    assert_eq!(count, ranks.len() as u64, "pagerank rank-set size diverges");
}

// ---------------------------------------------------------------------
// Naive Bayes aggregations
// ---------------------------------------------------------------------

#[test]
fn bayes_priors_and_cells_match() {
    let (docs_n, vocab, labels_n, wpd) = (300usize, 120usize, 3usize, 9usize);
    let w = naive_bayes(docs_n, vocab, labels_n, wpd, SEED);
    let results = run(w);
    // results: [model.count, priors.collect]
    let model_cells = results[0].1.as_count().unwrap();
    let priors = results[1].1.as_collected().unwrap();

    let docs = workloads::labeled_documents(docs_n, vocab, labels_n, wpd, SEED);
    let mut cells: HashSet<i64> = HashSet::new();
    let mut label_counts: BTreeMap<i64, i64> = BTreeMap::new();
    for d in &docs {
        let (l, ws) = d.as_pair().unwrap();
        let l = l.as_long().unwrap();
        *label_counts.entry(l).or_insert(0) += 1;
        if let Payload::Longs(ws) = ws {
            for w in ws.iter() {
                cells.insert(l * vocab as i64 + w);
            }
        }
    }
    assert_eq!(
        model_cells,
        cells.len() as u64,
        "distinct (class, word) cells"
    );
    let got: BTreeMap<i64, i64> = priors
        .iter()
        .map(|r| {
            let (l, c) = r.as_pair().unwrap();
            (l.as_long().unwrap(), c.as_long().unwrap())
        })
        .collect();
    assert_eq!(got, label_counts, "class priors diverge");
}

// ---------------------------------------------------------------------
// Text round-trip of every workload program
// ---------------------------------------------------------------------

#[test]
fn every_workload_program_roundtrips_through_text() {
    use sparklang::{parse, Pretty};
    for id in workloads::WorkloadId::ALL {
        let w = workloads::build_workload(id, 0.05, SEED);
        let text = Pretty(&w.program).to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{id}: {e}\n--- source ---\n{text}"));
        assert_eq!(w.program.stmts, reparsed.stmts, "{id}: AST changed");
        assert_eq!(
            Pretty(&reparsed).to_string(),
            text,
            "{id}: pretty/parse not a fixed point"
        );
        // The analysis agrees on the reparsed program.
        use panthera_analysis::infer_tags;
        assert_eq!(
            infer_tags(&w.program).vars,
            infer_tags(&reparsed).vars,
            "{id}: tags diverge after round-trip"
        );
    }
}
