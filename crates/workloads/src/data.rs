//! Synthetic dataset generators standing in for Table 4's inputs.
//!
//! The paper runs on real datasets (Wikipedia link dumps, the Notre Dame
//! web graph, KDD 2012) we cannot ship; these generators produce scaled
//! synthetic equivalents with the properties the workloads' memory
//! behaviour depends on: skewed (power-law-ish) degree distributions for
//! the graphs, clustered points for K-Means, and sparse labeled vectors
//! for the classifiers. Everything is seeded and deterministic.

use mheap::Payload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sparklet::InternTable;

/// A directed graph as `(src, dst)` pair records, with a skewed
/// out-degree distribution (sources drawn quadratically toward low ids,
/// approximating a power law).
pub fn power_law_edges(n_vertices: usize, n_edges: usize, seed: u64) -> Vec<Payload> {
    assert!(n_vertices > 1, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let u: f64 = rng.random();
        let src = ((u * u) * n_vertices as f64) as i64;
        let dst = rng.random_range(0..n_vertices as i64);
        out.push(Payload::keyed(
            src.min(n_vertices as i64 - 1),
            Payload::Long(dst),
        ));
    }
    out
}

/// Like [`power_law_edges`] but with URL-string vertices (interned
/// [`Payload::Text`] with a modelled length), as in the paper's Wikipedia
/// link datasets — this is what makes the cached `links` RDD heavy.
pub fn power_law_edges_text(
    n_vertices: usize,
    n_edges: usize,
    url_len: u32,
    seed: u64,
) -> Vec<Payload> {
    // URLs go through the deterministic intern table: symbols are dense
    // first-appearance ids, so equal URLs share one symbol (and one
    // backing string) while the modelled footprint stays `url_len`.
    let mut urls = InternTable::new();
    power_law_edges(n_vertices, n_edges, seed)
        .into_iter()
        .map(|e| {
            let (s, d) = e.as_pair().expect("edge pair");
            let mut text = |v: &Payload| {
                let sym = urls.intern(&format!(
                    "https://en.wikipedia.org/wiki/v{:07}",
                    v.as_long().expect("vertex")
                ));
                Payload::Text { sym, len: url_len }
            };
            let s = text(s);
            let d = text(d);
            Payload::pair(s, d)
        })
        .collect()
}

/// A symmetric version of [`power_law_edges`] (each edge in both
/// directions), for connected components.
pub fn symmetric_edges(n_vertices: usize, n_edges: usize, seed: u64) -> Vec<Payload> {
    let mut out = power_law_edges(n_vertices, n_edges, seed);
    let reversed: Vec<Payload> = out
        .iter()
        .map(|e| {
            let (k, v) = e.as_pair().expect("edge pair");
            Payload::keyed(v.as_long().expect("dst"), k.clone())
        })
        .collect();
    out.extend(reversed);
    out
}

/// A weighted graph as `(src, (dst, weight))` records for shortest paths.
pub fn weighted_edges(n_vertices: usize, n_edges: usize, seed: u64) -> Vec<Payload> {
    let mut rng = StdRng::seed_from_u64(seed);
    power_law_edges(n_vertices, n_edges, seed.wrapping_add(1))
        .into_iter()
        .map(|e| {
            let (k, v) = e.as_pair().expect("edge pair");
            let w: f64 = rng.random_range(1.0..10.0);
            Payload::pair(k.clone(), Payload::pair(v.clone(), Payload::Double(w)))
        })
        .collect()
}

/// Points drawn from `k` Gaussian-ish clusters in `dims` dimensions.
pub fn clustered_points(n: usize, dims: usize, k: usize, seed: u64) -> Vec<Payload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dims).map(|_| rng.random_range(-10.0..10.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centres[i % k];
            let p: Vec<f64> = c.iter().map(|x| x + rng.random_range(-1.0..1.0)).collect();
            Payload::doubles(p)
        })
        .collect()
}

/// Labeled points `(y ∈ {-1, +1}, x)` that are linearly separable with
/// noise, for logistic regression.
pub fn labeled_points(n: usize, dims: usize, seed: u64) -> Vec<Payload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            let dot: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
            let noise: f64 = rng.random_range(-0.1..0.1);
            let y = if dot + noise >= 0.0 { 1 } else { -1 };
            Payload::pair(Payload::Long(y), Payload::doubles(x))
        })
        .collect()
}

/// Sparse labeled documents `(label, [word ids])` with Zipf-ish word
/// frequencies, for Naive Bayes.
pub fn labeled_documents(
    n_docs: usize,
    vocab: usize,
    n_labels: usize,
    words_per_doc: usize,
    seed: u64,
) -> Vec<Payload> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_docs)
        .map(|i| {
            let label = (i % n_labels) as i64;
            let words: Vec<i64> = (0..words_per_doc)
                .map(|_| {
                    let u: f64 = rng.random();
                    // Skew word ids toward the label's region of the vocab.
                    let base = (label as usize * vocab / n_labels) as f64;
                    ((base + u * u * vocab as f64) as i64) % vocab as i64
                })
                .collect();
            Payload::pair(Payload::Long(label), Payload::longs(words))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_deterministic_and_in_range() {
        let a = power_law_edges(100, 500, 7);
        let b = power_law_edges(100, 500, 7);
        assert_eq!(a, b);
        for e in &a {
            let (k, v) = e.as_pair().unwrap();
            assert!((0..100).contains(&k.as_long().unwrap()));
            assert!((0..100).contains(&v.as_long().unwrap()));
        }
        assert_ne!(a, power_law_edges(100, 500, 8), "seed matters");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let edges = power_law_edges(1000, 10_000, 1);
        let low_sources = edges
            .iter()
            .filter(|e| e.as_pair().unwrap().0.as_long().unwrap() < 250)
            .count();
        // Quadratic skew: half the mass lands in the lowest quarter.
        assert!(low_sources > 4_000, "got {low_sources}");
    }

    #[test]
    fn symmetric_edges_double() {
        let e = symmetric_edges(50, 100, 3);
        assert_eq!(e.len(), 200);
    }

    #[test]
    fn weighted_edges_carry_weights() {
        let e = weighted_edges(50, 100, 3);
        let (_, v) = e[0].as_pair().unwrap();
        let (_, w) = v.as_pair().unwrap();
        let w = w.as_double().unwrap();
        assert!((1.0..10.0).contains(&w));
    }

    #[test]
    fn points_have_requested_shape() {
        let pts = clustered_points(100, 4, 5, 2);
        assert_eq!(pts.len(), 100);
        assert!(pts
            .iter()
            .all(|p| matches!(p, Payload::Doubles(v) if v.len() == 4)));
    }

    #[test]
    fn labeled_points_are_balanced_ish() {
        let pts = labeled_points(500, 4, 2);
        let pos = pts
            .iter()
            .filter(|p| p.as_pair().unwrap().0.as_long() == Some(1))
            .count();
        assert!(pos > 100 && pos < 400, "roughly balanced: {pos}");
    }

    #[test]
    fn documents_have_words_in_vocab() {
        let docs = labeled_documents(50, 200, 2, 10, 5);
        for d in &docs {
            let (l, ws) = d.as_pair().unwrap();
            assert!((0..2).contains(&l.as_long().unwrap()));
            match ws {
                Payload::Longs(ws) => {
                    assert_eq!(ws.len(), 10);
                    assert!(ws.iter().all(|w| (0..200).contains(w)));
                }
                other => panic!("expected word ids, got {other:?}"),
            }
        }
    }
}
