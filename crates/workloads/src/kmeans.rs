//! Spark K-Means: the cached point set is read every iteration (DRAM);
//! per-iteration aggregates are small temporaries.
//!
//! The driver-side centre update (which real Spark does after a
//! `collect()`) is modelled as a closure side effect on shared state —
//! the per-record memory behaviour is identical.

use crate::data::clustered_points;
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::DataRegistry;
use std::cell::RefCell;
use std::rc::Rc;

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Build K-Means over synthetic clustered points.
pub fn kmeans(n_points: usize, dims: usize, k: usize, iters: u32, seed: u64) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("kmeans");

    // Shared mutable centres, initialized from the first k data points.
    let points = clustered_points(n_points, dims, k, seed);
    let init: Vec<Vec<f64>> = points[..k]
        .iter()
        .map(|p| match p {
            Payload::Doubles(v) => v.as_ref().clone(),
            other => panic!("expected point, got {other:?}"),
        })
        .collect();
    let centres = Rc::new(RefCell::new(init));

    let assign = {
        let centres = Rc::clone(&centres);
        b.map_fn(move |p| {
            let Payload::Doubles(x) = p else {
                panic!("expected point, got {p:?}")
            };
            let cs = centres.borrow();
            let (best, _) = cs
                .iter()
                .enumerate()
                .map(|(i, c)| (i, squared_distance(x, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k > 0");
            // (cluster, (sum_vector, count)); the sum vector shares the
            // cached point's storage until a reduce replaces it.
            Payload::keyed(
                best as i64,
                Payload::pair(Payload::Doubles(x.clone()), Payload::Long(1)),
            )
        })
    };
    let merge = b.reduce_fn(|a, c| {
        let (va, na) = a.as_pair().expect("(sum, count)");
        let (vc, nc) = c.as_pair().expect("(sum, count)");
        let (Payload::Doubles(va), Payload::Doubles(vc)) = (va, vc) else {
            panic!("expected vector sums");
        };
        let sum: Vec<f64> = va.iter().zip(vc.iter()).map(|(x, y)| x + y).collect();
        Payload::pair(
            Payload::doubles(sum),
            Payload::Long(na.as_long().expect("count") + nc.as_long().expect("count")),
        )
    });
    let update = {
        let centres = Rc::clone(&centres);
        b.map_fn(move |r| {
            let (cluster, sum_count) = r.as_pair().expect("(cluster, (sum, count))");
            let (sum, count) = sum_count.as_pair().expect("(sum, count)");
            let Payload::Doubles(sum) = sum else {
                panic!("expected sum vector")
            };
            let n = count.as_long().expect("count").max(1) as f64;
            let centre: Vec<f64> = sum.iter().map(|x| x / n).collect();
            let idx = cluster.as_long().expect("cluster") as usize;
            centres.borrow_mut()[idx] = centre.clone();
            Payload::keyed(idx as i64, Payload::doubles(centre))
        })
    };

    let src = b.source("wikipedia-points");
    let pts = b.bind("points", src);
    b.persist(pts, StorageLevel::MemoryOnly);
    b.loop_n(iters, |b| {
        let sums = b.var(pts).map(assign).reduce_by_key(merge);
        let newc = b.bind("centres", sums.map(update));
        b.action(newc, ActionKind::Count);
    });

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("wikipedia-points", points);
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera_analysis::infer_tags;
    use sparklang::ast::MemoryTag;
    use sparklang::VarId;

    #[test]
    fn cached_points_are_dram() {
        let w = kmeans(100, 4, 3, 2, 1);
        let tags = infer_tags(&w.program);
        assert_eq!(
            tags.tag(VarId(0)),
            Some(MemoryTag::Dram),
            "points used-only"
        );
        assert_eq!(
            tags.tag(VarId(1)),
            Some(MemoryTag::Nvm),
            "centres defined in loop"
        );
    }
}
