//! Spark Transitive Closure: the classic path-doubling loop. `tc` is
//! redefined (and re-persisted) every iteration — the analysis tags it
//! NVM — while the static `edges` set is used-only (DRAM).

use crate::data::power_law_edges;
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::DataRegistry;

/// Build transitive closure over a small synthetic web graph (the paper
/// uses the Notre Dame graph, its smallest input).
pub fn transitive_closure(
    n_vertices: usize,
    n_edges: usize,
    iters: u32,
    seed: u64,
) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("transitive-closure");

    // (x, y) -> (y, x): key paths by their endpoint for the join.
    let swap = b.map_fn(|r| {
        let (x, y) = r.as_pair().expect("(x, y)");
        Payload::pair(y.clone(), x.clone())
    });
    // (mid, (x, z)) joined records -> (x, z) paths.
    let to_path = b.map_fn(|r| {
        let (x, z) = r.as_pair().expect("(x, z)");
        Payload::pair(x.clone(), z.clone())
    });

    let src = b.source("notre-dame");
    let edges = b.bind("edges", src.distinct());
    b.persist(edges, StorageLevel::MemoryOnly);
    let tc = b.bind("tc", b.var(edges));
    b.loop_n(iters, |b| {
        // tc = tc.union(tc.map(swap).join(edges).values.map(toPath))
        //        .distinct()
        let grown = b.var(tc).map(swap).join(b.var(edges)).values().map(to_path);
        let e = b.var(tc).union(grown).distinct();
        b.rebind(tc, e);
        b.persist(tc, StorageLevel::MemoryOnly);
    });
    b.action(tc, ActionKind::Count);

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("notre-dame", power_law_edges(n_vertices, n_edges, seed));
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera_analysis::infer_tags;
    use sparklang::ast::MemoryTag;
    use sparklang::VarId;

    #[test]
    fn edges_dram_tc_nvm() {
        let w = transitive_closure(40, 80, 3, 1);
        let tags = infer_tags(&w.program);
        assert_eq!(tags.tag(VarId(0)), Some(MemoryTag::Dram), "edges used-only");
        assert_eq!(
            tags.tag(VarId(1)),
            Some(MemoryTag::Nvm),
            "tc redefined per iter"
        );
    }
}
