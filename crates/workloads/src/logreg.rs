//! Spark Logistic Regression (gradient descent): the cached training set
//! is read every iteration (DRAM); per-iteration gradients are shuffled
//! to a single key and folded.

use crate::data::labeled_points;
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::DataRegistry;
use std::cell::RefCell;
use std::rc::Rc;

/// Build logistic regression over synthetic labeled points.
pub fn logistic_regression(n_points: usize, dims: usize, iters: u32, seed: u64) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("logistic-regression");
    let weights = Rc::new(RefCell::new(vec![0.0f64; dims]));
    const LEARNING_RATE: f64 = 0.1;

    let gradient = {
        let weights = Rc::clone(&weights);
        b.map_fn(move |r| {
            let (y, x) = r.as_pair().expect("(label, features)");
            let y = y.as_long().expect("label") as f64;
            let Payload::Doubles(x) = x else {
                panic!("expected features")
            };
            let w = weights.borrow();
            let margin: f64 = w.iter().zip(x.iter()).map(|(wi, xi)| wi * xi).sum();
            let scale = (1.0 / (1.0 + (-y * margin).exp()) - 1.0) * y;
            let g: Vec<f64> = x.iter().map(|xi| xi * scale).collect();
            Payload::keyed(0, Payload::doubles(g))
        })
    };
    let add_vec = b.reduce_fn(|a, c| {
        let (Payload::Doubles(a), Payload::Doubles(c)) = (a, c) else {
            panic!("expected gradient vectors");
        };
        Payload::doubles(a.iter().zip(c.iter()).map(|(x, y)| x + y).collect())
    });
    let apply = {
        let weights = Rc::clone(&weights);
        b.map_fn(move |r| {
            let (_, g) = r.as_pair().expect("(0, gradient)");
            let Payload::Doubles(g) = g else {
                panic!("expected gradient")
            };
            let mut w = weights.borrow_mut();
            for (wi, gi) in w.iter_mut().zip(g.iter()) {
                *wi -= LEARNING_RATE * gi;
            }
            Payload::doubles(w.clone())
        })
    };

    let src = b.source("wikipedia-features");
    let pts = b.bind("points", src);
    b.persist(pts, StorageLevel::MemoryOnly);
    b.loop_n(iters, |b| {
        let step = b.var(pts).map(gradient).reduce_by_key(add_vec).map(apply);
        let w_rdd = b.bind("weights", step);
        b.action(w_rdd, ActionKind::Count);
    });

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("wikipedia-features", labeled_points(n_points, dims, seed));
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera_analysis::infer_tags;
    use sparklang::ast::MemoryTag;
    use sparklang::VarId;

    #[test]
    fn training_set_is_dram() {
        let w = logistic_regression(100, 4, 2, 1);
        let tags = infer_tags(&w.program);
        assert_eq!(tags.tag(VarId(0)), Some(MemoryTag::Dram));
    }
}
