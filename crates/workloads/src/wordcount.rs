//! WordCount — the canonical Hadoop/Spark program, included as an extra
//! (non-Table-4) workload demonstrating the paper's Section 4.3 claim that
//! the runtime generalizes beyond the seven evaluation programs.
//!
//! Documents are flat-mapped into words, counted with a `reduceByKey`, and
//! the top words are inspected repeatedly (so the counts table is hot).

use crate::data::labeled_documents;
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::DataRegistry;

/// Build WordCount over synthetic documents.
pub fn wordcount(n_docs: usize, vocab: usize, words_per_doc: usize, seed: u64) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("wordcount");

    // (label, words) -> one (word, 1) pair per word.
    let explode = b.flat_map_fn(|r| {
        let (_, words) = r.as_pair().expect("(label, words)");
        let Payload::Longs(words) = words else {
            panic!("expected word ids")
        };
        words
            .iter()
            .map(|w| Payload::keyed(*w, Payload::Long(1)))
            .collect()
    });
    let add = b
        .reduce_fn(|a, c| Payload::Long(a.as_long().expect("count") + c.as_long().expect("count")));

    let src = b.source("documents");
    let docs = b.bind("docs", src);
    b.persist(docs, StorageLevel::MemoryOnly);
    let counts = b.bind("counts", b.var(docs).flat_map(explode).reduce_by_key(add));
    b.persist(counts, StorageLevel::MemoryOnly);
    // The counts table is queried repeatedly (dashboards, top-k, ...):
    // used-only in a loop => the analysis tags it DRAM.
    b.loop_n(4, |b| {
        b.action(counts, ActionKind::Count);
    });
    b.action(counts, ActionKind::Collect);

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "documents",
        labeled_documents(n_docs, vocab, 2, words_per_doc, seed),
    );
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
    use panthera_analysis::infer_tags;
    use sparklang::ast::MemoryTag;
    use sparklang::VarId;
    use std::collections::BTreeMap;

    #[test]
    fn counts_are_hot_tagged() {
        let w = wordcount(200, 100, 8, 3);
        let tags = infer_tags(&w.program);
        // docs is read once to build counts and never again: cold => NVM.
        assert_eq!(tags.tag(VarId(0)), Some(MemoryTag::Nvm), "docs");
        // counts is queried every loop iteration: hot => DRAM.
        assert_eq!(tags.tag(VarId(1)), Some(MemoryTag::Dram), "counts");
    }

    #[test]
    fn counts_match_a_hand_count() {
        let w = wordcount(300, 80, 10, 5);
        let cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
        let run = RunBuilder::new(&w.program, w.fns, w.data)
            .config(cfg)
            .run()
            .expect("valid configuration");
        let collected = run.results.last().unwrap().1.as_collected().unwrap();

        let docs = crate::labeled_documents(300, 80, 2, 10, 5);
        let mut expect: BTreeMap<i64, i64> = BTreeMap::new();
        for d in &docs {
            let (_, words) = d.as_pair().unwrap();
            if let Payload::Longs(ws) = words {
                for w in ws.iter() {
                    *expect.entry(*w).or_insert(0) += 1;
                }
            }
        }
        let got: BTreeMap<i64, i64> = collected
            .iter()
            .map(|r| {
                let (w, c) = r.as_pair().unwrap();
                (w.as_long().unwrap(), c.as_long().unwrap())
            })
            .collect();
        assert_eq!(got, expect, "word counts diverge");
    }
}
